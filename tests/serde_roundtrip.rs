//! Serialization round-trips: every public configuration and report type
//! survives a JSON round-trip bit-exactly, so experiment artifacts are
//! reproducible from their serialized form.

use optimus::prelude::*;
use optimus_suite as optimus;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn model_config_roundtrips() {
    for model in [
        model::presets::gpt_175b(),
        model::presets::llama2_70b(),
        model::presets::llama2_7b(),
    ] {
        let back: ModelConfig = roundtrip(&model);
        assert_eq!(back, model);
        assert_eq!(back.param_count(), model.param_count());
    }
}

#[test]
fn accelerator_roundtrips() {
    for acc in [
        hw::presets::a100_sxm_80gb(),
        hw::presets::b200_sxm(),
        hw::presets::tpu_v4(),
    ] {
        let back: Accelerator = roundtrip(&acc);
        assert_eq!(back, acc);
    }
}

#[test]
fn cluster_roundtrips() {
    let cluster = hw::presets::dgx_h100_nvs_cluster();
    let back: ClusterSpec = roundtrip(&cluster);
    assert_eq!(back, cluster);
}

#[test]
fn training_config_and_report_roundtrip() {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let cfg = TrainingConfig::new(
        model::presets::gpt_22b(),
        4,
        2048,
        Parallelism::new(1, 8, 1).with_sp(true),
    )
    .with_recompute(RecomputeMode::Selective)
    .with_flash(true);
    let back: TrainingConfig = roundtrip(&cfg);
    assert_eq!(back, cfg);

    let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
    let report_back: TrainingReport = roundtrip(&report);
    assert_eq!(report_back, report);
}

#[test]
fn inference_config_and_report_roundtrip() {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let cfg = InferenceConfig::nvidia_llama_benchmark(model::presets::llama2_7b(), 2);
    let back: InferenceConfig = roundtrip(&cfg);
    assert_eq!(back, cfg);

    let report = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
    let report_back: InferenceReport = roundtrip(&report);
    assert_eq!(report_back, report);
}

#[test]
fn energy_and_cost_models_roundtrip() {
    use optimus::energy::{CostModel, EnergyModel};
    let e: EnergyModel = roundtrip(&EnergyModel::h100_class());
    assert_eq!(e, EnergyModel::h100_class());
    let c: CostModel = roundtrip(&CostModel::b200_system());
    assert_eq!(c, CostModel::b200_system());
}

#[test]
fn quantities_roundtrip_transparently() {
    // Quantities serialize as bare numbers (serde(transparent)).
    let t = Time::from_millis(4735.0);
    assert_eq!(serde_json::to_string(&t).unwrap(), "4.735");
    let b: Bytes = serde_json::from_str("1000000000.0").unwrap();
    assert_eq!(b.gb(), 1.0);
}
