//! End-to-end validation of the inference estimator against the paper's
//! Table 2 (NVIDIA-reported Llama-2 latencies) and Table 4 (per-GEMM
//! bound analysis).

use optimus_experiments::{table2, table4};

#[test]
fn every_row_within_30_percent() {
    // The paper matches NVIDIA within 13% with factors calibrated on these
    // very systems; our independent calibration stays within 30% worst-case
    // (the 8-GPU small-model rows are the hard ones — the paper notes its
    // own anomaly there).
    for row in table2::run() {
        assert!(
            row.a100_error_percent < 30.0,
            "{} TP{} A100: {:.1}%",
            row.reference.model,
            row.reference.tp,
            row.a100_error_percent
        );
        assert!(
            row.h100_error_percent < 30.0,
            "{} TP{} H100: {:.1}%",
            row.reference.model,
            row.reference.tp,
            row.h100_error_percent
        );
    }
}

#[test]
fn mean_error_under_12_percent() {
    let rows = table2::run();
    let mean = table2::mean_error_percent(&rows);
    assert!(mean < 12.0, "mean |err| {mean:.1}%");
}

#[test]
fn h100_always_beats_a100() {
    // §4.3: the A100→H100 gain tracks the HBM upgrade.
    for row in table2::run() {
        assert!(
            row.h100_pred_ms < row.a100_pred_ms,
            "{} TP{}",
            row.reference.model,
            row.reference.tp
        );
    }
}

#[test]
fn latency_decreases_with_tp_within_a_model() {
    // Strong scaling holds (even if far from linear) for every model on
    // A100 in both NVIDIA's data and our predictions.
    let rows = table2::run();
    for model in ["Llama2-70B", "Llama2-13B", "Llama2-7B"] {
        let mut series: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.reference.model == model)
            .map(|r| (r.reference.tp, r.a100_pred_ms))
            .collect();
        series.sort_by_key(|&(tp, _)| tp);
        for pair in series.windows(2) {
            assert!(
                pair[1].1 < pair[0].1,
                "{model}: TP{} {:.0} ms !< TP{} {:.0} ms",
                pair[1].0,
                pair[1].1,
                pair[0].0,
                pair[0].1
            );
        }
    }
}

#[test]
fn table4_bound_types_fully_agree() {
    // The paper's central qualitative finding: fat prefill GEMMs are
    // compute-bound on A100 and DRAM-bound on H100.
    let rows = table4::run();
    assert_eq!(
        table4::bound_agreement(&rows),
        1.0,
        "bound-type disagreement: {:?}",
        rows.iter()
            .filter(|r| !r.bounds_agree())
            .map(|r| r.reference.gemm)
            .collect::<Vec<_>>()
    );
}

#[test]
fn table4_h100_speedup_tracks_memory_not_compute() {
    // H100's per-GEMM times improve by roughly the DRAM ratio (~1.7x) up
    // to the compute ratio (~3.2x), never more.
    for row in table4::run() {
        if row.a100_us < 1.0 {
            continue; // sub-µs attention rows: overhead-dominated
        }
        let speedup = row.a100_us / row.h100_us;
        assert!(
            (1.2..4.0).contains(&speedup),
            "{}: H100 speedup {speedup:.2}",
            row.reference.gemm
        );
    }
}
