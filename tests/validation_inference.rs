//! End-to-end validation of the inference estimator against the paper's
//! Table 2 (NVIDIA-reported Llama-2 latencies) and Table 4 (per-GEMM
//! bound analysis), plus the golden cross-check pinning the serving
//! simulator to the static analytical model in the no-queueing limit.

use optimus_experiments::{table2, table4};

#[test]
fn every_row_within_30_percent() {
    // The paper matches NVIDIA within 13% with factors calibrated on these
    // very systems; our independent calibration stays within 30% worst-case
    // (the 8-GPU small-model rows are the hard ones — the paper notes its
    // own anomaly there).
    for row in table2::run() {
        assert!(
            row.a100_error_percent < 30.0,
            "{} TP{} A100: {:.1}%",
            row.reference.model,
            row.reference.tp,
            row.a100_error_percent
        );
        assert!(
            row.h100_error_percent < 30.0,
            "{} TP{} H100: {:.1}%",
            row.reference.model,
            row.reference.tp,
            row.h100_error_percent
        );
    }
}

#[test]
fn mean_error_under_12_percent() {
    let rows = table2::run();
    let mean = table2::mean_error_percent(&rows);
    assert!(mean < 12.0, "mean |err| {mean:.1}%");
}

#[test]
fn h100_always_beats_a100() {
    // §4.3: the A100→H100 gain tracks the HBM upgrade.
    for row in table2::run() {
        assert!(
            row.h100_pred_ms < row.a100_pred_ms,
            "{} TP{}",
            row.reference.model,
            row.reference.tp
        );
    }
}

#[test]
fn latency_decreases_with_tp_within_a_model() {
    // Strong scaling holds (even if far from linear) for every model on
    // A100 in both NVIDIA's data and our predictions.
    let rows = table2::run();
    for model in ["Llama2-70B", "Llama2-13B", "Llama2-7B"] {
        let mut series: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.reference.model == model)
            .map(|r| (r.reference.tp, r.a100_pred_ms))
            .collect();
        series.sort_by_key(|&(tp, _)| tp);
        for pair in series.windows(2) {
            assert!(
                pair[1].1 < pair[0].1,
                "{model}: TP{} {:.0} ms !< TP{} {:.0} ms",
                pair[1].0,
                pair[1].1,
                pair[0].0,
                pair[0].1
            );
        }
    }
}

#[test]
fn table4_bound_types_fully_agree() {
    // The paper's central qualitative finding: fat prefill GEMMs are
    // compute-bound on A100 and DRAM-bound on H100.
    let rows = table4::run();
    assert_eq!(
        table4::bound_agreement(&rows),
        1.0,
        "bound-type disagreement: {:?}",
        rows.iter()
            .filter(|r| !r.bounds_agree())
            .map(|r| r.reference.gemm)
            .collect::<Vec<_>>()
    );
}

/// Golden cross-check: at an arrival rate so low that requests never
/// overlap, the continuous-batching simulator must degenerate to the
/// static `InferenceEstimator` — same model, same cluster, same request
/// shape — to within 2% on both the decode latency and the end-to-end
/// latency. Any scheduler, pricing, or accounting drift between the two
/// inference paths shows up here.
#[test]
fn serving_simulator_degenerates_to_static_estimator_at_low_rate() {
    use optimus::prelude::*;
    use optimus_serve::{ArrivalProcess, LengthDist, ServeConfig, TraceSpec};
    use std::sync::Arc;

    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_13b());
    let (prompt, output) = (200, 64);

    for tp in [1, 2] {
        let static_report = InferenceEstimator::new(&cluster)
            .estimate(&InferenceConfig::new(
                Arc::clone(&model),
                1,
                prompt,
                output,
                tp,
            ))
            .unwrap();

        // 60 s between arrivals vs sub-second request latencies: the
        // instance is always idle when the next request lands.
        let spec = TraceSpec {
            seed: 3,
            requests: 5,
            arrival: ArrivalProcess::Fixed { interval_s: 60.0 },
            prompt: LengthDist::Fixed { tokens: prompt },
            output: LengthDist::Fixed { tokens: output },
            prefixes: None,
            priority_classes: 1,
        };
        let report =
            optimus_serve::simulate(&cluster, Arc::clone(&model), &ServeConfig::new(tp), &spec)
                .unwrap();
        assert_eq!(report.completed, 5);
        assert_eq!(report.queue.peak_decoding, 1, "no overlap at this rate");
        assert_eq!(
            report.queue.peak_waiting, 0,
            "an idle instance prefills each arrival immediately — nothing ever \
             sits without compute"
        );

        for m in &report.per_request {
            assert_eq!(
                m.queue_wait.secs(),
                0.0,
                "an idle instance admits instantly"
            );
            // Simulated decode phase: everything after the prefill
            // iteration.
            let decode_sim = m.e2e.secs() - m.prefill.secs();
            let decode_err =
                (decode_sim - static_report.decode.secs()).abs() / static_report.decode.secs();
            assert!(
                decode_err < 0.02,
                "TP{tp} request {}: simulated decode {:.4} s vs static {:.4} s ({:.2}%)",
                m.id,
                decode_sim,
                static_report.decode.secs(),
                decode_err * 100.0
            );
            let e2e_err =
                (m.e2e.secs() - static_report.total.secs()).abs() / static_report.total.secs();
            assert!(
                e2e_err < 0.02,
                "TP{tp} request {}: simulated e2e {:.4} s vs static {:.4} s ({:.2}%)",
                m.id,
                m.e2e.secs(),
                static_report.total.secs(),
                e2e_err * 100.0
            );
        }
    }
}

#[test]
fn table4_h100_speedup_tracks_memory_not_compute() {
    // H100's per-GEMM times improve by roughly the DRAM ratio (~1.7x) up
    // to the compute ratio (~3.2x), never more.
    for row in table4::run() {
        if row.a100_us < 1.0 {
            continue; // sub-µs attention rows: overhead-dominated
        }
        let speedup = row.a100_us / row.h100_us;
        assert!(
            (1.2..4.0).contains(&speedup),
            "{}: H100 speedup {speedup:.2}",
            row.reference.gemm
        );
    }
}
