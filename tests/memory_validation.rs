//! Memory-model checks spanning crates: the Fig. 4 narrative and the
//! KV-cache/weights inset of Fig. 8.

use optimus::prelude::*;
use optimus_experiments::fig4;
use optimus_suite as optimus;

#[test]
fn fig4_narrative_holds() {
    let bars = fig4::run();
    assert_eq!(bars.len(), 9, "three models x three recompute modes");

    for model in ["GPT-175B", "GPT-530B", "GPT-1008B"] {
        let bar = |mode: &str| {
            bars.iter()
                .find(|b| b.model == model && b.recompute == mode)
                .unwrap()
        };
        // §5.1: "With no recomputation, an LLM can not generally fit in
        // the device memory"; full recomputation fits everywhere.
        assert!(!bar("no").fits_a100, "{model} without recomputation");
        assert!(bar("full").fits_a100, "{model} with full recomputation");
        // Activation ordering: none > selective > full.
        assert!(bar("no").activation_gb > bar("selective").activation_gb);
        assert!(bar("selective").activation_gb > bar("full").activation_gb);
        // Static memory identical across modes.
        let static_no = bar("no").optimizer_gb + bar("no").parameter_gb;
        let static_full = bar("full").optimizer_gb + bar("full").parameter_gb;
        assert!((static_no - static_full).abs() < 1e-9);
    }
}

#[test]
fn optimizer_state_dominates_static_memory() {
    for bar in fig4::run() {
        assert!(
            bar.optimizer_gb > bar.parameter_gb,
            "{} {}: optimizer {:.1} GB vs parameter {:.1} GB",
            bar.model,
            bar.recompute,
            bar.optimizer_gb,
            bar.parameter_gb
        );
    }
}

#[test]
fn kv_cache_matches_paper_formula_end_to_end() {
    // §3.5's closed form: 2 · B · context · precision · layers · kv-width,
    // checked through the high-level inference report.
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let cfg = InferenceConfig::new(model::presets::llama2_13b(), 4, 300, 100, 2);
    let report = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
    let expected = 2.0 * 4.0 * 400.0 * 2.0 * 40.0 * 5120.0 / 2.0; // / tp
    assert!((report.memory.kv_cache.bytes() - expected).abs() < 1.0);
}

#[test]
fn seventy_b_needs_multiple_gpus_at_fp16() {
    let mem1 = optimus::memory::inference_memory(
        &model::presets::llama2_70b(),
        1,
        400,
        1,
        Precision::Fp16,
    );
    let mem2 = optimus::memory::inference_memory(
        &model::presets::llama2_70b(),
        1,
        400,
        2,
        Precision::Fp16,
    );
    let cap = Bytes::from_gb(80.0);
    assert!(!mem1.fits(cap), "70B at FP16 overflows one 80 GB GPU");
    assert!(mem2.fits(cap), "TP=2 fits");
}
