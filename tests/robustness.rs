//! Edge cases and failure injection across the estimator stack: degenerate
//! models, extreme configurations, unsupported precisions, and the
//! FlashAttention path end to end.

use optimus::prelude::*;
use optimus_suite as optimus;

fn a100() -> ClusterSpec {
    hw::presets::dgx_a100_hdr_cluster()
}

#[test]
fn one_layer_model_estimates() {
    let tiny = ModelConfig::builder("tiny").dims(1, 256, 4).build();
    let cfg = TrainingConfig::new(tiny, 2, 128, Parallelism::single());
    let report = TrainingEstimator::new(&a100()).estimate(&cfg).unwrap();
    assert!(report.time_per_batch.secs() > 0.0);
    assert!(report.time_per_batch.secs() < 0.1, "a tiny model is fast");
    assert!(report.time_per_batch.secs().is_finite());
}

#[test]
fn huge_batch_stays_finite() {
    let cfg = TrainingConfig::new(
        model::presets::gpt_7b(),
        65_536,
        2048,
        Parallelism::new(8, 4, 2),
    );
    let report = TrainingEstimator::new(&a100()).estimate(&cfg).unwrap();
    assert!(report.time_per_batch.secs().is_finite());
    assert!(report.mfu > 0.0 && report.mfu < 1.0);
}

#[test]
fn unsupported_precision_is_a_clean_error() {
    // A100 has no FP4 units.
    let cfg = TrainingConfig::new(model::presets::gpt_7b(), 8, 2048, Parallelism::new(1, 8, 1))
        .with_precision(Precision::Fp4);
    let err = TrainingEstimator::new(&a100()).estimate(&cfg).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("FP4"),
        "error should name the precision: {msg}"
    );
    assert!(msg.contains("A100"), "error should name the device: {msg}");
}

#[test]
fn b200_fp4_training_works() {
    let cluster = hw::presets::dgx_b200_nvs_cluster();
    let cfg = TrainingConfig::new(model::presets::gpt_7b(), 8, 2048, Parallelism::new(1, 8, 1))
        .with_precision(Precision::Fp4);
    let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
    assert!(report.time_per_batch.secs() > 0.0);
}

#[test]
fn flash_training_wins_at_long_sequence_end_to_end() {
    let cluster = a100();
    let model = model::presets::gpt_7b();
    let base = TrainingConfig::new(model, 8, 8192, Parallelism::new(1, 8, 1));
    let standard = TrainingEstimator::new(&cluster).estimate(&base).unwrap();
    let flash = TrainingEstimator::new(&cluster)
        .estimate(&base.clone().with_flash(true))
        .unwrap();
    assert!(
        flash.time_per_batch < standard.time_per_batch,
        "flash {} should beat standard {} at seq 8192",
        flash.time_per_batch,
        standard.time_per_batch
    );
    assert!(
        flash.dram_traffic < standard.dram_traffic,
        "flash moves less DRAM data"
    );
}

#[test]
fn single_token_generation() {
    let cfg = InferenceConfig::new(model::presets::llama2_7b(), 1, 1, 1, 1);
    let report = InferenceEstimator::new(&a100()).estimate(&cfg).unwrap();
    assert!(report.total.secs() > 0.0);
    assert_eq!(report.per_token, report.decode);
}

#[test]
fn very_long_context_decode_is_kv_dominated() {
    let short = InferenceConfig::new(model::presets::llama2_7b(), 1, 128, 16, 1);
    let long = InferenceConfig::new(model::presets::llama2_7b(), 1, 60_000, 16, 1);
    let cluster = a100();
    let est = InferenceEstimator::new(&cluster);
    let t_short = est.estimate(&short).unwrap().per_token;
    let t_long = est.estimate(&long).unwrap().per_token;
    // At 60k context the KV-cache read (~15 GB/token for 7B) rivals the
    // weight read; per-token time must grow severalfold.
    assert!(
        t_long.secs() > 1.5 * t_short.secs(),
        "60k-context decode {} vs short {}",
        t_long,
        t_short
    );
}

#[test]
fn report_invariants_hold_across_a_config_sweep() {
    let cluster = a100();
    let est = TrainingEstimator::new(&cluster);
    for (dp, tp, pp) in [(1, 1, 1), (1, 8, 1), (2, 4, 2), (1, 2, 8), (4, 8, 2)] {
        let cfg = TrainingConfig::new(
            model::presets::gpt_22b(),
            16,
            2048,
            Parallelism::new(dp, tp, pp),
        )
        .with_recompute(RecomputeMode::Selective);
        let Ok(report) = est.estimate(&cfg) else {
            continue;
        };
        let b = &report.breakdown;
        // The breakdown always sums to the total.
        assert!(
            (b.total().secs() - report.time_per_batch.secs()).abs()
                < 1e-9 * report.time_per_batch.secs(),
            "{dp}-{tp}-{pp}: breakdown mismatch"
        );
        assert!(report.device_flops.get() > 0.0);
        assert!(report.dram_traffic.bytes() > 0.0);
        assert!(
            report.mfu > 0.05 && report.mfu < 0.95,
            "{dp}-{tp}-{pp}: MFU {}",
            report.mfu
        );
    }
}

#[test]
fn tpu_preset_runs_inference() {
    // The abstraction layer accommodates non-GPU accelerators (§3.1).
    let node = hw::presets::tpu_v4_board();
    let cluster = hw::presets::single_node_cluster("tpu-v4-board", node);
    let cfg = InferenceConfig::new(model::presets::llama2_7b(), 1, 128, 32, 4)
        .with_precision(Precision::Bf16);
    let report = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
    assert!(report.total.secs() > 0.0 && report.total.secs().is_finite());
}
