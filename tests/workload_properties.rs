//! Property-based tests over the end-to-end estimators: physical
//! monotonicities that must hold for *any* workload configuration.

use optimus::prelude::*;
use optimus_suite as optimus;
use proptest::prelude::*;

fn a100() -> ClusterSpec {
    hw::presets::dgx_a100_hdr_cluster()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Training time grows with the global batch (same parallelism).
    #[test]
    fn training_time_monotone_in_batch(batch_mult in 2usize..6) {
        let cluster = a100();
        let base = TrainingConfig::new(
            model::presets::gpt_7b(),
            8,
            2048,
            Parallelism::new(1, 4, 2),
        );
        let bigger = TrainingConfig::new(
            model::presets::gpt_7b(),
            8 * batch_mult,
            2048,
            Parallelism::new(1, 4, 2),
        );
        let est = TrainingEstimator::new(&cluster);
        let t1 = est.estimate(&base).unwrap().time_per_batch;
        let t2 = est.estimate(&bigger).unwrap().time_per_batch;
        prop_assert!(t2 > t1);
        // Per-sample time must not grow (amortization only helps).
        prop_assert!(t2.secs() / (8.0 * batch_mult as f64) <= t1.secs() / 8.0 * 1.001);
    }

    /// Inference latency grows with generated tokens, sub-linearly in batch.
    #[test]
    fn inference_latency_monotone_in_tokens(generate in 10usize..200) {
        let cluster = a100();
        let est = InferenceEstimator::new(&cluster);
        let short = est
            .estimate(&InferenceConfig::new(model::presets::llama2_7b(), 1, 64, generate, 1))
            .unwrap();
        let long = est
            .estimate(&InferenceConfig::new(
                model::presets::llama2_7b(),
                1,
                64,
                generate + 50,
                1,
            ))
            .unwrap();
        prop_assert!(long.total > short.total);
        prop_assert!(long.decode > short.decode);
    }

    /// Memory footprint shrinks (weakly) with more tensor parallelism.
    #[test]
    fn memory_monotone_in_tp(tp_idx in 0usize..3) {
        let tps = [1usize, 2, 4, 8];
        let (lo, hi) = (tps[tp_idx], tps[tp_idx + 1]);
        let mem = |tp: usize| {
            optimus::memory::inference_memory(
                &model::presets::llama2_13b(),
                4,
                512,
                tp,
                Precision::Fp16,
            )
            .total()
        };
        prop_assert!(mem(hi) < mem(lo));
    }

    /// A faster DRAM never slows inference down.
    #[test]
    fn inference_monotone_in_dram_bandwidth(tb_per_s in 1.0f64..6.0) {
        let slow = hw::presets::a100_sxm_80gb();
        let fast = hw::presets::a100_sxm_80gb()
            .with_dram(Bytes::from_gb(80.0), Bandwidth::from_tb_per_sec(tb_per_s + 0.5));
        let base = hw::presets::a100_sxm_80gb()
            .with_dram(Bytes::from_gb(80.0), Bandwidth::from_tb_per_sec(tb_per_s));
        let node_of = |acc: Accelerator| {
            hw::NodeSpec::new(acc, 8, hw::nettech::NvlinkGen::Gen3.link())
        };
        let cfg = InferenceConfig::new(model::presets::llama2_7b(), 1, 100, 20, 1);
        let t = |acc: Accelerator| {
            let cluster = hw::presets::single_node_cluster("t", node_of(acc));
            InferenceEstimator::new(&cluster).estimate(&cfg).unwrap().total
        };
        let _ = slow;
        prop_assert!(t(fast) <= t(base));
    }

    /// The pipeline bubble fraction shrinks with more microbatches and
    /// never exceeds the GPipe bound.
    #[test]
    fn bubble_fraction_bounds(pp in 2usize..32, m_exp in 0u32..6) {
        let m = 1usize << m_exp;
        let plain = PipelineSchedule::OneFOneB.bubble_fraction(pp, m);
        let more = PipelineSchedule::OneFOneB.bubble_fraction(pp, m * 2);
        prop_assert!(more < plain);
        let interleaved = PipelineSchedule::interleaved(4).bubble_fraction(pp, m);
        prop_assert!(interleaved <= plain);
    }
}

/// Non-proptest sanity: weak scaling — growing DP with the batch keeps
/// time roughly constant (DP all-reduce aside).
#[test]
fn weak_scaling_is_flat() {
    let cluster = a100();
    let est = TrainingEstimator::new(&cluster);
    let t1 = est
        .estimate(&TrainingConfig::new(
            model::presets::gpt_7b(),
            16,
            2048,
            Parallelism::new(1, 8, 1),
        ))
        .unwrap()
        .time_per_batch;
    let t4 = est
        .estimate(&TrainingConfig::new(
            model::presets::gpt_7b(),
            64,
            2048,
            Parallelism::new(4, 8, 1),
        ))
        .unwrap()
        .time_per_batch;
    let ratio = t4 / t1;
    assert!(
        (0.95..1.5).contains(&ratio),
        "4x data on 4x GPUs should take about the same time, ratio {ratio:.2}"
    );
}
