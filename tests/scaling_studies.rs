//! Shape checks for the case studies: GPU-generation scaling (Fig. 5),
//! technology-node scaling (Figs. 6–7), inference phase analysis (Fig. 8),
//! and DRAM technology scaling (Fig. 9).

use optimus_experiments::{fig5, fig7, fig8, fig9};

#[test]
fn fig5_speedups_track_the_papers_chain() {
    let bars = fig5::run();
    assert_eq!(bars.len(), 7);
    // A100 is the baseline.
    assert!((bars[0].speedup_vs_a100 - 1.0).abs() < 1e-9);
    // Every generation/network upgrade in the chain helps (per-sample).
    let chain = [
        ("A100-HDR", "H100-NDR"),
        ("H100-NDR", "H100-NVS"),
        ("H100-NVS", "H200-NVS-L"),
        ("B200-NDR", "B200-NVS"),
        ("B200-NVS", "B200-NVS-L"),
    ];
    let speedup = |label: &str| {
        bars.iter()
            .find(|b| b.label == label)
            .unwrap()
            .speedup_vs_a100
    };
    for (slower, faster) in chain {
        assert!(
            speedup(faster) > speedup(slower),
            "{faster} ({:.1}x) should beat {slower} ({:.1}x)",
            speedup(faster),
            speedup(slower)
        );
    }
    // The headline: B200-NVS-L lands in the ~25-45x band ("~35x speed-up
    // closely following NVIDIA's scaling trend").
    let total = speedup("B200-NVS-L");
    assert!(
        (20.0..50.0).contains(&total),
        "A100→B200 speedup {total:.1}x"
    );
    // B200 at FP4 with NDR roughly triples H100-NDR at FP8 (§5.2: "boosts
    // the performance by 3x with NDR IB").
    let b200_over_h100 = speedup("B200-NDR") / speedup("H100-NDR");
    assert!(
        (1.8..4.5).contains(&b200_over_h100),
        "B200-NDR / H100-NDR = {b200_over_h100:.1}"
    );
}

#[test]
fn fig7_memory_boundedness_grows_with_node_scaling() {
    let bars = fig7::run();
    for hbm in fig7::panels() {
        let series: Vec<&fig7::Bar> = bars.iter().filter(|b| b.hbm == hbm).collect();
        assert_eq!(series.len(), 7);
        // §5.3: "The impact of memory boundedness becomes dominant
        // gradually with the scaling."
        let first = series.first().unwrap().memory_fraction();
        let last = series.last().unwrap().memory_fraction();
        assert!(
            last > first,
            "{hbm}: memory fraction should grow (N12 {first:.2} → N1 {last:.2})"
        );
        // Total GEMM time shrinks with node scaling.
        assert!(series.last().unwrap().total_ms() < series.first().unwrap().total_ms());
    }
    // Better HBM defers the memory wall: at N1 the memory-bound share is
    // highest on HBM2 and lowest on HBM4.
    let at_n1 = |hbm| {
        bars.iter()
            .find(|b| b.hbm == hbm && b.node == optimus::tech::TechNode::N1)
            .unwrap()
            .memory_fraction()
    };
    use optimus_suite as optimus;
    assert!(
        at_n1(optimus::hw::memtech::DramTechnology::Hbm2)
            > at_n1(optimus::hw::memtech::DramTechnology::Hbm4)
    );
}

#[test]
fn fig8_batch_flips_h100_prefill_to_compute_bound() {
    let bars = fig8::run();
    let frac = |device: &str, batch: usize| {
        bars.iter()
            .find(|b| b.device == device && b.batch == batch)
            .unwrap()
            .compute_fraction()
    };
    // §6.1: on H100 the compute-dominated fraction is 0 at B=1 and grows
    // to ~85% at B=16; on A100 it is high at both batch sizes.
    assert!(frac("H100-HBM3", 1) < 0.05, "H100 B=1 must be memory-bound");
    assert!(frac("H100-HBM3", 16) > 0.6, "H100 B=16 flips to compute");
    assert!(frac("A100-HBM2e", 1) > 0.5);
    assert!(frac("A100-HBM2e", 16) >= frac("A100-HBM2e", 1) - 0.05);
    // Inset: KV-cache scales 16x with batch; weights do not.
    let kv1 = bars.iter().find(|b| b.batch == 1).unwrap().kv_cache_gb;
    let kv16 = bars.iter().find(|b| b.batch == 16).unwrap().kv_cache_gb;
    assert!((kv16 / kv1 - 16.0).abs() < 1e-6);
}

#[test]
fn fig9_latency_scales_with_dram_then_saturates() {
    use optimus_suite as optimus;
    let bars = fig9::run();
    let total = |dram, gpus| {
        bars.iter()
            .find(|b| b.dram == dram && b.gpus == gpus && b.nvlink.to_string() == "NV3")
            .unwrap()
            .total_s()
    };
    use optimus::hw::memtech::DramTechnology as D;
    for gpus in [2usize, 8] {
        // Monotone improvement along the sweep...
        assert!(total(D::Gddr6, gpus) > total(D::Hbm2, gpus));
        assert!(total(D::Hbm2, gpus) > total(D::Hbm2e, gpus));
        assert!(total(D::Hbm2e, gpus) > total(D::Hbm3, gpus));
        // ...but the gain from HBM3e to HBMX is marginal (§6.2: the problem
        // becomes L2-bound once DRAM outruns the on-chip hierarchy).
        let late_gain = total(D::Hbm3e, gpus) / total(D::HbmX, gpus);
        let early_gain = total(D::Gddr6, gpus) / total(D::Hbm2, gpus);
        assert!(
            late_gain < 1.05,
            "{gpus} GPUs: HBM3e→HBMX gain {late_gain:.3} should be marginal"
        );
        assert!(early_gain > 1.3, "{gpus} GPUs: early DRAM scaling is real");
    }
    // Communication does not depend on the DRAM technology.
    let comm_spread: Vec<f64> = bars
        .iter()
        .filter(|b| b.gpus == 8 && b.nvlink.to_string() == "NV3")
        .map(|b| b.communication_s)
        .collect();
    let min = comm_spread.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = comm_spread.iter().cloned().fold(0.0, f64::max);
    assert!((max - min) / min < 1e-9);
    // NV4 reduces communication versus NV3 at the same DRAM point.
    let nv3 = bars
        .iter()
        .find(|b| b.dram == D::HbmX && b.gpus == 8 && b.nvlink.to_string() == "NV3")
        .unwrap();
    let nv4 = bars
        .iter()
        .find(|b| b.dram == D::HbmX && b.gpus == 8 && b.nvlink.to_string() == "NV4")
        .unwrap();
    assert!(nv4.communication_s < nv3.communication_s);
}

#[test]
fn fig9_h100_reference_lines_beat_projected_a100_hbm3e() {
    use optimus_suite as optimus;
    // §6.2: "at HBM3e, H100 system is slightly faster than the projected
    // A100-HBM3e system — primarily faster on-chip memory and NV4."
    let bars = fig9::run();
    let h100 = fig9::h100_reference();
    let a100_hbm3e_8 = bars
        .iter()
        .find(|b| b.dram == optimus::hw::memtech::DramTechnology::Hbm3e && b.gpus == 8)
        .unwrap()
        .total_s();
    assert!(h100.eight_gpu_s < a100_hbm3e_8);
}
