//! Byte-identity pins of the serving and training reports against
//! golden JSON fixtures.
//!
//! The serving fixtures were captured at the commit *before* paged KV,
//! prefix caching, and pluggable schedulers landed; the training and
//! sweep fixtures at the commit *before* the composable resilience
//! stack (tiered checkpoints, failure processes, elastic training)
//! landed. The pre-existing regimes — `KvSpec::reserved()` + FIFO on
//! the serving side, a plain `--mtbf`/`--restart` exponential spec on
//! the training side — must keep emitting byte-identical reports: the
//! new sections are *omitted* (not `null`) when absent, which requires
//! the hand-written `Serialize` impls in `optimus-serve` and
//! `optimus-train` to stay in sync with their structs. Each test
//! replays the exact CLI invocation that produced its fixture
//! in-process and compares the pretty JSON byte-for-byte.

use optimus::hw::presets;
use optimus::memory::RecomputeMode;
use optimus::model::presets as models;
use optimus::prelude::{
    CheckpointSpec, Parallelism, PipelineSchedule, TrainingConfig, TrainingEstimator,
};
use optimus_serve::{
    simulate, simulate_fleet, ArrivalProcess, FaultSpec, FleetConfig, LengthDist, RouterPolicy,
    ServeConfig, TraceSpec,
};
use optimus_sweep::{SweepEngine, SweepSpace, Workload};
use std::sync::Arc;

fn trace(
    seed: u64,
    requests: usize,
    rate: f64,
    prompt: (usize, usize),
    output: (usize, usize),
) -> TraceSpec {
    TraceSpec {
        seed,
        requests,
        arrival: ArrivalProcess::Poisson { rate_per_s: rate },
        prompt: LengthDist::Uniform {
            lo: prompt.0,
            hi: prompt.1,
        },
        output: LengthDist::Uniform {
            lo: output.0,
            hi: output.1,
        },
        prefixes: None,
        priority_classes: 1,
    }
}

/// `serve --model llama2-7b --tp 1 --requests 40 --rate 8
/// --prompt 50:200 --output 2:24 --seed 13 --json`
#[test]
fn reserved_serve_report_is_byte_identical_to_the_pre_paging_fixture() {
    let report = simulate(
        &presets::dgx_a100_hdr_cluster(),
        Arc::new(models::llama2_7b()),
        &ServeConfig::new(1),
        &trace(13, 40, 8.0, (50, 200), (2, 24)),
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        include_str!("golden/serve_reserved.json"),
        "default-regime ServeReport JSON drifted from the pre-paging fixture"
    );
}

/// `serve --model llama2-7b --tp 1 --replicas 3 --router
/// least-outstanding --requests 60 --rate 24 --prompt 50:200
/// --output 2:24 --seed 17 --json`
#[test]
fn reserved_fleet_report_is_byte_identical_to_the_pre_paging_fixture() {
    let config = FleetConfig {
        replicas: 3,
        router: RouterPolicy::LeastOutstanding,
        replica: ServeConfig::new(1),
        faults: FaultSpec::none(),
    };
    let report = simulate_fleet(
        &presets::dgx_a100_hdr_cluster(),
        Arc::new(models::llama2_7b()),
        &config,
        &trace(17, 60, 24.0, (50, 200), (2, 24)),
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        include_str!("golden/fleet_reserved.json"),
        "default-regime FleetReport JSON drifted from the pre-paging fixture"
    );
}

/// `serve --model llama2-7b --tp 1 --replicas 2 --requests 50 --rate 20
/// --prompt 50:150 --output 2:16 --seed 23 --mtbf 6 --mttr 2 --json`
#[test]
fn faulted_fleet_report_is_byte_identical_to_the_pre_paging_fixture() {
    let mut faults = FaultSpec::none();
    faults.seed = 0;
    faults.mtbf_s = 6.0;
    faults.mttr_s = 2.0;
    let config = FleetConfig {
        replicas: 2,
        router: RouterPolicy::RoundRobin,
        replica: ServeConfig::new(1),
        faults,
    };
    let report = simulate_fleet(
        &presets::dgx_a100_hdr_cluster(),
        Arc::new(models::llama2_7b()),
        &config,
        &trace(23, 50, 20.0, (50, 150), (2, 16)),
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        include_str!("golden/fleet_faulted.json"),
        "faulted FleetReport JSON drifted from the pre-paging fixture"
    );
}

/// `train --model llama2-13b --cluster a100-hdr --batch 64 --seq 2048
/// --dp 8 --tp 8 --sp --mtbf 50000000 --restart 300 --json`
#[test]
fn basic_resilience_train_report_is_byte_identical_to_the_pre_stack_fixture() {
    let cfg = TrainingConfig::new(
        models::llama2_13b(),
        64,
        2048,
        Parallelism::new(8, 8, 1).with_sp(true),
    )
    .with_recompute(RecomputeMode::Selective);
    let report = TrainingEstimator::new(&presets::dgx_a100_hdr_cluster())
        .with_checkpoint(CheckpointSpec::with_mtbf(50_000_000.0).with_restart(300.0))
        .estimate(&cfg)
        .unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&report).unwrap(),
        include_str!("golden/train_resilience.json"),
        "basic-spec TrainingReport JSON drifted from the pre-stack fixture"
    );
}

/// `sweep --model llama2-13b --cluster a100-hdr --workload train
/// --batch 64 --max-gpus 64 --mtbf 10000 --restart 900 --frontier-only
/// --json`
#[test]
fn basic_resilience_sweep_frontier_is_byte_identical_to_the_pre_stack_fixture() {
    let workload = Workload::Training {
        batch: 64,
        seq: 2048,
        recompute: RecomputeMode::Selective,
        schedule: PipelineSchedule::OneFOneB,
    };
    let report = SweepEngine::new(&presets::dgx_a100_hdr_cluster())
        .with_checkpoint(CheckpointSpec::with_mtbf(10_000.0).with_restart(900.0))
        .sweep(
            &models::llama2_13b(),
            &workload,
            &SweepSpace::power_of_two(64),
        );
    assert_eq!(
        serde_json::to_string_pretty(&report.frontier).unwrap(),
        include_str!("golden/sweep_resilience_frontier.json"),
        "basic-spec sweep frontier JSON drifted from the pre-stack fixture"
    );
}
