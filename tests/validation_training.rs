//! End-to-end validation of the training estimator against the paper's
//! Table 1 (Megatron/Korthikanti reported times on A100 systems).

use optimus_experiments::table1;

#[test]
fn every_row_within_15_percent() {
    // The paper's own predictions are "mostly well below 10%"; we allow a
    // modest extra margin for our independently calibrated device model.
    for row in table1::run() {
        assert!(
            row.error_percent < 15.0,
            "{} ({} GPUs, {}): {:.1}% error (pred {:.1} s vs ref {:.1} s)",
            row.reference.model,
            row.reference.gpus,
            row.reference.parallelism(),
            row.error_percent,
            row.t_pred_secs,
            row.reference.t_ref_secs,
        );
    }
}

#[test]
fn mean_error_competitive_with_paper() {
    let rows = table1::run();
    let ours = table1::mean_error_percent(&rows);
    let papers = rows
        .iter()
        .map(|r| r.reference.paper_error_percent())
        .sum::<f64>()
        / rows.len() as f64;
    assert!(
        ours < papers + 3.0,
        "our mean error {ours:.1}% vs paper's {papers:.1}%"
    );
}

#[test]
fn selective_rows_beat_their_full_counterparts() {
    // Table 1's structure: for each model, the SP+selective configuration
    // is faster than the full-recompute one.
    let rows = table1::run();
    for model in ["GPT-22B", "GPT-175B", "GPT-530B", "GPT-1008B"] {
        let full = rows
            .iter()
            .find(|r| r.reference.model == model && !r.reference.selective && r.reference.dp == 1)
            .expect("full row exists");
        let sel = rows
            .iter()
            .find(|r| r.reference.model == model && r.reference.selective)
            .expect("selective row exists");
        assert!(
            sel.t_pred_secs < full.t_pred_secs,
            "{model}: selective {:.1} s !< full {:.1} s",
            sel.t_pred_secs,
            full.t_pred_secs
        );
    }
}

#[test]
fn predicted_times_grow_with_model_size() {
    let rows = table1::run();
    let t = |model: &str| {
        rows.iter()
            .find(|r| r.reference.model == model && !r.reference.selective && r.reference.dp == 1)
            .unwrap()
            .t_pred_secs
    };
    assert!(t("GPT-22B") < t("GPT-175B"));
    assert!(t("GPT-175B") < t("GPT-530B"));
    assert!(t("GPT-530B") < t("GPT-1008B"));
}
