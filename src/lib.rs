//! Workspace facade: re-exports the `optimus` crate for examples and integration tests.
pub use optimus::*;
