//! Property-based tests of model configs and operator graphs.

use optimus_hw::Precision;
use optimus_model::{graph, presets, total_flops, GraphParams, ModelConfig};
use proptest::prelude::*;

fn any_preset() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(presets::gpt_7b()),
        Just(presets::gpt_22b()),
        Just(presets::gpt_175b()),
        Just(presets::llama2_7b()),
        Just(presets::llama2_13b()),
        Just(presets::llama2_70b()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward FLOPs are exactly linear in the batch dimension.
    #[test]
    fn flops_linear_in_batch(model in any_preset(), b in 1usize..16) {
        let p1 = GraphParams::prefill(1, 512, 1, Precision::Fp16);
        let pb = GraphParams::prefill(b, 512, 1, Precision::Fp16);
        let f1 = total_flops(&graph::layer_forward_ops(&model, &p1)).get();
        let fb = total_flops(&graph::layer_forward_ops(&model, &pb)).get();
        prop_assert!((fb / f1 - b as f64).abs() < 1e-9);
    }

    /// Forward FLOPs grow super-linearly in sequence length (the s² of
    /// attention) but no worse than quadratically.
    #[test]
    fn flops_superlinear_in_seq(model in any_preset(), s_exp in 7u32..11) {
        let s = 1usize << s_exp;
        let f1 = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::prefill(1, s, 1, Precision::Fp16))).get();
        let f2 = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::prefill(1, 2 * s, 1, Precision::Fp16))).get();
        let ratio = f2 / f1;
        prop_assert!(ratio >= 2.0 - 1e-9, "at least linear: {ratio}");
        prop_assert!(ratio <= 4.0 + 1e-9, "at most quadratic: {ratio}");
    }

    /// TP sharding conserves total work across ranks (within the rounding
    /// of indivisible dimensions).
    #[test]
    fn tp_conserves_work(model in any_preset(), tp_exp in 0u32..4) {
        let tp = 1usize << tp_exp;
        let full = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::prefill(1, 1024, 1, Precision::Fp16))).get();
        let shard = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::prefill(1, 1024, tp, Precision::Fp16))).get();
        let recon = shard * tp as f64;
        prop_assert!((recon / full - 1.0).abs() < 0.05, "ratio {}", recon / full);
    }

    /// Decode work grows with context (the KV term) and never shrinks.
    #[test]
    fn decode_monotone_in_context(model in any_preset(), ctx in 16usize..4096) {
        let f1 = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::decode(1, ctx, 1, Precision::Fp16))).get();
        let f2 = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::decode(1, ctx + 64, 1, Precision::Fp16))).get();
        prop_assert!(f2 >= f1);
    }

    /// Parameter count equals layers × per-layer + embeddings, and grows
    /// monotonically with depth.
    #[test]
    fn params_compose(model in any_preset()) {
        let per_layer = model.layer_param_count();
        let total = model.param_count();
        let expected = model.layers as f64 * per_layer + model.embedding_param_count();
        prop_assert!((total - expected).abs() < 1.0);
        prop_assert!(per_layer > 0.0);
    }

    /// The backward graph always carries exactly 2x the forward GEMM FLOPs.
    #[test]
    fn backward_is_double(model in any_preset(), b in 1usize..4) {
        let p = GraphParams::prefill(b, 512, 2, Precision::Fp16);
        let gemm_flops = |ops: &[optimus_model::Op]| -> f64 {
            ops.iter()
                .filter_map(|o| o.as_gemm().map(|g| g.flops().get()))
                .sum()
        };
        let fwd = gemm_flops(&graph::layer_forward_ops(&model, &p));
        let bwd = gemm_flops(&graph::layer_backward_ops(&model, &p));
        prop_assert!((bwd / fwd - 2.0).abs() < 1e-9);
    }

    /// Flash and standard graphs carry comparable arithmetic (flash adds
    /// only the online-softmax term).
    #[test]
    fn flash_work_comparable(model in any_preset(), s_exp in 8u32..12) {
        let s = 1usize << s_exp;
        let std = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::prefill(1, s, 1, Precision::Fp16))).get();
        let fla = total_flops(&graph::layer_forward_ops(
            &model, &GraphParams::prefill(1, s, 1, Precision::Fp16).with_flash(true))).get();
        prop_assert!(fla / std < 1.1 && fla / std > 0.9, "ratio {}", fla / std);
    }
}
