//! LLM workload descriptions for the Optimus performance-modeling suite.
//!
//! A decoder-only transformer is described by a [`ModelConfig`] (layers,
//! hidden size, attention organization, MLP style, vocabulary). From it the
//! [`graph`] module expands the **per-device operator lists** — typed GEMM
//! and streaming kernels, already sharded for Megatron-style tensor
//! parallelism — for training forward/backward passes, prefill, and
//! KV-cached auto-regressive decode. These operator lists are the task
//! graphs of the paper's Fig. 1, and every estimator in the suite costs
//! them with the hierarchical roofline model.
//!
//! ```
//! use optimus_hw::Precision;
//! use optimus_model::{graph, presets};
//!
//! let llama = presets::llama2_13b();
//! let params = graph::GraphParams::decode(1, 200, 1, Precision::Fp16);
//! let ops = graph::layer_forward_ops(&llama, &params);
//! // A decode step is a handful of skinny GEMMs plus streaming kernels.
//! assert!(ops.iter().filter(|op| op.as_gemm().is_some()).count() >= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod flash;
pub mod graph;
mod ops;
pub mod presets;

pub use config::{AttentionKind, MlpKind, ModelConfig, ModelConfigBuilder, NormKind};
pub use flash::FlashAttentionOp;
pub use graph::GraphParams;
pub use ops::{total_flops, Op, OpKind, OpRole};
