//! Model presets used throughout the paper's validation and case studies.
//!
//! GPT dimensions follow the Megatron-LM scaling study (Narayanan et al.,
//! SC '21) and the selective-recomputation paper (Korthikanti et al., MLSys
//! '23), which are the sources of the paper's Table 1 reference times.
//! Llama-2 dimensions follow the Meta model cards.

use crate::{AttentionKind, ModelConfig};

/// GPT 6.7B-class model ("GPT-7B" of the paper's Table 3 technology study).
#[must_use]
pub fn gpt_7b() -> ModelConfig {
    ModelConfig::builder("GPT-7B").dims(32, 4096, 32).build()
}

/// GPT-22B (Korthikanti et al. Table 3: h=6144, 48 layers, 64 heads).
#[must_use]
pub fn gpt_22b() -> ModelConfig {
    ModelConfig::builder("GPT-22B").dims(48, 6144, 64).build()
}

/// GPT-3 175B (h=12288, 96 layers, 96 heads).
#[must_use]
pub fn gpt_175b() -> ModelConfig {
    ModelConfig::builder("GPT-175B").dims(96, 12288, 96).build()
}

/// GPT-310B (Megatron-LM SC '21: h=16384, 96 layers, 128 heads).
#[must_use]
pub fn gpt_310b() -> ModelConfig {
    ModelConfig::builder("GPT-310B")
        .dims(96, 16384, 128)
        .build()
}

/// GPT-530B (Megatron-Turing NLG class: h=20480, 105 layers, 128 heads).
#[must_use]
pub fn gpt_530b() -> ModelConfig {
    ModelConfig::builder("GPT-530B")
        .dims(105, 20480, 128)
        .build()
}

/// GPT-1008B, the "1T" model (h=25600, 128 layers, 160 heads).
#[must_use]
pub fn gpt_1008b() -> ModelConfig {
    ModelConfig::builder("GPT-1008B")
        .dims(128, 25600, 160)
        .build()
}

/// Llama-2 7B (h=4096, 32 layers, 32 heads, SwiGLU FFN 11008).
#[must_use]
pub fn llama2_7b() -> ModelConfig {
    ModelConfig::builder("Llama2-7B")
        .dims(32, 4096, 32)
        .llama_style()
        .ffn(11008)
        .build()
}

/// Llama-2 13B (h=5120, 40 layers, 40 heads, SwiGLU FFN 13824).
#[must_use]
pub fn llama2_13b() -> ModelConfig {
    ModelConfig::builder("Llama2-13B")
        .dims(40, 5120, 40)
        .llama_style()
        .ffn(13824)
        .build()
}

/// Llama-2 70B (h=8192, 80 layers, 64 heads, GQA with 8 KV heads,
/// SwiGLU FFN 28672).
#[must_use]
pub fn llama2_70b() -> ModelConfig {
    ModelConfig::builder("Llama2-70B")
        .dims(80, 8192, 64)
        .llama_style()
        .attention(AttentionKind::GroupedQuery { kv_heads: 8 })
        .ffn(28672)
        .build()
}

/// All GPT presets used in Table 1, in ascending size.
#[must_use]
pub fn gpt_family() -> Vec<ModelConfig> {
    vec![gpt_22b(), gpt_175b(), gpt_310b(), gpt_530b(), gpt_1008b()]
}

/// All Llama-2 presets used in Table 2, in ascending size.
#[must_use]
pub fn llama2_family() -> Vec<ModelConfig> {
    vec![llama2_7b(), llama2_13b(), llama2_70b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Named sizes should match actual parameter counts within a few
    /// percent — this pins down the dimension tables.
    #[test]
    fn param_counts_match_names() {
        let cases: [(ModelConfig, f64); 8] = [
            (gpt_7b(), 6.9e9),
            (gpt_22b(), 22.0e9),
            (gpt_175b(), 175.0e9),
            (gpt_310b(), 310.0e9),
            (gpt_530b(), 530.0e9),
            (gpt_1008b(), 1008.0e9),
            (llama2_13b(), 13.0e9),
            (llama2_70b(), 69.0e9),
        ];
        for (model, expected) in cases {
            let got = model.param_count();
            let err = (got - expected).abs() / expected;
            assert!(
                err < 0.06,
                "{}: expected ~{:.1}B, got {:.2}B ({:.1}% off)",
                model.name,
                expected / 1e9,
                got / 1e9,
                err * 100.0
            );
        }
    }

    #[test]
    fn llama2_70b_uses_gqa() {
        let m = llama2_70b();
        assert_eq!(m.kv_heads(), 8);
        assert_eq!(m.kv_hidden(), 1024);
    }

    #[test]
    fn llama2_7b_param_count() {
        let got = llama2_7b().param_count();
        assert!((6.5e9..7.0e9).contains(&got), "got {:.2}B", got / 1e9);
    }

    #[test]
    fn families_are_sorted_by_size() {
        for family in [gpt_family(), llama2_family()] {
            let sizes: Vec<f64> = family.iter().map(ModelConfig::param_count).collect();
            assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
