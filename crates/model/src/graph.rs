//! Per-device operator-graph builders.
//!
//! These functions expand a [`ModelConfig`] into the list of operators one
//! device executes for one transformer layer (or for the embedding/head
//! stages), **already sharded** under Megatron-style tensor parallelism:
//!
//! * the Q/K/V and MLP-up weight matrices are split along *columns* and the
//!   output/MLP-down matrices along *rows* (§3.2), so GEMM `n` or `k`
//!   dimensions divide by the TP degree;
//! * attention heads are independent, so per-head GEMMs shard by head;
//! * with sequence parallelism the norm/dropout/residual streams also
//!   divide by the TP degree (§1.3), otherwise they are replicated.
//!
//! The collectives these shardings imply are *not* represented here — the
//! parallelization mapper (`optimus-parallel`) plans them — so the same
//! graph serves both communication-inclusive estimators and pure
//! device-kernel studies like Table 4.

use crate::{FlashAttentionOp, MlpKind, ModelConfig, NormKind, Op, OpRole};
use optimus_hw::Precision;
use optimus_roofline::{EltwiseKind, EltwiseOp};
use serde::{Deserialize, Serialize};

/// Workload parameters for graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphParams {
    /// Samples processed together (the microbatch for training, the
    /// serving batch for inference).
    pub batch: usize,
    /// New tokens processed per sample in this pass: the full sequence for
    /// training/prefill, 1 for an auto-regressive decode step.
    pub seq: usize,
    /// Attention context length (KV entries attended over). Equals `seq`
    /// for training and prefill; grows with generated tokens for decode.
    pub kv_len: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Whether sequence parallelism shards the norm/dropout streams.
    pub sp: bool,
    /// Activation/weight precision (sets element widths of streams).
    pub precision: Precision,
    /// Use the fused FlashAttention kernel instead of materialized
    /// scores/softmax/dropout/context ops (training and prefill only; the
    /// paper notes flash-style kernels do not help single-token decode).
    pub flash: bool,
}

impl GraphParams {
    /// Parameters for a training or prefill pass over `seq` tokens.
    #[must_use]
    pub fn prefill(batch: usize, seq: usize, tp: usize, precision: Precision) -> Self {
        Self {
            batch,
            seq,
            kv_len: seq,
            tp,
            sp: false,
            precision,
            flash: false,
        }
    }

    /// Parameters for one decode step attending over `kv_len` cached
    /// tokens.
    #[must_use]
    pub fn decode(batch: usize, kv_len: usize, tp: usize, precision: Precision) -> Self {
        Self {
            batch,
            seq: 1,
            kv_len,
            tp,
            sp: false,
            precision,
            flash: false,
        }
    }

    /// Enables sequence parallelism.
    #[must_use]
    pub fn with_sp(mut self, sp: bool) -> Self {
        self.sp = sp;
        self
    }

    /// Selects the FlashAttention implementation.
    #[must_use]
    pub fn with_flash(mut self, flash: bool) -> Self {
        self.flash = flash;
        self
    }

    /// Tokens processed per pass across the batch.
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.batch * self.seq
    }

    fn stream_div(&self) -> usize {
        if self.sp {
            self.tp
        } else {
            1
        }
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b).max(1)
}

/// Builds the forward operator list of **one transformer layer** on one
/// device.
#[must_use]
pub fn layer_forward_ops(model: &ModelConfig, p: &GraphParams) -> Vec<Op> {
    assert!(
        p.batch > 0 && p.seq > 0 && p.kv_len > 0 && p.tp > 0,
        "degenerate graph params"
    );
    let h = model.hidden;
    let hd = model.head_dim();
    let a = model.heads;
    let g = model.kv_heads();
    let t = p.tp;
    let bytes = p.precision.bytes();
    let tokens = p.tokens();
    let sdiv = p.stream_div();

    let norm_kind = match model.norm {
        NormKind::LayerNorm => EltwiseKind::LayerNorm,
        NormKind::RmsNorm => EltwiseKind::RmsNorm,
    };
    let stream = |role: OpRole, kind: EltwiseKind, elements: f64| {
        Op::eltwise(role, EltwiseOp::new(kind, elements, bytes))
    };
    let norm_elems = (tokens * h) as f64 / sdiv as f64;

    let mut ops = Vec::with_capacity(20);

    // --- attention block ------------------------------------------------
    ops.push(stream(OpRole::InputNorm, norm_kind, norm_elems));

    // Merged QKV projection, column-parallel: width (h + 2·kv_hidden)/t.
    let qkv_n = div_ceil(h + 2 * model.kv_hidden(), t);
    ops.push(Op::gemm(OpRole::QkvProjection, 1, tokens, qkv_n, h));

    if !model.learned_pos_embedding {
        // Rotary embedding on the Q and K shards.
        let rope_elems = (tokens * div_ceil(h + model.kv_hidden(), t)) as f64;
        ops.push(stream(OpRole::Rope, EltwiseKind::Rope, rope_elems));
    }

    // Attention core, sharded by head. With GQA the K/V of one group are
    // shared by a/g query heads, so the natural kernel is one GEMM per
    // (sample, kv-group): m = (a/g)·seq query rows against n = kv_len keys.
    let groups_per_rank = div_ceil(g, t);
    let q_rows_per_group = (a / g) * p.seq;
    let attn_batch = p.batch * groups_per_rank;
    if p.flash && p.seq > 1 {
        // Fused kernel: the s x s intermediates never reach DRAM.
        ops.push(Op::flash(FlashAttentionOp::forward(
            attn_batch,
            q_rows_per_group,
            p.kv_len,
            hd,
            bytes,
        )));
    } else {
        ops.push(Op::gemm(
            OpRole::AttnScores,
            attn_batch,
            q_rows_per_group,
            p.kv_len,
            hd,
        ));

        let probs = (p.batch * div_ceil(a, t) * p.seq * p.kv_len) as f64;
        ops.push(stream(OpRole::Softmax, EltwiseKind::Softmax, probs));
        if model.dropout {
            ops.push(stream(OpRole::AttnDropout, EltwiseKind::Dropout, probs));
        }
        ops.push(Op::gemm(
            OpRole::AttnOverValues,
            attn_batch,
            q_rows_per_group,
            hd,
            p.kv_len,
        ));
    }

    // Output projection, row-parallel: k = h/t.
    ops.push(Op::gemm(
        OpRole::OutputProjection,
        1,
        tokens,
        h,
        div_ceil(h, t),
    ));
    if model.dropout {
        ops.push(stream(
            OpRole::PostAttnDropout,
            EltwiseKind::Dropout,
            norm_elems,
        ));
    }
    ops.push(stream(OpRole::ResidualAdd1, EltwiseKind::Add, norm_elems));

    // --- MLP block --------------------------------------------------------
    ops.push(stream(OpRole::PostAttnNorm, norm_kind, norm_elems));
    let f_shard = div_ceil(model.ffn, t);
    ops.push(Op::gemm(OpRole::MlpUp, 1, tokens, f_shard, h));
    let act_elems = (tokens * f_shard) as f64;
    match model.mlp {
        MlpKind::Gelu => {
            ops.push(stream(OpRole::MlpActivation, EltwiseKind::Gelu, act_elems));
        }
        MlpKind::SwiGlu => {
            ops.push(Op::gemm(OpRole::MlpGate, 1, tokens, f_shard, h));
            ops.push(stream(OpRole::MlpActivation, EltwiseKind::Silu, act_elems));
        }
    }
    ops.push(Op::gemm(OpRole::MlpDown, 1, tokens, h, f_shard));
    if model.dropout {
        ops.push(stream(OpRole::MlpDropout, EltwiseKind::Dropout, norm_elems));
    }
    ops.push(stream(OpRole::ResidualAdd2, EltwiseKind::Add, norm_elems));

    ops
}

/// Builds the backward operator list of one layer from its forward list.
///
/// Every forward GEMM `C[m×n] = A[m×k]·B[k×n]` spawns two backward GEMMs of
/// equal FLOPs: the data gradient `dA = dC·Bᵀ` (shape `m×k×n`) and the
/// weight gradient `dB = Aᵀ·dC` (shape `k×n×m`) — which is why the backward
/// pass costs twice the forward pass. Streaming ops re-traverse their
/// streams once (dropout replays its mask; norms and activations apply
/// their local derivative).
#[must_use]
pub fn layer_backward_ops(model: &ModelConfig, p: &GraphParams) -> Vec<Op> {
    let mut ops = Vec::with_capacity(32);
    for op in layer_forward_ops(model, p) {
        match op.kind {
            crate::OpKind::Gemm(gemm) => {
                let s = gemm.shape;
                // dA = dC · Bᵀ.
                ops.push(Op::gemm(op.role, gemm.batch, s.m, s.k, s.n));
                // dB = Aᵀ · dC; per-head attention GEMMs have no weights but
                // still produce gradients for both operands (dQ and dK), so
                // the same pair applies.
                ops.push(Op::gemm(op.role, gemm.batch, s.k, s.n, s.m));
            }
            crate::OpKind::Eltwise(e) => {
                ops.push(Op::eltwise(op.role, e));
            }
            crate::OpKind::Flash(fa) => {
                ops.push(Op::flash(fa.backward()));
            }
        }
    }
    ops
}

/// The attention-core forward ops replayed under **selective**
/// recomputation (Eq. 2): scores, softmax, attention dropout, and the
/// context gather — cheap to recompute, expensive to store.
#[must_use]
pub fn selective_recompute_ops(model: &ModelConfig, p: &GraphParams) -> Vec<Op> {
    layer_forward_ops(model, p)
        .into_iter()
        .filter(|op| op.role.is_selective_recompute())
        .collect()
}

/// Embedding-stage ops: token lookup (plus learned-position add for GPT).
#[must_use]
pub fn embedding_ops(model: &ModelConfig, p: &GraphParams) -> Vec<Op> {
    let bytes = p.precision.bytes();
    let elems = (p.tokens() * model.hidden) as f64;
    let mut ops = vec![Op::eltwise(
        OpRole::Embedding,
        EltwiseOp::new(EltwiseKind::Map, elems, bytes),
    )];
    if model.learned_pos_embedding {
        ops.push(Op::eltwise(
            OpRole::Embedding,
            EltwiseOp::new(EltwiseKind::Add, elems, bytes),
        ));
    }
    ops
}

/// Head-stage ops: final norm, vocabulary projection (column-parallel over
/// TP), and the output softmax.
#[must_use]
pub fn head_ops(model: &ModelConfig, p: &GraphParams) -> Vec<Op> {
    let bytes = p.precision.bytes();
    let tokens = p.tokens();
    let norm_kind = match model.norm {
        NormKind::LayerNorm => EltwiseKind::LayerNorm,
        NormKind::RmsNorm => EltwiseKind::RmsNorm,
    };
    let v_shard = div_ceil(model.vocab, p.tp);
    vec![
        Op::eltwise(
            OpRole::FinalNorm,
            EltwiseOp::new(norm_kind, (tokens * model.hidden) as f64, bytes),
        ),
        Op::gemm(OpRole::LmHead, 1, tokens, v_shard, model.hidden),
        Op::eltwise(
            OpRole::OutputSoftmax,
            EltwiseOp::new(EltwiseKind::Softmax, (tokens * v_shard) as f64, bytes),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, total_flops};

    /// The classic per-layer FLOP formula for GPT training forward:
    /// `24·b·s·h² + 4·b·s²·h` (MHA, FFN = 4h), which the GEMM graph must
    /// reproduce when unsharded.
    #[test]
    fn gpt_layer_flops_match_closed_form() {
        let m = presets::gpt_175b();
        let (b, s) = (4, 2048);
        let p = GraphParams::prefill(b, s, 1, Precision::Fp16);
        let gemm_flops: f64 = layer_forward_ops(&m, &p)
            .iter()
            .filter(|o| o.as_gemm().is_some())
            .map(|o| o.flops().get())
            .sum();
        let h = m.hidden as f64;
        let expected = 24.0 * (b * s) as f64 * h * h + 4.0 * (b as f64) * (s as f64).powi(2) * h;
        let err = (gemm_flops - expected).abs() / expected;
        assert!(err < 1e-6, "relative error {err}");
    }

    #[test]
    fn tp_divides_gemm_work() {
        let m = presets::gpt_175b();
        let p1 = GraphParams::prefill(1, 2048, 1, Precision::Fp16);
        let p8 = GraphParams::prefill(1, 2048, 8, Precision::Fp16);
        let f1 = total_flops(&layer_forward_ops(&m, &p1)).get();
        let f8 = total_flops(&layer_forward_ops(&m, &p8)).get();
        let ratio = f1 / f8;
        assert!((ratio - 8.0).abs() < 0.5, "TP=8 shard ratio {ratio:.2}");
    }

    #[test]
    fn backward_gemm_flops_are_twice_forward() {
        let m = presets::gpt_22b();
        let p = GraphParams::prefill(2, 1024, 4, Precision::Fp16);
        let fwd: f64 = layer_forward_ops(&m, &p)
            .iter()
            .filter_map(|o| o.as_gemm().map(|g| g.flops().get()))
            .sum();
        let bwd: f64 = layer_backward_ops(&m, &p)
            .iter()
            .filter_map(|o| o.as_gemm().map(|g| g.flops().get()))
            .sum();
        assert!((bwd / fwd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decode_step_attends_full_context() {
        let m = presets::llama2_13b();
        let p = GraphParams::decode(1, 400, 1, Precision::Fp16);
        let ops = layer_forward_ops(&m, &p);
        let scores = ops
            .iter()
            .find(|o| o.role == OpRole::AttnScores)
            .and_then(Op::as_gemm)
            .expect("scores GEMM");
        assert_eq!(scores.shape.n, 400, "attends over the KV cache");
        assert_eq!(scores.shape.m, 1, "one new token per head");
        let qkv = ops
            .iter()
            .find(|o| o.role == OpRole::QkvProjection)
            .and_then(Op::as_gemm)
            .unwrap();
        assert_eq!(qkv.shape.m, 1, "decode GEMMs are skinny");
    }

    #[test]
    fn gqa_shares_kv_between_groups() {
        let m = presets::llama2_70b(); // 64 q heads, 8 kv heads
        let p = GraphParams::prefill(1, 256, 1, Precision::Fp16);
        let ops = layer_forward_ops(&m, &p);
        let scores = ops
            .iter()
            .find(|o| o.role == OpRole::AttnScores)
            .and_then(Op::as_gemm)
            .unwrap();
        assert_eq!(scores.batch, 8, "one GEMM per kv group");
        assert_eq!(scores.shape.m, 8 * 256, "8 query heads per group");
        assert_eq!(scores.shape.k, 128);
    }

    #[test]
    fn swiglu_has_gate_gemm_and_gelu_does_not() {
        let p = GraphParams::prefill(1, 64, 1, Precision::Fp16);
        let llama = layer_forward_ops(&presets::llama2_7b(), &p);
        assert!(llama.iter().any(|o| o.role == OpRole::MlpGate));
        let gpt = layer_forward_ops(&presets::gpt_7b(), &p);
        assert!(!gpt.iter().any(|o| o.role == OpRole::MlpGate));
    }

    #[test]
    fn dropout_only_in_dropout_models() {
        let p = GraphParams::prefill(1, 64, 1, Precision::Fp16);
        let gpt = layer_forward_ops(&presets::gpt_7b(), &p);
        assert!(gpt.iter().any(|o| o.role == OpRole::AttnDropout));
        let llama = layer_forward_ops(&presets::llama2_7b(), &p);
        assert!(!llama.iter().any(|o| o.role == OpRole::AttnDropout));
    }

    #[test]
    fn sp_shards_streaming_ops() {
        let m = presets::gpt_22b();
        let base = GraphParams::prefill(1, 2048, 8, Precision::Fp16);
        let with_sp = base.with_sp(true);
        let elems = |ops: &[Op], role: OpRole| -> f64 {
            ops.iter()
                .find(|o| o.role == role)
                .map(|o| match o.kind {
                    crate::OpKind::Eltwise(e) => e.elements,
                    _ => panic!("expected eltwise"),
                })
                .unwrap()
        };
        let plain = elems(&layer_forward_ops(&m, &base), OpRole::InputNorm);
        let sharded = elems(&layer_forward_ops(&m, &with_sp), OpRole::InputNorm);
        assert!((plain / sharded - 8.0).abs() < 1e-9);
    }

    #[test]
    fn selective_recompute_is_attention_core() {
        let m = presets::gpt_175b();
        let p = GraphParams::prefill(1, 2048, 8, Precision::Fp16);
        let ops = selective_recompute_ops(&m, &p);
        assert_eq!(ops.len(), 4, "scores, softmax, dropout, context");
        assert!(ops.iter().all(|o| o.role.is_selective_recompute()));
    }

    #[test]
    fn flash_replaces_attention_core() {
        let m = presets::gpt_7b();
        let std = GraphParams::prefill(2, 2048, 1, Precision::Fp16);
        let fla = std.with_flash(true);
        let std_ops = layer_forward_ops(&m, &std);
        let fla_ops = layer_forward_ops(&m, &fla);
        assert!(std_ops.iter().any(|o| o.role == OpRole::AttnScores));
        assert!(!fla_ops.iter().any(|o| o.role == OpRole::AttnScores));
        assert!(!fla_ops.iter().any(|o| o.role == OpRole::Softmax));
        assert_eq!(
            fla_ops
                .iter()
                .filter(|o| o.role == OpRole::FlashAttention)
                .count(),
            1
        );
    }

    #[test]
    fn flash_preserves_attention_gemm_flops() {
        let m = presets::gpt_7b();
        let p = GraphParams::prefill(1, 4096, 1, Precision::Fp16);
        let std_attn: f64 = layer_forward_ops(&m, &p)
            .iter()
            .filter(|o| matches!(o.role, OpRole::AttnScores | OpRole::AttnOverValues))
            .map(|o| o.flops().get())
            .sum();
        let flash_flops = layer_forward_ops(&m, &p.with_flash(true))
            .iter()
            .find(|o| o.role == OpRole::FlashAttention)
            .unwrap()
            .flops()
            .get();
        // Flash adds the online-softmax arithmetic on top of the two GEMMs.
        assert!(flash_flops > std_attn);
        assert!(flash_flops < std_attn * 1.2);
    }

    #[test]
    fn decode_ignores_flash_flag() {
        // Flash kernels target prefill/training; single-token decode keeps
        // the standard path even when requested.
        let m = presets::llama2_7b();
        let p = GraphParams::decode(1, 512, 1, Precision::Fp16).with_flash(true);
        let ops = layer_forward_ops(&m, &p);
        assert!(ops.iter().any(|o| o.role == OpRole::AttnScores));
        assert!(!ops.iter().any(|o| o.role == OpRole::FlashAttention));
    }

    #[test]
    fn flash_backward_costs_more_than_forward() {
        let m = presets::gpt_7b();
        let p = GraphParams::prefill(1, 2048, 1, Precision::Fp16).with_flash(true);
        let fwd = layer_forward_ops(&m, &p);
        let bwd = layer_backward_ops(&m, &p);
        let flash_flops = |ops: &[Op]| -> f64 {
            ops.iter()
                .filter(|o| o.role == OpRole::FlashAttention)
                .map(|o| o.flops().get())
                .sum()
        };
        assert!(flash_flops(&bwd) > 2.0 * flash_flops(&fwd));
    }

    #[test]
    fn head_ops_shard_vocab() {
        let m = presets::gpt_175b();
        let p = GraphParams::prefill(1, 2048, 8, Precision::Fp16);
        let ops = head_ops(&m, &p);
        let lm = ops
            .iter()
            .find(|o| o.role == OpRole::LmHead)
            .and_then(Op::as_gemm)
            .unwrap();
        assert_eq!(lm.shape.n, 6400, "51200 / 8");
    }
}
