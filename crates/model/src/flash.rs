//! FlashAttention kernel description.
//!
//! FlashAttention (§1.1 of the paper) restructures attention so the
//! `s × s` score/probability matrices never touch DRAM: K/V tiles stream
//! through on-chip memory while softmax is computed incrementally,
//! trading extra FLOPs (online rescaling, backward recomputation) for an
//! `O(s²)`-to-`O(s)` reduction in off-chip traffic. This module describes
//! that fused kernel analytically so the roofline engine can cost it via
//! [`RooflineModel::custom_kernel`].
//!
//! [`RooflineModel::custom_kernel`]: optimus_roofline::RooflineModel::custom_kernel

use optimus_hw::MemoryLevelKind;
use optimus_units::{Bytes, FlopCount};
use serde::{Deserialize, Serialize};

/// Query-block rows processed per streaming pass (the `B_r` tile of the
/// FlashAttention schedule); sets how often K/V re-stream through L2.
const Q_BLOCK_ROWS: f64 = 128.0;

/// One fused attention kernel over a batch of independent (sample,
/// kv-group) instances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashAttentionOp {
    /// Independent instances: `batch × kv_groups_per_rank`.
    pub batch: usize,
    /// Query rows per instance (`(heads/groups) · seq`).
    pub q_rows: usize,
    /// Keys/values attended over.
    pub kv_len: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Element width in bytes.
    pub bytes_per_elem: f64,
    /// Work multiplier: 1.0 for the forward kernel; ~2.5 for the backward
    /// kernel (dQ/dK/dV plus the internal recomputation of the scores).
    pub passes: f64,
}

impl FlashAttentionOp {
    /// Creates a forward kernel.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn forward(
        batch: usize,
        q_rows: usize,
        kv_len: usize,
        head_dim: usize,
        bytes_per_elem: f64,
    ) -> Self {
        assert!(
            batch > 0 && q_rows > 0 && kv_len > 0 && head_dim > 0,
            "degenerate attention shape"
        );
        assert!(bytes_per_elem > 0.0, "element width must be positive");
        Self {
            batch,
            q_rows,
            kv_len,
            head_dim,
            bytes_per_elem,
            passes: 1.0,
        }
    }

    /// The backward kernel of this forward kernel.
    #[must_use]
    pub fn backward(&self) -> Self {
        Self {
            passes: 2.5,
            ..*self
        }
    }

    /// Arithmetic work: the two GEMM halves (`Q·Kᵀ` and `P·V`) plus the
    /// online-softmax arithmetic, times the pass multiplier.
    #[must_use]
    pub fn flops(&self) -> FlopCount {
        let b = self.batch as f64;
        let q = self.q_rows as f64;
        let kv = self.kv_len as f64;
        let d = self.head_dim as f64;
        let gemms = 2.0 * 2.0 * q * kv * d; // scores + context
        let softmax = 10.0 * q * kv; // online max/sum/rescale
        FlopCount::new(self.passes * b * (gemms + softmax))
    }

    /// Off-chip traffic: Q and O cross DRAM once, K and V once — **no**
    /// `s × s` intermediate (the whole point of the kernel). Backward
    /// passes re-read the forward tensors and write the three gradients.
    #[must_use]
    pub fn dram_traffic(&self) -> Bytes {
        let b = self.batch as f64;
        let q_io = 2.0 * self.q_rows as f64 * self.head_dim as f64; // Q read + O write
        let kv_io = 2.0 * self.kv_len as f64 * self.head_dim as f64; // K + V read
        Bytes::new(self.passes * b * (q_io + kv_io) * self.bytes_per_elem)
    }

    /// On-chip (L2 → SM) traffic: K/V re-stream once per query block.
    #[must_use]
    pub fn l2_traffic(&self) -> Bytes {
        let b = self.batch as f64;
        let q_blocks = (self.q_rows as f64 / Q_BLOCK_ROWS).ceil();
        let kv_stream = 2.0 * self.kv_len as f64 * self.head_dim as f64;
        Bytes::new(self.passes * b * q_blocks * kv_stream * self.bytes_per_elem)
    }

    /// The `(level, volume)` pairs consumed by
    /// [`optimus_roofline::RooflineModel::custom_kernel`].
    #[must_use]
    pub fn traffic(&self) -> Vec<(MemoryLevelKind, Bytes)> {
        vec![
            (MemoryLevelKind::L2, self.l2_traffic()),
            (MemoryLevelKind::Dram, self.dram_traffic()),
        ]
    }
}

impl core::fmt::Display for FlashAttentionOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "flash-attention {}x[{}x{}x{}]",
            self.batch, self.q_rows, self.kv_len, self.head_dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> FlashAttentionOp {
        // GPT-2-ish: 12 heads of 64, seq 2048.
        FlashAttentionOp::forward(12, 2048, 2048, 64, 2.0)
    }

    #[test]
    fn flops_match_two_gemms_plus_softmax() {
        let f = op().flops().get();
        let gemms = 12.0 * 4.0 * 2048.0 * 2048.0 * 64.0;
        let softmax = 12.0 * 10.0 * 2048.0 * 2048.0;
        assert!((f - gemms - softmax).abs() < 1.0);
    }

    #[test]
    fn dram_traffic_is_linear_in_seq() {
        // Standard attention materializes s² probabilities; flash is O(s).
        let short = FlashAttentionOp::forward(12, 1024, 1024, 64, 2.0).dram_traffic();
        let long = FlashAttentionOp::forward(12, 4096, 4096, 64, 2.0).dram_traffic();
        assert!((long.bytes() / short.bytes() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn backward_costs_more() {
        let fwd = op();
        let bwd = fwd.backward();
        assert!(bwd.flops() > fwd.flops() * 2.0);
        assert!(bwd.dram_traffic() > fwd.dram_traffic() * 2.0);
    }

    #[test]
    fn l2_restreams_kv_per_query_block() {
        let o = op();
        let blocks = (2048.0f64 / 128.0).ceil();
        let expected = 12.0 * blocks * 2.0 * 2048.0 * 64.0 * 2.0;
        assert!((o.l2_traffic().bytes() - expected).abs() < 1.0);
    }
}
