//! Typed operators of the transformer task graph.

use crate::FlashAttentionOp;
use optimus_roofline::{BatchedGemm, EltwiseOp, GemmShape};
use optimus_units::FlopCount;
use serde::{Deserialize, Serialize};

/// The role an operator plays inside a transformer layer (or in the
/// embedding/head stages around the stack).
///
/// Roles — not shapes — are what the paper's per-GEMM analyses key on:
/// Table 4 reports times and bound types for `QkvProjection`, `AttnScores`,
/// `AttnOverValues`, `OutputProjection`, `MlpUp`, and `MlpDown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpRole {
    /// Pre-attention normalization.
    InputNorm,
    /// Merged Q/K/V projection (`X·W_{K/Q/V}`).
    QkvProjection,
    /// Rotary position embedding applied to Q and K.
    Rope,
    /// Per-head attention scores (`Q·Kᵀ`).
    AttnScores,
    /// Fused FlashAttention kernel (replaces scores/softmax/dropout/
    /// context when the flash implementation is selected).
    FlashAttention,
    /// Softmax over attention scores.
    Softmax,
    /// Dropout on attention probabilities.
    AttnDropout,
    /// Per-head context gather (`softmax(R)·V`).
    AttnOverValues,
    /// Attention output projection (`Z·W`).
    OutputProjection,
    /// Dropout after the attention block.
    PostAttnDropout,
    /// First residual addition.
    ResidualAdd1,
    /// Pre-MLP normalization.
    PostAttnNorm,
    /// MLP up projection (`O·W_MLP1`).
    MlpUp,
    /// MLP gate projection (SwiGLU models only).
    MlpGate,
    /// MLP non-linearity (GELU or SiLU-gate).
    MlpActivation,
    /// MLP down projection (`O1·W_MLP2`).
    MlpDown,
    /// Dropout after the MLP block.
    MlpDropout,
    /// Second residual addition.
    ResidualAdd2,
    /// Token (+ position) embedding lookup.
    Embedding,
    /// Final normalization after the stack.
    FinalNorm,
    /// Language-model head projection onto the vocabulary.
    LmHead,
    /// Output softmax / cross-entropy.
    OutputSoftmax,
}

impl OpRole {
    /// `true` for the six GEMM roles of the paper's Table 4.
    #[must_use]
    pub fn is_layer_gemm(self) -> bool {
        matches!(
            self,
            Self::QkvProjection
                | Self::AttnScores
                | Self::AttnOverValues
                | Self::OutputProjection
                | Self::MlpUp
                | Self::MlpGate
                | Self::MlpDown
        )
    }

    /// `true` for the attention-core roles recomputed under *selective*
    /// recomputation (Eq. 2's softmax/dropout region).
    #[must_use]
    pub fn is_selective_recompute(self) -> bool {
        matches!(
            self,
            Self::AttnScores | Self::Softmax | Self::AttnDropout | Self::AttnOverValues
        )
    }
}

impl core::fmt::Display for OpRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::InputNorm => "input-norm",
            Self::QkvProjection => "qkv-projection",
            Self::Rope => "rope",
            Self::AttnScores => "attn-scores",
            Self::FlashAttention => "flash-attention",
            Self::Softmax => "softmax",
            Self::AttnDropout => "attn-dropout",
            Self::AttnOverValues => "attn-over-values",
            Self::OutputProjection => "output-projection",
            Self::PostAttnDropout => "post-attn-dropout",
            Self::ResidualAdd1 => "residual-add-1",
            Self::PostAttnNorm => "post-attn-norm",
            Self::MlpUp => "mlp-up",
            Self::MlpGate => "mlp-gate",
            Self::MlpActivation => "mlp-activation",
            Self::MlpDown => "mlp-down",
            Self::MlpDropout => "mlp-dropout",
            Self::ResidualAdd2 => "residual-add-2",
            Self::Embedding => "embedding",
            Self::FinalNorm => "final-norm",
            Self::LmHead => "lm-head",
            Self::OutputSoftmax => "output-softmax",
        };
        f.write_str(s)
    }
}

/// The computational payload of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// A (batched) matrix multiplication.
    Gemm(BatchedGemm),
    /// A streaming normalization / element-wise kernel.
    Eltwise(EltwiseOp),
    /// A fused FlashAttention kernel.
    Flash(FlashAttentionOp),
}

/// One operator of the per-device task graph: a role plus its payload,
/// already sharded for tensor parallelism by the graph builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// What this operator is.
    pub role: OpRole,
    /// Its computational payload.
    pub kind: OpKind,
}

impl Op {
    /// Creates a GEMM operator.
    #[must_use]
    pub fn gemm(role: OpRole, batch: usize, m: usize, n: usize, k: usize) -> Self {
        Self {
            role,
            kind: OpKind::Gemm(BatchedGemm::new(batch, GemmShape::new(m, n, k))),
        }
    }

    /// Creates a streaming operator.
    #[must_use]
    pub fn eltwise(role: OpRole, op: EltwiseOp) -> Self {
        Self {
            role,
            kind: OpKind::Eltwise(op),
        }
    }

    /// Creates a fused FlashAttention operator.
    #[must_use]
    pub fn flash(op: FlashAttentionOp) -> Self {
        Self {
            role: OpRole::FlashAttention,
            kind: OpKind::Flash(op),
        }
    }

    /// Floating-point work of the operator.
    #[must_use]
    pub fn flops(&self) -> FlopCount {
        match self.kind {
            OpKind::Gemm(g) => g.flops(),
            OpKind::Eltwise(e) => e.flops(),
            OpKind::Flash(f) => f.flops(),
        }
    }

    /// The GEMM payload, if this is a GEMM.
    #[must_use]
    pub fn as_gemm(&self) -> Option<BatchedGemm> {
        match self.kind {
            OpKind::Gemm(g) => Some(g),
            OpKind::Eltwise(_) | OpKind::Flash(_) => None,
        }
    }
}

impl core::fmt::Display for Op {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            OpKind::Gemm(g) => write!(f, "{} [{}]", self.role, g),
            OpKind::Eltwise(e) => write!(f, "{} [{} x{:.0}]", self.role, e.kind, e.elements),
            OpKind::Flash(op) => write!(f, "{op}"),
        }
    }
}

/// Total floating-point work of an operator list.
#[must_use]
pub fn total_flops(ops: &[Op]) -> FlopCount {
    ops.iter().map(Op::flops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_roofline::EltwiseKind;

    #[test]
    fn gemm_op_flops() {
        let op = Op::gemm(OpRole::QkvProjection, 1, 128, 384, 128);
        assert!((op.flops().get() - 2.0 * 128.0 * 384.0 * 128.0).abs() < 1.0);
        assert!(op.as_gemm().is_some());
    }

    #[test]
    fn selective_recompute_roles() {
        assert!(OpRole::Softmax.is_selective_recompute());
        assert!(OpRole::AttnScores.is_selective_recompute());
        assert!(!OpRole::MlpUp.is_selective_recompute());
    }

    #[test]
    fn eltwise_op_has_no_gemm() {
        let op = Op::eltwise(
            OpRole::Softmax,
            EltwiseOp::new(EltwiseKind::Softmax, 1000.0, 2.0),
        );
        assert!(op.as_gemm().is_none());
    }
}
