//! Decoder-transformer architecture descriptions.

use serde::{Deserialize, Serialize};

/// The attention organization of a transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttentionKind {
    /// Classic multi-head attention: every query head has its own K/V head.
    MultiHead,
    /// Grouped-query attention: `kv_heads` K/V heads shared by groups of
    /// query heads (Llama-2 70B uses 8).
    GroupedQuery {
        /// Number of key/value heads.
        kv_heads: usize,
    },
    /// Multi-query attention: a single K/V head.
    MultiQuery,
}

/// The MLP (feed-forward) block style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MlpKind {
    /// GPT-style two-matrix FFN with GELU: `h → f → h`.
    Gelu,
    /// Llama-style gated FFN with SiLU: three matrices (gate, up, down).
    SwiGlu,
}

/// The normalization layer style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NormKind {
    /// LayerNorm with weight and bias (GPT).
    LayerNorm,
    /// RMSNorm with weight only (Llama).
    RmsNorm,
}

/// A decoder-only transformer architecture.
///
/// Construct via [`ModelConfig::builder`] or one of the presets in
/// [`crate::presets`]. The derived quantities ([`ModelConfig::param_count`],
/// [`ModelConfig::kv_hidden`], the operator graphs in [`crate::graph`])
/// drive every estimator in the suite.
///
/// ```
/// use optimus_model::presets;
/// let gpt3 = presets::gpt_175b();
/// let billions = gpt3.param_count() / 1e9;
/// assert!((173.0..177.0).contains(&billions));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name (e.g. `"GPT-175B"`).
    pub name: String,
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden (embedding) dimension `h`.
    pub hidden: usize,
    /// Number of attention (query) heads `a`.
    pub heads: usize,
    /// Attention organization.
    pub attention: AttentionKind,
    /// MLP style.
    pub mlp: MlpKind,
    /// FFN intermediate dimension `f`.
    pub ffn: usize,
    /// Vocabulary size `V`.
    pub vocab: usize,
    /// Maximum (trained) sequence length.
    pub max_seq: usize,
    /// Normalization style.
    pub norm: NormKind,
    /// Whether dropout layers are present (training-era GPT models).
    pub dropout: bool,
    /// Whether input embedding and LM head share weights.
    pub tied_embeddings: bool,
    /// Whether a learned absolute position embedding exists (GPT) as
    /// opposed to rotary embeddings applied in attention (Llama).
    pub learned_pos_embedding: bool,
}

impl ModelConfig {
    /// Starts building a model; see [`ModelConfigBuilder`].
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ModelConfigBuilder {
        ModelConfigBuilder::new(name)
    }

    /// Dimension of one attention head.
    ///
    /// # Panics
    ///
    /// The builder guarantees `hidden % heads == 0`.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Number of key/value heads.
    #[must_use]
    pub fn kv_heads(&self) -> usize {
        match self.attention {
            AttentionKind::MultiHead => self.heads,
            AttentionKind::GroupedQuery { kv_heads } => kv_heads,
            AttentionKind::MultiQuery => 1,
        }
    }

    /// Width of the K (or V) projection output: `kv_heads · head_dim`.
    /// This is the per-token, per-layer row width of the KV-cache.
    #[must_use]
    pub fn kv_hidden(&self) -> usize {
        self.kv_heads() * self.head_dim()
    }

    /// Whether biases exist on the linear layers (GPT yes, Llama no —
    /// approximated by the norm style).
    #[must_use]
    pub fn has_biases(&self) -> bool {
        self.norm == NormKind::LayerNorm
    }

    /// Parameter count of one transformer layer.
    #[must_use]
    pub fn layer_param_count(&self) -> f64 {
        let h = self.hidden as f64;
        let f = self.ffn as f64;
        let kvh = self.kv_hidden() as f64;

        // Attention: Q (h×h), K and V (h×kv_hidden each), output (h×h).
        let attn = h * h + 2.0 * h * kvh + h * h;
        // MLP.
        let mlp = match self.mlp {
            MlpKind::Gelu => 2.0 * h * f,
            MlpKind::SwiGlu => 3.0 * h * f,
        };
        // Two norms per layer.
        let norm_width = match self.norm {
            NormKind::LayerNorm => 2.0 * h,
            NormKind::RmsNorm => h,
        };
        let biases = if self.has_biases() {
            // QKV outputs, attention output, MLP intermediate + output.
            (h + 2.0 * kvh) + h + (f + h)
        } else {
            0.0
        };
        attn + mlp + 2.0 * norm_width + biases
    }

    /// Parameters outside the transformer stack: embeddings, learned
    /// position table, final norm, and the LM head when untied.
    #[must_use]
    pub fn embedding_param_count(&self) -> f64 {
        let h = self.hidden as f64;
        let mut p = self.vocab as f64 * h;
        if self.learned_pos_embedding {
            p += self.max_seq as f64 * h;
        }
        if !self.tied_embeddings {
            p += self.vocab as f64 * h;
        }
        p += match self.norm {
            NormKind::LayerNorm => 2.0 * h,
            NormKind::RmsNorm => h,
        };
        p
    }

    /// Total parameter count.
    #[must_use]
    pub fn param_count(&self) -> f64 {
        self.layers as f64 * self.layer_param_count() + self.embedding_param_count()
    }
}

impl core::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} (L={}, h={}, a={}, {:.1}B params)",
            self.name,
            self.layers,
            self.hidden,
            self.heads,
            self.param_count() / 1e9
        )
    }
}

/// Builder for [`ModelConfig`]; defaults describe a GPT-style model
/// (GELU FFN of `4h`, LayerNorm, dropout, tied embeddings, learned
/// positions, vocab 51200, sequence 2048).
#[derive(Debug, Clone)]
pub struct ModelConfigBuilder {
    name: String,
    layers: usize,
    hidden: usize,
    heads: usize,
    attention: AttentionKind,
    mlp: MlpKind,
    ffn: Option<usize>,
    vocab: usize,
    max_seq: usize,
    norm: NormKind,
    dropout: bool,
    tied_embeddings: bool,
    learned_pos_embedding: bool,
}

impl ModelConfigBuilder {
    /// Creates a builder with GPT-style defaults and placeholder dimensions.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: 12,
            hidden: 768,
            heads: 12,
            attention: AttentionKind::MultiHead,
            mlp: MlpKind::Gelu,
            ffn: None,
            vocab: 51_200,
            max_seq: 2048,
            norm: NormKind::LayerNorm,
            dropout: true,
            tied_embeddings: true,
            learned_pos_embedding: true,
        }
    }

    /// Sets layers, hidden dimension, and head count in one call.
    #[must_use]
    pub fn dims(mut self, layers: usize, hidden: usize, heads: usize) -> Self {
        self.layers = layers;
        self.hidden = hidden;
        self.heads = heads;
        self
    }

    /// Sets the attention organization.
    #[must_use]
    pub fn attention(mut self, attention: AttentionKind) -> Self {
        self.attention = attention;
        self
    }

    /// Sets the MLP style.
    #[must_use]
    pub fn mlp(mut self, mlp: MlpKind) -> Self {
        self.mlp = mlp;
        self
    }

    /// Sets the FFN intermediate dimension (defaults to `4·hidden`).
    #[must_use]
    pub fn ffn(mut self, ffn: usize) -> Self {
        self.ffn = Some(ffn);
        self
    }

    /// Sets the vocabulary size.
    #[must_use]
    pub fn vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Sets the maximum sequence length.
    #[must_use]
    pub fn max_seq(mut self, max_seq: usize) -> Self {
        self.max_seq = max_seq;
        self
    }

    /// Sets the normalization style.
    #[must_use]
    pub fn norm(mut self, norm: NormKind) -> Self {
        self.norm = norm;
        self
    }

    /// Enables or disables dropout layers.
    #[must_use]
    pub fn dropout(mut self, dropout: bool) -> Self {
        self.dropout = dropout;
        self
    }

    /// Switches to the Llama family conventions: SwiGLU MLP, RMSNorm,
    /// rotary positions, untied embeddings, no dropout, vocab 32000.
    #[must_use]
    pub fn llama_style(mut self) -> Self {
        self.mlp = MlpKind::SwiGlu;
        self.norm = NormKind::RmsNorm;
        self.dropout = false;
        self.tied_embeddings = false;
        self.learned_pos_embedding = false;
        self.vocab = 32_000;
        self.max_seq = 4096;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `hidden` is not divisible by
    /// `heads`, or a grouped-query configuration does not divide the head
    /// count.
    #[must_use]
    pub fn build(self) -> ModelConfig {
        assert!(
            self.layers > 0 && self.hidden > 0 && self.heads > 0 && self.vocab > 0,
            "model dimensions must be positive"
        );
        assert!(
            self.hidden.is_multiple_of(self.heads),
            "hidden ({}) must be divisible by heads ({})",
            self.hidden,
            self.heads
        );
        if let AttentionKind::GroupedQuery { kv_heads } = self.attention {
            assert!(
                kv_heads > 0 && self.heads.is_multiple_of(kv_heads),
                "query heads ({}) must be divisible by kv heads ({kv_heads})",
                self.heads
            );
        }
        let ffn = self.ffn.unwrap_or(4 * self.hidden);
        ModelConfig {
            name: self.name,
            layers: self.layers,
            hidden: self.hidden,
            heads: self.heads,
            attention: self.attention,
            mlp: self.mlp,
            ffn,
            vocab: self.vocab,
            max_seq: self.max_seq,
            norm: self.norm,
            dropout: self.dropout,
            tied_embeddings: self.tied_embeddings,
            learned_pos_embedding: self.learned_pos_embedding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_style_defaults() {
        let m = ModelConfig::builder("test").dims(24, 2048, 16).build();
        assert_eq!(m.ffn, 8192, "FFN defaults to 4h");
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.kv_heads(), 16, "MHA: kv heads == heads");
        assert!(m.dropout && m.tied_embeddings);
    }

    #[test]
    fn gqa_kv_hidden() {
        let m = ModelConfig::builder("gqa")
            .dims(80, 8192, 64)
            .attention(AttentionKind::GroupedQuery { kv_heads: 8 })
            .build();
        assert_eq!(m.kv_hidden(), 8 * 128);
    }

    #[test]
    fn llama_style_flips_conventions() {
        let m = ModelConfig::builder("llama")
            .dims(32, 4096, 32)
            .llama_style()
            .ffn(11008)
            .build();
        assert_eq!(m.mlp, MlpKind::SwiGlu);
        assert_eq!(m.norm, NormKind::RmsNorm);
        assert!(!m.dropout && !m.tied_embeddings && !m.learned_pos_embedding);
        assert!(!m.has_biases());
    }

    #[test]
    #[should_panic(expected = "divisible by heads")]
    fn indivisible_heads_rejected() {
        let _ = ModelConfig::builder("bad").dims(2, 100, 3).build();
    }

    #[test]
    #[should_panic(expected = "divisible by kv heads")]
    fn bad_gqa_rejected() {
        let _ = ModelConfig::builder("bad")
            .dims(2, 128, 8)
            .attention(AttentionKind::GroupedQuery { kv_heads: 3 })
            .build();
    }
}
