//! Property tests of the Young–Daly checkpoint/restart model:
//!
//! * **optimality** — the auto-selected interval `τ* = √(2δM)` is a
//!   minimum of the waste fraction over a multiplicative grid around it
//!   (the first-order model makes `τ*` the exact global minimizer, so
//!   every grid point loses);
//! * **monotonicity** — effective goodput never decreases when the
//!   per-GPU MTBF improves, and never increases when the restart cost
//!   grows;
//! * **auto beats fixed** — pinning any checkpoint interval can only
//!   match or lose to the Young–Daly choice;
//! * **byte-identity** — estimating under [`CheckpointSpec::none`]
//!   serializes to exactly the JSON of a spec-free estimate: reports
//!   without a failure axis look as they did before resilience modeling
//!   existed.

use optimus_hw::presets;
use optimus_memory::{training_memory, RecomputeMode, TrainingMemorySpec};
use optimus_model::presets as models;
use optimus_parallel::{Parallelism, PipelineSchedule};
use optimus_train::{
    waste_fraction, young_daly_interval, CheckpointSpec, TrainingConfig, TrainingEstimator,
};
use optimus_units::Time;
use proptest::prelude::*;

/// The per-device footprint of the worked strategy (llama2-13b, DP8 ×
/// TP8 + SP on 64 GPUs) — a fixed, feasible anchor for the evaluate()
/// properties.
fn anchor_memory() -> optimus_memory::TrainingMemoryReport {
    training_memory(
        &models::llama2_13b(),
        &TrainingMemorySpec {
            batch: 64,
            seq: 2048,
            parallelism: Parallelism::new(8, 8, 1).with_sp(true),
            schedule: PipelineSchedule::OneFOneB,
            precision: optimus_hw::Precision::Fp16,
            recompute: RecomputeMode::Selective,
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `τ*` beats every point of a multiplicative grid around it.
    #[test]
    fn young_daly_interval_is_a_grid_local_optimum(
        delta in 0.5f64..5_000.0,
        mtbf in 60.0f64..1e8,
        restart in 0.0f64..10_000.0,
    ) {
        let tau_star = young_daly_interval(delta, mtbf);
        let w_star = waste_fraction(tau_star, delta, restart, mtbf);
        for mult in [0.25, 0.5, 0.8, 0.95, 1.05, 1.25, 2.0, 4.0] {
            let w = waste_fraction(tau_star * mult, delta, restart, mtbf);
            prop_assert!(
                w_star <= w + 1e-12,
                "waste({}×τ*) = {w} undercuts waste(τ*) = {w_star}",
                mult
            );
        }
    }

    /// A better per-GPU MTBF can only improve goodput, and a costlier
    /// restart can only hurt it.
    #[test]
    fn goodput_is_monotone_in_mtbf_and_restart(
        mtbf_lo in 1e5f64..1e9,
        mtbf_gain in 1.01f64..100.0,
        restart_lo in 0.0f64..5_000.0,
        restart_gain in 1.01f64..10.0,
    ) {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = anchor_memory();
        let t = Time::from_secs(10.0);
        let at = |mtbf_s: f64, restart_s: f64| {
            CheckpointSpec::with_mtbf(mtbf_s)
                .with_restart(restart_s)
                .evaluate(&cluster, &memory, 64, t)
                .expect("active spec evaluates")
                .goodput
        };
        let base = at(mtbf_lo, restart_lo);
        prop_assert!(base > 0.0 && base <= 1.0);
        prop_assert!(
            at(mtbf_lo * mtbf_gain, restart_lo) >= base - 1e-12,
            "longer MTBF must not lose goodput"
        );
        prop_assert!(
            at(mtbf_lo, restart_lo.max(1.0) * restart_gain) <= base + 1e-12,
            "costlier restarts must not gain goodput"
        );
    }

    /// Fixing the interval anywhere can only match or lose to Young–Daly.
    #[test]
    fn auto_interval_dominates_any_fixed_interval(
        mtbf in 1e5f64..1e9,
        interval in 1.0f64..1e6,
    ) {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = anchor_memory();
        let t = Time::from_secs(10.0);
        let auto = CheckpointSpec::with_mtbf(mtbf)
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        let fixed = CheckpointSpec::with_mtbf(mtbf)
            .with_interval(interval)
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        prop_assert!(auto.auto_interval && !fixed.auto_interval);
        prop_assert!(
            auto.goodput >= fixed.goodput - 1e-12,
            "auto {} < fixed {} at interval {}",
            auto.goodput,
            fixed.goodput,
            interval
        );
    }
}

/// A spec-free estimate and a [`CheckpointSpec::none`] estimate are the
/// same report, byte for byte, with no resilience key at all.
#[test]
fn none_spec_keeps_the_report_json_byte_identical() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let cfg = TrainingConfig::new(
        models::llama2_13b(),
        64,
        2048,
        Parallelism::new(8, 8, 1).with_sp(true),
    );
    let plain = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
    let with_none = TrainingEstimator::new(&cluster)
        .with_checkpoint(CheckpointSpec::none())
        .estimate(&cfg)
        .unwrap();
    let a = serde_json::to_string_pretty(&plain).unwrap();
    let b = serde_json::to_string_pretty(&with_none).unwrap();
    assert_eq!(a, b, "CheckpointSpec::none() must be invisible");
    assert!(
        !a.contains("resilience"),
        "a failure-free report must not carry a resilience key"
    );
    assert!(plain.resilience.is_none() && with_none.resilience.is_none());
}

/// An active spec populates the resilience section and inflates the
/// expected batch time, leaving the failure-free figures untouched.
#[test]
fn active_spec_extends_rather_than_perturbs_the_report() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let cfg = TrainingConfig::new(
        models::llama2_13b(),
        64,
        2048,
        Parallelism::new(8, 8, 1).with_sp(true),
    );
    let plain = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
    let resilient = TrainingEstimator::new(&cluster)
        .with_checkpoint(CheckpointSpec::with_mtbf(1e8).with_restart(300.0))
        .estimate(&cfg)
        .unwrap();
    assert_eq!(
        plain.time_per_batch, resilient.time_per_batch,
        "the failure-free batch time is spec-independent"
    );
    let r = resilient.resilience.expect("active spec populates");
    assert!(r.goodput > 0.0 && r.goodput < 1.0);
    assert!(r.expected_time_per_batch > resilient.time_per_batch);
}
