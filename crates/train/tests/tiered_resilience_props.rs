//! Property tests of the composable resilience stack:
//!
//! * **tiers never hurt** — layering peer/delta tiers on a spec at the
//!   same persistent interval can only match or lower the expected
//!   waste (the evaluator keeps a tier only when it pays for itself);
//! * **Weibull `k = 1` is exponential, bit-exact** — the shape-1 Weibull
//!   routes through the exponential closed form, so every priced figure
//!   agrees to the last bit;
//! * **elastic never loses to restart** — whenever continuing degraded
//!   is priced, the chosen goodput is at least the full-restart goodput
//!   (the per-class pricing clamps at the restart cost), strictly so
//!   for cheap re-warm and expensive restarts;
//! * **spec byte-compat** — a basic `--mtbf`/`--restart` spec (and
//!   [`CheckpointSpec::none`]) serializes exactly as it did before the
//!   stack existed: none of the new keys appear and no value is null.

use optimus_collective::CommModel;
use optimus_hw::{presets, FailureProcess};
use optimus_memory::{training_memory, RecomputeMode, TrainingMemorySpec};
use optimus_model::presets as models;
use optimus_parallel::{Parallelism, PipelineSchedule};
use optimus_train::{
    CheckpointSpec, CheckpointTier, ResilienceReport, StackContext, TrainingConfig,
    TrainingEstimator,
};
use optimus_units::Time;
use proptest::prelude::*;

/// The worked strategy anchor: llama2-13b, DP8 × TP8 + SP on 64 GPUs.
fn anchor_memory() -> optimus_memory::TrainingMemoryReport {
    training_memory(
        &models::llama2_13b(),
        &TrainingMemorySpec {
            batch: 64,
            seq: 2048,
            parallelism: Parallelism::new(8, 8, 1).with_sp(true),
            schedule: PipelineSchedule::OneFOneB,
            precision: optimus_hw::Precision::Fp16,
            recompute: RecomputeMode::Selective,
        },
    )
    .unwrap()
}

/// Prices `spec` on the anchor strategy with full parallelism context,
/// so peer tiers and elastic shrinking both apply. The reprice closure
/// models a shrunken DP group keeping its per-replica time (the batch
/// shrinks proportionally) with a small re-balance penalty.
fn evaluate(
    spec: &CheckpointSpec,
    memory: &optimus_memory::TrainingMemoryReport,
) -> ResilienceReport {
    let cluster = presets::dgx_a100_hdr_cluster();
    let t = Time::from_secs(10.0);
    spec.evaluate_stack(
        &StackContext {
            cluster: &cluster,
            memory,
            gpus: 64,
            parallelism: Some(Parallelism::new(8, 8, 1).with_sp(true)),
            comm: CommModel::Auto,
            time_per_batch: t,
        },
        &|_| Some(Time::from_secs(10.1)),
    )
    .expect("active spec evaluates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding peer and delta tiers at the same persistent interval can
    /// only match or lower the expected waste.
    #[test]
    fn tiers_never_raise_the_waste(
        mtbf in 1e4f64..1e9,
        restart in 0.0f64..5_000.0,
        interval in prop_oneof![Just(None), (60.0f64..1e5).prop_map(Some)],
        shape in prop_oneof![Just(1.0f64), Just(0.7), Just(1.5)],
    ) {
        let memory = anchor_memory();
        let mut base = CheckpointSpec::with_mtbf(mtbf)
            .with_restart(restart)
            .with_process(FailureProcess::Weibull { shape });
        if let Some(s) = interval {
            base = base.with_interval(s);
        }
        let single = evaluate(&base, &memory);
        let tiered = evaluate(
            &base.clone().with_tiers(vec![CheckpointTier::peer(), CheckpointTier::delta()]),
            &memory,
        );
        prop_assert!(
            tiered.waste() <= single.waste() + 1e-12,
            "tiered waste {} exceeds single-tier waste {}",
            tiered.waste(),
            single.waste()
        );
        prop_assert!(tiered.goodput >= single.goodput - 1e-12);
    }

    /// A shape-1 Weibull process is the exponential process, bit for bit.
    #[test]
    fn weibull_shape_one_is_exponential_bit_exact(
        mtbf in 1e4f64..1e9,
        restart in 0.0f64..5_000.0,
        tiered in prop_oneof![Just(false), Just(true)],
    ) {
        let memory = anchor_memory();
        let mut exp = CheckpointSpec::with_mtbf(mtbf).with_restart(restart);
        if tiered {
            exp = exp.with_tiers(vec![CheckpointTier::peer(), CheckpointTier::delta()]);
        }
        let weibull = exp.clone().with_process(FailureProcess::Weibull { shape: 1.0 });
        let a = evaluate(&exp, &memory);
        let b = evaluate(&weibull, &memory);
        for (name, x, y) in [
            ("goodput", a.goodput, b.goodput),
            ("interval", a.interval.secs(), b.interval.secs()),
            ("cluster_mtbf", a.cluster_mtbf.secs(), b.cluster_mtbf.secs()),
            ("overhead", a.checkpoint_overhead_frac, b.checkpoint_overhead_frac),
            ("rework", a.rework_frac, b.rework_frac),
            ("waste", a.waste(), b.waste()),
        ] {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{} differs: exponential {} vs weibull(k=1) {}",
                name,
                x,
                y
            );
        }
    }

    /// The chosen goodput under `--elastic` never drops below the
    /// restart goodput: degraded continuation is only taken when it
    /// prices at or under a full restart.
    #[test]
    fn elastic_never_loses_to_restart(
        mtbf in 1e4f64..1e8,
        restart in 1.0f64..5_000.0,
        rewarm_frac in 0.0f64..2.0,
        repair in 0.0f64..20_000.0,
    ) {
        let memory = anchor_memory();
        let spec = CheckpointSpec::with_mtbf(mtbf)
            .with_restart(restart)
            .with_elastic(true)
            .with_rewarm(restart * rewarm_frac)
            .with_repair(repair);
        let report = evaluate(&spec, &memory);
        let elastic = report.elastic.expect("elastic spec reports");
        prop_assert!(elastic.feasible, "dp=8 shrinks feasibly");
        prop_assert!(
            elastic.elastic_goodput >= elastic.restart_goodput - 1e-12,
            "elastic {} under restart {}",
            elastic.elastic_goodput,
            elastic.restart_goodput
        );
        prop_assert!(report.goodput >= elastic.restart_goodput - 1e-12);
    }
}

/// A basic spec (and a stack-free report) serializes exactly as before
/// the stack existed: no new keys, no nulls, and `CheckpointSpec::none`
/// stays invisible.
#[test]
fn basic_specs_keep_their_pre_stack_json() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let cfg = TrainingConfig::new(
        models::llama2_13b(),
        64,
        2048,
        Parallelism::new(8, 8, 1).with_sp(true),
    );
    let plain = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
    let with_none = TrainingEstimator::new(&cluster)
        .with_checkpoint(CheckpointSpec::none())
        .estimate(&cfg)
        .unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&plain).unwrap(),
        serde_json::to_string_pretty(&with_none).unwrap(),
        "CheckpointSpec::none() must be invisible"
    );

    let basic = TrainingEstimator::new(&cluster)
        .with_checkpoint(CheckpointSpec::with_mtbf(5e7).with_restart(300.0))
        .estimate(&cfg)
        .unwrap();
    let json = serde_json::to_string_pretty(&basic).unwrap();
    for new_key in [
        "\"process\"",
        "\"tiers\"",
        "\"elastic\"",
        "\"rewarm_s\"",
        "\"repair_s\"",
        "\"delta_fraction\"",
        "\"overhead_util\"",
        "\"seed\"",
        "\"repair_frac\"",
    ] {
        assert!(
            !json.contains(new_key),
            "a basic spec must not serialize {new_key}:\n{json}"
        );
    }
}

/// `json_safe()` scrubs every non-finite corner of a stacked spec, and
/// the resulting report JSON carries no nulls anywhere but the
/// documented `interval_s: null` (= Young–Daly auto).
#[test]
fn stacked_spec_json_is_null_free_after_json_safe() {
    let memory = anchor_memory();
    let spec = CheckpointSpec::with_mtbf(40_000.0)
        .with_restart(900.0)
        .with_process(FailureProcess::Weibull { shape: 0.7 })
        .with_tiers(vec![
            CheckpointTier::peer().with_interval(f64::INFINITY),
            CheckpointTier::delta(),
        ])
        .with_elastic(true)
        .with_rewarm(f64::NAN)
        .with_repair(f64::INFINITY)
        .with_delta_fraction(0.4)
        .with_overhead_util(f64::NAN)
        .json_safe();
    assert!(spec.validate().is_ok(), "json_safe must leave a valid spec");
    let report = evaluate(&spec, &memory);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let nulls = json.matches("null").count();
    let auto_intervals = json.matches("\"interval_s\": null").count();
    assert_eq!(
        nulls, auto_intervals,
        "only auto intervals may be null:\n{json}"
    );
}
