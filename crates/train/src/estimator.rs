//! The end-to-end training-time estimator.

use crate::{CheckpointSpec, PreparedTrainingEstimator, TrainingConfig, TrainingReport};
use optimus_hw::{ClusterSpec, HwError};
use optimus_parallel::ParallelError;

/// Error produced by a training estimate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// The parallelization is inconsistent with the cluster or workload.
    Parallel(ParallelError),
    /// The device cannot execute the requested precision.
    Hw(HwError),
}

impl core::fmt::Display for TrainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Parallel(e) => write!(f, "parallelization error: {e}"),
            Self::Hw(e) => write!(f, "hardware error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Parallel(e) => Some(e),
            Self::Hw(e) => Some(e),
        }
    }
}

impl From<ParallelError> for TrainError {
    fn from(e: ParallelError) -> Self {
        Self::Parallel(e)
    }
}

impl From<HwError> for TrainError {
    fn from(e: HwError) -> Self {
        Self::Hw(e)
    }
}

/// Predicts the time per batch of a distributed training job on a cluster.
///
/// Composition (paper Fig. 1): the model's per-layer operator graph is
/// sharded by the parallelization mapper, each kernel is costed by the
/// hierarchical roofline, the TP/SP collectives of every layer and
/// microbatch are costed by the α–β model on the intra-node fabric, the
/// pipeline schedule contributes its bubble and point-to-point time, and
/// the batch ends with the DP gradient all-reduce and the optimizer update.
///
/// This type is the convenient one-shot entry point; it delegates to
/// [`PreparedTrainingEstimator`], which carries the actual model and is the
/// right interface when many strategies are evaluated against one
/// (model, cluster, workload) triple — it memoizes per-layer kernel costs
/// across calls instead of re-deriving them.
///
/// ```
/// use optimus_hw::presets;
/// use optimus_memory::RecomputeMode;
/// use optimus_model::presets as models;
/// use optimus_parallel::Parallelism;
/// use optimus_train::{TrainingConfig, TrainingEstimator};
///
/// let cluster = presets::dgx_a100_hdr_cluster();
/// let cfg = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 8, 1))
///     .with_recompute(RecomputeMode::Full { checkpoints_per_stage: None });
/// let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
/// assert!(report.time_per_batch.secs() > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct TrainingEstimator<'a> {
    cluster: &'a ClusterSpec,
    checkpoint: CheckpointSpec,
}

impl<'a> TrainingEstimator<'a> {
    /// Creates an estimator for `cluster`.
    #[must_use]
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        Self {
            cluster,
            checkpoint: CheckpointSpec::none(),
        }
    }

    /// Sets the failure environment estimates are priced under (see
    /// [`PreparedTrainingEstimator::with_checkpoint`]).
    #[must_use]
    pub fn with_checkpoint(mut self, checkpoint: CheckpointSpec) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Predicts the training time per batch and its breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the parallelization does not divide the
    /// workload/cluster or the precision is unsupported by the device.
    pub fn estimate(&self, cfg: &TrainingConfig) -> Result<TrainingReport, TrainError> {
        PreparedTrainingEstimator::from_config(self.cluster, cfg)
            .with_checkpoint(self.checkpoint.clone())
            .estimate(cfg.parallelism, cfg.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_memory::RecomputeMode;
    use optimus_model::presets as models;
    use optimus_parallel::{Parallelism, PipelineSchedule};
    use optimus_units::Time;

    fn a100() -> ClusterSpec {
        presets::dgx_a100_hdr_cluster()
    }

    #[test]
    fn gpt22b_8gpu_close_to_table1() {
        // Table 1 row 1: GPT-22B, 8 GPUs, batch 4, TP=8, full
        // recomputation → 1.4 s reference / 1.4 s paper prediction.
        // (8 GPUs ⇒ PP=1; the source config in Korthikanti et al.)
        let cluster = a100();
        let cfg = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 8, 1))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
        let secs = report.time_per_batch.secs();
        assert!(
            (0.9..2.0).contains(&secs),
            "expected ~1.4 s per batch, got {secs:.2}"
        );
    }

    #[test]
    fn selective_is_faster_than_full() {
        let cluster = a100();
        let base = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 8, 1));
        let full = base.clone().with_recompute(RecomputeMode::Full {
            checkpoints_per_stage: None,
        });
        let sel = TrainingConfig::new(
            models::gpt_22b(),
            4,
            2048,
            Parallelism::new(1, 8, 1).with_sp(true),
        )
        .with_recompute(RecomputeMode::Selective);
        let est = TrainingEstimator::new(&cluster);
        let t_full = est.estimate(&full).unwrap().time_per_batch;
        let t_sel = est.estimate(&sel).unwrap().time_per_batch;
        // Table 1: 1.4 s (full) vs 1.1 s (selective+SP).
        assert!(t_sel < t_full);
        let ratio = t_full / t_sel;
        assert!((1.1..1.55).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn mfu_in_plausible_range() {
        let cluster = a100();
        let cfg = TrainingConfig::new(
            models::gpt_175b(),
            64,
            2048,
            Parallelism::new(1, 8, 8).with_sp(true),
        )
        .with_recompute(RecomputeMode::Selective);
        let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
        assert!(
            (0.3..0.65).contains(&report.mfu),
            "MFU {:.2} outside Megatron-era range",
            report.mfu
        );
    }

    #[test]
    fn interleaving_shrinks_bubble() {
        let cluster = a100();
        let base = TrainingConfig::new(models::gpt_175b(), 64, 2048, Parallelism::new(1, 8, 8))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let plain = TrainingEstimator::new(&cluster).estimate(&base).unwrap();
        let inter = TrainingEstimator::new(&cluster)
            .estimate(&base.clone().with_schedule(PipelineSchedule::interleaved(3)))
            .unwrap();
        assert!(inter.breakdown.bubble < plain.breakdown.bubble);
    }

    #[test]
    fn dp_adds_gradient_allreduce() {
        let cluster = a100();
        let no_dp = TrainingConfig::new(models::gpt_22b(), 8, 2048, Parallelism::new(1, 8, 6))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let dp = TrainingConfig::new(models::gpt_22b(), 16, 2048, Parallelism::new(2, 8, 6))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let est = TrainingEstimator::new(&cluster);
        let r_no = est.estimate(&no_dp).unwrap();
        let r_dp = est.estimate(&dp).unwrap();
        assert_eq!(r_no.breakdown.dp_comm, Time::ZERO);
        assert!(r_dp.breakdown.dp_comm > Time::ZERO);
        // Same per-pipeline work (8 microbatches each), similar busy time.
        let ratio = r_dp.breakdown.compute / r_no.breakdown.compute;
        assert!((ratio - 1.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_tp_errors() {
        let cluster = a100();
        let cfg = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 16, 3));
        assert!(matches!(
            TrainingEstimator::new(&cluster).estimate(&cfg),
            Err(TrainError::Parallel(_))
        ));
    }
}
