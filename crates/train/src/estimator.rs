//! The end-to-end training-time estimator.

use crate::{GemmBoundSplit, TrainingBreakdown, TrainingConfig, TrainingReport};
use optimus_hw::{ClusterSpec, HwError};
use optimus_memory::{training_memory, RecomputeMode, TrainingMemorySpec};
use optimus_model::{graph, GraphParams, Op, OpKind};
use optimus_parallel::{CommPlan, ParallelError};
use optimus_roofline::RooflineModel;
use optimus_units::{Bytes, FlopCount, Time};

/// Error produced by a training estimate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// The parallelization is inconsistent with the cluster or workload.
    Parallel(ParallelError),
    /// The device cannot execute the requested precision.
    Hw(HwError),
}

impl core::fmt::Display for TrainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Parallel(e) => write!(f, "parallelization error: {e}"),
            Self::Hw(e) => write!(f, "hardware error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Parallel(e) => Some(e),
            Self::Hw(e) => Some(e),
        }
    }
}

impl From<ParallelError> for TrainError {
    fn from(e: ParallelError) -> Self {
        Self::Parallel(e)
    }
}

impl From<HwError> for TrainError {
    fn from(e: HwError) -> Self {
        Self::Hw(e)
    }
}

/// Per-operator-list cost accumulator: time plus the energy-relevant
/// volumes.
#[derive(Debug, Clone, Copy, Default)]
struct OpsCost {
    time: Time,
    flops: FlopCount,
    dram: Bytes,
}

impl OpsCost {
    fn plus(&self, other: &Self) -> Self {
        Self {
            time: self.time + other.time,
            flops: self.flops + other.flops,
            dram: self.dram + other.dram,
        }
    }

    fn scaled(&self, factor: f64) -> Self {
        Self {
            time: self.time * factor,
            flops: self.flops * factor,
            dram: self.dram * factor,
        }
    }
}

/// Predicts the time per batch of a distributed training job on a cluster.
///
/// Composition (paper Fig. 1): the model's per-layer operator graph is
/// sharded by the parallelization mapper, each kernel is costed by the
/// hierarchical roofline, the TP/SP collectives of every layer and
/// microbatch are costed by the α–β model on the intra-node fabric, the
/// pipeline schedule contributes its bubble and point-to-point time, and
/// the batch ends with the DP gradient all-reduce and the optimizer update.
///
/// ```
/// use optimus_hw::presets;
/// use optimus_memory::RecomputeMode;
/// use optimus_model::presets as models;
/// use optimus_parallel::Parallelism;
/// use optimus_train::{TrainingConfig, TrainingEstimator};
///
/// let cluster = presets::dgx_a100_hdr_cluster();
/// let cfg = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 8, 1))
///     .with_recompute(RecomputeMode::Full { checkpoints_per_stage: None });
/// let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
/// assert!(report.time_per_batch.secs() > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct TrainingEstimator<'a> {
    cluster: &'a ClusterSpec,
}

impl<'a> TrainingEstimator<'a> {
    /// Creates an estimator for `cluster`.
    #[must_use]
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        Self { cluster }
    }

    /// Predicts the training time per batch and its breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the parallelization does not divide the
    /// workload/cluster or the precision is unsupported by the device.
    pub fn estimate(&self, cfg: &TrainingConfig) -> Result<TrainingReport, TrainError> {
        let p = cfg.parallelism;
        p.validate(self.cluster)?;
        let microbatches = p.microbatches(cfg.batch)?;
        let layers_per_stage = p.layers_per_stage(cfg.model.layers)?;

        let device = self.cluster.accelerator();
        let roofline = RooflineModel::new(device);
        let plan = CommPlan::new(self.cluster, p, cfg.comm);

        let gp = GraphParams::prefill(p.microbatch, cfg.seq, p.tp, cfg.precision)
            .with_sp(p.sp)
            .with_flash(cfg.flash);

        // --- per-layer device kernel times (one microbatch) --------------
        let fwd_ops = graph::layer_forward_ops(&cfg.model, &gp);
        let bwd_ops = graph::layer_backward_ops(&cfg.model, &gp);
        let fwd_cost = self.ops_cost_at(&roofline, &fwd_ops, cfg.precision)?;
        let bwd_cost = self.ops_cost_at(&roofline, &bwd_ops, cfg.precision)?;
        let rc_cost = match cfg.recompute {
            RecomputeMode::None => OpsCost::default(),
            RecomputeMode::Selective => self.ops_cost_at(
                &roofline,
                &graph::selective_recompute_ops(&cfg.model, &gp),
                cfg.precision,
            )?,
            // Full recomputation replays the whole forward pass.
            RecomputeMode::Full { .. } => fwd_cost,
        };
        let layer_cost = fwd_cost.plus(&bwd_cost).plus(&rc_cost);
        let layer_time = layer_cost.time;

        // --- TP/SP collectives per layer per microbatch -------------------
        // Block outputs are the full microbatch activation s·b·h at the
        // training precision.
        let act_volume =
            Bytes::new((p.microbatch * cfg.seq * cfg.model.hidden) as f64 * cfg.precision.bytes());
        let tp_per_layer = plan.tp_layer_forward(act_volume) + plan.tp_layer_backward(act_volume);

        // --- embedding + LM head (first/last stage), amortized ------------
        let emb_head_ops: Vec<Op> = graph::embedding_ops(&cfg.model, &gp)
            .into_iter()
            .chain(graph::head_ops(&cfg.model, &gp))
            .collect();
        // Backward of the head/embedding roughly doubles it.
        let emb_head_cost = self
            .ops_cost_at(&roofline, &emb_head_ops, cfg.precision)?
            .scaled(3.0);
        let t_emb_head = emb_head_cost.time;

        // --- pipeline assembly --------------------------------------------
        let stage_compute = layer_time * layers_per_stage as f64;
        let stage_tp = tp_per_layer * layers_per_stage as f64;
        let stage_extra = t_emb_head / p.pp as f64;
        // Two stage-boundary crossings per microbatch (forward activation
        // out, backward gradient in), times the interleaving multiplier.
        let p2p_per_ubatch = plan.pp_hop(act_volume) * 2.0 * cfg.schedule.p2p_multiplier();

        let stage_time = stage_compute + stage_tp + stage_extra + p2p_per_ubatch;
        let busy = stage_time * microbatches as f64;
        let bubble = busy * cfg.schedule.bubble_fraction(p.pp, microbatches);

        // --- once-per-batch terms ------------------------------------------
        let params_per_device = self.params_per_device(cfg, layers_per_stage);
        let grad_volume = Bytes::new(params_per_device * cfg.precision.bytes());
        let dp_comm = plan.dp_gradient_allreduce(grad_volume);
        let weight_update = self.weight_update_time(cfg, params_per_device);

        // --- aggregate -------------------------------------------------------
        let compute = (layer_time * layers_per_stage as f64 + stage_extra) * microbatches as f64;
        let tp_comm = stage_tp * microbatches as f64;
        let pp_comm = p2p_per_ubatch * microbatches as f64;
        let breakdown = TrainingBreakdown {
            compute,
            tp_comm,
            pp_comm,
            dp_comm,
            bubble,
            weight_update,
        };
        let time_per_batch = breakdown.total();

        // --- per-device energy-relevant totals ---------------------------
        let ubatches = microbatches as f64;
        let device_flops = FlopCount::new(
            (layer_cost.flops.get() * layers_per_stage as f64
                + emb_head_cost.flops.get() / p.pp as f64)
                * ubatches,
        );
        let optimizer_traffic =
            Bytes::new(params_per_device * (16.0 + 12.0 + cfg.precision.bytes()));
        let dram_traffic = Bytes::new(
            (layer_cost.dram.bytes() * layers_per_stage as f64
                + emb_head_cost.dram.bytes() / p.pp as f64)
                * ubatches,
        ) + optimizer_traffic;
        let network_traffic = plan.tp_layer_forward_wire_bytes(act_volume)
            * (2.0 * layers_per_stage as f64 * ubatches)
            + plan.pp_wire_bytes(act_volume) * (2.0 * cfg.schedule.p2p_multiplier() * ubatches)
            + plan.dp_wire_bytes(grad_volume);

        // --- memory ----------------------------------------------------------
        let memory = training_memory(
            &cfg.model,
            &TrainingMemorySpec {
                batch: cfg.batch,
                seq: cfg.seq,
                parallelism: p,
                schedule: cfg.schedule,
                precision: cfg.precision,
                recompute: cfg.recompute,
            },
        )?;

        // --- MFU ---------------------------------------------------------------
        let model_flops = self.model_flops(cfg);
        let peak = device.peak(cfg.precision)?;
        let system_peak = peak * p.total_gpus() as f64;
        let mfu = model_flops.get() / (system_peak.get() * time_per_batch.secs());

        // --- per-layer GEMM bound split (Fig. 7) -------------------------------
        let layer_gemm_split = self.gemm_split(&roofline, cfg, &fwd_ops, &bwd_ops)?;

        Ok(TrainingReport {
            time_per_batch,
            breakdown,
            memory,
            microbatches,
            model_flops,
            mfu,
            layer_gemm_split,
            device_flops,
            dram_traffic,
            network_traffic,
        })
    }

    /// Total device time, FLOPs, and DRAM traffic of an operator list at
    /// the given GEMM precision (streaming ops already carry their element
    /// widths).
    fn ops_cost_at(
        &self,
        roofline: &RooflineModel<'_>,
        ops: &[Op],
        precision: optimus_hw::Precision,
    ) -> Result<OpsCost, TrainError> {
        let mut total = OpsCost::default();
        for op in ops {
            let cost = match op.kind {
                OpKind::Gemm(g) => roofline.batched_gemm(g, precision)?,
                OpKind::Eltwise(e) => roofline.eltwise(e),
                OpKind::Flash(fa) => roofline.custom_kernel(
                    "flash-attention",
                    fa.flops(),
                    &fa.traffic(),
                    precision,
                )?,
            };
            total.time += cost.total();
            total.flops += cost.flops;
            total.dram += cost.dram_traffic();
        }
        Ok(total)
    }

    fn params_per_device(&self, cfg: &TrainingConfig, layers_per_stage: usize) -> f64 {
        let p = cfg.parallelism;
        layers_per_stage as f64 * cfg.model.layer_param_count() / p.tp as f64
            + cfg.model.embedding_param_count() / p.tp as f64
    }

    /// Optimizer update: stream gradients, Adam moments, master weights
    /// (read + write) and store the new low-precision weights.
    fn weight_update_time(&self, cfg: &TrainingConfig, params: f64) -> Time {
        // Reads: grad(4) + m(4) + v(4) + master(4); writes: m, v, master,
        // weight(precision).
        let traffic = Bytes::new(params * (16.0 + 12.0 + cfg.precision.bytes()));
        let dram = self.cluster.accelerator().dram.bandwidth;
        let util = self
            .cluster
            .accelerator()
            .calibration
            .dram_utilization
            .factor(traffic);
        traffic / (dram * util.get())
    }

    /// Useful (non-recompute) model FLOPs per batch: 3× the forward GEMM
    /// work of the full model (backward counts double), plus head.
    fn model_flops(&self, cfg: &TrainingConfig) -> FlopCount {
        let gp = GraphParams::prefill(cfg.batch, cfg.seq, 1, cfg.precision);
        let layer: f64 = graph::layer_forward_ops(&cfg.model, &gp)
            .iter()
            .filter_map(|o| o.as_gemm().map(|g| g.flops().get()))
            .sum();
        let head: f64 = graph::head_ops(&cfg.model, &gp)
            .iter()
            .filter_map(|o| o.as_gemm().map(|g| g.flops().get()))
            .sum();
        FlopCount::new(3.0 * (layer * cfg.model.layers as f64 + head))
    }

    /// Bound-type split of the fwd+bwd GEMMs of one layer (one microbatch).
    fn gemm_split(
        &self,
        roofline: &RooflineModel<'_>,
        cfg: &TrainingConfig,
        fwd: &[Op],
        bwd: &[Op],
    ) -> Result<GemmBoundSplit, TrainError> {
        let mut split = GemmBoundSplit::default();
        for op in fwd.iter().chain(bwd.iter()) {
            if let OpKind::Gemm(g) = op.kind {
                let cost = roofline.batched_gemm(g, cfg.precision)?;
                if cost.bound().is_compute() {
                    split.compute_bound += cost.total();
                } else {
                    split.memory_bound += cost.total();
                }
            }
        }
        Ok(split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_model::presets as models;
    use optimus_parallel::{Parallelism, PipelineSchedule};

    fn a100() -> ClusterSpec {
        presets::dgx_a100_hdr_cluster()
    }

    #[test]
    fn gpt22b_8gpu_close_to_table1() {
        // Table 1 row 1: GPT-22B, 8 GPUs, batch 4, TP=8, full
        // recomputation → 1.4 s reference / 1.4 s paper prediction.
        // (8 GPUs ⇒ PP=1; the source config in Korthikanti et al.)
        let cluster = a100();
        let cfg = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 8, 1))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
        let secs = report.time_per_batch.secs();
        assert!(
            (0.9..2.0).contains(&secs),
            "expected ~1.4 s per batch, got {secs:.2}"
        );
    }

    #[test]
    fn selective_is_faster_than_full() {
        let cluster = a100();
        let base = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 8, 1));
        let full = base.clone().with_recompute(RecomputeMode::Full {
            checkpoints_per_stage: None,
        });
        let sel = TrainingConfig::new(
            models::gpt_22b(),
            4,
            2048,
            Parallelism::new(1, 8, 1).with_sp(true),
        )
        .with_recompute(RecomputeMode::Selective);
        let est = TrainingEstimator::new(&cluster);
        let t_full = est.estimate(&full).unwrap().time_per_batch;
        let t_sel = est.estimate(&sel).unwrap().time_per_batch;
        // Table 1: 1.4 s (full) vs 1.1 s (selective+SP).
        assert!(t_sel < t_full);
        let ratio = t_full / t_sel;
        assert!((1.1..1.55).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn mfu_in_plausible_range() {
        let cluster = a100();
        let cfg = TrainingConfig::new(
            models::gpt_175b(),
            64,
            2048,
            Parallelism::new(1, 8, 8).with_sp(true),
        )
        .with_recompute(RecomputeMode::Selective);
        let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
        assert!(
            (0.3..0.65).contains(&report.mfu),
            "MFU {:.2} outside Megatron-era range",
            report.mfu
        );
    }

    #[test]
    fn interleaving_shrinks_bubble() {
        let cluster = a100();
        let base = TrainingConfig::new(models::gpt_175b(), 64, 2048, Parallelism::new(1, 8, 8))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let plain = TrainingEstimator::new(&cluster).estimate(&base).unwrap();
        let inter = TrainingEstimator::new(&cluster)
            .estimate(&base.clone().with_schedule(PipelineSchedule::interleaved(3)))
            .unwrap();
        assert!(inter.breakdown.bubble < plain.breakdown.bubble);
    }

    #[test]
    fn dp_adds_gradient_allreduce() {
        let cluster = a100();
        let no_dp = TrainingConfig::new(models::gpt_22b(), 8, 2048, Parallelism::new(1, 8, 6))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let dp = TrainingConfig::new(models::gpt_22b(), 16, 2048, Parallelism::new(2, 8, 6))
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            });
        let est = TrainingEstimator::new(&cluster);
        let r_no = est.estimate(&no_dp).unwrap();
        let r_dp = est.estimate(&dp).unwrap();
        assert_eq!(r_no.breakdown.dp_comm, Time::ZERO);
        assert!(r_dp.breakdown.dp_comm > Time::ZERO);
        // Same per-pipeline work (8 microbatches each), similar busy time.
        let ratio = r_dp.breakdown.compute / r_no.breakdown.compute;
        assert!((ratio - 1.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_tp_errors() {
        let cluster = a100();
        let cfg = TrainingConfig::new(models::gpt_22b(), 4, 2048, Parallelism::new(1, 16, 3));
        assert!(matches!(
            TrainingEstimator::new(&cluster).estimate(&cfg),
            Err(TrainError::Parallel(_))
        ));
    }
}
