//! Training-job description.

use optimus_collective::CommModel;
use optimus_hw::Precision;
use optimus_memory::RecomputeMode;
use optimus_model::ModelConfig;
use optimus_parallel::{Parallelism, PipelineSchedule};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything that defines one distributed training job: the model, the
/// global batch shape, numeric precision, the parallelization, the pipeline
/// schedule, and the activation-recomputation strategy.
///
/// The model is held behind an [`Arc`] so that sweeps evaluating hundreds
/// of configurations against one architecture share a single allocation
/// instead of deep-cloning the [`ModelConfig`] per point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// The model being trained.
    pub model: Arc<ModelConfig>,
    /// Global batch size in samples.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Training precision (weights and activations).
    pub precision: Precision,
    /// DP/TP/PP/SP configuration.
    pub parallelism: Parallelism,
    /// Pipeline schedule.
    pub schedule: PipelineSchedule,
    /// Activation recomputation.
    pub recompute: RecomputeMode,
    /// Collective-algorithm policy.
    pub comm: CommModel,
    /// Use the fused FlashAttention kernel (IO-aware attention, §1.1)
    /// instead of materialized attention ops.
    pub flash: bool,
}

impl TrainingConfig {
    /// Creates a config with 1F1B scheduling, no recomputation, FP16, and
    /// automatic collective selection. Accepts an owned [`ModelConfig`] or
    /// an existing [`Arc`] (shared across sweep points).
    #[must_use]
    pub fn new(
        model: impl Into<Arc<ModelConfig>>,
        batch: usize,
        seq: usize,
        parallelism: Parallelism,
    ) -> Self {
        Self {
            model: model.into(),
            batch,
            seq,
            precision: Precision::Fp16,
            parallelism,
            schedule: PipelineSchedule::OneFOneB,
            recompute: RecomputeMode::None,
            comm: CommModel::Auto,
            flash: false,
        }
    }

    /// Sets the recomputation strategy.
    #[must_use]
    pub fn with_recompute(mut self, recompute: RecomputeMode) -> Self {
        self.recompute = recompute;
        self
    }

    /// Sets the pipeline schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the numeric precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the collective policy.
    #[must_use]
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Selects the FlashAttention implementation.
    #[must_use]
    pub fn with_flash(mut self, flash: bool) -> Self {
        self.flash = flash;
        self
    }
}

impl core::fmt::Display for TrainingConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} batch={} seq={} {} [{}] {} recompute={}",
            self.model.name,
            self.batch,
            self.seq,
            self.parallelism,
            self.schedule,
            self.precision,
            self.recompute
        )
    }
}
