//! The memoized two-phase training estimator.
//!
//! A strategy sweep evaluates hundreds of (DP, TP, PP, microbatch, SP,
//! precision) points against **one** (model, cluster, workload) triple.
//! The expensive part of each estimate — building the per-layer operator
//! graph and pushing every kernel through the hierarchical roofline —
//! depends only on the sub-tuple (TP, SP, microbatch, precision): DP and
//! PP replicate and schedule the same layer kernels, they never change
//! them. [`PreparedTrainingEstimator`] exploits that split:
//!
//! * **Phase 1 (prepare, once per sweep):** fix the model, cluster, and
//!   workload; build the roofline; pre-compute the useful model FLOPs; and
//!   open a concurrent memo table of [`LayerCosts`] keyed by
//!   `(tp, sp, microbatch, precision)`.
//! * **Phase 2 (evaluate, once per point):** look the layer costs up and
//!   run only the cheap assembly — pipeline algebra, DP/PP collectives,
//!   optimizer update, MFU.
//!
//! The memo table is filled with pure functions of its key, so concurrent
//! evaluation order cannot change any value: a memoized sweep is
//! byte-identical to a naive per-point evaluation (a property the
//! `optimus-sweep` integration tests pin down).

use crate::{
    CheckpointSpec, GemmBoundSplit, StackContext, TrainError, TrainingBreakdown, TrainingConfig,
    TrainingReport,
};
use optimus_collective::CommModel;
use optimus_hw::{ClusterSpec, Precision};
use optimus_memory::{training_memory, RecomputeMode, TrainingMemoryReport, TrainingMemorySpec};
use optimus_model::{graph, GraphParams, ModelConfig, Op, OpKind};
use optimus_parallel::{CommPlan, Parallelism, PipelineSchedule};
use optimus_roofline::RooflineModel;
use optimus_units::{Bytes, FlopCount, Time};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Per-operator-list cost accumulator: time plus the energy-relevant
/// volumes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OpsCost {
    pub(crate) time: Time,
    pub(crate) flops: FlopCount,
    pub(crate) dram: Bytes,
}

impl OpsCost {
    pub(crate) fn plus(&self, other: &Self) -> Self {
        Self {
            time: self.time + other.time,
            flops: self.flops + other.flops,
            dram: self.dram + other.dram,
        }
    }

    pub(crate) fn scaled(&self, factor: f64) -> Self {
        Self {
            time: self.time * factor,
            flops: self.flops * factor,
            dram: self.dram * factor,
        }
    }
}

/// Total device time, FLOPs, and DRAM traffic of an operator list at the
/// given GEMM precision (streaming ops already carry their element widths).
pub(crate) fn ops_cost(
    roofline: &RooflineModel<'_>,
    ops: &[Op],
    precision: Precision,
) -> Result<OpsCost, TrainError> {
    let mut total = OpsCost::default();
    for op in ops {
        let cost = match op.kind {
            OpKind::Gemm(g) => roofline.batched_gemm(g, precision)?,
            OpKind::Eltwise(e) => roofline.eltwise(e),
            OpKind::Flash(fa) => {
                roofline.custom_kernel("flash-attention", fa.flops(), &fa.traffic(), precision)?
            }
        };
        total.time += cost.total();
        total.flops += cost.flops;
        total.dram += cost.dram_traffic();
    }
    Ok(total)
}

/// The memo key: the sub-tuple of a strategy that the per-layer kernel
/// costs actually depend on — `(tp, sp, microbatch, precision)`. The
/// workload-level inputs (model, sequence, recomputation mode, flash) are
/// fixed per [`PreparedTrainingEstimator`], and DP/PP only assemble.
type LayerKey = (usize, bool, usize, Precision);

/// Everything shared by all strategy points with the same [`LayerKey`]:
/// the costed per-layer kernels, the embedding/head stage, the Fig. 7
/// bound split, and the TP/SP collective terms (which also depend only on
/// this key).
#[derive(Debug, Clone, Copy)]
struct LayerCosts {
    /// One layer's forward kernels, one microbatch.
    fwd: OpsCost,
    /// One layer's backward kernels, one microbatch.
    bwd: OpsCost,
    /// Recomputation replay per layer under the prepared mode.
    recompute: OpsCost,
    /// Embedding + LM head, forward and backward (already ×3).
    emb_head: OpsCost,
    /// Bound-type split of one layer's fwd+bwd GEMMs.
    gemm_split: GemmBoundSplit,
    /// Block-output activation volume `s·b·h` of one microbatch.
    act_volume: Bytes,
    /// TP/SP collective time per layer per microbatch (fwd + bwd).
    tp_per_layer: Time,
    /// Wire bytes per layer's forward TP/SP collectives.
    tp_fwd_wire: Bytes,
}

/// Phase-1 state of the two-phase training estimator: everything that is
/// invariant across the strategy points of one sweep, plus the layer-cost
/// memo table. Build it once per (model, cluster, workload) and call
/// [`PreparedTrainingEstimator::estimate`] per point.
///
/// ```
/// use optimus_hw::presets;
/// use optimus_model::presets as models;
/// use optimus_parallel::Parallelism;
/// use optimus_train::PreparedTrainingEstimator;
/// use optimus_hw::Precision;
/// use std::sync::Arc;
///
/// let cluster = presets::dgx_a100_hdr_cluster();
/// let prepared = PreparedTrainingEstimator::new(
///     &cluster, Arc::new(models::gpt_22b()), 4, 2048);
/// let t8 = prepared.estimate(Parallelism::new(1, 8, 1), Precision::Fp16).unwrap();
/// let t4 = prepared.estimate(Parallelism::new(1, 4, 1), Precision::Fp16).unwrap();
/// assert!(t8.time_per_batch < t4.time_per_batch);
/// ```
#[derive(Debug)]
pub struct PreparedTrainingEstimator<'a> {
    cluster: &'a ClusterSpec,
    roofline: RooflineModel<'a>,
    model: Arc<ModelConfig>,
    batch: usize,
    seq: usize,
    schedule: PipelineSchedule,
    recompute: RecomputeMode,
    comm: CommModel,
    flash: bool,
    checkpoint: CheckpointSpec,
    /// Useful model FLOPs per batch — a function of (model, batch, seq)
    /// only, so computed once at prepare time.
    model_flops: FlopCount,
    cache: RwLock<HashMap<LayerKey, Result<LayerCosts, TrainError>>>,
}

impl<'a> PreparedTrainingEstimator<'a> {
    /// Prepares an estimator for one (model, cluster, workload) with the
    /// defaults of [`TrainingConfig::new`]: 1F1B scheduling, no
    /// recomputation, automatic collectives, no flash kernel.
    #[must_use]
    pub fn new(
        cluster: &'a ClusterSpec,
        model: Arc<ModelConfig>,
        batch: usize,
        seq: usize,
    ) -> Self {
        let model_flops = compute_model_flops(&model, batch, seq);
        Self {
            cluster,
            roofline: RooflineModel::new(cluster.accelerator()),
            model,
            batch,
            seq,
            schedule: PipelineSchedule::OneFOneB,
            recompute: RecomputeMode::None,
            comm: CommModel::Auto,
            flash: false,
            checkpoint: CheckpointSpec::none(),
            model_flops,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Prepares from a full [`TrainingConfig`], adopting its workload-level
    /// fields (model, batch, seq, schedule, recompute, comm, flash). The
    /// config's `parallelism` and `precision` are *per-point* inputs — pass
    /// them to [`Self::estimate`] instead.
    #[must_use]
    pub fn from_config(cluster: &'a ClusterSpec, cfg: &TrainingConfig) -> Self {
        Self::new(cluster, Arc::clone(&cfg.model), cfg.batch, cfg.seq)
            .with_schedule(cfg.schedule)
            .with_recompute(cfg.recompute)
            .with_comm(cfg.comm)
            .with_flash(cfg.flash)
    }

    /// Sets the pipeline schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the recomputation strategy.
    #[must_use]
    pub fn with_recompute(mut self, recompute: RecomputeMode) -> Self {
        self.recompute = recompute;
        self
    }

    /// Sets the collective policy.
    #[must_use]
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Selects the FlashAttention implementation.
    #[must_use]
    pub fn with_flash(mut self, flash: bool) -> Self {
        self.flash = flash;
        self
    }

    /// Sets the failure environment every estimate is priced under. The
    /// default [`CheckpointSpec::none`] leaves reports untouched; an
    /// active spec attaches a resilience section with the
    /// failure-expected batch time (a pure assembly-phase computation —
    /// the layer-cost memo table is unaffected).
    #[must_use]
    pub fn with_checkpoint(mut self, checkpoint: CheckpointSpec) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Number of distinct layer-cost keys materialized so far — the
    /// `O(distinct-kernel-keys)` factor of a sweep's cost.
    #[must_use]
    pub fn cached_keys(&self) -> usize {
        self.cache.read().expect("layer-cost cache poisoned").len()
    }

    /// Phase-2 evaluation of one strategy point, computing the memory
    /// footprint in-line.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the parallelization does not divide the
    /// workload/cluster or the precision is unsupported by the device.
    pub fn estimate(
        &self,
        parallelism: Parallelism,
        precision: Precision,
    ) -> Result<TrainingReport, TrainError> {
        // Validate against the cluster before deriving memory, so invalid
        // configs keep their validation error (and cost no footprint).
        parallelism.validate(self.cluster)?;
        let memory = training_memory(
            &self.model,
            &TrainingMemorySpec {
                batch: self.batch,
                seq: self.seq,
                parallelism,
                schedule: self.schedule,
                precision,
                recompute: self.recompute,
            },
        )?;
        self.estimate_with_memory(parallelism, precision, memory)
    }

    /// Phase-2 evaluation with a memory footprint computed elsewhere —
    /// the sweep engine passes the footprint the pruning pass already
    /// derived, so memory is computed exactly once per point.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the parallelization does not divide the
    /// workload/cluster or the precision is unsupported by the device.
    pub fn estimate_with_memory(
        &self,
        parallelism: Parallelism,
        precision: Precision,
        memory: TrainingMemoryReport,
    ) -> Result<TrainingReport, TrainError> {
        let p = parallelism;
        p.validate(self.cluster)?;
        let microbatches = p.microbatches(self.batch)?;
        let layers_per_stage = p.layers_per_stage(self.model.layers)?;

        let lc = self.layer_costs(p.tp, p.sp, p.microbatch, precision)?;
        let layer_cost = lc.fwd.plus(&lc.bwd).plus(&lc.recompute);
        let layer_time = layer_cost.time;
        let plan = CommPlan::new(self.cluster, p, self.comm);

        // --- pipeline assembly --------------------------------------------
        let stage_compute = layer_time * layers_per_stage as f64;
        let stage_tp = lc.tp_per_layer * layers_per_stage as f64;
        let stage_extra = lc.emb_head.time / p.pp as f64;
        // Two stage-boundary crossings per microbatch (forward activation
        // out, backward gradient in), times the interleaving multiplier.
        let p2p_per_ubatch = plan.pp_hop(lc.act_volume) * 2.0 * self.schedule.p2p_multiplier();

        let stage_time = stage_compute + stage_tp + stage_extra + p2p_per_ubatch;
        let busy = stage_time * microbatches as f64;
        let bubble = busy * self.schedule.bubble_fraction(p.pp, microbatches);

        // --- once-per-batch terms ------------------------------------------
        let params_per_device = layers_per_stage as f64 * self.model.layer_param_count()
            / p.tp as f64
            + self.model.embedding_param_count() / p.tp as f64;
        let grad_volume = Bytes::new(params_per_device * precision.bytes());
        let dp_comm = plan.dp_gradient_allreduce(grad_volume);
        let weight_update = self.weight_update_time(precision, params_per_device);

        // --- aggregate -------------------------------------------------------
        let compute = (layer_time * layers_per_stage as f64 + stage_extra) * microbatches as f64;
        let tp_comm = stage_tp * microbatches as f64;
        let pp_comm = p2p_per_ubatch * microbatches as f64;
        let breakdown = TrainingBreakdown {
            compute,
            tp_comm,
            pp_comm,
            dp_comm,
            bubble,
            weight_update,
        };
        let time_per_batch = breakdown.total();

        // --- per-device energy-relevant totals ---------------------------
        let ubatches = microbatches as f64;
        let device_flops = FlopCount::new(
            (layer_cost.flops.get() * layers_per_stage as f64
                + lc.emb_head.flops.get() / p.pp as f64)
                * ubatches,
        );
        let optimizer_traffic = Bytes::new(params_per_device * (16.0 + 12.0 + precision.bytes()));
        let dram_traffic = Bytes::new(
            (layer_cost.dram.bytes() * layers_per_stage as f64
                + lc.emb_head.dram.bytes() / p.pp as f64)
                * ubatches,
        ) + optimizer_traffic;
        let network_traffic = lc.tp_fwd_wire * (2.0 * layers_per_stage as f64 * ubatches)
            + plan.pp_wire_bytes(lc.act_volume) * (2.0 * self.schedule.p2p_multiplier() * ubatches)
            + plan.dp_wire_bytes(grad_volume);

        // --- MFU ---------------------------------------------------------------
        let peak = self.cluster.accelerator().peak(precision)?;
        let system_peak = peak * p.total_gpus() as f64;
        let mfu = self.model_flops.get() / (system_peak.get() * time_per_batch.secs());

        let resilience = self.checkpoint.evaluate_stack(
            &StackContext {
                cluster: self.cluster,
                memory: &memory,
                gpus: p.total_gpus(),
                parallelism: Some(p),
                comm: self.comm,
                time_per_batch,
            },
            &|dp| self.reprice_dp(p, precision, dp).ok(),
        );

        Ok(TrainingReport {
            time_per_batch,
            breakdown,
            memory,
            microbatches,
            model_flops: self.model_flops,
            mfu,
            layer_gemm_split: lc.gemm_split,
            device_flops,
            dram_traffic,
            network_traffic,
            resilience,
        })
    }

    /// The elastic repricing entry point: the failure-free time of one
    /// *shrunken* batch after the DP group drops from `parallelism.dp`
    /// to `dp` replicas. The per-replica batch stays constant (the
    /// global batch shrinks to `batch · dp / parallelism.dp`), so the
    /// microbatch count per pipeline is unchanged and the layer-cost
    /// memo key is identical — repricing is pure assembly, exactly like
    /// a DP change within a sweep.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when the shrunken parallelization is
    /// invalid for the cluster, the batch does not divide across the
    /// original DP group, or the precision is unsupported.
    pub fn reprice_dp(
        &self,
        parallelism: Parallelism,
        precision: Precision,
        dp: usize,
    ) -> Result<Time, TrainError> {
        let p = parallelism;
        // Integer per-group batch: `estimate` already divided the batch
        // across p.dp groups, so this is exact for any strategy that
        // evaluated successfully.
        let batch = self.batch / p.dp * dp;
        let shrunk = Parallelism::new(dp.max(1), p.tp, p.pp)
            .with_sp(p.sp)
            .with_microbatch(p.microbatch);
        shrunk.validate(self.cluster)?;
        let microbatches = shrunk.microbatches(batch)?;
        let layers_per_stage = shrunk.layers_per_stage(self.model.layers)?;

        let lc = self.layer_costs(shrunk.tp, shrunk.sp, shrunk.microbatch, precision)?;
        let layer_cost = lc.fwd.plus(&lc.bwd).plus(&lc.recompute);
        let layer_time = layer_cost.time;
        let plan = CommPlan::new(self.cluster, shrunk, self.comm);

        let stage_compute = layer_time * layers_per_stage as f64;
        let stage_tp = lc.tp_per_layer * layers_per_stage as f64;
        let stage_extra = lc.emb_head.time / shrunk.pp as f64;
        let p2p_per_ubatch = plan.pp_hop(lc.act_volume) * 2.0 * self.schedule.p2p_multiplier();

        let stage_time = stage_compute + stage_tp + stage_extra + p2p_per_ubatch;
        let busy = stage_time * microbatches as f64;
        let bubble = busy * self.schedule.bubble_fraction(shrunk.pp, microbatches);

        let params_per_device = layers_per_stage as f64 * self.model.layer_param_count()
            / shrunk.tp as f64
            + self.model.embedding_param_count() / shrunk.tp as f64;
        let grad_volume = Bytes::new(params_per_device * precision.bytes());
        let dp_comm = plan.dp_gradient_allreduce(grad_volume);
        let weight_update = self.weight_update_time(precision, params_per_device);

        Ok(busy + bubble + dp_comm + weight_update)
    }

    /// Looks a key up in the memo table, computing (and publishing) it on a
    /// miss. Values are pure functions of the key given the prepared
    /// context, so a racing duplicate computation produces the identical
    /// value — results never depend on evaluation order or thread count.
    fn layer_costs(
        &self,
        tp: usize,
        sp: bool,
        microbatch: usize,
        precision: Precision,
    ) -> Result<LayerCosts, TrainError> {
        let key = (tp, sp, microbatch, precision);
        if let Some(hit) = self
            .cache
            .read()
            .expect("layer-cost cache poisoned")
            .get(&key)
        {
            return hit.clone();
        }
        // Compute outside the lock: the table stays available to other
        // evaluation threads while this (possibly slow) roofline pass runs.
        let computed = self.compute_layer_costs(tp, sp, microbatch, precision);
        self.cache
            .write()
            .expect("layer-cost cache poisoned")
            .entry(key)
            .or_insert_with(|| computed.clone());
        computed
    }

    /// The memo-miss path: builds and costs one layer's operator graph, the
    /// embedding/head stage, and the TP/SP collective terms for a key.
    fn compute_layer_costs(
        &self,
        tp: usize,
        sp: bool,
        microbatch: usize,
        precision: Precision,
    ) -> Result<LayerCosts, TrainError> {
        let gp = GraphParams::prefill(microbatch, self.seq, tp, precision)
            .with_sp(sp)
            .with_flash(self.flash);

        let fwd_ops = graph::layer_forward_ops(&self.model, &gp);
        let bwd_ops = graph::layer_backward_ops(&self.model, &gp);
        let fwd = ops_cost(&self.roofline, &fwd_ops, precision)?;
        let bwd = ops_cost(&self.roofline, &bwd_ops, precision)?;
        let recompute = match self.recompute {
            RecomputeMode::None => OpsCost::default(),
            RecomputeMode::Selective => ops_cost(
                &self.roofline,
                &graph::selective_recompute_ops(&self.model, &gp),
                precision,
            )?,
            // Full recomputation replays the whole forward pass.
            RecomputeMode::Full { .. } => fwd,
        };

        // Embedding + LM head (first/last stage); backward roughly doubles
        // the forward, hence ×3.
        let emb_head_ops: Vec<Op> = graph::embedding_ops(&self.model, &gp)
            .into_iter()
            .chain(graph::head_ops(&self.model, &gp))
            .collect();
        let emb_head = ops_cost(&self.roofline, &emb_head_ops, precision)?.scaled(3.0);

        // Per-layer GEMM bound split (Fig. 7).
        let mut gemm_split = GemmBoundSplit::default();
        for op in fwd_ops.iter().chain(bwd_ops.iter()) {
            if let OpKind::Gemm(g) = op.kind {
                let cost = self.roofline.batched_gemm(g, precision)?;
                if cost.bound().is_compute() {
                    gemm_split.compute_bound += cost.total();
                } else {
                    gemm_split.memory_bound += cost.total();
                }
            }
        }

        // TP/SP collectives see only (tp, sp) and the microbatch activation
        // volume, so they memoize under the same key. DP/PP terms are
        // per-point and stay in the assembly phase.
        let act_volume =
            Bytes::new((microbatch * self.seq * self.model.hidden) as f64 * precision.bytes());
        let tp_plan = CommPlan::new(
            self.cluster,
            Parallelism::new(1, tp, 1)
                .with_sp(sp)
                .with_microbatch(microbatch),
            self.comm,
        );
        let tp_per_layer =
            tp_plan.tp_layer_forward(act_volume) + tp_plan.tp_layer_backward(act_volume);
        let tp_fwd_wire = tp_plan.tp_layer_forward_wire_bytes(act_volume);

        Ok(LayerCosts {
            fwd,
            bwd,
            recompute,
            emb_head,
            gemm_split,
            act_volume,
            tp_per_layer,
            tp_fwd_wire,
        })
    }

    /// Optimizer update: stream gradients, Adam moments, master weights
    /// (read + write) and store the new low-precision weights.
    fn weight_update_time(&self, precision: Precision, params: f64) -> Time {
        // Reads: grad(4) + m(4) + v(4) + master(4); writes: m, v, master,
        // weight(precision).
        let traffic = Bytes::new(params * (16.0 + 12.0 + precision.bytes()));
        let dram = self.cluster.accelerator().dram.bandwidth;
        let util = self
            .cluster
            .accelerator()
            .calibration
            .dram_utilization
            .factor(traffic);
        traffic / (dram * util.get())
    }
}

/// Useful (non-recompute) model FLOPs per batch: 3× the forward GEMM work
/// of the full model (backward counts double), plus head. GEMM FLOPs are a
/// pure shape property, so any precision yields the same count.
fn compute_model_flops(model: &ModelConfig, batch: usize, seq: usize) -> FlopCount {
    let gp = GraphParams::prefill(batch, seq, 1, Precision::Fp16);
    let layer: f64 = graph::layer_forward_ops(model, &gp)
        .iter()
        .filter_map(|o| o.as_gemm().map(|g| g.flops().get()))
        .sum();
    let head: f64 = graph::head_ops(model, &gp)
        .iter()
        .filter_map(|o| o.as_gemm().map(|g| g.flops().get()))
        .sum();
    FlopCount::new(3.0 * (layer * model.layers as f64 + head))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_model::presets as models;

    /// The prepared path and the one-shot `TrainingEstimator` path must
    /// produce identical reports — same code, memoized vs not.
    #[test]
    fn prepared_matches_one_shot_estimator() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::gpt_22b());
        let prepared = PreparedTrainingEstimator::new(&cluster, Arc::clone(&model), 8, 2048)
            .with_recompute(RecomputeMode::Selective);
        for (tp, pp) in [(8, 1), (4, 2), (2, 1)] {
            let p = Parallelism::new(1, tp, pp).with_sp(tp > 1);
            let cfg = crate::TrainingConfig::new(Arc::clone(&model), 8, 2048, p)
                .with_recompute(RecomputeMode::Selective);
            let one_shot = crate::TrainingEstimator::new(&cluster)
                .estimate(&cfg)
                .unwrap();
            let fast = prepared.estimate(p, Precision::Fp16).unwrap();
            assert_eq!(one_shot, fast, "tp={tp} pp={pp}");
        }
    }

    /// Repeated evaluation at one key hits the memo table: the second call
    /// must not grow the table.
    #[test]
    fn memo_table_grows_only_per_distinct_key() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let prepared =
            PreparedTrainingEstimator::new(&cluster, Arc::new(models::llama2_13b()), 16, 2048);
        assert_eq!(prepared.cached_keys(), 0);
        // dp=1 and dp=2 share the (tp=2, sp=false, mb=1, fp16) key.
        prepared
            .estimate(Parallelism::new(1, 2, 1), Precision::Fp16)
            .unwrap();
        assert_eq!(prepared.cached_keys(), 1);
        prepared
            .estimate(Parallelism::new(2, 2, 1), Precision::Fp16)
            .unwrap();
        assert_eq!(prepared.cached_keys(), 1);
        prepared
            .estimate(Parallelism::new(1, 2, 1), Precision::Bf16)
            .unwrap();
        assert_eq!(prepared.cached_keys(), 2);
    }

    /// Errors memoize too: an unsupported precision fails identically on
    /// the cached path.
    #[test]
    fn unsupported_precision_errors_consistently() {
        let cluster = presets::dgx_a100_hdr_cluster(); // A100: no FP4
        let prepared =
            PreparedTrainingEstimator::new(&cluster, Arc::new(models::llama2_13b()), 4, 2048);
        let p = Parallelism::new(1, 2, 1);
        let first = prepared.estimate(p, Precision::Fp4);
        let second = prepared.estimate(p, Precision::Fp4);
        assert!(first.is_err());
        assert_eq!(first, second);
    }
}
