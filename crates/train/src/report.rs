//! Training-time reports.

use optimus_memory::TrainingMemoryReport;
use optimus_units::{FlopCount, Time};
use serde::{Deserialize, Serialize};

/// Where the time of one training batch goes (the stacks of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainingBreakdown {
    /// Device kernel time: forward + backward + recomputation.
    pub compute: Time,
    /// Tensor/sequence-parallel collectives.
    pub tp_comm: Time,
    /// Pipeline point-to-point transfers.
    pub pp_comm: Time,
    /// Data-parallel gradient all-reduce.
    pub dp_comm: Time,
    /// Pipeline bubble (idle) time.
    pub bubble: Time,
    /// Optimizer (weight update) time.
    pub weight_update: Time,
}

impl TrainingBreakdown {
    /// All communication categories combined.
    #[must_use]
    pub fn communication(&self) -> Time {
        self.tp_comm + self.pp_comm + self.dp_comm
    }

    /// The paper's "Other" category: weight update + pipeline bubble.
    #[must_use]
    pub fn other(&self) -> Time {
        self.bubble + self.weight_update
    }

    /// Sum of every category (the batch time).
    #[must_use]
    pub fn total(&self) -> Time {
        self.compute + self.communication() + self.other()
    }
}

/// Bound-type split of the GEMM work in one transformer layer (forward +
/// backward, one microbatch) — the bars of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GemmBoundSplit {
    /// Time of GEMMs classified compute-bound.
    pub compute_bound: Time,
    /// Time of GEMMs classified memory-bound (any level).
    pub memory_bound: Time,
}

impl GemmBoundSplit {
    /// Total GEMM time.
    #[must_use]
    pub fn total(&self) -> Time {
        self.compute_bound + self.memory_bound
    }
}

/// The complete output of a training estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Predicted time per global batch.
    pub time_per_batch: Time,
    /// Category breakdown summing to `time_per_batch`.
    pub breakdown: TrainingBreakdown,
    /// Per-device memory footprint.
    pub memory: TrainingMemoryReport,
    /// Microbatches per pipeline.
    pub microbatches: usize,
    /// Useful model FLOPs per batch across the system (excludes
    /// recomputation, the Megatron convention for MFU).
    pub model_flops: FlopCount,
    /// Model FLOPs utilization: useful FLOPs over peak FLOPs × time.
    pub mfu: f64,
    /// Bound-type split of one layer's GEMMs (forward+backward of one
    /// microbatch).
    pub layer_gemm_split: GemmBoundSplit,
    /// Arithmetic work actually executed per device per batch (includes
    /// recomputation) — the basis of the dynamic-compute energy term.
    pub device_flops: FlopCount,
    /// DRAM traffic per device per batch (kernels + optimizer update).
    pub dram_traffic: optimus_units::Bytes,
    /// Bytes injected into the network fabrics per device per batch
    /// (TP/SP + PP + DP wire traffic).
    pub network_traffic: optimus_units::Bytes,
}

impl core::fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "time/batch {} (MFU {:.1}%)",
            self.time_per_batch,
            self.mfu * 100.0
        )?;
        writeln!(
            f,
            "  compute {}  tp {}  pp {}  dp {}  bubble {}  update {}",
            self.breakdown.compute,
            self.breakdown.tp_comm,
            self.breakdown.pp_comm,
            self.breakdown.dp_comm,
            self.breakdown.bubble,
            self.breakdown.weight_update
        )?;
        write!(f, "  memory: {}", self.memory)
    }
}
