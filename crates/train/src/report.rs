//! Training-time reports.

use crate::ResilienceReport;
use optimus_memory::TrainingMemoryReport;
use optimus_units::{FlopCount, Time};
use serde::{Deserialize, Serialize, Value};

/// Where the time of one training batch goes (the stacks of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainingBreakdown {
    /// Device kernel time: forward + backward + recomputation.
    pub compute: Time,
    /// Tensor/sequence-parallel collectives.
    pub tp_comm: Time,
    /// Pipeline point-to-point transfers.
    pub pp_comm: Time,
    /// Data-parallel gradient all-reduce.
    pub dp_comm: Time,
    /// Pipeline bubble (idle) time.
    pub bubble: Time,
    /// Optimizer (weight update) time.
    pub weight_update: Time,
}

impl TrainingBreakdown {
    /// All communication categories combined.
    #[must_use]
    pub fn communication(&self) -> Time {
        self.tp_comm + self.pp_comm + self.dp_comm
    }

    /// The paper's "Other" category: weight update + pipeline bubble.
    #[must_use]
    pub fn other(&self) -> Time {
        self.bubble + self.weight_update
    }

    /// Sum of every category (the batch time).
    #[must_use]
    pub fn total(&self) -> Time {
        self.compute + self.communication() + self.other()
    }
}

/// Bound-type split of the GEMM work in one transformer layer (forward +
/// backward, one microbatch) — the bars of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GemmBoundSplit {
    /// Time of GEMMs classified compute-bound.
    pub compute_bound: Time,
    /// Time of GEMMs classified memory-bound (any level).
    pub memory_bound: Time,
}

impl GemmBoundSplit {
    /// Total GEMM time.
    #[must_use]
    pub fn total(&self) -> Time {
        self.compute_bound + self.memory_bound
    }
}

/// The complete output of a training estimate.
///
/// Serialization note: the `resilience` section is **omitted** (not
/// `null`) when absent, so reports estimated without a
/// [`crate::CheckpointSpec`] — or under the degenerate
/// [`crate::CheckpointSpec::none`] — stay byte-identical to reports from
/// before resilience modeling existed (a property the resilience
/// proptests pin). That requires the hand-written [`Serialize`] impl
/// below; keep its field list in sync with the struct.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct TrainingReport {
    /// Predicted time per global batch.
    pub time_per_batch: Time,
    /// Category breakdown summing to `time_per_batch`.
    pub breakdown: TrainingBreakdown,
    /// Per-device memory footprint.
    pub memory: TrainingMemoryReport,
    /// Microbatches per pipeline.
    pub microbatches: usize,
    /// Useful model FLOPs per batch across the system (excludes
    /// recomputation, the Megatron convention for MFU).
    pub model_flops: FlopCount,
    /// Model FLOPs utilization: useful FLOPs over peak FLOPs × time.
    pub mfu: f64,
    /// Bound-type split of one layer's GEMMs (forward+backward of one
    /// microbatch).
    pub layer_gemm_split: GemmBoundSplit,
    /// Arithmetic work actually executed per device per batch (includes
    /// recomputation) — the basis of the dynamic-compute energy term.
    pub device_flops: FlopCount,
    /// DRAM traffic per device per batch (kernels + optimizer update).
    pub dram_traffic: optimus_units::Bytes,
    /// Bytes injected into the network fabrics per device per batch
    /// (TP/SP + PP + DP wire traffic).
    pub network_traffic: optimus_units::Bytes,
    /// Failure-expected inflation of this estimate under a
    /// [`crate::CheckpointSpec`]; absent when no failure process is
    /// modeled.
    pub resilience: Option<ResilienceReport>,
}

impl Serialize for TrainingReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("time_per_batch".to_owned(), self.time_per_batch.to_value()),
            ("breakdown".to_owned(), self.breakdown.to_value()),
            ("memory".to_owned(), self.memory.to_value()),
            ("microbatches".to_owned(), self.microbatches.to_value()),
            ("model_flops".to_owned(), self.model_flops.to_value()),
            ("mfu".to_owned(), self.mfu.to_value()),
            (
                "layer_gemm_split".to_owned(),
                self.layer_gemm_split.to_value(),
            ),
            ("device_flops".to_owned(), self.device_flops.to_value()),
            ("dram_traffic".to_owned(), self.dram_traffic.to_value()),
            (
                "network_traffic".to_owned(),
                self.network_traffic.to_value(),
            ),
        ];
        if let Some(resilience) = &self.resilience {
            fields.push(("resilience".to_owned(), resilience.to_value()));
        }
        Value::Object(fields)
    }
}

impl core::fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "time/batch {} (MFU {:.1}%)",
            self.time_per_batch,
            self.mfu * 100.0
        )?;
        writeln!(
            f,
            "  compute {}  tp {}  pp {}  dp {}  bubble {}  update {}",
            self.breakdown.compute,
            self.breakdown.tp_comm,
            self.breakdown.pp_comm,
            self.breakdown.dp_comm,
            self.breakdown.bubble,
            self.breakdown.weight_update
        )?;
        write!(f, "  memory: {}", self.memory)?;
        if let Some(resilience) = &self.resilience {
            write!(f, "\n  resilience: {resilience}")?;
        }
        Ok(())
    }
}
