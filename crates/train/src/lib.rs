//! End-to-end analytical performance model for distributed LLM training.
//!
//! Composes every substrate of the suite into the paper's training
//! estimator (Fig. 1): per-device kernel times from the hierarchical
//! roofline, Megatron TP/SP collectives per layer and microbatch, pipeline
//! schedules with bubbles and point-to-point transfers, the data-parallel
//! gradient all-reduce, and the optimizer update — plus the per-device
//! memory footprint of `optimus-memory`.
//!
//! See [`TrainingEstimator`] for the composition details and
//! [`TrainingReport`] for what comes out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod estimator;
mod prepared;
mod report;
mod resilience;

pub use config::TrainingConfig;
pub use estimator::{TrainError, TrainingEstimator};
pub use prepared::PreparedTrainingEstimator;
pub use report::{GemmBoundSplit, TrainingBreakdown, TrainingReport};
pub use resilience::{
    waste_fraction, young_daly_interval, CheckpointSpec, CheckpointTier, ElasticReport,
    ResilienceReport, StackContext, TierKind, TierReport, DELTA_FRACTION_DEFAULT,
};
