//! Checkpoint/restart resilience modeling for distributed training.
//!
//! At the cluster scales the paper targets, failures dominate real
//! wall-clock: a 64-GPU job with a 50 000-hour per-GPU MTBF fails about
//! every 32 days of compute, and a 16 384-GPU job every 3 hours. A
//! [`CheckpointSpec`] prices that reality into the training estimate with
//! the classic Young–Daly first-order model:
//!
//! * **Checkpoint cost `δ`** — the per-device model state (parameters +
//!   optimizer moments, from `optimus-memory`) streamed over the node's
//!   egress link (`ClusterSpec::inter_link`, with its size-dependent
//!   utilization derating from `optimus-hw`). Larger TP/PP shards the
//!   state thinner, so per-device checkpoints *shrink* as a strategy
//!   spreads out.
//! * **Cluster MTBF `M`** — under the default exponential process, the
//!   per-GPU MTBF divided by the GPU count: failure rates add, so
//!   doubling the fleet halves the time between job-stopping faults.
//!   This is the blast-radius term that reorders the strategy frontier.
//! * **Waste fraction** `w(τ) = δ/τ + (τ/2 + R)/M` — checkpoint overhead
//!   per useful second, plus the expected half-interval of rework and the
//!   restart time `R` amortized over the mean time between failures.
//! * **Effective goodput** `g = 1 / (1 + w)` — the useful-step fraction
//!   of wall-clock; the failure-expected batch time is
//!   `time_per_batch / g`.
//!
//! When no interval is given, the spec picks the Young–Daly optimum
//! `τ* = √(2 δ M)`, which exactly minimizes `w(τ)` (the `R/M` term is
//! `τ`-independent) — a property the resilience proptests pin on a grid
//! around `τ*`.
//!
//! # The composable resilience stack
//!
//! The scalar model above is the *base tier*: one persistent full
//! checkpoint stream. Production jobs layer more machinery on top, and
//! the spec composes all of it:
//!
//! * **Tiered checkpoints** ([`CheckpointTier`]): in-memory peer replicas
//!   (priced as a DP-group all-gather through `optimus-collective`'s link
//!   model) and incremental optimizer-state deltas (a
//!   [`CheckpointSpec::delta_fraction`] slice of the sharded footprint)
//!   run *in front of* the persistent full tier, each with its own
//!   Young–Daly interval. Recovery rolls back to the most recent snapshot
//!   on a tier that *survives* the failure's blast radius — peer replicas
//!   only help when at least one DP group outlives the fault. Tiers that
//!   do not pay for themselves (overhead exceeds the rework they save)
//!   are dropped from the priced stack and reported `active: false`, so
//!   adding a tier can never make a spec worse.
//! * **Failure processes** ([`FailureProcess`]): exponential (closed
//!   form), Weibull with shape `k` for infant mortality (`k = 1` is
//!   special-cased to the exponential closed form bit-exactly; `k ≠ 1`
//!   refines the expected rework with a seeded splitmix64 renewal
//!   simulation, same stream discipline as `optimus-serve`'s fault
//!   streams), and a correlated rack process whose rack-sized events
//!   take out whole DP groups at once.
//! * **Elastic training** ([`CheckpointSpec::elastic`]): instead of a
//!   full restart, drop the DP groups inside the blast radius, re-warm in
//!   [`CheckpointSpec::rewarm_s`] seconds, and keep training at degraded
//!   throughput (re-priced live through the estimator) until spares
//!   arrive after [`CheckpointSpec::repair_s`]. The report carries both
//!   goodputs ([`ElasticReport`]); the cheaper strategy wins.
//!
//! The degenerate [`CheckpointSpec::none`] (infinite MTBF) adds nothing:
//! the report's resilience section stays absent and the serialized
//! [`crate::TrainingReport`] is byte-identical to a spec-free estimate.
//! Likewise, a spec that uses none of the stack extensions (exponential
//! process, no extra tiers, no elasticity) evaluates and serializes
//! byte-identically to the original scalar model — the goldens pin this.

use optimus_collective::{Collective, CommModel};
use optimus_hw::reliability::{splitmix64, weibull_scale};
use optimus_hw::{ClusterSpec, FailureProcess};
use optimus_memory::TrainingMemoryReport;
use optimus_parallel::Parallelism;
use optimus_units::{Bytes, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Error, Serialize, Value};

/// Default fraction of the sharded optimizer state captured by a
/// [`TierKind::PersistentDelta`] checkpoint.
pub const DELTA_FRACTION_DEFAULT: f64 = 0.25;

/// Stream constant mixed into the spec seed for the Weibull rework
/// renewal simulation (same splitmix64 discipline as the serving fault
/// streams).
const REWORK_STREAM: u64 = 0x8C5F_4A3B_2E1D_0F97;

/// Uptime draws per Weibull rework estimate. All `(τ, δ)` pairs of one
/// evaluation reuse the same draws (common random numbers), so tier
/// comparisons are noise-free and deterministic.
const REWORK_SAMPLES: usize = 2048;

/// What one extra checkpoint tier writes and where it survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierKind {
    /// Replicate device state into peer DP-group memory (a DP all-gather
    /// over the node-egress link). Fastest to write and to restore from,
    /// but lost whenever the failure's blast radius covers every DP
    /// group holding a replica.
    InMemoryPeer,
    /// The always-present base tier: the full model state streamed to
    /// persistent storage. Never listed as an *extra* tier — it is
    /// configured by [`CheckpointSpec::interval_s`].
    PersistentFull,
    /// An incremental checkpoint of only the optimizer-state delta
    /// ([`CheckpointSpec::delta_fraction`] of the sharded footprint),
    /// persisted between full snapshots. Survives any blast radius.
    PersistentDelta,
}

impl core::fmt::Display for TierKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InMemoryPeer => write!(f, "peer"),
            Self::PersistentFull => write!(f, "full"),
            Self::PersistentDelta => write!(f, "delta"),
        }
    }
}

/// One extra checkpoint tier layered in front of the persistent full
/// base tier: its kind plus an interval policy (`None` = per-tier
/// Young–Daly optimum over the tier's own write cost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointTier {
    /// What this tier snapshots and where it survives.
    pub kind: TierKind,
    /// Seconds of useful work between snapshots on this tier. `None`
    /// selects the tier's own Young–Daly optimum.
    pub interval_s: Option<f64>,
}

impl CheckpointTier {
    /// An in-memory peer-replica tier with auto interval.
    #[must_use]
    pub fn peer() -> Self {
        Self {
            kind: TierKind::InMemoryPeer,
            interval_s: None,
        }
    }

    /// A persistent optimizer-delta tier with auto interval.
    #[must_use]
    pub fn delta() -> Self {
        Self {
            kind: TierKind::PersistentDelta,
            interval_s: None,
        }
    }

    /// Fixes this tier's snapshot interval.
    #[must_use]
    pub fn with_interval(mut self, interval_s: f64) -> Self {
        self.interval_s = Some(interval_s);
        self
    }
}

/// The failure environment of one training job: the per-GPU MTBF and
/// failure process shape, the checkpoint tier stack, the recovery
/// strategy (restart vs elastic), and the power profile of overhead
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Mean seconds of uptime between failures of **one GPU**. The
    /// cluster-level MTBF follows from [`Self::process`]
    /// (`mtbf_s / gpus` for exponential). `0` or `+∞` disables
    /// resilience modeling entirely.
    pub mtbf_s: f64,
    /// Seconds of useful work between *persistent full* checkpoints.
    /// `None` selects the Young–Daly optimum `√(2 δ M)` per strategy.
    pub interval_s: Option<f64>,
    /// Seconds to restart the job after a failure (scheduling, process
    /// re-spawn, checkpoint reload), on top of the lost half-interval.
    pub restart_s: f64,
    /// The failure arrival process (default exponential).
    pub process: FailureProcess,
    /// Extra checkpoint tiers in front of the persistent full base tier.
    pub tiers: Vec<CheckpointTier>,
    /// Whether the job may shrink its DP group by the blast radius and
    /// keep training instead of restarting.
    pub elastic: bool,
    /// Seconds to re-shard and re-warm the shrunken job after an elastic
    /// recovery (in place of the full `restart_s`).
    pub rewarm_s: f64,
    /// Mean seconds until failed resources return to the job. A
    /// restarting job waits this long stopped; an elastic job trains
    /// degraded through it.
    pub repair_s: f64,
    /// Fraction of the sharded optimizer state a delta checkpoint
    /// captures.
    pub delta_fraction: f64,
    /// Utilization of the dynamic power budget during checkpoint /
    /// rework / restart overhead time (`1.0` = full burn, the classic
    /// pessimistic assumption; lower values let the energy model price
    /// overhead seconds at idle-ish power).
    pub overhead_util: f64,
    /// Base seed for the seeded rework simulation of non-exponential
    /// processes.
    pub seed: u64,
}

impl CheckpointSpec {
    /// The degenerate no-failure spec: infinite MTBF. Reports estimated
    /// under it are byte-identical to reports with no spec at all.
    #[must_use]
    pub fn none() -> Self {
        Self {
            mtbf_s: f64::INFINITY,
            interval_s: None,
            restart_s: 0.0,
            process: FailureProcess::Exponential,
            tiers: Vec::new(),
            elastic: false,
            rewarm_s: 0.0,
            repair_s: 0.0,
            delta_fraction: DELTA_FRACTION_DEFAULT,
            overhead_util: 1.0,
            seed: 0,
        }
    }

    /// A failure process with per-GPU MTBF `mtbf_s` seconds, Young–Daly
    /// auto-interval, and zero restart cost.
    #[must_use]
    pub fn with_mtbf(mtbf_s: f64) -> Self {
        Self {
            mtbf_s,
            ..Self::none()
        }
    }

    /// Fixes the persistent-full checkpoint interval instead of the
    /// Young–Daly optimum.
    #[must_use]
    pub fn with_interval(mut self, interval_s: f64) -> Self {
        self.interval_s = Some(interval_s);
        self
    }

    /// Sets the per-failure restart cost in seconds.
    #[must_use]
    pub fn with_restart(mut self, restart_s: f64) -> Self {
        self.restart_s = restart_s;
        self
    }

    /// Sets the failure arrival process.
    #[must_use]
    pub fn with_process(mut self, process: FailureProcess) -> Self {
        self.process = process;
        self
    }

    /// Adds one extra checkpoint tier to the stack.
    #[must_use]
    pub fn with_tier(mut self, tier: CheckpointTier) -> Self {
        self.tiers.push(tier);
        self
    }

    /// Replaces the extra-tier stack.
    #[must_use]
    pub fn with_tiers(mut self, tiers: Vec<CheckpointTier>) -> Self {
        self.tiers = tiers;
        self
    }

    /// Enables or disables elastic (shrink-and-continue) recovery.
    #[must_use]
    pub fn with_elastic(mut self, elastic: bool) -> Self {
        self.elastic = elastic;
        self
    }

    /// Sets the elastic re-warm cost in seconds.
    #[must_use]
    pub fn with_rewarm(mut self, rewarm_s: f64) -> Self {
        self.rewarm_s = rewarm_s;
        self
    }

    /// Sets the mean repair (resource return) time in seconds.
    #[must_use]
    pub fn with_repair(mut self, repair_s: f64) -> Self {
        self.repair_s = repair_s;
        self
    }

    /// Sets the optimizer-delta capture fraction.
    #[must_use]
    pub fn with_delta_fraction(mut self, delta_fraction: f64) -> Self {
        self.delta_fraction = delta_fraction;
        self
    }

    /// Sets the dynamic-power utilization of overhead time.
    #[must_use]
    pub fn with_overhead_util(mut self, overhead_util: f64) -> Self {
        self.overhead_util = overhead_util;
        self
    }

    /// Sets the seed of the rework simulation streams.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the failure process is active (finite positive MTBF).
    #[must_use]
    pub fn has_failures(&self) -> bool {
        self.mtbf_s.is_finite() && self.mtbf_s > 0.0
    }

    /// Whether the spec models no failures at all — the estimator then
    /// leaves the report's resilience section absent.
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.has_failures()
    }

    /// Whether the spec uses anything beyond the scalar Young–Daly base
    /// model (non-exponential process, extra tiers, elasticity, repair
    /// waits, or a non-default power profile).
    #[must_use]
    pub fn uses_stack(&self) -> bool {
        self.process != FailureProcess::Exponential
            || !self.tiers.is_empty()
            || self.elastic
            || self.repair_s != 0.0
            || self.overhead_util != 1.0
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range
    /// (negative/NaN MTBF, non-positive or non-finite interval,
    /// negative/non-finite restart cost, degenerate process shape,
    /// duplicate or base-kind extra tiers, out-of-range fractions).
    pub fn validate(&self) -> Result<(), String> {
        if self.mtbf_s.is_nan() || self.mtbf_s < 0.0 {
            return Err(format!("MTBF must be non-negative, got {}", self.mtbf_s));
        }
        if let Some(interval) = self.interval_s {
            if !(interval.is_finite() && interval > 0.0) {
                return Err(format!(
                    "checkpoint interval must be positive and finite, got {interval}"
                ));
            }
        }
        if !(self.restart_s.is_finite() && self.restart_s >= 0.0) {
            return Err(format!(
                "restart cost must be non-negative and finite, got {}",
                self.restart_s
            ));
        }
        self.process.validate()?;
        for (i, tier) in self.tiers.iter().enumerate() {
            if tier.kind == TierKind::PersistentFull {
                return Err(
                    "the persistent full tier is always present; extra tiers may only \
                     be peer or delta"
                        .to_owned(),
                );
            }
            if self.tiers[..i].iter().any(|t| t.kind == tier.kind) {
                return Err(format!("duplicate checkpoint tier '{}'", tier.kind));
            }
            if let Some(interval) = tier.interval_s {
                if !(interval.is_finite() && interval > 0.0) {
                    return Err(format!(
                        "tier '{}' interval must be positive and finite, got {interval}",
                        tier.kind
                    ));
                }
            }
        }
        if !(self.rewarm_s.is_finite() && self.rewarm_s >= 0.0) {
            return Err(format!(
                "re-warm cost must be non-negative and finite, got {}",
                self.rewarm_s
            ));
        }
        if !(self.repair_s.is_finite() && self.repair_s >= 0.0) {
            return Err(format!(
                "repair time must be non-negative and finite, got {}",
                self.repair_s
            ));
        }
        if !(self.delta_fraction.is_finite()
            && self.delta_fraction > 0.0
            && self.delta_fraction <= 1.0)
        {
            return Err(format!(
                "delta fraction must be in (0, 1], got {}",
                self.delta_fraction
            ));
        }
        if !(self.overhead_util.is_finite() && (0.0..=1.0).contains(&self.overhead_util)) {
            return Err(format!(
                "overhead utilization must be in [0, 1], got {}",
                self.overhead_util
            ));
        }
        Ok(())
    }

    /// A copy safe to embed in JSON reports: a disabled failure process is
    /// normalized to `mtbf_s = 0` (JSON cannot carry `∞`; `0` and `∞`
    /// both mean "never fails"), and any non-finite stack parameter is
    /// normalized to its inert default so the vendored serde never emits
    /// `null` for them.
    #[must_use]
    pub fn json_safe(mut self) -> Self {
        if !self.has_failures() {
            self.mtbf_s = 0.0;
            self.restart_s = 0.0;
        }
        self.process = self.process.json_safe();
        if !self.rewarm_s.is_finite() {
            self.rewarm_s = 0.0;
        }
        if !self.repair_s.is_finite() {
            self.repair_s = 0.0;
        }
        if !self.delta_fraction.is_finite() {
            self.delta_fraction = DELTA_FRACTION_DEFAULT;
        }
        if !self.overhead_util.is_finite() {
            self.overhead_util = 1.0;
        }
        for tier in &mut self.tiers {
            if tier.interval_s.is_some_and(|s| !s.is_finite()) {
                tier.interval_s = None;
            }
        }
        self
    }

    /// Prices this spec for one evaluated strategy: `memory` is the
    /// strategy's per-device footprint, `gpus` its device count, and
    /// `time_per_batch` the failure-free batch time. `None` when the
    /// failure process is disabled (or `gpus == 0`).
    ///
    /// This signature has no parallelism context, so peer tiers are
    /// inapplicable and elastic recovery falls back to restart pricing —
    /// use [`Self::evaluate_stack`] (or the prepared estimator, which
    /// wires it up) for the full stack.
    #[must_use]
    pub fn evaluate(
        &self,
        cluster: &ClusterSpec,
        memory: &TrainingMemoryReport,
        gpus: usize,
        time_per_batch: Time,
    ) -> Option<ResilienceReport> {
        self.evaluate_stack(
            &StackContext {
                cluster,
                memory,
                gpus,
                parallelism: None,
                comm: CommModel::Auto,
                time_per_batch,
            },
            &|_| None,
        )
    }

    /// Prices the full resilience stack for one evaluated strategy.
    ///
    /// `reprice` maps a shrunken DP degree to the failure-free time of
    /// the correspondingly shrunken batch (the elastic repricing entry
    /// point of [`crate::PreparedTrainingEstimator`]); return `None` to
    /// declare the shrink infeasible. `None` overall when the failure
    /// process is disabled (or `gpus == 0`).
    #[must_use]
    pub fn evaluate_stack(
        &self,
        ctx: &StackContext<'_>,
        reprice: &dyn Fn(usize) -> Option<Time>,
    ) -> Option<ResilienceReport> {
        if !self.has_failures() || ctx.gpus == 0 {
            return None;
        }
        let memory = ctx.memory;
        let gpus = ctx.gpus;
        // Model state per device: parameters + optimizer moments. The
        // gradient buffer is transient and activations are recomputed, so
        // neither belongs in a checkpoint.
        let checkpoint_bytes = memory.parameters + memory.optimizer;
        // Every device streams its shard over the node's egress link in
        // parallel; the size-dependent utilization derating penalizes the
        // small shards of wide strategies.
        let link = &ctx.cluster.inter_link;
        let checkpoint_write = checkpoint_bytes / link.effective_bandwidth(checkpoint_bytes);
        let delta = checkpoint_write.secs();

        let cluster_mtbf = self.process.cluster_mtbf(self.mtbf_s, gpus);
        let (interval, auto_interval) = match self.interval_s {
            Some(s) => (s, false),
            None => (young_daly_interval(delta, cluster_mtbf), true),
        };

        let checkpoint_overhead_frac = if interval > 0.0 {
            delta / interval
        } else {
            0.0
        };

        let dp = ctx.parallelism.map_or(1, |p| p.dp);
        let classes = self.failure_classes(ctx.parallelism, gpus, dp);
        let priced = self.price_tiers(ctx, checkpoint_bytes, cluster_mtbf, dp);
        // Weibull (k ≠ 1) refines the expected in-interval rework with a
        // seeded renewal simulation; one set of uptime draws is shared by
        // every (τ, δ) pair so tier comparisons use common random numbers.
        let draws = match self.process {
            FailureProcess::Weibull { shape } if shape != 1.0 => {
                Some(draw_weibull_uptimes(shape, cluster_mtbf, self.seed))
            }
            _ => None,
        };
        let rework_of = |tau: f64, write_s: f64| -> f64 {
            match &draws {
                Some(d) => expected_rework_from_draws(d, tau, write_s),
                None => tau / 2.0,
            }
        };

        let restart_frac = self.restart_s / cluster_mtbf;
        let repair_frac_v = self.repair_s / cluster_mtbf;

        // The stack only keeps tiers that pay for themselves: evaluate
        // every subset of the applicable extra tiers and keep the best
        // (the empty subset — the scalar base model — is always a
        // candidate, so tiers can never make a spec worse).
        let applicable: Vec<usize> = (0..priced.len())
            .filter(|&i| priced[i].applicable)
            .collect();
        let mut best: Option<Candidate> = None;
        for mask in 0u32..(1 << applicable.len()) {
            let active: Vec<&PricedTier> = applicable
                .iter()
                .enumerate()
                .filter(|(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &i)| &priced[i])
                .collect();
            let extra_overhead: f64 = active
                .iter()
                .map(|t| {
                    if t.interval_s > 0.0 {
                        t.write.secs() / t.interval_s
                    } else {
                        0.0
                    }
                })
                .sum();
            let overhead_total = checkpoint_overhead_frac + extra_overhead;

            let mut rework_frac = 0.0;
            let mut elastic_extra_frac = 0.0;
            let mut elastic_detail: Option<ElasticDetail> = None;
            let mut any_feasible = false;
            for class in &classes {
                // Roll back to the freshest snapshot on a tier that
                // survives this class's blast radius. Persistent tiers
                // always survive; peer replicas need a surviving DP group.
                let mut tau_c = interval;
                let mut write_c = delta;
                for t in &active {
                    let survives = match t.kind {
                        TierKind::InMemoryPeer => class.lost_groups < dp,
                        _ => true,
                    };
                    if survives && t.interval_s < tau_c {
                        tau_c = t.interval_s;
                        write_c = t.write.secs();
                    }
                }
                let rework_s = rework_of(tau_c, write_c);
                rework_frac += class.weight * (rework_s / cluster_mtbf);

                // Recovery strategy: full restart stops for restart_s and
                // waits out the repair; elastic re-warms the survivors and
                // trains degraded through the repair window.
                let restart_extra = restart_frac + repair_frac_v;
                let mut class_extra = restart_extra;
                if self.elastic && class.lost_groups < dp {
                    let shrunken = dp - class.lost_groups;
                    if let Some(t_deg) = reprice(shrunken) {
                        // Per-replica batch stays constant, so degraded
                        // sample throughput is (dp'/dp) · (t/t') of full.
                        let ratio = (shrunken as f64 * ctx.time_per_batch.secs()
                            / (dp as f64 * t_deg.secs()))
                        .clamp(0.0, 1.0);
                        let elastic_extra =
                            (self.rewarm_s + self.repair_s * (1.0 - ratio)) / cluster_mtbf;
                        class_extra = elastic_extra.min(restart_extra);
                        any_feasible = true;
                        if elastic_detail.is_none() {
                            elastic_detail = Some(ElasticDetail {
                                shrunken_dp: shrunken,
                                degraded_time_per_batch: t_deg,
                                throughput_ratio: ratio,
                            });
                        }
                    }
                }
                elastic_extra_frac += class.weight * class_extra;
            }

            let waste_restart = overhead_total + rework_frac + restart_frac + repair_frac_v;
            let waste_elastic = overhead_total + rework_frac + elastic_extra_frac;
            let waste_chosen = if self.elastic {
                waste_elastic.min(waste_restart)
            } else {
                waste_restart
            };
            let candidate = Candidate {
                mask,
                overhead_total,
                rework_frac,
                waste_restart,
                waste_elastic,
                waste_chosen,
                any_feasible,
                elastic_detail,
            };
            if best
                .as_ref()
                .is_none_or(|b| candidate.waste_chosen < b.waste_chosen)
            {
                best = Some(candidate);
            }
        }
        let best = best.expect("subset enumeration always includes the empty stack");

        let waste = best.waste_chosen;
        let goodput = 1.0 / (1.0 + waste);

        let tiers = if priced.is_empty() {
            None
        } else {
            let active_set: Vec<usize> = applicable
                .iter()
                .enumerate()
                .filter(|(bit, _)| best.mask & (1 << bit) != 0)
                .map(|(_, &i)| i)
                .collect();
            Some(
                priced
                    .iter()
                    .enumerate()
                    .map(|(i, t)| TierReport {
                        kind: t.kind,
                        bytes: t.bytes,
                        write: t.write,
                        interval: Time::from_secs(t.interval_s),
                        auto_interval: t.auto,
                        overhead_frac: if t.interval_s > 0.0 {
                            t.write.secs() / t.interval_s
                        } else {
                            0.0
                        },
                        active: active_set.contains(&i),
                    })
                    .collect(),
            )
        };
        let elastic = if self.elastic {
            let detail = best.elastic_detail.unwrap_or(ElasticDetail {
                shrunken_dp: dp.saturating_sub(1),
                degraded_time_per_batch: Time::ZERO,
                throughput_ratio: 0.0,
            });
            Some(ElasticReport {
                shrunken_dp: detail.shrunken_dp,
                feasible: best.any_feasible,
                degraded_time_per_batch: detail.degraded_time_per_batch,
                throughput_ratio: detail.throughput_ratio,
                restart_goodput: 1.0 / (1.0 + best.waste_restart),
                elastic_goodput: 1.0 / (1.0 + best.waste_elastic),
                waste,
                chosen: best.waste_elastic < best.waste_restart,
            })
        } else {
            None
        };

        Some(ResilienceReport {
            spec: self.clone().json_safe(),
            checkpoint_bytes,
            checkpoint_write,
            interval: Time::from_secs(interval),
            auto_interval,
            cluster_mtbf: Time::from_secs(cluster_mtbf),
            checkpoint_overhead_frac: best.overhead_total,
            rework_frac: best.rework_frac,
            restart_frac,
            goodput,
            expected_time_per_batch: ctx.time_per_batch * (1.0 + waste),
            process: if self.process.is_exponential() {
                None
            } else {
                Some(self.process.json_safe())
            },
            tiers,
            repair_frac: if self.repair_s == 0.0 {
                None
            } else {
                Some(repair_frac_v)
            },
            elastic,
        })
    }

    /// The failure event classes of this spec's process: each with its
    /// share of the total failure rate and the number of DP groups its
    /// blast radius removes.
    fn failure_classes(
        &self,
        parallelism: Option<Parallelism>,
        gpus: usize,
        dp: usize,
    ) -> Vec<FailureClass> {
        match self.process {
            FailureProcess::RackCorrelated { racks, rack_mtbf_s } => {
                let solo_rate = gpus as f64 / self.mtbf_s;
                let rack_rate = racks as f64 / rack_mtbf_s;
                let total = solo_rate + rack_rate;
                let rack_gpus = gpus.div_ceil(racks.max(1));
                let lost = match parallelism {
                    Some(p) => rack_gpus.div_ceil(p.tp * p.pp).clamp(1, dp),
                    // Without parallelism context, assume the rack takes
                    // the whole job (peer tiers inapplicable anyway).
                    None => dp,
                };
                vec![
                    FailureClass {
                        weight: solo_rate / total,
                        lost_groups: 1,
                    },
                    FailureClass {
                        weight: rack_rate / total,
                        lost_groups: lost,
                    },
                ]
            }
            _ => vec![FailureClass {
                weight: 1.0,
                lost_groups: 1,
            }],
        }
    }

    /// Prices every configured extra tier: bytes, write time over the
    /// appropriate path, and interval (given or per-tier Young–Daly).
    fn price_tiers(
        &self,
        ctx: &StackContext<'_>,
        checkpoint_bytes: Bytes,
        cluster_mtbf: f64,
        dp: usize,
    ) -> Vec<PricedTier> {
        let link = &ctx.cluster.inter_link;
        self.tiers
            .iter()
            .map(|tier| {
                let (bytes, write, applicable) = match tier.kind {
                    TierKind::InMemoryPeer => {
                        // Peer replication is a DP-group all-gather of the
                        // device state over the node-egress link; with no
                        // peer group there is nowhere to replicate to.
                        let write =
                            ctx.comm
                                .time(Collective::AllGather, checkpoint_bytes, dp, link);
                        (checkpoint_bytes, write, dp >= 2)
                    }
                    TierKind::PersistentFull | TierKind::PersistentDelta => {
                        let bytes = Bytes::new(memory_delta_bytes(ctx.memory, self.delta_fraction));
                        let write = bytes / link.effective_bandwidth(bytes);
                        (bytes, write, true)
                    }
                };
                let (interval_s, auto) = match tier.interval_s {
                    Some(s) => (s, false),
                    None => (young_daly_interval(write.secs(), cluster_mtbf), true),
                };
                PricedTier {
                    kind: tier.kind,
                    bytes,
                    write,
                    interval_s,
                    auto,
                    applicable,
                }
            })
            .collect()
    }
}

/// Sharded optimizer-state bytes captured by a delta checkpoint.
fn memory_delta_bytes(memory: &TrainingMemoryReport, fraction: f64) -> f64 {
    memory.optimizer.bytes() * fraction
}

impl Serialize for CheckpointSpec {
    fn to_value(&self) -> Value {
        // The three base fields always serialize (in the original order);
        // stack extensions are omitted at their defaults so base specs
        // stay byte-identical to the pre-stack format.
        let mut fields = vec![
            ("mtbf_s".to_owned(), self.mtbf_s.to_value()),
            ("interval_s".to_owned(), self.interval_s.to_value()),
            ("restart_s".to_owned(), self.restart_s.to_value()),
        ];
        if self.process != FailureProcess::Exponential {
            fields.push(("process".to_owned(), self.process.to_value()));
        }
        if !self.tiers.is_empty() {
            fields.push(("tiers".to_owned(), self.tiers.to_value()));
        }
        if self.elastic {
            fields.push(("elastic".to_owned(), self.elastic.to_value()));
        }
        if self.rewarm_s != 0.0 {
            fields.push(("rewarm_s".to_owned(), self.rewarm_s.to_value()));
        }
        if self.repair_s != 0.0 {
            fields.push(("repair_s".to_owned(), self.repair_s.to_value()));
        }
        if self.delta_fraction != DELTA_FRACTION_DEFAULT {
            fields.push(("delta_fraction".to_owned(), self.delta_fraction.to_value()));
        }
        if self.overhead_util != 1.0 {
            fields.push(("overhead_util".to_owned(), self.overhead_util.to_value()));
        }
        if self.seed != 0 {
            fields.push(("seed".to_owned(), self.seed.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for CheckpointSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut spec = Self {
            mtbf_s: f64::from_value(v.field_or_null("mtbf_s"))?,
            interval_s: Option::<f64>::from_value(v.field_or_null("interval_s"))?,
            restart_s: f64::from_value(v.field_or_null("restart_s"))?,
            ..Self::none()
        };
        if let Some(p) = v.get("process") {
            spec.process = FailureProcess::from_value(p)?;
        }
        if let Some(t) = v.get("tiers") {
            spec.tiers = Vec::<CheckpointTier>::from_value(t)?;
        }
        if let Some(e) = v.get("elastic") {
            spec.elastic = bool::from_value(e)?;
        }
        if let Some(x) = v.get("rewarm_s") {
            spec.rewarm_s = f64::from_value(x)?;
        }
        if let Some(x) = v.get("repair_s") {
            spec.repair_s = f64::from_value(x)?;
        }
        if let Some(x) = v.get("delta_fraction") {
            spec.delta_fraction = f64::from_value(x)?;
        }
        if let Some(x) = v.get("overhead_util") {
            spec.overhead_util = f64::from_value(x)?;
        }
        if let Some(x) = v.get("seed") {
            spec.seed = u64::from_value(x)?;
        }
        Ok(spec)
    }
}

/// Everything [`CheckpointSpec::evaluate_stack`] needs to know about the
/// strategy being priced.
#[derive(Debug, Clone, Copy)]
pub struct StackContext<'a> {
    /// The cluster whose links price checkpoint writes.
    pub cluster: &'a ClusterSpec,
    /// The strategy's per-device memory footprint.
    pub memory: &'a TrainingMemoryReport,
    /// The strategy's device count.
    pub gpus: usize,
    /// The strategy's parallelism (peer-tier group size and elastic
    /// blast-radius arithmetic); `None` disables both.
    pub parallelism: Option<Parallelism>,
    /// The collective policy pricing peer-replica all-gathers.
    pub comm: CommModel,
    /// The strategy's failure-free batch time.
    pub time_per_batch: Time,
}

/// One failure event class: its share of the total failure rate and how
/// many DP groups its blast radius removes.
struct FailureClass {
    weight: f64,
    lost_groups: usize,
}

/// One extra tier with its pricing resolved.
struct PricedTier {
    kind: TierKind,
    bytes: Bytes,
    write: Time,
    interval_s: f64,
    auto: bool,
    applicable: bool,
}

/// Elastic repricing detail of the first feasible failure class.
#[derive(Clone, Copy)]
struct ElasticDetail {
    shrunken_dp: usize,
    degraded_time_per_batch: Time,
    throughput_ratio: f64,
}

/// One tier subset's full evaluation.
struct Candidate {
    mask: u32,
    overhead_total: f64,
    rework_frac: f64,
    waste_restart: f64,
    waste_elastic: f64,
    waste_chosen: f64,
    any_feasible: bool,
    elastic_detail: Option<ElasticDetail>,
}

/// `REWORK_SAMPLES` cluster uptime draws from a Weibull process with the
/// given shape and mean, deterministically seeded.
fn draw_weibull_uptimes(shape: f64, mean_s: f64, seed: u64) -> Vec<f64> {
    let scale = weibull_scale(mean_s, shape);
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ REWORK_STREAM));
    let inv_shape = 1.0 / shape;
    (0..REWORK_SAMPLES)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            scale * (-(1.0 - u).ln()).powf(inv_shape)
        })
        .collect()
}

/// Expected useful work lost per failure, `E[min(U mod (τ+δ), τ)]`,
/// estimated over the shared uptime draws: work alternates `τ` useful
/// seconds with a `δ`-second snapshot, and a failure at uptime `U` loses
/// whatever of the current interval is uncheckpointed.
fn expected_rework_from_draws(draws: &[f64], tau: f64, write_s: f64) -> f64 {
    if tau.is_nan() || tau <= 0.0 {
        return 0.0;
    }
    let period = tau + write_s;
    let total: f64 = draws.iter().map(|u| (u % period).min(tau)).sum();
    total / draws.len() as f64
}

/// The Young–Daly optimal checkpoint interval `√(2 δ M)` for a
/// checkpoint that costs `checkpoint_write_s` seconds on a system with a
/// cluster-level MTBF of `cluster_mtbf_s` seconds. Exactly minimizes
/// [`waste_fraction`] over the interval (the restart term does not depend
/// on it).
#[must_use]
pub fn young_daly_interval(checkpoint_write_s: f64, cluster_mtbf_s: f64) -> f64 {
    (2.0 * checkpoint_write_s * cluster_mtbf_s).sqrt()
}

/// The first-order waste fraction `w(τ) = δ/τ + (τ/2 + R)/M`: non-useful
/// seconds per useful second spent on checkpoint writes, expected rework
/// (half an interval per failure), and restarts. Effective goodput is
/// `1 / (1 + w)`.
#[must_use]
pub fn waste_fraction(
    interval_s: f64,
    checkpoint_write_s: f64,
    restart_s: f64,
    cluster_mtbf_s: f64,
) -> f64 {
    checkpoint_write_s / interval_s + (interval_s / 2.0 + restart_s) / cluster_mtbf_s
}

/// One extra checkpoint tier's pricing inside a [`ResilienceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierReport {
    /// The tier's kind.
    pub kind: TierKind,
    /// Bytes this tier snapshots per device.
    pub bytes: Bytes,
    /// Time of one snapshot on this tier.
    pub write: Time,
    /// The tier's snapshot interval (given, or per-tier Young–Daly).
    pub interval: Time,
    /// Whether `interval` was auto-selected.
    pub auto_interval: bool,
    /// This tier's write overhead per useful second.
    pub overhead_frac: f64,
    /// Whether the stack kept this tier (tiers that don't pay for
    /// themselves are dropped and contribute nothing).
    pub active: bool,
}

/// The elastic-vs-restart comparison of a [`ResilienceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticReport {
    /// DP degree after shrinking by the (first feasible) blast radius.
    pub shrunken_dp: usize,
    /// Whether any failure class could be absorbed elastically.
    pub feasible: bool,
    /// Failure-free time of the shrunken batch (zero when infeasible).
    pub degraded_time_per_batch: Time,
    /// Degraded sample throughput as a fraction of the full job's.
    pub throughput_ratio: f64,
    /// Goodput of the restart-only strategy.
    pub restart_goodput: f64,
    /// Goodput continuing elastically through repairs.
    pub elastic_goodput: f64,
    /// Waste fraction of the chosen strategy.
    pub waste: f64,
    /// Whether elastic recovery strictly beat restarting.
    pub chosen: bool,
}

/// The resilience section of a [`crate::TrainingReport`]: how one
/// strategy's failure-free batch time inflates under a [`CheckpointSpec`].
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ResilienceReport {
    /// The spec priced into this report (JSON-safe copy).
    pub spec: CheckpointSpec,
    /// Per-device model state written per checkpoint (parameters +
    /// optimizer moments).
    pub checkpoint_bytes: Bytes,
    /// Time of one persistent full checkpoint write (`δ`): the state
    /// shard over the node-egress link's effective bandwidth.
    pub checkpoint_write: Time,
    /// The persistent-full checkpoint interval `τ` in effect (given, or
    /// Young–Daly).
    pub interval: Time,
    /// Whether `interval` was auto-selected via Young–Daly.
    pub auto_interval: bool,
    /// Cluster-level MTBF `M` under the spec's failure process
    /// (`mtbf_s / gpus` for exponential).
    pub cluster_mtbf: Time,
    /// Checkpoint write overhead per useful second, summed over every
    /// active tier (`δ/τ` for the base model).
    pub checkpoint_overhead_frac: f64,
    /// Expected rework per useful second: the uncheckpointed work lost
    /// per failure (on the freshest surviving tier) over `M`.
    pub rework_frac: f64,
    /// Restart time per useful second (`R/M`).
    pub restart_frac: f64,
    /// Effective goodput: the useful fraction of wall-clock,
    /// `1 / (1 + w)`.
    pub goodput: f64,
    /// Failure-expected time per batch: `time_per_batch / goodput`.
    pub expected_time_per_batch: Time,
    /// The non-exponential failure process, when one is in effect.
    pub process: Option<FailureProcess>,
    /// Extra checkpoint tier pricing, when tiers are configured.
    pub tiers: Option<Vec<TierReport>>,
    /// Repair-wait time per useful second, when `repair_s > 0`.
    pub repair_frac: Option<f64>,
    /// The elastic-vs-restart comparison, when elasticity is enabled.
    pub elastic: Option<ElasticReport>,
}

impl Serialize for ResilienceReport {
    fn to_value(&self) -> Value {
        // Stack extensions are omitted (not null) when absent so base
        // reports stay byte-identical to the pre-stack format.
        let mut fields = vec![
            ("spec".to_owned(), self.spec.to_value()),
            (
                "checkpoint_bytes".to_owned(),
                self.checkpoint_bytes.to_value(),
            ),
            (
                "checkpoint_write".to_owned(),
                self.checkpoint_write.to_value(),
            ),
            ("interval".to_owned(), self.interval.to_value()),
            ("auto_interval".to_owned(), self.auto_interval.to_value()),
            ("cluster_mtbf".to_owned(), self.cluster_mtbf.to_value()),
            (
                "checkpoint_overhead_frac".to_owned(),
                self.checkpoint_overhead_frac.to_value(),
            ),
            ("rework_frac".to_owned(), self.rework_frac.to_value()),
            ("restart_frac".to_owned(), self.restart_frac.to_value()),
            ("goodput".to_owned(), self.goodput.to_value()),
            (
                "expected_time_per_batch".to_owned(),
                self.expected_time_per_batch.to_value(),
            ),
        ];
        if let Some(process) = &self.process {
            fields.push(("process".to_owned(), process.to_value()));
        }
        if let Some(tiers) = &self.tiers {
            fields.push(("tiers".to_owned(), tiers.to_value()));
        }
        if let Some(repair_frac) = &self.repair_frac {
            fields.push(("repair_frac".to_owned(), repair_frac.to_value()));
        }
        if let Some(elastic) = &self.elastic {
            fields.push(("elastic".to_owned(), elastic.to_value()));
        }
        Value::Object(fields)
    }
}

impl ResilienceReport {
    /// Total waste fraction `w` of the chosen recovery strategy: for the
    /// base model exactly `δ/τ + (τ/2 + R)/M`; with repair waits or an
    /// elastic recovery, their terms included.
    #[must_use]
    pub fn waste(&self) -> f64 {
        match &self.elastic {
            Some(e) if e.chosen => e.waste,
            _ => {
                self.checkpoint_overhead_frac
                    + self.rework_frac
                    + self.restart_frac
                    + self.repair_frac.unwrap_or(0.0)
            }
        }
    }
}

impl core::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "goodput {:.1}% (ckpt {} every {}{}, cluster MTBF {}, expected {})",
            self.goodput * 100.0,
            self.checkpoint_write,
            self.interval,
            if self.auto_interval { " auto" } else { "" },
            self.cluster_mtbf,
            self.expected_time_per_batch
        )?;
        if let Some(process) = &self.process {
            write!(f, " [{process}]")?;
        }
        if let Some(tiers) = &self.tiers {
            for tier in tiers {
                write!(
                    f,
                    " [{}{} every {}]",
                    tier.kind,
                    if tier.active { "" } else { " off" },
                    tier.interval
                )?;
            }
        }
        if let Some(elastic) = &self.elastic {
            write!(
                f,
                " [elastic {}: dp→{} at {:.0}% vs restart {:.1}%]",
                if elastic.chosen { "on" } else { "off" },
                elastic.shrunken_dp,
                elastic.throughput_ratio * 100.0,
                elastic.restart_goodput * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_memory::{training_memory, RecomputeMode, TrainingMemorySpec};
    use optimus_model::presets as models;
    use optimus_parallel::{Parallelism, PipelineSchedule};

    fn memory_for(p: Parallelism) -> TrainingMemoryReport {
        training_memory(
            &models::llama2_13b(),
            &TrainingMemorySpec {
                batch: 64,
                seq: 2048,
                parallelism: p,
                schedule: PipelineSchedule::OneFOneB,
                precision: optimus_hw::Precision::Fp16,
                recompute: RecomputeMode::Selective,
            },
        )
        .unwrap()
    }

    fn stack_ctx<'a>(
        cluster: &'a ClusterSpec,
        memory: &'a TrainingMemoryReport,
        p: Parallelism,
        t: Time,
    ) -> StackContext<'a> {
        StackContext {
            cluster,
            memory,
            gpus: p.total_gpus(),
            parallelism: Some(p),
            comm: CommModel::Auto,
            time_per_batch: t,
        }
    }

    #[test]
    fn none_is_inactive_and_valid() {
        let spec = CheckpointSpec::none();
        assert!(spec.is_none());
        assert!(!spec.has_failures());
        assert!(spec.validate().is_ok());
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        assert!(spec
            .evaluate(&cluster, &memory, 64, Time::from_secs(10.0))
            .is_none());
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(CheckpointSpec::with_mtbf(-1.0).validate().is_err());
        assert!(CheckpointSpec::with_mtbf(f64::NAN).validate().is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_interval(0.0)
            .validate()
            .is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_interval(f64::INFINITY)
            .validate()
            .is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_restart(-3.0)
            .validate()
            .is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_interval(600.0)
            .with_restart(120.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_stacks() {
        let base = CheckpointSpec::with_mtbf(1e5);
        assert!(base
            .clone()
            .with_tier(CheckpointTier {
                kind: TierKind::PersistentFull,
                interval_s: None
            })
            .validate()
            .is_err());
        assert!(base
            .clone()
            .with_tier(CheckpointTier::peer())
            .with_tier(CheckpointTier::peer())
            .validate()
            .is_err());
        assert!(base
            .clone()
            .with_tier(CheckpointTier::delta().with_interval(-5.0))
            .validate()
            .is_err());
        assert!(base.clone().with_delta_fraction(0.0).validate().is_err());
        assert!(base.clone().with_delta_fraction(1.5).validate().is_err());
        assert!(base.clone().with_overhead_util(1.2).validate().is_err());
        assert!(base.clone().with_rewarm(f64::NAN).validate().is_err());
        assert!(base.clone().with_repair(-1.0).validate().is_err());
        assert!(base
            .clone()
            .with_process(FailureProcess::Weibull { shape: 0.0 })
            .validate()
            .is_err());
        assert!(base
            .with_tier(CheckpointTier::peer())
            .with_tier(CheckpointTier::delta())
            .with_elastic(true)
            .with_process(FailureProcess::Weibull { shape: 0.7 })
            .validate()
            .is_ok());
    }

    #[test]
    fn cluster_mtbf_scales_inversely_with_gpus() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        let spec = CheckpointSpec::with_mtbf(1e8).with_restart(60.0);
        let t = Time::from_secs(10.0);
        let r64 = spec.evaluate(&cluster, &memory, 64, t).unwrap();
        let r128 = spec.evaluate(&cluster, &memory, 128, t).unwrap();
        assert!(
            (r64.cluster_mtbf.secs() - 2.0 * r128.cluster_mtbf.secs()).abs() < 1e-6,
            "doubling the fleet must halve the cluster MTBF"
        );
        assert!(
            r128.goodput < r64.goodput,
            "more GPUs ⇒ more failures ⇒ less goodput"
        );
        assert!(r128.expected_time_per_batch > r64.expected_time_per_batch);
    }

    #[test]
    fn auto_interval_is_young_daly_and_given_interval_wins() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        let t = Time::from_secs(10.0);
        let auto = CheckpointSpec::with_mtbf(1e8)
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        assert!(auto.auto_interval);
        let expect = young_daly_interval(auto.checkpoint_write.secs(), auto.cluster_mtbf.secs());
        assert!((auto.interval.secs() - expect).abs() < 1e-9);
        let fixed = CheckpointSpec::with_mtbf(1e8)
            .with_interval(1234.0)
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        assert!(!fixed.auto_interval);
        assert_eq!(fixed.interval.secs(), 1234.0);
        // The Young–Daly pick can only beat a fixed interval.
        assert!(auto.goodput >= fixed.goodput);
    }

    #[test]
    fn wider_sharding_shrinks_the_checkpoint() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let narrow = memory_for(Parallelism::new(8, 2, 1));
        let wide = memory_for(Parallelism::new(2, 8, 1).with_sp(true));
        let spec = CheckpointSpec::with_mtbf(1e8);
        let t = Time::from_secs(10.0);
        let rn = spec.evaluate(&cluster, &narrow, 16, t).unwrap();
        let rw = spec.evaluate(&cluster, &wide, 16, t).unwrap();
        assert!(
            rw.checkpoint_bytes < rn.checkpoint_bytes,
            "TP8 shards model state thinner than TP2"
        );
        assert!(rw.checkpoint_write < rn.checkpoint_write);
    }

    #[test]
    fn waste_decomposes_and_goodput_inverts_it() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        let r = CheckpointSpec::with_mtbf(5e7)
            .with_restart(300.0)
            .evaluate(&cluster, &memory, 64, Time::from_secs(10.0))
            .unwrap();
        let w = waste_fraction(
            r.interval.secs(),
            r.checkpoint_write.secs(),
            300.0,
            r.cluster_mtbf.secs(),
        );
        assert!((r.waste() - w).abs() < 1e-12);
        assert!((r.goodput - 1.0 / (1.0 + w)).abs() < 1e-12);
        assert!(
            (r.expected_time_per_batch.secs() - 10.0 * (1.0 + w)).abs() < 1e-9,
            "expected batch time must be the failure-free time over goodput"
        );
    }

    #[test]
    fn tiers_never_hurt_and_report_their_pricing() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let p = Parallelism::new(8, 8, 1).with_sp(true);
        let memory = memory_for(p);
        let t = Time::from_secs(10.0);
        // Harsh environment: failures every ~1.7 h of cluster time.
        let base = CheckpointSpec::with_mtbf(4e5).with_restart(900.0);
        let tiered = base
            .clone()
            .with_tier(CheckpointTier::peer())
            .with_tier(CheckpointTier::delta());
        let ctx = stack_ctx(&cluster, &memory, p, t);
        let rb = base.evaluate_stack(&ctx, &|_| None).unwrap();
        let rt = tiered.evaluate_stack(&ctx, &|_| None).unwrap();
        assert!(
            rt.goodput >= rb.goodput,
            "a tier that does not pay for itself must be dropped, not priced: \
             {} vs {}",
            rt.goodput,
            rb.goodput
        );
        let tiers = rt.tiers.as_ref().unwrap();
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].kind, TierKind::InMemoryPeer);
        assert_eq!(tiers[1].kind, TierKind::PersistentDelta);
        for tier in tiers.iter().filter(|t| t.active) {
            assert!(tier.write.secs() > 0.0);
            assert!(tier.interval.secs() > 0.0);
            assert!(
                tier.write < rt.checkpoint_write,
                "extra tiers must write less than a full persistent snapshot"
            );
        }
    }

    #[test]
    fn peer_tier_needs_a_peer_group() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let p = Parallelism::new(1, 8, 1).with_sp(true);
        let memory = memory_for(p);
        let spec = CheckpointSpec::with_mtbf(4e5)
            .with_restart(900.0)
            .with_tier(CheckpointTier::peer());
        let ctx = stack_ctx(&cluster, &memory, p, Time::from_secs(10.0));
        let r = spec.evaluate_stack(&ctx, &|_| None).unwrap();
        let tiers = r.tiers.as_ref().unwrap();
        assert!(!tiers[0].active, "dp=1 has no peer group to replicate into");
    }

    #[test]
    fn elastic_beats_restart_when_rewarm_is_cheap() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let p = Parallelism::new(8, 8, 1).with_sp(true);
        let memory = memory_for(p);
        let t = Time::from_secs(10.0);
        let spec = CheckpointSpec::with_mtbf(4e5)
            .with_restart(1800.0)
            .with_repair(3600.0)
            .with_rewarm(60.0)
            .with_elastic(true);
        let ctx = stack_ctx(&cluster, &memory, p, t);
        // Per-replica work is constant, so the shrunken batch takes about
        // the same wall-clock as the full one (slightly more here).
        let r = spec
            .evaluate_stack(&ctx, &|_| Some(Time::from_secs(10.1)))
            .unwrap();
        let e = r.elastic.as_ref().unwrap();
        assert!(e.feasible);
        assert!(e.chosen, "cheap re-warm must beat an 1800 s restart");
        assert_eq!(e.shrunken_dp, 7);
        assert!(e.elastic_goodput > e.restart_goodput);
        assert!(e.throughput_ratio > 0.8 && e.throughput_ratio <= 1.0);
        assert!((r.goodput - 1.0 / (1.0 + r.waste())).abs() < 1e-12);
    }

    #[test]
    fn weibull_infant_mortality_degrades_goodput() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        let t = Time::from_secs(10.0);
        let exp = CheckpointSpec::with_mtbf(4e5)
            .with_restart(900.0)
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        let infant = CheckpointSpec::with_mtbf(4e5)
            .with_restart(900.0)
            .with_process(FailureProcess::Weibull { shape: 0.7 })
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        assert!(
            infant.cluster_mtbf < exp.cluster_mtbf,
            "k < 1 min-stability shortens the cluster MTBF"
        );
        assert!(infant.goodput < exp.goodput);
        assert_eq!(infant.process, Some(FailureProcess::Weibull { shape: 0.7 }));
        assert!(
            exp.process.is_none(),
            "exponential reports omit the process"
        );
    }

    #[test]
    fn spec_serialization_omits_stack_defaults_and_round_trips() {
        let base = CheckpointSpec::with_mtbf(5e7).with_restart(300.0);
        let v = base.to_value();
        for key in [
            "process",
            "tiers",
            "elastic",
            "rewarm_s",
            "repair_s",
            "delta_fraction",
            "overhead_util",
            "seed",
        ] {
            assert!(v.get(key).is_none(), "base spec must omit '{key}'");
        }
        let full = base
            .with_process(FailureProcess::Weibull { shape: 0.7 })
            .with_tier(CheckpointTier::peer())
            .with_tier(CheckpointTier::delta().with_interval(120.0))
            .with_elastic(true)
            .with_rewarm(45.0)
            .with_repair(1200.0)
            .with_delta_fraction(0.5)
            .with_overhead_util(0.3)
            .with_seed(9);
        let round = CheckpointSpec::from_value(&full.to_value()).unwrap();
        assert_eq!(round, full);
        let text = serde_json::to_string(&full.clone().json_safe().to_value()).unwrap();
        assert!(
            !text.contains("null") || full.interval_s.is_none(),
            "stack fields must never serialize as null: {text}"
        );
    }
}
