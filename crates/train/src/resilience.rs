//! Checkpoint/restart resilience modeling for distributed training.
//!
//! At the cluster scales the paper targets, failures dominate real
//! wall-clock: a 64-GPU job with a 50 000-hour per-GPU MTBF fails about
//! every 32 days of compute, and a 16 384-GPU job every 3 hours. A
//! [`CheckpointSpec`] prices that reality into the training estimate with
//! the classic Young–Daly first-order model:
//!
//! * **Checkpoint cost `δ`** — the per-device model state (parameters +
//!   optimizer moments, from `optimus-memory`) streamed over the node's
//!   egress link (`ClusterSpec::inter_link`, with its size-dependent
//!   utilization derating from `optimus-hw`). Larger TP/PP shards the
//!   state thinner, so per-device checkpoints *shrink* as a strategy
//!   spreads out.
//! * **Cluster MTBF `M`** — the per-GPU MTBF divided by the GPU count:
//!   failure rates add, so doubling the fleet halves the time between
//!   job-stopping faults. This is the blast-radius term that reorders
//!   the strategy frontier: a strategy that buys latency with more GPUs
//!   also buys a proportionally higher failure rate.
//! * **Waste fraction** `w(τ) = δ/τ + (τ/2 + R)/M` — checkpoint overhead
//!   per useful second, plus the expected half-interval of rework and the
//!   restart time `R` amortized over the mean time between failures.
//! * **Effective goodput** `g = 1 / (1 + w)` — the useful-step fraction
//!   of wall-clock; the failure-expected batch time is
//!   `time_per_batch / g`.
//!
//! When no interval is given, the spec picks the Young–Daly optimum
//! `τ* = √(2 δ M)`, which exactly minimizes `w(τ)` (the `R/M` term is
//! `τ`-independent) — a property the resilience proptests pin on a grid
//! around `τ*`.
//!
//! The degenerate [`CheckpointSpec::none`] (infinite MTBF) adds nothing:
//! the report's resilience section stays absent and the serialized
//! [`crate::TrainingReport`] is byte-identical to a spec-free estimate.

use optimus_hw::ClusterSpec;
use optimus_memory::TrainingMemoryReport;
use optimus_units::{Bytes, Time};
use serde::{Deserialize, Serialize};

/// The failure environment of one training job: per-GPU MTBF, the
/// checkpoint interval policy, and the restart cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Mean seconds of uptime between failures of **one GPU**
    /// (exponential). The cluster-level MTBF is `mtbf_s / gpus`. `0` or
    /// `+∞` disables resilience modeling entirely.
    pub mtbf_s: f64,
    /// Seconds of useful work between checkpoints. `None` selects the
    /// Young–Daly optimum `√(2 δ M)` per strategy.
    pub interval_s: Option<f64>,
    /// Seconds to restart the job after a failure (scheduling, process
    /// re-spawn, checkpoint reload), on top of the lost half-interval.
    pub restart_s: f64,
}

impl CheckpointSpec {
    /// The degenerate no-failure spec: infinite MTBF. Reports estimated
    /// under it are byte-identical to reports with no spec at all.
    #[must_use]
    pub fn none() -> Self {
        Self {
            mtbf_s: f64::INFINITY,
            interval_s: None,
            restart_s: 0.0,
        }
    }

    /// A failure process with per-GPU MTBF `mtbf_s` seconds, Young–Daly
    /// auto-interval, and zero restart cost.
    #[must_use]
    pub fn with_mtbf(mtbf_s: f64) -> Self {
        Self {
            mtbf_s,
            ..Self::none()
        }
    }

    /// Fixes the checkpoint interval instead of the Young–Daly optimum.
    #[must_use]
    pub fn with_interval(mut self, interval_s: f64) -> Self {
        self.interval_s = Some(interval_s);
        self
    }

    /// Sets the per-failure restart cost in seconds.
    #[must_use]
    pub fn with_restart(mut self, restart_s: f64) -> Self {
        self.restart_s = restart_s;
        self
    }

    /// Whether the failure process is active (finite positive MTBF).
    #[must_use]
    pub fn has_failures(&self) -> bool {
        self.mtbf_s.is_finite() && self.mtbf_s > 0.0
    }

    /// Whether the spec models no failures at all — the estimator then
    /// leaves the report's resilience section absent.
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.has_failures()
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range
    /// (negative/NaN MTBF, non-positive or non-finite interval,
    /// negative/non-finite restart cost).
    pub fn validate(&self) -> Result<(), String> {
        if self.mtbf_s.is_nan() || self.mtbf_s < 0.0 {
            return Err(format!("MTBF must be non-negative, got {}", self.mtbf_s));
        }
        if let Some(interval) = self.interval_s {
            if !(interval.is_finite() && interval > 0.0) {
                return Err(format!(
                    "checkpoint interval must be positive and finite, got {interval}"
                ));
            }
        }
        if !(self.restart_s.is_finite() && self.restart_s >= 0.0) {
            return Err(format!(
                "restart cost must be non-negative and finite, got {}",
                self.restart_s
            ));
        }
        Ok(())
    }

    /// A copy safe to embed in JSON reports: a disabled failure process is
    /// normalized to `mtbf_s = 0` (JSON cannot carry `∞`; `0` and `∞`
    /// both mean "never fails").
    #[must_use]
    pub fn json_safe(mut self) -> Self {
        if !self.has_failures() {
            self.mtbf_s = 0.0;
            self.restart_s = 0.0;
        }
        self
    }

    /// Prices this spec for one evaluated strategy: `memory` is the
    /// strategy's per-device footprint, `gpus` its device count, and
    /// `time_per_batch` the failure-free batch time. `None` when the
    /// failure process is disabled (or `gpus == 0`).
    #[must_use]
    pub fn evaluate(
        &self,
        cluster: &ClusterSpec,
        memory: &TrainingMemoryReport,
        gpus: usize,
        time_per_batch: Time,
    ) -> Option<ResilienceReport> {
        if !self.has_failures() || gpus == 0 {
            return None;
        }
        // Model state per device: parameters + optimizer moments. The
        // gradient buffer is transient and activations are recomputed, so
        // neither belongs in a checkpoint.
        let checkpoint_bytes = memory.parameters + memory.optimizer;
        // Every device streams its shard over the node's egress link in
        // parallel; the size-dependent utilization derating penalizes the
        // small shards of wide strategies.
        let link = &cluster.inter_link;
        let checkpoint_write = checkpoint_bytes / link.effective_bandwidth(checkpoint_bytes);
        let delta = checkpoint_write.secs();

        let cluster_mtbf = self.mtbf_s / gpus as f64;
        let (interval, auto_interval) = match self.interval_s {
            Some(s) => (s, false),
            None => (young_daly_interval(delta, cluster_mtbf), true),
        };

        let checkpoint_overhead_frac = if interval > 0.0 {
            delta / interval
        } else {
            0.0
        };
        let rework_frac = interval / 2.0 / cluster_mtbf;
        let restart_frac = self.restart_s / cluster_mtbf;
        let waste = checkpoint_overhead_frac + rework_frac + restart_frac;
        let goodput = 1.0 / (1.0 + waste);

        Some(ResilienceReport {
            spec: self.json_safe(),
            checkpoint_bytes,
            checkpoint_write,
            interval: Time::from_secs(interval),
            auto_interval,
            cluster_mtbf: Time::from_secs(cluster_mtbf),
            checkpoint_overhead_frac,
            rework_frac,
            restart_frac,
            goodput,
            expected_time_per_batch: time_per_batch * (1.0 + waste),
        })
    }
}

/// The Young–Daly optimal checkpoint interval `√(2 δ M)` for a
/// checkpoint that costs `checkpoint_write_s` seconds on a system with a
/// cluster-level MTBF of `cluster_mtbf_s` seconds. Exactly minimizes
/// [`waste_fraction`] over the interval (the restart term does not depend
/// on it).
#[must_use]
pub fn young_daly_interval(checkpoint_write_s: f64, cluster_mtbf_s: f64) -> f64 {
    (2.0 * checkpoint_write_s * cluster_mtbf_s).sqrt()
}

/// The first-order waste fraction `w(τ) = δ/τ + (τ/2 + R)/M`: non-useful
/// seconds per useful second spent on checkpoint writes, expected rework
/// (half an interval per failure), and restarts. Effective goodput is
/// `1 / (1 + w)`.
#[must_use]
pub fn waste_fraction(
    interval_s: f64,
    checkpoint_write_s: f64,
    restart_s: f64,
    cluster_mtbf_s: f64,
) -> f64 {
    checkpoint_write_s / interval_s + (interval_s / 2.0 + restart_s) / cluster_mtbf_s
}

/// The resilience section of a [`crate::TrainingReport`]: how one
/// strategy's failure-free batch time inflates under a [`CheckpointSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// The spec priced into this report (JSON-safe copy).
    pub spec: CheckpointSpec,
    /// Per-device model state written per checkpoint (parameters +
    /// optimizer moments).
    pub checkpoint_bytes: Bytes,
    /// Time of one checkpoint write (`δ`): the state shard over the
    /// node-egress link's effective bandwidth.
    pub checkpoint_write: Time,
    /// The checkpoint interval `τ` in effect (given, or Young–Daly).
    pub interval: Time,
    /// Whether `interval` was auto-selected via Young–Daly.
    pub auto_interval: bool,
    /// Cluster-level MTBF `M = mtbf_s / gpus`.
    pub cluster_mtbf: Time,
    /// Checkpoint overhead per useful second (`δ/τ`).
    pub checkpoint_overhead_frac: f64,
    /// Expected rework per useful second (`(τ/2)/M`).
    pub rework_frac: f64,
    /// Restart time per useful second (`R/M`).
    pub restart_frac: f64,
    /// Effective goodput: the useful fraction of wall-clock,
    /// `1 / (1 + w)`.
    pub goodput: f64,
    /// Failure-expected time per batch: `time_per_batch / goodput`.
    pub expected_time_per_batch: Time,
}

impl ResilienceReport {
    /// Total waste fraction `w = δ/τ + (τ/2 + R)/M`.
    #[must_use]
    pub fn waste(&self) -> f64 {
        self.checkpoint_overhead_frac + self.rework_frac + self.restart_frac
    }
}

impl core::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "goodput {:.1}% (ckpt {} every {}{}, cluster MTBF {}, expected {})",
            self.goodput * 100.0,
            self.checkpoint_write,
            self.interval,
            if self.auto_interval { " auto" } else { "" },
            self.cluster_mtbf,
            self.expected_time_per_batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_memory::{training_memory, RecomputeMode, TrainingMemorySpec};
    use optimus_model::presets as models;
    use optimus_parallel::{Parallelism, PipelineSchedule};

    fn memory_for(p: Parallelism) -> TrainingMemoryReport {
        training_memory(
            &models::llama2_13b(),
            &TrainingMemorySpec {
                batch: 64,
                seq: 2048,
                parallelism: p,
                schedule: PipelineSchedule::OneFOneB,
                precision: optimus_hw::Precision::Fp16,
                recompute: RecomputeMode::Selective,
            },
        )
        .unwrap()
    }

    #[test]
    fn none_is_inactive_and_valid() {
        let spec = CheckpointSpec::none();
        assert!(spec.is_none());
        assert!(!spec.has_failures());
        assert!(spec.validate().is_ok());
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        assert!(spec
            .evaluate(&cluster, &memory, 64, Time::from_secs(10.0))
            .is_none());
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(CheckpointSpec::with_mtbf(-1.0).validate().is_err());
        assert!(CheckpointSpec::with_mtbf(f64::NAN).validate().is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_interval(0.0)
            .validate()
            .is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_interval(f64::INFINITY)
            .validate()
            .is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_restart(-3.0)
            .validate()
            .is_err());
        assert!(CheckpointSpec::with_mtbf(1e5)
            .with_interval(600.0)
            .with_restart(120.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn cluster_mtbf_scales_inversely_with_gpus() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        let spec = CheckpointSpec::with_mtbf(1e8).with_restart(60.0);
        let t = Time::from_secs(10.0);
        let r64 = spec.evaluate(&cluster, &memory, 64, t).unwrap();
        let r128 = spec.evaluate(&cluster, &memory, 128, t).unwrap();
        assert!(
            (r64.cluster_mtbf.secs() - 2.0 * r128.cluster_mtbf.secs()).abs() < 1e-6,
            "doubling the fleet must halve the cluster MTBF"
        );
        assert!(
            r128.goodput < r64.goodput,
            "more GPUs ⇒ more failures ⇒ less goodput"
        );
        assert!(r128.expected_time_per_batch > r64.expected_time_per_batch);
    }

    #[test]
    fn auto_interval_is_young_daly_and_given_interval_wins() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        let t = Time::from_secs(10.0);
        let auto = CheckpointSpec::with_mtbf(1e8)
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        assert!(auto.auto_interval);
        let expect = young_daly_interval(auto.checkpoint_write.secs(), auto.cluster_mtbf.secs());
        assert!((auto.interval.secs() - expect).abs() < 1e-9);
        let fixed = CheckpointSpec::with_mtbf(1e8)
            .with_interval(1234.0)
            .evaluate(&cluster, &memory, 64, t)
            .unwrap();
        assert!(!fixed.auto_interval);
        assert_eq!(fixed.interval.secs(), 1234.0);
        // The Young–Daly pick can only beat a fixed interval.
        assert!(auto.goodput >= fixed.goodput);
    }

    #[test]
    fn wider_sharding_shrinks_the_checkpoint() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let narrow = memory_for(Parallelism::new(8, 2, 1));
        let wide = memory_for(Parallelism::new(2, 8, 1).with_sp(true));
        let spec = CheckpointSpec::with_mtbf(1e8);
        let t = Time::from_secs(10.0);
        let rn = spec.evaluate(&cluster, &narrow, 16, t).unwrap();
        let rw = spec.evaluate(&cluster, &wide, 16, t).unwrap();
        assert!(
            rw.checkpoint_bytes < rn.checkpoint_bytes,
            "TP8 shards model state thinner than TP2"
        );
        assert!(rw.checkpoint_write < rn.checkpoint_write);
    }

    #[test]
    fn waste_decomposes_and_goodput_inverts_it() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let memory = memory_for(Parallelism::new(8, 8, 1).with_sp(true));
        let r = CheckpointSpec::with_mtbf(5e7)
            .with_restart(300.0)
            .evaluate(&cluster, &memory, 64, Time::from_secs(10.0))
            .unwrap();
        let w = waste_fraction(
            r.interval.secs(),
            r.checkpoint_write.secs(),
            300.0,
            r.cluster_mtbf.secs(),
        );
        assert!((r.waste() - w).abs() < 1e-12);
        assert!((r.goodput - 1.0 / (1.0 + w)).abs() < 1e-12);
        assert!(
            (r.expected_time_per_batch.secs() - 10.0 * (1.0 + w)).abs() < 1e-9,
            "expected batch time must be the failure-free time over goodput"
        );
    }
}
