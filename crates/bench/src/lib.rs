//! Benchmark-only crate; all content lives in `benches/`.
//!
//! One Criterion group per table/figure of the paper (regenerating the
//! exact rows the paper reports), plus micro-benches of each estimator.
