//! Micro-benchmarks of the analytical engines themselves: roofline kernel
//! costing, collective costing, memory models, and the end-to-end
//! training/inference estimators. These quantify the "early design space
//! exploration" speed the analytical approach buys.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus::collective::{Collective, CommModel};
use optimus::memory::{training_memory, RecomputeMode, TrainingMemorySpec};
use optimus::prelude::*;
use optimus::roofline::{GemmShape, RooflineModel};
use std::hint::black_box;

fn bench_roofline(c: &mut Criterion) {
    let a100 = hw::presets::a100_sxm_80gb();
    let model = RooflineModel::new(&a100);
    c.bench_function("roofline/fat_gemm", |b| {
        b.iter(|| {
            black_box(
                model
                    .gemm(black_box(GemmShape::new(4096, 4096, 4096)), Precision::Fp16)
                    .unwrap(),
            )
        })
    });
    c.bench_function("roofline/decode_gemv", |b| {
        b.iter(|| {
            black_box(
                model
                    .gemm(black_box(GemmShape::new(1, 16384, 4096)), Precision::Fp16)
                    .unwrap(),
            )
        })
    });
}

fn bench_collectives(c: &mut Criterion) {
    let link = hw::nettech::NvlinkGen::Gen3.link();
    let comm = CommModel::auto();
    c.bench_function("collective/allreduce_auto", |b| {
        b.iter(|| {
            black_box(comm.time(
                Collective::AllReduce,
                black_box(Bytes::from_mib(50.0)),
                8,
                &link,
            ))
        })
    });
}

fn bench_memory(c: &mut Criterion) {
    let spec = TrainingMemorySpec {
        batch: 64,
        seq: 2048,
        parallelism: Parallelism::new(1, 8, 8),
        schedule: PipelineSchedule::OneFOneB,
        precision: Precision::Fp16,
        recompute: RecomputeMode::Selective,
    };
    let model = model::presets::gpt_175b();
    c.bench_function("memory/training_footprint", |b| {
        b.iter(|| black_box(training_memory(&model, &spec).unwrap()))
    });
}

fn bench_training_estimator(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let cfg = TrainingConfig::new(
        model::presets::gpt_175b(),
        64,
        2048,
        Parallelism::new(1, 8, 8).with_sp(true),
    )
    .with_recompute(RecomputeMode::Selective);
    let estimator = TrainingEstimator::new(&cluster);
    c.bench_function("train/gpt175b_estimate", |b| {
        b.iter(|| black_box(estimator.estimate(&cfg).unwrap()))
    });
}

fn bench_inference_estimator(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let cfg = InferenceConfig::nvidia_llama_benchmark(model::presets::llama2_13b(), 4);
    let estimator = InferenceEstimator::new(&cluster);
    c.bench_function("infer/llama13b_estimate", |b| {
        b.iter(|| black_box(estimator.estimate(&cfg).unwrap()))
    });
}

criterion_group!(
    name = estimators;
    config = Criterion::default().sample_size(20);
    targets = bench_roofline,
        bench_collectives,
        bench_memory,
        bench_training_estimator,
        bench_inference_estimator
);
criterion_main!(estimators);
