//! Benchmarks of the strategy-sweep engine: enumeration/pruning alone,
//! end-to-end parallel sweeps, and frontier extraction. Future PRs can
//! watch sweep throughput (strategies evaluated per second) here.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus::prelude::*;
use optimus_sweep::{pareto_frontier, SweepEngine, SweepSpace, Workload};
use std::hint::black_box;

fn bench_enumerate(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let space = SweepSpace::power_of_two(64);
    let workload = Workload::training(64, 2048);
    c.bench_function("sweep/enumerate_llama13b_64gpu", |b| {
        b.iter(|| black_box(space.enumerate(&spec, &cluster, &workload)))
    });
}

fn bench_training_sweep(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let engine = SweepEngine::new(&cluster);
    let space = SweepSpace::power_of_two(16);
    let workload = Workload::training(16, 2048);
    c.bench_function("sweep/train_llama13b_16gpu", |b| {
        b.iter(|| black_box(engine.sweep(&spec, &workload, &space)))
    });
}

fn bench_inference_sweep(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let engine = SweepEngine::new(&cluster);
    let space = SweepSpace::power_of_two(8);
    let workload = Workload::inference(1, 200, 32);
    c.bench_function("sweep/infer_llama13b_8gpu", |b| {
        b.iter(|| black_box(engine.sweep(&spec, &workload, &space)))
    });
}

fn bench_frontier(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let report = SweepEngine::new(&cluster).sweep(
        &spec,
        &Workload::training(64, 2048),
        &SweepSpace::power_of_two(64),
    );
    c.bench_function("sweep/pareto_frontier_extraction", |b| {
        b.iter(|| black_box(pareto_frontier(&report.evaluated)))
    });
}

criterion_group!(
    sweep_benches,
    bench_enumerate,
    bench_training_sweep,
    bench_inference_sweep,
    bench_frontier
);
criterion_main!(sweep_benches);
