//! Benchmarks of the strategy-sweep engine: enumeration/pruning alone,
//! end-to-end parallel sweeps (memoized two-phase pipeline), the naive
//! per-point baseline it replaced, and frontier extraction. Future PRs can
//! watch sweep throughput (strategies evaluated per second) here;
//! `scripts/bench-sweep.sh` snapshots these numbers into
//! `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus::prelude::*;
use optimus::train::PreparedTrainingEstimator;
use optimus_sweep::{pareto_frontier, SweepEngine, SweepSpace, Workload};
use std::hint::black_box;
use std::sync::Arc;

fn bench_enumerate(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let space = SweepSpace::power_of_two(64);
    let workload = Workload::training(64, 2048);
    c.bench_function("sweep/enumerate_llama13b_64gpu", |b| {
        b.iter(|| black_box(space.enumerate(&spec, &cluster, &workload)))
    });
}

fn bench_training_sweep(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let engine = SweepEngine::new(&cluster);
    let space = SweepSpace::power_of_two(16);
    let workload = Workload::training(16, 2048);
    c.bench_function("sweep/train_llama13b_16gpu", |b| {
        b.iter(|| black_box(engine.sweep(&spec, &workload, &space)))
    });
}

/// The pre-memoization pipeline shape: every point evaluated through a
/// fresh context (graph rebuild + roofline pass + memory re-derivation per
/// point). The ratio against `sweep/train_llama13b_16gpu` is the win of
/// the two-phase pipeline.
fn bench_training_sweep_naive(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let engine = SweepEngine::new(&cluster);
    let space = SweepSpace::power_of_two(16);
    let workload = Workload::training(16, 2048);
    let points = space.enumerate(&spec, &cluster, &workload);
    c.bench_function("sweep/train_llama13b_16gpu_naive", |b| {
        b.iter(|| {
            for &point in &points {
                black_box(engine.evaluate(&spec, &workload, vec![point]));
            }
        })
    });
}

/// Phase-2 cost alone: one prepared estimator, one warm memo key — the
/// per-point assembly arithmetic every sweep point pays after the first
/// with its kernel sub-tuple.
fn bench_prepared_point_assembly(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let prepared =
        PreparedTrainingEstimator::new(&cluster, Arc::new(model::presets::llama2_13b()), 16, 2048);
    let p = Parallelism::new(2, 2, 2).with_sp(true);
    prepared.estimate(p, Precision::Fp16).unwrap(); // warm the key
    c.bench_function("sweep/prepared_point_assembly", |b| {
        b.iter(|| black_box(prepared.estimate(p, Precision::Fp16).unwrap()))
    });
}

fn bench_inference_sweep(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let engine = SweepEngine::new(&cluster);
    let space = SweepSpace::power_of_two(8);
    let workload = Workload::inference(1, 200, 32);
    c.bench_function("sweep/infer_llama13b_8gpu", |b| {
        b.iter(|| black_box(engine.sweep(&spec, &workload, &space)))
    });
}

fn bench_frontier(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let spec = model::presets::llama2_13b();
    let report = SweepEngine::new(&cluster).sweep(
        &spec,
        &Workload::training(64, 2048),
        &SweepSpace::power_of_two(64),
    );
    c.bench_function("sweep/pareto_frontier_extraction", |b| {
        b.iter(|| black_box(pareto_frontier(&report.evaluated)))
    });
}

criterion_group!(
    sweep_benches,
    bench_enumerate,
    bench_training_sweep,
    bench_training_sweep_naive,
    bench_prepared_point_assembly,
    bench_inference_sweep,
    bench_frontier
);
criterion_main!(sweep_benches);
