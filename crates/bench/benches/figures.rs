//! Regenerates the paper's figures inside the Criterion harness
//! (`cargo bench -p optimus-bench --bench figures`). Fig. 6's full
//! DSE sweep is represented by one optimized design point to keep the
//! harness fast; the full sweep is `cargo run --release -p
//! optimus-experiments --bin fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus::hw::memtech::DramTechnology;
use optimus::tech::{TechNode, UArchEngine};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    println!("\n=== Fig. 3 (GEMV validation) ===");
    let points = optimus_experiments::fig3::run();
    println!(
        "points: {}, MAPE varied {:.1}% / constant {:.1}%\n",
        points.len(),
        optimus_experiments::fig3::mape(&points, |p| p.varied_us),
        optimus_experiments::fig3::mape(&points, |p| p.const_us)
    );
    c.bench_function("fig3/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::fig3::run()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    println!("\n=== Fig. 4 (memory breakdown) ===");
    print!("{}", optimus_experiments::fig4::render());
    c.bench_function("fig4/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::fig4::run()))
    });
}

fn bench_fig5(c: &mut Criterion) {
    println!("\n=== Fig. 5 (GPU-generation scaling) ===");
    print!("{}", optimus_experiments::fig5::render());
    c.bench_function("fig5/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::fig5::run()))
    });
}

fn bench_fig6_point(c: &mut Criterion) {
    println!("\n=== Fig. 6 (one DSE-optimized design point) ===");
    let engine = UArchEngine::a100_at_n7();
    let point = optimus_experiments::fig6::optimize_point(
        &engine,
        TechNode::N3,
        DramTechnology::Hbm3,
        100.0,
    );
    println!(
        "N3/HBM3/100GBps: {:.3} s at alloc {:.0}%/{:.0}%\n",
        point.time_s,
        100.0 * point.alloc_compute,
        100.0 * point.alloc_sram
    );
    c.bench_function("fig6/dse_point", |b| {
        b.iter(|| {
            black_box(optimus_experiments::fig6::optimize_point(
                &engine,
                TechNode::N3,
                DramTechnology::Hbm3,
                100.0,
            ))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    println!("\n=== Fig. 7 (GEMM bound breakdown vs node) ===");
    print!("{}", optimus_experiments::fig7::render());
    c.bench_function("fig7/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::fig7::run()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    println!("\n=== Fig. 8 (prefill bound fractions) ===");
    print!("{}", optimus_experiments::fig8::render());
    c.bench_function("fig8/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::fig8::run()))
    });
}

fn bench_fig9(c: &mut Criterion) {
    println!("\n=== Fig. 9 (DRAM technology scaling) ===");
    print!("{}", optimus_experiments::fig9::render());
    c.bench_function("fig9/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::fig9::run()))
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig4, bench_fig5, bench_fig6_point, bench_fig7, bench_fig8, bench_fig9
);
criterion_main!(figures);
