//! Benchmarks of the extension studies: ablations (FlashAttention,
//! collective algorithms, schedules, utilization models) and the
//! energy/TCO analysis of the paper's §7 future work.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    println!("\n=== Ablations ===");
    print!("{}", optimus_experiments::ablations::render());
    c.bench_function("ablations/flash_attention", |b| {
        b.iter(|| black_box(optimus_experiments::ablations::flash_attention()))
    });
    c.bench_function("ablations/collectives", |b| {
        b.iter(|| black_box(optimus_experiments::ablations::collective_algorithms()))
    });
    c.bench_function("ablations/schedules", |b| {
        b.iter(|| black_box(optimus_experiments::ablations::schedules()))
    });
}

fn bench_tco(c: &mut Criterion) {
    println!("\n=== Performance per TCO ===");
    print!("{}", optimus_experiments::tco::render());
    c.bench_function("tco/training", |b| {
        b.iter(|| black_box(optimus_experiments::tco::training()))
    });
}

criterion_group!(
    name = extensions;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations, bench_tco
);
criterion_main!(extensions);
