//! Regenerates the paper's validation tables inside the Criterion harness:
//! each iteration recomputes the full table, so the benchmark doubles as a
//! reproduction run (`cargo bench -p optimus-bench --bench tables`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once so bench logs carry the artifact.
    println!("\n=== Table 1 (training-time validation) ===");
    print!("{}", optimus_experiments::table1::render());
    let rows = optimus_experiments::table1::run();
    println!(
        "mean |err| = {:.1}%\n",
        optimus_experiments::table1::mean_error_percent(&rows)
    );

    c.bench_function("table1/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::table1::run()))
    });
}

fn bench_table2(c: &mut Criterion) {
    println!("\n=== Table 2 (inference-latency validation) ===");
    print!("{}", optimus_experiments::table2::render());
    let rows = optimus_experiments::table2::run();
    println!(
        "mean |err| = {:.1}%\n",
        optimus_experiments::table2::mean_error_percent(&rows)
    );

    c.bench_function("table2/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::table2::run()))
    });
}

fn bench_table4(c: &mut Criterion) {
    println!("\n=== Table 4 (per-GEMM bound analysis) ===");
    print!("{}", optimus_experiments::table4::render());
    let rows = optimus_experiments::table4::run();
    println!(
        "bound agreement = {:.0}%\n",
        100.0 * optimus_experiments::table4::bound_agreement(&rows)
    );

    c.bench_function("table4/regenerate", |b| {
        b.iter(|| black_box(optimus_experiments::table4::run()))
    });
}

criterion_group!(
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table4
);
criterion_main!(tables);
