//! Benchmarks of the continuous-batching serving simulator: trace
//! generation alone, an end-to-end simulation at moderate load (the memo
//! tables absorb repeated iteration shapes), and a hot-cache re-run.
//! `scripts/bench-serve.sh` snapshots these numbers into
//! `BENCH_serve.json` so successive PRs can track simulated-requests-per-
//! second throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus::prelude::*;
use optimus_serve::{simulate, ServeConfig, TraceSpec};
use std::hint::black_box;
use std::sync::Arc;

fn trace_spec() -> TraceSpec {
    // 64 requests at 8 req/s keeps several requests in flight, so decode
    // iterations sweep through varying batch sizes and contexts.
    TraceSpec::poisson(42, 64, 8.0, 200, 32)
}

fn bench_trace_generation(c: &mut Criterion) {
    let spec = trace_spec();
    c.bench_function("serve/trace_64req", |b| {
        b.iter(|| black_box(spec.generate()))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_13b());
    let config = ServeConfig::new(2);
    let spec = trace_spec();
    c.bench_function("serve/llama13b_a100_tp2_64req", |b| {
        b.iter(|| black_box(simulate(&cluster, Arc::clone(&model), &config, &spec).unwrap()))
    });
}

fn bench_simulate_long_decode(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_7b());
    let config = ServeConfig::new(1);
    // Longer outputs shift the work into the decode loop — the regime the
    // per-step memo tables exist for.
    let spec = TraceSpec::poisson(7, 32, 4.0, 100, 128);
    c.bench_function("serve/llama7b_a100_tp1_long_decode", |b| {
        b.iter(|| black_box(simulate(&cluster, Arc::clone(&model), &config, &spec).unwrap()))
    });
}

criterion_group!(
    serve_benches,
    bench_trace_generation,
    bench_simulate,
    bench_simulate_long_decode
);
criterion_main!(serve_benches);
