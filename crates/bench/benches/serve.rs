//! Benchmarks of the continuous-batching serving simulator: trace
//! generation alone, end-to-end simulations at moderate load (the memo
//! tables absorb repeated iteration shapes), a million-request trace on
//! the streaming/sealed-table path, and a 16-point load sweep.
//! `scripts/bench-serve.sh` snapshots these numbers into
//! `BENCH_serve.json` so successive PRs can track simulated-requests-per-
//! second throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus::prelude::*;
use optimus_serve::{
    load_sweep, simulate, simulate_fleet_trace, simulate_trace, FaultSpec, FleetConfig, KvSpec,
    LengthDist, LoadStrategy, LoadSweepSpec, PrefixSpec, RouterPolicy, ServeConfig, SloSpec,
    TraceSpec,
};
use std::hint::black_box;
use std::sync::Arc;

fn trace_spec() -> TraceSpec {
    // 64 requests at 8 req/s keeps several requests in flight, so decode
    // iterations sweep through varying batch sizes and contexts.
    TraceSpec::poisson(42, 64, 8.0, 200, 32)
}

fn bench_trace_generation(c: &mut Criterion) {
    let spec = trace_spec();
    c.bench_function("serve/trace_64req", |b| {
        b.iter(|| black_box(spec.generate()))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_13b());
    let config = ServeConfig::new(2);
    let spec = trace_spec();
    c.bench_function("serve/llama13b_a100_tp2_64req", |b| {
        b.iter(|| black_box(simulate(&cluster, Arc::clone(&model), &config, &spec).unwrap()))
    });
}

fn bench_simulate_long_decode(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_7b());
    let config = ServeConfig::new(1);
    // Longer outputs shift the work into the decode loop — the regime the
    // per-step memo tables exist for.
    let spec = TraceSpec::poisson(7, 32, 4.0, 100, 128);
    c.bench_function("serve/llama7b_a100_tp1_long_decode", |b| {
        b.iter(|| black_box(simulate(&cluster, Arc::clone(&model), &config, &spec).unwrap()))
    });
}

/// The paged-KV path under prefix sharing: 10k requests carrying a hot
/// four-entry 256-token prefix pool on 16-token blocks — block-table
/// bookkeeping, refcounted prefix hits, and the generalized admission
/// queue all on the hot path (versus the reserved cursor admission the
/// other serve benches time).
fn bench_simulate_paged_prefix(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_7b());
    let config = ServeConfig::new(1).with_kv(KvSpec::paged(16));
    let spec = TraceSpec {
        prompt: LengthDist::Uniform { lo: 300, hi: 900 },
        output: LengthDist::Uniform { lo: 16, hi: 48 },
        prefixes: Some(PrefixSpec {
            pool: 4,
            tokens: 256,
            rate: 0.7,
        }),
        ..TraceSpec::poisson(11, 10_000, 40.0, 400, 32)
    };
    c.bench_function("serve/llama7b_paged_prefix_10k", |b| {
        b.iter(|| black_box(simulate(&cluster, Arc::clone(&model), &config, &spec).unwrap()))
    });
}

/// One million requests at deep saturation through the streaming path:
/// sealed decode table, recycled slots, completion ring, histogram
/// percentiles. The trace is pregenerated so the bench times the
/// simulator alone; the `<2 s` release-mode budget from the scale work is
/// what this number tracks.
fn bench_simulate_1m(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_13b());
    let config = ServeConfig::new(2);
    let trace = TraceSpec {
        seed: 42,
        requests: 1_000_000,
        arrival: optimus_serve::ArrivalProcess::Poisson { rate_per_s: 500.0 },
        prompt: LengthDist::Uniform { lo: 50, hi: 400 },
        output: LengthDist::Uniform { lo: 8, hi: 64 },
        prefixes: None,
        priority_classes: 1,
    }
    .generate();
    c.bench_function("serve/llama13b_1m_req", |b| {
        b.iter(|| black_box(simulate_trace(&cluster, Arc::clone(&model), &config, &trace).unwrap()))
    });
}

/// A 4-replica fleet with the state-aware least-outstanding router over
/// a 200k-request trace: every arrival steps all four replica engines to
/// the arrival instant before routing, so this tracks the stepped-engine
/// overhead on top of the streaming single-replica path.
fn bench_fleet_4rep(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_13b());
    let config = FleetConfig {
        replicas: 4,
        router: RouterPolicy::LeastOutstanding,
        replica: ServeConfig::new(2),
        faults: FaultSpec::none(),
    };
    let trace = TraceSpec {
        seed: 42,
        requests: 200_000,
        arrival: optimus_serve::ArrivalProcess::Poisson { rate_per_s: 1200.0 },
        prompt: LengthDist::Uniform { lo: 50, hi: 400 },
        output: LengthDist::Uniform { lo: 8, hi: 64 },
        prefixes: None,
        priority_classes: 1,
    }
    .generate();
    c.bench_function("fleet/llama13b_4rep", |b| {
        b.iter(|| {
            black_box(simulate_fleet_trace(&cluster, Arc::clone(&model), &config, &trace).unwrap())
        })
    });
}

/// The same 4-replica fleet under seeded churn: crashes drain in-flight
/// work back to the router, requeues re-route with original arrivals,
/// and every arrival consults the outage cursors — this tracks the cost
/// of the fault machinery on top of the fault-free fleet path above.
fn bench_fleet_4rep_chaos(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_13b());
    let config = FleetConfig {
        replicas: 4,
        router: RouterPolicy::LeastOutstanding,
        replica: ServeConfig::new(2),
        faults: FaultSpec::crashes(7, 60.0, 10.0),
    };
    let trace = TraceSpec {
        seed: 42,
        requests: 200_000,
        arrival: optimus_serve::ArrivalProcess::Poisson { rate_per_s: 1200.0 },
        prompt: LengthDist::Uniform { lo: 50, hi: 400 },
        output: LengthDist::Uniform { lo: 8, hi: 64 },
        prefixes: None,
        priority_classes: 1,
    }
    .generate();
    c.bench_function("fleet/llama13b_4rep_chaos", |b| {
        b.iter(|| {
            black_box(simulate_fleet_trace(&cluster, Arc::clone(&model), &config, &trace).unwrap())
        })
    });
}

/// A 16-cell (4 rates × 4 TP strategies) load sweep at 20k requests per
/// cell — the saturation-knee study shape, sealed tables shared per
/// strategy, cells rayon-parallel.
fn bench_load_sweep_16pt(c: &mut Criterion) {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = Arc::new(model::presets::llama2_13b());
    let spec = LoadSweepSpec {
        seed: 42,
        requests: 20_000,
        prompt: LengthDist::Uniform { lo: 50, hi: 400 },
        output: LengthDist::Uniform { lo: 8, hi: 64 },
        rates: vec![1.0, 8.0, 64.0, 256.0],
        strategies: [1, 2, 4, 8]
            .into_iter()
            .map(|tp| LoadStrategy::single(tp, Precision::Fp16))
            .collect(),
        slo: SloSpec::default(),
        router: RouterPolicy::RoundRobin,
        faults: None,
        prefixes: None,
        priority_classes: 1,
    };
    c.bench_function("load_sweep/16pt", |b| {
        b.iter(|| black_box(load_sweep(&cluster, &model, &spec)))
    });
}

criterion_group!(
    serve_benches,
    bench_trace_generation,
    bench_simulate,
    bench_simulate_long_decode,
    bench_simulate_paged_prefix
);
criterion_group!(
    name = scale_benches;
    // Each sample runs a seven-figure simulation; a handful of samples
    // keeps the snapshot honest without a minute-long bench run.
    config = Criterion::default().sample_size(3);
    targets = bench_simulate_1m, bench_fleet_4rep, bench_fleet_4rep_chaos, bench_load_sweep_16pt
);
criterion_main!(serve_benches, scale_benches);
