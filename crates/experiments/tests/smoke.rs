//! Smoke tests over every experiment generator (Fig. 6's full DSE sweep is
//! exercised by its binary and bench; here we only touch one point).

use optimus_experiments as exp;

#[test]
fn table1_shape_and_quality() {
    let rows = exp::table1::run();
    assert_eq!(rows.len(), 11, "Table 1 has eleven rows");
    assert!(exp::table1::mean_error_percent(&rows) < 8.0);
    assert_eq!(exp::table1::csv().len(), 12, "header + rows");
}

#[test]
fn table2_shape_and_quality() {
    let rows = exp::table2::run();
    assert_eq!(rows.len(), 11);
    assert!(exp::table2::mean_error_percent(&rows) < 12.0);
}

#[test]
fn table4_full_agreement() {
    let rows = exp::table4::run();
    assert_eq!(rows.len(), 6, "six GEMM functions");
    assert_eq!(exp::table4::bound_agreement(&rows), 1.0);
}

#[test]
fn fig3_varied_beats_constant() {
    let points = exp::fig3::run();
    assert!(points.len() >= 20);
    let varied = exp::fig3::mape(&points, |p| p.varied_us);
    let constant = exp::fig3::mape(&points, |p| p.const_us);
    assert!(
        varied < constant,
        "varied {varied:.1}% vs constant {constant:.1}%"
    );
    assert!(varied < 12.0);
}

#[test]
fn fig4_has_nine_bars() {
    assert_eq!(exp::fig4::run().len(), 9);
}

#[test]
fn fig5_normalization_is_consistent() {
    let bars = exp::fig5::run();
    // The last bar (B200-NVS-L) is the fastest per sample.
    let min = bars
        .iter()
        .map(|b| b.time_per_sample_s)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(bars.last().unwrap().time_per_sample_s, min);
    // Breakdown sums to the total.
    for b in &bars {
        let sum = b.compute_s + b.communication_s + b.other_s;
        assert!((sum - b.time_s).abs() < 1e-6 * b.time_s, "{}", b.label);
    }
}

#[test]
fn fig6_single_point_is_sane() {
    let engine = optimus::tech::UArchEngine::a100_at_n7();
    let p = exp::fig6::optimize_point(
        &engine,
        optimus::tech::TechNode::N7,
        optimus::hw::memtech::DramTechnology::Hbm2e,
        100.0,
    );
    assert!(p.time_s > 0.1 && p.time_s < 2.0, "time {:.3} s", p.time_s);
    assert!(p.alloc_compute + p.alloc_sram <= 0.91);
}

#[test]
fn fig7_bars_cover_all_nodes() {
    let bars = exp::fig7::run();
    assert_eq!(bars.len(), 21, "7 nodes x 3 HBM panels");
    assert!(bars.iter().all(|b| b.total_ms() > 0.0));
}

#[test]
fn fig8_has_four_bars() {
    let bars = exp::fig8::run();
    assert_eq!(bars.len(), 4);
}

#[test]
fn fig9_has_fourteen_bars_plus_reference() {
    let bars = exp::fig9::run();
    assert_eq!(bars.len(), 14, "7 sweep points x 2 system sizes");
    let h100 = exp::fig9::h100_reference();
    assert!(h100.eight_gpu_s < h100.two_gpu_s);
}

#[test]
fn flash_ablation_speedup_grows_with_seq() {
    let rows = exp::ablations::flash_attention();
    assert!(rows.windows(2).all(|w| w[1].speedup() > w[0].speedup()));
    assert!(rows.last().unwrap().speedup() > 2.0);
    // Flash's DRAM saving is the mechanism.
    for r in &rows {
        assert!(r.flash_dram_mib < r.standard_dram_mib);
    }
}

#[test]
fn schedule_ablation_ranks_memory_correctly() {
    let rows = exp::ablations::schedules();
    let gpipe = rows.iter().find(|r| r.schedule == "GPipe").unwrap();
    let one_f = rows.iter().find(|r| r.schedule == "1F1B").unwrap();
    assert!(gpipe.activations_gb > 3.0 * one_f.activations_gb);
    assert!((gpipe.time_s - one_f.time_s).abs() < 0.2 * one_f.time_s);
}

#[test]
fn utilization_ablation_prefers_varied() {
    let rows = exp::ablations::dram_utilization_modes();
    let varied = rows.iter().find(|r| r.constant.is_none()).unwrap();
    for r in rows.iter().filter(|r| r.constant.is_some()) {
        assert!(varied.mean_error_percent <= r.mean_error_percent);
    }
}

#[test]
fn tco_favors_new_silicon_for_training() {
    let rows = exp::tco::training();
    let a100 = rows.iter().find(|r| r.system.starts_with("A100")).unwrap();
    let b200 = rows.iter().find(|r| r.system.starts_with("B200")).unwrap();
    assert!(b200.samples_per_usd > 2.0 * a100.samples_per_usd);
}

#[test]
fn scaling_efficiency_declines_with_gpus() {
    let rows = exp::scaling::training_strong_scaling();
    assert!(rows.len() >= 4);
    assert!(rows
        .windows(2)
        .all(|w| w[1].efficiency <= w[0].efficiency + 1e-9));
    assert!(rows
        .windows(2)
        .all(|w| w[1].comm_share >= w[0].comm_share - 1e-9));
}

#[test]
fn batch_sweep_trades_latency_for_throughput() {
    let rows = exp::scaling::inference_batch_sweep();
    assert!(rows.windows(2).all(|w| w[1].latency_ms >= w[0].latency_ms));
    assert!(rows
        .windows(2)
        .all(|w| w[1].tokens_per_sec > w[0].tokens_per_sec));
    // §6.1: modest latency growth — 32x batch costs < 2x latency.
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    assert!(last.latency_ms / first.latency_ms < 2.0);
}
