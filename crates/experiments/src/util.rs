//! Table rendering and CSV export helpers.

use std::io::Write as _;
use std::path::Path;

/// Renders rows as a GitHub-flavored markdown table. The first row is the
/// header.
#[must_use]
pub fn markdown_table(rows: &[Vec<String>]) -> String {
    let Some(header) = rows.first() else {
        return String::new();
    };
    let cols = header.len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        out.push('|');
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!(" {:w$} |", cell, w = widths[i]));
        }
        out.push('\n');
        if r == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&format!("{:-<w$}|", "", w = w + 2));
            }
            out.push('\n');
        }
    }
    out
}

/// Writes rows as CSV (no quoting needed: cells are numeric or simple
/// labels).
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written.
pub fn write_csv(path: impl AsRef<Path>, rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Looks up a model preset by the name used in `refdata`.
///
/// # Panics
///
/// Panics on an unknown name (refdata and presets are maintained together).
#[must_use]
pub fn model_by_name(name: &str) -> optimus::model::ModelConfig {
    use optimus::model::presets as p;
    match name {
        "GPT-7B" => p::gpt_7b(),
        "GPT-22B" => p::gpt_22b(),
        "GPT-175B" => p::gpt_175b(),
        "GPT-310B" => p::gpt_310b(),
        "GPT-530B" => p::gpt_530b(),
        "GPT-1008B" => p::gpt_1008b(),
        "Llama2-7B" => p::llama2_7b(),
        "Llama2-13B" => p::llama2_13b(),
        "Llama2-70B" => p::llama2_70b(),
        other => panic!("unknown model preset `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_header_rule() {
        let rows = vec![
            vec!["a".to_owned(), "bb".to_owned()],
            vec!["1".to_owned(), "2".to_owned()],
        ];
        let md = markdown_table(&rows);
        assert!(md.contains("| a "));
        assert!(md.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    fn all_refdata_models_resolve() {
        for row in optimus::refdata::table1() {
            let _ = model_by_name(row.model);
        }
        for row in optimus::refdata::table2() {
            let _ = model_by_name(row.model);
        }
    }
}
