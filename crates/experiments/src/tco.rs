//! Performance-per-TCO study — the paper's §7 future work, implemented:
//! compare GPU generations on cost per unit of training/inference work.

use crate::util::model_by_name;
use optimus::energy::{CostModel, EnergyModel};
use optimus::memory::RecomputeMode;
use optimus::prelude::*;

/// One row of the training-TCO comparison.
#[derive(Debug, Clone)]
pub struct TrainingTcoRow {
    /// System label.
    pub system: &'static str,
    /// Time per batch, seconds.
    pub time_s: f64,
    /// Mean per-GPU power, watts.
    pub power_w: f64,
    /// Cost per batch, USD.
    pub usd_per_batch: f64,
    /// Samples per dollar (performance per TCO).
    pub samples_per_usd: f64,
}

/// One row of the inference-TCO comparison.
#[derive(Debug, Clone)]
pub struct InferenceTcoRow {
    /// System label.
    pub system: &'static str,
    /// Request latency, milliseconds.
    pub latency_ms: f64,
    /// Cost per request, USD.
    pub usd_per_request: f64,
    /// Generated tokens per dollar.
    pub tokens_per_usd: f64,
}

/// Training TCO: GPT-175B, batch 256 on 64 GPUs of each generation.
#[must_use]
pub fn training() -> Vec<TrainingTcoRow> {
    let systems: [(&'static str, ClusterSpec, Precision, EnergyModel, CostModel); 3] = [
        (
            "A100-HDR",
            hw::presets::dgx_a100_hdr_cluster(),
            Precision::Fp16,
            EnergyModel::a100_class(),
            CostModel::a100_system(),
        ),
        (
            "H100-NDR",
            hw::presets::dgx_h100_ndr_cluster(),
            Precision::Fp8,
            EnergyModel::h100_class(),
            CostModel::h100_system(),
        ),
        (
            "B200-NVS",
            hw::presets::dgx_b200_nvs_cluster(),
            Precision::Fp4,
            EnergyModel::b200_class(),
            CostModel::b200_system(),
        ),
    ];
    let model = model_by_name("GPT-175B");
    let parallelism = Parallelism::new(4, 8, 2).with_sp(true);
    let gpus = parallelism.total_gpus();
    let batch = 256;

    systems
        .into_iter()
        .map(|(label, cluster, precision, energy_model, cost_model)| {
            let cfg = TrainingConfig::new(model.clone(), batch, 2048, parallelism)
                .with_precision(precision)
                .with_recompute(RecomputeMode::Selective);
            let report = TrainingEstimator::new(&cluster)
                .estimate(&cfg)
                .expect("valid config");
            let energy = energy_model
                .scaled_for_precision(precision)
                .training_energy(&report, gpus);
            let cost = cost_model.training_cost(&report, &energy, gpus);
            TrainingTcoRow {
                system: label,
                time_s: report.time_per_batch.secs(),
                power_w: energy.mean_power(report.time_per_batch).watts() / gpus as f64,
                usd_per_batch: cost.total_usd,
                samples_per_usd: cost.perf_per_usd(batch as f64),
            }
        })
        .collect()
}

/// Inference TCO: Llama2-13B serving on one GPU of each generation.
#[must_use]
pub fn inference() -> Vec<InferenceTcoRow> {
    let systems: [(&'static str, ClusterSpec, EnergyModel, CostModel); 2] = [
        (
            "A100",
            hw::presets::dgx_a100_hdr_cluster(),
            EnergyModel::a100_class(),
            CostModel::a100_system(),
        ),
        (
            "H100",
            hw::presets::dgx_h100_ndr_cluster(),
            EnergyModel::h100_class(),
            CostModel::h100_system(),
        ),
    ];
    systems
        .into_iter()
        .map(|(label, cluster, energy_model, cost_model)| {
            let cfg =
                InferenceConfig::nvidia_llama_benchmark(optimus::model::presets::llama2_13b(), 1);
            let report = InferenceEstimator::new(&cluster)
                .estimate(&cfg)
                .expect("fp16");
            let energy = energy_model.inference_energy(&report, 1);
            let cost = cost_model.inference_cost(&report, &energy, 1);
            InferenceTcoRow {
                system: label,
                latency_ms: report.total.millis(),
                usd_per_request: cost.total_usd,
                tokens_per_usd: cost.perf_per_usd(200.0),
            }
        })
        .collect()
}

/// Renders both studies.
#[must_use]
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("## Training TCO: GPT-175B, batch 256 on 64 GPUs\n");
    let mut rows = vec![vec![
        "system".to_owned(),
        "time_s".to_owned(),
        "W/GPU".to_owned(),
        "usd_per_batch".to_owned(),
        "samples_per_usd".to_owned(),
    ]];
    for r in training() {
        rows.push(vec![
            r.system.to_owned(),
            format!("{:.1}", r.time_s),
            format!("{:.0}", r.power_w),
            format!("{:.4}", r.usd_per_batch),
            format!("{:.0}", r.samples_per_usd),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));

    out.push_str("\n## Inference TCO: Llama2-13B, 200+200 tokens, one GPU\n");
    let mut rows = vec![vec![
        "system".to_owned(),
        "latency_ms".to_owned(),
        "usd_per_request".to_owned(),
        "tokens_per_usd".to_owned(),
    ]];
    for r in inference() {
        rows.push(vec![
            r.system.to_owned(),
            format!("{:.0}", r.latency_ms),
            format!("{:.6}", r.usd_per_request),
            format!("{:.0}", r.tokens_per_usd),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));
    out
}

/// CSV rows of the training study.
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "system".to_owned(),
        "time_s".to_owned(),
        "usd_per_batch".to_owned(),
        "samples_per_usd".to_owned(),
    ]];
    for r in training() {
        out.push(vec![
            r.system.to_owned(),
            format!("{:.2}", r.time_s),
            format!("{:.4}", r.usd_per_batch),
            format!("{:.1}", r.samples_per_usd),
        ]);
    }
    out
}
