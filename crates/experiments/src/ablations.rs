//! Ablation studies over the design choices DESIGN.md calls out:
//! attention implementation, collective algorithm, pipeline schedule, and
//! the DRAM-utilization model.

use crate::util::model_by_name;
use optimus::collective::{Collective, CommModel};
use optimus::hw::{presets, DeviceCalibration};
use optimus::memory::{training_memory, RecomputeMode, TrainingMemorySpec};
use optimus::model::{graph, GraphParams, OpKind};
use optimus::prelude::*;
use optimus::roofline::RooflineModel;

/// FlashAttention vs. materialized attention: one GPT-7B layer's forward
/// pass on A100 across sequence lengths.
#[derive(Debug, Clone, Copy)]
pub struct FlashRow {
    /// Sequence length.
    pub seq: usize,
    /// Standard-attention layer time, milliseconds.
    pub standard_ms: f64,
    /// FlashAttention layer time, milliseconds.
    pub flash_ms: f64,
    /// Standard-attention DRAM traffic, MiB.
    pub standard_dram_mib: f64,
    /// FlashAttention DRAM traffic, MiB.
    pub flash_dram_mib: f64,
}

impl FlashRow {
    /// Speedup of flash over standard.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.standard_ms / self.flash_ms
    }
}

/// Runs the flash-vs-standard sweep (§1.1's IO-aware-attention trade-off).
#[must_use]
pub fn flash_attention() -> Vec<FlashRow> {
    let device = presets::a100_sxm_80gb();
    let roofline = RooflineModel::new(&device);
    let model = model_by_name("GPT-7B");

    [2048usize, 4096, 8192, 16384, 32768]
        .into_iter()
        .map(|seq| {
            let mut times = [0.0f64; 2];
            let mut drams = [0.0f64; 2];
            for (i, flash) in [false, true].into_iter().enumerate() {
                let p = GraphParams::prefill(1, seq, 1, Precision::Fp16).with_flash(flash);
                for op in graph::layer_forward_ops(&model, &p) {
                    let cost = match op.kind {
                        OpKind::Gemm(g) => roofline.batched_gemm(g, Precision::Fp16).unwrap(),
                        OpKind::Eltwise(e) => roofline.eltwise(e),
                        OpKind::Flash(fa) => roofline
                            .custom_kernel("flash", fa.flops(), &fa.traffic(), Precision::Fp16)
                            .unwrap(),
                    };
                    times[i] += cost.total().millis();
                    drams[i] += cost.dram_traffic().mib();
                }
            }
            FlashRow {
                seq,
                standard_ms: times[0],
                flash_ms: times[1],
                standard_dram_mib: drams[0],
                flash_dram_mib: drams[1],
            }
        })
        .collect()
}

/// Ring vs. double-binary-tree all-reduce across message sizes (8 ranks,
/// NVLink3) — the Eq. 3 / Eq. 4 trade-off.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveRow {
    /// Message volume, bytes.
    pub volume_bytes: f64,
    /// Ring time, microseconds.
    pub ring_us: f64,
    /// Tree time, microseconds.
    pub tree_us: f64,
}

/// Runs the collective-algorithm ablation.
#[must_use]
pub fn collective_algorithms() -> Vec<CollectiveRow> {
    let link = optimus::hw::nettech::NvlinkGen::Gen3.link();
    [1e4, 1e5, 1e6, 1e7, 5e7, 1e8]
        .into_iter()
        .map(|volume| {
            let v = Bytes::new(volume);
            CollectiveRow {
                volume_bytes: volume,
                ring_us: CommModel::Ring
                    .time(Collective::AllReduce, v, 8, &link)
                    .micros(),
                tree_us: CommModel::Tree
                    .time(Collective::AllReduce, v, 8, &link)
                    .micros(),
            }
        })
        .collect()
}

/// Pipeline-schedule ablation: GPT-175B (64 GPUs) under GPipe, 1F1B, and
/// interleaved 1F1B.
#[derive(Debug, Clone)]
pub struct ScheduleRow {
    /// Schedule label.
    pub schedule: String,
    /// Time per batch, seconds.
    pub time_s: f64,
    /// Bubble time, seconds.
    pub bubble_s: f64,
    /// Peak activation memory, GB.
    pub activations_gb: f64,
}

/// Runs the schedule ablation.
#[must_use]
pub fn schedules() -> Vec<ScheduleRow> {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = model_by_name("GPT-175B");
    let parallelism = Parallelism::new(1, 8, 8);
    [
        PipelineSchedule::GPipe,
        PipelineSchedule::OneFOneB,
        PipelineSchedule::interleaved(2),
        PipelineSchedule::interleaved(4),
    ]
    .into_iter()
    .map(|schedule| {
        let cfg = TrainingConfig::new(model.clone(), 64, 2048, parallelism)
            .with_recompute(RecomputeMode::Full {
                checkpoints_per_stage: None,
            })
            .with_schedule(schedule);
        let report = TrainingEstimator::new(&cluster)
            .estimate(&cfg)
            .expect("valid config");
        let memory = training_memory(
            &model,
            &TrainingMemorySpec {
                batch: 64,
                seq: 2048,
                parallelism,
                schedule,
                precision: Precision::Fp16,
                recompute: RecomputeMode::None,
            },
        )
        .expect("divides evenly");
        ScheduleRow {
            schedule: schedule.to_string(),
            time_s: report.time_per_batch.secs(),
            bubble_s: report.breakdown.bubble.secs(),
            activations_gb: memory.activations.gb(),
        }
    })
    .collect()
}

/// DRAM-utilization-model ablation: Table 2 accuracy under the varied
/// (size-dependent) curve vs. a constant factor — the Fig. 3 comparison
/// carried to the end-to-end level.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationRow {
    /// Constant factor used for the simplified model (`None` = varied).
    pub constant: Option<f64>,
    /// Mean Table 2 relative error on A100, percent.
    pub mean_error_percent: f64,
}

/// Runs the utilization-model ablation over the single-GPU Table 2 rows
/// (multi-GPU rows mix in network effects).
#[must_use]
pub fn dram_utilization_modes() -> Vec<UtilizationRow> {
    let rows: Vec<_> = optimus::refdata::table2()
        .into_iter()
        .filter(|r| r.tp == 1)
        .collect();
    let mut out = Vec::new();
    for constant in [None, Some(0.82), Some(0.5)] {
        let mut acc = presets::a100_sxm_80gb();
        if let Some(c) = constant {
            acc = acc.with_calibration(
                DeviceCalibration::datacenter_gpu().with_constant_dram_utilization(Ratio::new(c)),
            );
        }
        let node = optimus::hw::NodeSpec::new(acc, 8, optimus::hw::nettech::NvlinkGen::Gen3.link());
        let cluster = presets::single_node_cluster("ablate", node);
        let mut err = 0.0;
        for row in &rows {
            let cfg = InferenceConfig::nvidia_llama_benchmark(model_by_name(row.model), row.tp);
            let pred = InferenceEstimator::new(&cluster)
                .estimate(&cfg)
                .expect("fp16")
                .total
                .millis();
            err += optimus::relative_error_percent(pred, row.t_nvidia_a100_ms);
        }
        out.push(UtilizationRow {
            constant,
            mean_error_percent: err / rows.len() as f64,
        });
    }
    out
}

/// All four ablations rendered as one report.
#[must_use]
pub fn render() -> String {
    let mut out = String::new();

    out.push_str("## FlashAttention vs. standard attention (GPT-7B layer, A100)\n");
    let mut rows = vec![vec![
        "seq".to_owned(),
        "standard_ms".to_owned(),
        "flash_ms".to_owned(),
        "speedup".to_owned(),
        "standard_dram_mib".to_owned(),
        "flash_dram_mib".to_owned(),
    ]];
    for r in flash_attention() {
        rows.push(vec![
            r.seq.to_string(),
            format!("{:.2}", r.standard_ms),
            format!("{:.2}", r.flash_ms),
            format!("{:.2}", r.speedup()),
            format!("{:.0}", r.standard_dram_mib),
            format!("{:.0}", r.flash_dram_mib),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));

    out.push_str("\n## Ring vs. double-binary-tree all-reduce (8 ranks, NVLink3)\n");
    let mut rows = vec![vec![
        "volume_bytes".to_owned(),
        "ring_us".to_owned(),
        "tree_us".to_owned(),
        "winner".to_owned(),
    ]];
    for r in collective_algorithms() {
        rows.push(vec![
            format!("{:.0}", r.volume_bytes),
            format!("{:.1}", r.ring_us),
            format!("{:.1}", r.tree_us),
            if r.ring_us <= r.tree_us {
                "ring"
            } else {
                "tree"
            }
            .to_owned(),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));

    out.push_str("\n## Pipeline schedules (GPT-175B, 64 GPUs, batch 64)\n");
    let mut rows = vec![vec![
        "schedule".to_owned(),
        "time_s".to_owned(),
        "bubble_s".to_owned(),
        "activations_gb_no_recompute".to_owned(),
    ]];
    for r in schedules() {
        rows.push(vec![
            r.schedule.clone(),
            format!("{:.1}", r.time_s),
            format!("{:.1}", r.bubble_s),
            format!("{:.1}", r.activations_gb),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));

    out.push_str("\n## DRAM-utilization model (single-GPU Table 2 accuracy)\n");
    let mut rows = vec![vec!["model".to_owned(), "mean_error_%".to_owned()]];
    for r in dram_utilization_modes() {
        rows.push(vec![
            match r.constant {
                None => "varied (size-dependent)".to_owned(),
                Some(c) => format!("constant {c:.2}"),
            },
            format!("{:.1}", r.mean_error_percent),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));
    out
}

/// CSV rows (flash sweep only; the others are printed by `render`).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "seq".to_owned(),
        "standard_ms".to_owned(),
        "flash_ms".to_owned(),
        "speedup".to_owned(),
    ]];
    for r in flash_attention() {
        out.push(vec![
            r.seq.to_string(),
            format!("{:.3}", r.standard_ms),
            format!("{:.3}", r.flash_ms),
            format!("{:.3}", r.speedup()),
        ]);
    }
    out
}
