//! Fig. 9: inference latency vs. DRAM memory technology (GDDR6 → HBMX)
//! with NVLink-Gen3/Gen4, 2- and 8-GPU systems, Llama2-13B, B = 1,
//! 200 + 200 tokens; on-chip specifications fixed at A100 (7 nm).
//! Horizontal reference lines: H100-HBM3e systems on NVLink4.

use optimus::hw::memtech::DramTechnology;
use optimus::hw::nettech::NvlinkGen;
use optimus::hw::{presets, NodeSpec};
use optimus::model::presets as models;
use optimus::prelude::*;

/// One stacked bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// DRAM technology label.
    pub dram: DramTechnology,
    /// NVLink generation of the intra-node fabric.
    pub nvlink: NvlinkGen,
    /// GPU count (TP degree).
    pub gpus: usize,
    /// Device-time component (memory + the small compute/overhead parts),
    /// seconds.
    pub memory_s: f64,
    /// Communication component, seconds.
    pub communication_s: f64,
}

impl Bar {
    /// Total latency, seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.memory_s + self.communication_s
    }
}

/// H100 reference latencies (dashed lines of the figure).
#[derive(Debug, Clone, Copy)]
pub struct H100Reference {
    /// 2× H100-HBM3e latency, seconds.
    pub two_gpu_s: f64,
    /// 8× H100-HBM3e latency, seconds.
    pub eight_gpu_s: f64,
}

/// The `(dram, nvlink)` x-axis of the figure: the DRAM sweep on NVLink3
/// plus the HBMX-NV4 point.
#[must_use]
pub fn sweep() -> Vec<(DramTechnology, NvlinkGen)> {
    let mut v: Vec<(DramTechnology, NvlinkGen)> = DramTechnology::inference_sweep()
        .iter()
        .map(|&d| (d, NvlinkGen::Gen3))
        .collect();
    v.push((DramTechnology::HbmX, NvlinkGen::Gen4));
    v
}

fn estimate(cluster: &ClusterSpec, gpus: usize) -> (f64, f64) {
    let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), gpus);
    let r = InferenceEstimator::new(cluster)
        .estimate(&cfg)
        .expect("fp16");
    let device_time = (r.breakdown.memory + r.breakdown.compute + r.breakdown.overhead).secs();
    (device_time, r.breakdown.communication.secs())
}

/// Regenerates the 7 × 2 bars.
#[must_use]
pub fn run() -> Vec<Bar> {
    let mut bars = Vec::new();
    for (dram, nvlink) in sweep() {
        // A100 compute/on-chip, swapped DRAM stack.
        let acc = presets::a100_sxm_80gb()
            .with_dram(dram.typical_capacity(), dram.bandwidth())
            .renamed(format!("A100-{dram}"));
        let node = NodeSpec::new(acc, 8, nvlink.link());
        let cluster = presets::single_node_cluster(format!("{dram}-{nvlink}"), node);
        for gpus in [2usize, 8] {
            let (memory_s, communication_s) = estimate(&cluster, gpus);
            bars.push(Bar {
                dram,
                nvlink,
                gpus,
                memory_s,
                communication_s,
            });
        }
    }
    bars
}

/// The H100-HBM3e reference lines.
#[must_use]
pub fn h100_reference() -> H100Reference {
    let acc = presets::h100_sxm()
        .with_dram(
            DramTechnology::Hbm3e.typical_capacity(),
            DramTechnology::Hbm3e.bandwidth(),
        )
        .renamed("H100-HBM3e");
    let node = NodeSpec::new(acc, 8, NvlinkGen::Gen4.link());
    let cluster = presets::single_node_cluster("H100-HBM3e-NV4", node);
    let (m2, c2) = estimate(&cluster, 2);
    let (m8, c8) = estimate(&cluster, 8);
    H100Reference {
        two_gpu_s: m2 + c2,
        eight_gpu_s: m8 + c8,
    }
}

/// The figure as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "dram".to_owned(),
        "nvlink".to_owned(),
        "gpus".to_owned(),
        "memory_s".to_owned(),
        "communication_s".to_owned(),
        "total_s".to_owned(),
    ]];
    for b in run() {
        out.push(vec![
            b.dram.to_string(),
            b.nvlink.to_string(),
            b.gpus.to_string(),
            format!("{:.3}", b.memory_s),
            format!("{:.3}", b.communication_s),
            format!("{:.3}", b.total_s()),
        ]);
    }
    let h100 = h100_reference();
    out.push(vec![
        "H100-HBM3e-ref".to_owned(),
        "NV4".to_owned(),
        "2".to_owned(),
        String::new(),
        String::new(),
        format!("{:.3}", h100.two_gpu_s),
    ]);
    out.push(vec![
        "H100-HBM3e-ref".to_owned(),
        "NV4".to_owned(),
        "8".to_owned(),
        String::new(),
        String::new(),
        format!("{:.3}", h100.eight_gpu_s),
    ]);
    out
}

/// Renders the figure data for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
