//! Scaling analyses beyond the paper's figures: training strong scaling
//! (the §5.2 insight that the compute/communication ratio drives the
//! trend) and the inference batch sweep behind §6.1's
//! throughput-vs-latency statement.

use crate::util::model_by_name;
use optimus::memory::RecomputeMode;
use optimus::prelude::*;

/// One point of the training strong-scaling study.
#[derive(Debug, Clone)]
pub struct StrongScalingRow {
    /// Total GPUs.
    pub gpus: usize,
    /// Parallelism label.
    pub config: String,
    /// Time per (fixed global) batch, seconds.
    pub time_s: f64,
    /// Speedup over the smallest system.
    pub speedup: f64,
    /// Parallel efficiency: speedup / (gpus ratio).
    pub efficiency: f64,
    /// Communication share of the batch time.
    pub comm_share: f64,
}

/// Strong scaling: GPT-22B, fixed global batch 32, 8 → 256 A100s.
#[must_use]
pub fn training_strong_scaling() -> Vec<StrongScalingRow> {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let model = model_by_name("GPT-22B");
    // Grow DP while TP stays in-node and PP covers the 48 layers.
    let configs: Vec<Parallelism> = vec![
        Parallelism::new(1, 8, 1),
        Parallelism::new(2, 8, 1),
        Parallelism::new(4, 8, 1),
        Parallelism::new(8, 8, 1),
        Parallelism::new(16, 8, 1),
        Parallelism::new(32, 8, 1),
    ];
    let est = TrainingEstimator::new(&cluster);
    let mut rows = Vec::new();
    let mut base: Option<(usize, f64)> = None;
    for p in configs {
        let cfg = TrainingConfig::new(model.clone(), 32, 2048, p.with_sp(true))
            .with_recompute(RecomputeMode::Selective);
        let Ok(report) = est.estimate(&cfg) else {
            continue; // batch no longer divides the DP degree
        };
        let gpus = p.total_gpus();
        let time_s = report.time_per_batch.secs();
        let (g0, t0) = *base.get_or_insert((gpus, time_s));
        let speedup = t0 / time_s;
        rows.push(StrongScalingRow {
            gpus,
            config: p.to_string(),
            time_s,
            speedup,
            efficiency: speedup / (gpus as f64 / g0 as f64),
            comm_share: report.breakdown.communication().secs() / time_s,
        });
    }
    rows
}

/// One point of the inference batch sweep.
#[derive(Debug, Clone)]
pub struct BatchSweepRow {
    /// Serving batch size.
    pub batch: usize,
    /// Request latency, milliseconds.
    pub latency_ms: f64,
    /// System throughput, generated tokens per second.
    pub tokens_per_sec: f64,
    /// KV-cache footprint at the final context, GB.
    pub kv_cache_gb: f64,
}

/// Batch sweep: Llama2-13B on one A100, 200 + 200 tokens.
#[must_use]
pub fn inference_batch_sweep() -> Vec<BatchSweepRow> {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let est = InferenceEstimator::new(&cluster);
    [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|batch| {
            let cfg = InferenceConfig::new(model_by_name("Llama2-13B"), batch, 200, 200, 1);
            let r = est.estimate(&cfg).expect("fp16");
            BatchSweepRow {
                batch,
                latency_ms: r.total.millis(),
                tokens_per_sec: (batch * 200) as f64 / r.total.secs(),
                kv_cache_gb: r.memory.kv_cache.gb(),
            }
        })
        .collect()
}

/// Renders both studies.
#[must_use]
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("## Training strong scaling (GPT-22B, batch 32, A100-HDR)\n");
    let mut rows = vec![vec![
        "gpus".to_owned(),
        "config".to_owned(),
        "time_s".to_owned(),
        "speedup".to_owned(),
        "efficiency".to_owned(),
        "comm_share".to_owned(),
    ]];
    for r in training_strong_scaling() {
        rows.push(vec![
            r.gpus.to_string(),
            r.config.clone(),
            format!("{:.2}", r.time_s),
            format!("{:.2}", r.speedup),
            format!("{:.2}", r.efficiency),
            format!("{:.0}%", 100.0 * r.comm_share),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));

    out.push_str("\n## Inference batch sweep (Llama2-13B, 1 x A100)\n");
    let mut rows = vec![vec![
        "batch".to_owned(),
        "latency_ms".to_owned(),
        "tokens_per_s".to_owned(),
        "kv_cache_gb".to_owned(),
    ]];
    for r in inference_batch_sweep() {
        rows.push(vec![
            r.batch.to_string(),
            format!("{:.0}", r.latency_ms),
            format!("{:.0}", r.tokens_per_sec),
            format!("{:.2}", r.kv_cache_gb),
        ]);
    }
    out.push_str(&crate::markdown_table(&rows));
    out
}

/// CSV rows of the strong-scaling study.
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "gpus".to_owned(),
        "time_s".to_owned(),
        "efficiency".to_owned(),
    ]];
    for r in training_strong_scaling() {
        out.push(vec![
            r.gpus.to_string(),
            format!("{:.3}", r.time_s),
            format!("{:.3}", r.efficiency),
        ]);
    }
    out
}
