//! Fig. 6: GPT-7B training time per iteration vs. logic technology node
//! (N12…N1) for four HBM generations and three inter-node networks,
//! with the micro-architecture DSE-optimized at every node (§5.3).

use crate::util::model_by_name;
use optimus::dse::{GradientDescent, SearchSpace};
use optimus::hw::memtech::DramTechnology;
use optimus::hw::nettech::{self, NvlinkGen};
use optimus::hw::{ClusterSpec, NodeSpec};
use optimus::memory::RecomputeMode;
use optimus::prelude::*;
use optimus::refdata;
use optimus::tech::{Allocation, TechNode, UArchEngine};
use optimus::units::Bandwidth;

/// One point of the figure's six series.
#[derive(Debug, Clone)]
pub struct Point {
    /// Logic node.
    pub node: TechNode,
    /// HBM generation.
    pub hbm: DramTechnology,
    /// Inter-node network bandwidth per node, GB/s.
    pub network_gbps: f64,
    /// Predicted execution time per iteration, seconds.
    pub time_s: f64,
    /// The DSE-chosen compute allocation fraction.
    pub alloc_compute: f64,
    /// The DSE-chosen SRAM allocation fraction.
    pub alloc_sram: f64,
}

/// The `(HBM, network)` series of the figure.
#[must_use]
pub fn series() -> Vec<(DramTechnology, f64)> {
    vec![
        (DramTechnology::Hbm2, 100.0),
        (DramTechnology::Hbm2e, 100.0),
        (DramTechnology::Hbm3, 100.0),
        (DramTechnology::Hbm4, 100.0),
        (DramTechnology::Hbm4, 200.0),
        (DramTechnology::Hbm4, 400.0),
    ]
}

/// Builds the 1024-GPU cluster around a synthesized accelerator.
fn cluster_for(accelerator: optimus::hw::Accelerator, network_gbps: f64) -> ClusterSpec {
    let node = NodeSpec::new(accelerator, 8, NvlinkGen::Gen3.link());
    let inter = nettech::infiniband(
        format!("IB-{network_gbps:.0}GBps"),
        Bandwidth::from_gb_per_sec(network_gbps),
        node.gpus_per_node,
    );
    ClusterSpec::new("tech-sweep", node, inter)
}

/// Training time of the GPT-7B case on a given cluster.
fn objective_time(cluster: &ClusterSpec) -> f64 {
    let case = refdata::case_gpt7b();
    let cfg = TrainingConfig::new(
        model_by_name(case.model),
        case.batch,
        case.seq,
        case.parallelism(),
    )
    .with_recompute(RecomputeMode::Selective)
    .with_schedule(PipelineSchedule::OneFOneB);
    TrainingEstimator::new(cluster)
        .estimate(&cfg)
        .map(|r| r.time_per_batch.secs())
        .unwrap_or(f64::INFINITY)
}

/// Runs the DSE at one `(node, hbm, network)` point and returns the
/// optimized execution time.
#[must_use]
pub fn optimize_point(
    engine: &UArchEngine,
    node: TechNode,
    hbm: DramTechnology,
    network_gbps: f64,
) -> Point {
    let space = SearchSpace::default();
    let budget = optimus::tech::ResourceBudget::datacenter_gpu();
    let result = GradientDescent {
        iterations: 24,
        learning_rate: 0.08,
        probe: 5e-3,
    }
    .minimize(&space, |alloc: Allocation| {
        let acc = engine.synthesize(node, budget, alloc, hbm);
        objective_time(&cluster_for(acc, network_gbps))
    });
    Point {
        node,
        hbm,
        network_gbps,
        time_s: result.best.objective,
        alloc_compute: result.best.allocation.compute.get(),
        alloc_sram: result.best.allocation.sram.get(),
    }
}

/// Regenerates the full 7-node × 6-series sweep.
#[must_use]
pub fn run() -> Vec<Point> {
    let engine = UArchEngine::a100_at_n7();
    let mut points = Vec::new();
    for (hbm, network) in series() {
        for &node in TechNode::all() {
            points.push(optimize_point(&engine, node, hbm, network));
        }
    }
    points
}

/// The figure as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "node".to_owned(),
        "hbm".to_owned(),
        "network_gbps".to_owned(),
        "time_s".to_owned(),
        "alloc_compute".to_owned(),
        "alloc_sram".to_owned(),
    ]];
    for p in run() {
        out.push(vec![
            p.node.to_string(),
            p.hbm.to_string(),
            format!("{:.0}", p.network_gbps),
            format!("{:.3}", p.time_s),
            format!("{:.2}", p.alloc_compute),
            format!("{:.2}", p.alloc_sram),
        ]);
    }
    out
}

/// Renders the figure data for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
