//! Table 2: validation of inference latency on A100 and H100 systems.

use crate::util::model_by_name;
use optimus::prelude::*;
use optimus::refdata::{self, Table2Row};
use optimus::relative_error_percent;

/// One regenerated row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The transcribed reference row.
    pub reference: Table2Row,
    /// Our A100 prediction, milliseconds.
    pub a100_pred_ms: f64,
    /// Our A100 relative error vs. the NVIDIA report, percent.
    pub a100_error_percent: f64,
    /// Our H100 prediction, milliseconds.
    pub h100_pred_ms: f64,
    /// Our H100 relative error vs. the NVIDIA report, percent.
    pub h100_error_percent: f64,
}

/// Regenerates every Table 2 row (B = 1, 200 prompt + 200 generated).
#[must_use]
pub fn run() -> Vec<Row> {
    let a100 = hw::presets::dgx_a100_hdr_cluster();
    let h100 = hw::presets::dgx_h100_ndr_cluster();
    refdata::table2()
        .into_iter()
        .map(|reference| {
            let cfg = InferenceConfig::nvidia_llama_benchmark(
                model_by_name(reference.model),
                reference.tp,
            );
            let a = InferenceEstimator::new(&a100)
                .estimate(&cfg)
                .expect("A100 supports FP16");
            let h = InferenceEstimator::new(&h100)
                .estimate(&cfg)
                .expect("H100 supports FP16");
            Row {
                reference,
                a100_pred_ms: a.total.millis(),
                a100_error_percent: relative_error_percent(
                    a.total.millis(),
                    reference.t_nvidia_a100_ms,
                ),
                h100_pred_ms: h.total.millis(),
                h100_error_percent: relative_error_percent(
                    h.total.millis(),
                    reference.t_nvidia_h100_ms,
                ),
            }
        })
        .collect()
}

/// Mean absolute relative error across both device columns, percent.
#[must_use]
pub fn mean_error_percent(rows: &[Row]) -> f64 {
    rows.iter()
        .map(|r| r.a100_error_percent + r.h100_error_percent)
        .sum::<f64>()
        / (2.0 * rows.len() as f64)
}

/// The table as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "model".to_owned(),
        "tp".to_owned(),
        "a100_nvidia_ms".to_owned(),
        "a100_paper_ms".to_owned(),
        "a100_ours_ms".to_owned(),
        "a100_err_%".to_owned(),
        "h100_nvidia_ms".to_owned(),
        "h100_paper_ms".to_owned(),
        "h100_ours_ms".to_owned(),
        "h100_err_%".to_owned(),
    ]];
    for row in run() {
        let r = row.reference;
        out.push(vec![
            r.model.to_owned(),
            r.tp.to_string(),
            format!("{:.0}", r.t_nvidia_a100_ms),
            format!("{:.0}", r.t_paper_a100_ms),
            format!("{:.0}", row.a100_pred_ms),
            format!("{:.1}", row.a100_error_percent),
            format!("{:.0}", r.t_nvidia_h100_ms),
            format!("{:.0}", r.t_paper_h100_ms),
            format!("{:.0}", row.h100_pred_ms),
            format!("{:.1}", row.h100_error_percent),
        ]);
    }
    out
}

/// Renders the table for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
