//! Table 1: validation of training time per batch on A100 systems.

use crate::util::model_by_name;
use optimus::prelude::*;
use optimus::refdata::{self, Table1Row};
use optimus::relative_error_percent;

/// One regenerated row: the reference data plus our prediction.
#[derive(Debug, Clone)]
pub struct Row {
    /// The transcribed reference row.
    pub reference: Table1Row,
    /// Our predicted time per batch, seconds.
    pub t_pred_secs: f64,
    /// Our relative error vs. the reported time, percent.
    pub error_percent: f64,
}

/// Regenerates every Table 1 row on the modeled A100-HDR cluster.
#[must_use]
pub fn run() -> Vec<Row> {
    let cluster = hw::presets::dgx_a100_hdr_cluster();
    let estimator = TrainingEstimator::new(&cluster);
    refdata::table1()
        .into_iter()
        .map(|reference| {
            let cfg = TrainingConfig::new(
                model_by_name(reference.model),
                reference.batch,
                2048,
                reference.parallelism(),
            )
            .with_recompute(reference.recompute())
            .with_schedule(schedule_for(&reference));
            let report = estimator
                .estimate(&cfg)
                .expect("Table 1 configs are valid by construction");
            let t_pred_secs = report.time_per_batch.secs();
            Row {
                reference,
                t_pred_secs,
                error_percent: relative_error_percent(t_pred_secs, reference.t_ref_secs),
            }
        })
        .collect()
}

/// The schedule used for a Table 1 row: the sources ran the deep-pipeline
/// configurations with the interleaved 1F1B schedule (2 virtual stages)
/// and shallow ones with plain 1F1B.
fn schedule_for(row: &Table1Row) -> PipelineSchedule {
    if row.pp >= 8 {
        PipelineSchedule::interleaved(2)
    } else {
        PipelineSchedule::OneFOneB
    }
}

/// Mean absolute relative error across the table, percent.
#[must_use]
pub fn mean_error_percent(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.error_percent).sum::<f64>() / rows.len() as f64
}

/// The table as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "model".to_owned(),
        "gpus".to_owned(),
        "batch".to_owned(),
        "dp-tp-pp-sp".to_owned(),
        "recompute".to_owned(),
        "t_ref_s".to_owned(),
        "t_paper_s".to_owned(),
        "t_ours_s".to_owned(),
        "err_ours_%".to_owned(),
        "err_paper_%".to_owned(),
    ]];
    for row in run() {
        let r = row.reference;
        out.push(vec![
            r.model.to_owned(),
            r.gpus.to_string(),
            r.batch.to_string(),
            format!("{}", r.parallelism()),
            if r.selective { "selective" } else { "full" }.to_owned(),
            format!("{:.1}", r.t_ref_secs),
            format!("{:.1}", r.t_paper_secs),
            format!("{:.1}", row.t_pred_secs),
            format!("{:.1}", row.error_percent),
            format!("{:.1}", r.paper_error_percent()),
        ]);
    }
    out
}

/// Renders the table for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
