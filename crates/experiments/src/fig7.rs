//! Fig. 7: GEMM time per transformer layer split into memory- and
//! compute-bound components across technology nodes, for HBM2/3/4
//! (extracted from the Fig. 6 sweep at the 100 GB/s network point).

use crate::util::model_by_name;
use optimus::hw::memtech::DramTechnology;
use optimus::hw::nettech::{self, NvlinkGen};
use optimus::hw::{ClusterSpec, NodeSpec};
use optimus::memory::RecomputeMode;
use optimus::prelude::*;
use optimus::refdata;
use optimus::tech::{TechNode, UArchEngine};
use optimus::units::Bandwidth;

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Logic node.
    pub node: TechNode,
    /// HBM generation.
    pub hbm: DramTechnology,
    /// Time of compute-bound GEMMs in one layer (fwd+bwd, one microbatch),
    /// milliseconds.
    pub compute_bound_ms: f64,
    /// Time of memory-bound GEMMs, milliseconds.
    pub memory_bound_ms: f64,
}

impl Bar {
    /// Total GEMM time of the layer, milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.compute_bound_ms + self.memory_bound_ms
    }

    /// Fraction of GEMM time that is memory-bound.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        self.memory_bound_ms / self.total_ms()
    }
}

/// The HBM generations shown in the figure's three panels.
#[must_use]
pub fn panels() -> [DramTechnology; 3] {
    [
        DramTechnology::Hbm2,
        DramTechnology::Hbm3,
        DramTechnology::Hbm4,
    ]
}

/// Regenerates the 7-node × 3-panel breakdown (baseline allocation — the
/// bound-type migration is a property of node scaling, not of the DSE).
#[must_use]
pub fn run() -> Vec<Bar> {
    let engine = UArchEngine::a100_at_n7();
    let case = refdata::case_gpt7b();
    let model = model_by_name(case.model);
    let mut bars = Vec::new();
    for hbm in panels() {
        for &node in TechNode::all() {
            let acc = engine.synthesize_at_node(node, hbm);
            let node_spec = NodeSpec::new(acc, 8, NvlinkGen::Gen3.link());
            let inter = nettech::infiniband(
                "IB-100GBps",
                Bandwidth::from_gb_per_sec(100.0),
                node_spec.gpus_per_node,
            );
            let cluster = ClusterSpec::new("fig7", node_spec, inter);
            let cfg = TrainingConfig::new(model.clone(), case.batch, case.seq, case.parallelism())
                .with_recompute(RecomputeMode::Selective);
            let report = TrainingEstimator::new(&cluster)
                .estimate(&cfg)
                .expect("case config is valid");
            bars.push(Bar {
                node,
                hbm,
                compute_bound_ms: report.layer_gemm_split.compute_bound.millis(),
                memory_bound_ms: report.layer_gemm_split.memory_bound.millis(),
            });
        }
    }
    bars
}

/// The figure as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "node".to_owned(),
        "hbm".to_owned(),
        "compute_bound_ms".to_owned(),
        "memory_bound_ms".to_owned(),
        "memory_fraction".to_owned(),
    ]];
    for b in run() {
        out.push(vec![
            b.node.to_string(),
            b.hbm.to_string(),
            format!("{:.3}", b.compute_bound_ms),
            format!("{:.3}", b.memory_bound_ms),
            format!("{:.2}", b.memory_fraction()),
        ]);
    }
    out
}

/// Renders the figure data for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
