//! Table 4: per-GEMM bound types in the Llama2-13B summarization phase.

use optimus::model::{presets, OpRole};
use optimus::prelude::*;
use optimus::refdata::{self, RefBound, Table4Row};
use optimus::roofline::BoundType;

/// One regenerated row: reference vs. our prediction per device.
#[derive(Debug, Clone)]
pub struct Row {
    /// The transcribed reference row.
    pub reference: Table4Row,
    /// Our A100 time, microseconds.
    pub a100_us: f64,
    /// Our A100 bound classification.
    pub a100_bound: BoundType,
    /// Our H100 time, microseconds.
    pub h100_us: f64,
    /// Our H100 bound classification.
    pub h100_bound: BoundType,
}

impl Row {
    /// Whether our bound type agrees with the paper's on both devices.
    #[must_use]
    pub fn bounds_agree(&self) -> bool {
        agrees(self.a100_bound, self.reference.a100_bound)
            && agrees(self.h100_bound, self.reference.h100_bound)
    }
}

fn agrees(ours: BoundType, reference: RefBound) -> bool {
    match reference {
        RefBound::Compute => ours.is_compute(),
        // The paper lumps overhead-limited tiny kernels under "memory".
        RefBound::Memory => !ours.is_compute(),
    }
}

/// Regenerates the table: Llama2-13B, B = 1, 200-token prompt, FP16,
/// single A100 and H100.
#[must_use]
pub fn run() -> Vec<Row> {
    let a100 = hw::presets::dgx_a100_hdr_cluster();
    let h100 = hw::presets::dgx_h100_ndr_cluster();
    let cfg = InferenceConfig::new(presets::llama2_13b(), 1, 200, 200, 1);
    let a = InferenceEstimator::new(&a100)
        .estimate(&cfg)
        .expect("valid");
    let h = InferenceEstimator::new(&h100)
        .estimate(&cfg)
        .expect("valid");

    refdata::table4()
        .into_iter()
        .map(|reference| {
            let roles = roles_for(reference.gemm);
            let (a_us, a_bound) = lookup(&a.prefill_gemms, roles);
            let (h_us, h_bound) = lookup(&h.prefill_gemms, roles);
            Row {
                reference,
                a100_us: a_us,
                a100_bound: a_bound,
                h100_us: h_us,
                h100_bound: h_bound,
            }
        })
        .collect()
}

/// Maps a paper GEMM label onto our op roles. The paper models the MLP as
/// two GEMMs; SwiGLU's gate projection is folded into `O.WMLP1` (same
/// shape, summed time).
fn roles_for(label: &str) -> &'static [OpRole] {
    match label {
        l if l.starts_with("merged-head") => &[OpRole::QkvProjection],
        l if l.contains("Q.KT") => &[OpRole::AttnScores],
        l if l.contains("softmax(R).V") => &[OpRole::AttnOverValues],
        l if l.starts_with("Z.W") => &[OpRole::OutputProjection],
        l if l.contains("WMLP1") => &[OpRole::MlpUp, OpRole::MlpGate],
        l if l.contains("WMLP2") => &[OpRole::MlpDown],
        other => panic!("unmapped Table 4 label `{other}`"),
    }
}

/// Sums the times of `roles` in a per-GEMM analysis; the bound type is the
/// one of the slowest contributor. Attention rows report the *per-head*
/// GEMM time (the paper's "single head" rows), i.e. the batched kernel
/// time divided by the head count.
fn lookup(gemms: &[optimus::infer::GemmAnalysis], roles: &'static [OpRole]) -> (f64, BoundType) {
    let mut total_us = 0.0;
    let mut slowest = (0.0, BoundType::Compute);
    for role in roles {
        for g in gemms.iter().filter(|g| g.role == *role) {
            let mut us = g.time.micros();
            if matches!(role, OpRole::AttnScores | OpRole::AttnOverValues) {
                us /= 40.0; // Llama2-13B head count: per-head time
            }
            total_us += us;
            if us > slowest.0 {
                slowest = (us, g.bound);
            }
        }
    }
    (total_us, slowest.1)
}

/// Fraction of rows whose bound types agree with the paper on both
/// devices.
#[must_use]
pub fn bound_agreement(rows: &[Row]) -> f64 {
    rows.iter().filter(|r| r.bounds_agree()).count() as f64 / rows.len() as f64
}

/// The table as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "gemm".to_owned(),
        "a100_paper_us".to_owned(),
        "a100_paper_bound".to_owned(),
        "a100_ours_us".to_owned(),
        "a100_ours_bound".to_owned(),
        "h100_paper_us".to_owned(),
        "h100_paper_bound".to_owned(),
        "h100_ours_us".to_owned(),
        "h100_ours_bound".to_owned(),
    ]];
    for row in run() {
        let r = row.reference;
        let fmt_bound = |b: BoundType| {
            if b.is_compute() {
                "compute".to_owned()
            } else {
                "memory".to_owned()
            }
        };
        let fmt_ref = |b: RefBound| match b {
            RefBound::Compute => "compute".to_owned(),
            RefBound::Memory => "memory".to_owned(),
        };
        out.push(vec![
            r.gemm.to_owned(),
            format!("{:.0}", r.a100_us),
            fmt_ref(r.a100_bound),
            format!("{:.0}", row.a100_us),
            fmt_bound(row.a100_bound),
            format!("{:.0}", r.h100_us),
            fmt_ref(r.h100_bound),
            format!("{:.0}", row.h100_us),
            fmt_bound(row.h100_bound),
        ]);
    }
    out
}

/// Renders the table for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
