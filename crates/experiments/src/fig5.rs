//! Fig. 5: GPT-3 175B training-time scaling across GPU generations
//! (A100-HDR → B200-NVS-L), normalized to B200-NVS-L.
//!
//! Uses the Table 3 case configuration (DP128-TP8-SP8-PP8, sequence 2048)
//! with the precision ladder of §5.2: FP16 on A100, FP8 on H100/H200 (the
//! transformer engine), FP4 on B200. "L" points use the enlarged batch
//! (4096) the bigger DRAM affords.

use crate::util::model_by_name;
use optimus::hw::presets;
use optimus::memory::RecomputeMode;
use optimus::prelude::*;
use optimus::refdata;

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Configuration label as on the figure's x-axis.
    pub label: &'static str,
    /// Absolute predicted time per batch, seconds.
    pub time_s: f64,
    /// Per-sample time (batch-normalized), seconds — the quantity the
    /// figure's speedups are measured on.
    pub time_per_sample_s: f64,
    /// Compute fraction of the batch time.
    pub compute_s: f64,
    /// Communication (TP+PP+DP) fraction.
    pub communication_s: f64,
    /// "Other" (bubble + weight update) fraction.
    pub other_s: f64,
    /// Our speedup over the A100-HDR baseline (per-sample).
    pub speedup_vs_a100: f64,
    /// The paper's approximate speedup for this configuration.
    pub paper_speedup: f64,
}

struct Config {
    label: &'static str,
    cluster: ClusterSpec,
    precision: Precision,
    large_batch: bool,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            label: "A100-HDR",
            cluster: presets::dgx_a100_hdr_cluster(),
            precision: Precision::Fp16,
            large_batch: false,
        },
        Config {
            label: "H100-NDR",
            cluster: presets::dgx_h100_ndr_cluster(),
            precision: Precision::Fp8,
            large_batch: false,
        },
        Config {
            label: "H100-NVS",
            cluster: presets::dgx_h100_nvs_cluster(),
            precision: Precision::Fp8,
            large_batch: false,
        },
        Config {
            label: "H200-NVS-L",
            cluster: presets::dgx_h200_nvs_cluster(),
            precision: Precision::Fp8,
            large_batch: true,
        },
        Config {
            label: "B200-NDR",
            cluster: presets::dgx_b200_ndr_cluster(),
            precision: Precision::Fp4,
            large_batch: false,
        },
        Config {
            label: "B200-NVS",
            cluster: presets::dgx_b200_nvs_cluster(),
            precision: Precision::Fp4,
            large_batch: false,
        },
        Config {
            label: "B200-NVS-L",
            cluster: presets::dgx_b200_nvs_cluster(),
            precision: Precision::Fp4,
            large_batch: true,
        },
    ]
}

/// Regenerates the seven bars.
#[must_use]
pub fn run() -> Vec<Bar> {
    let case = refdata::case_gpt175b();
    let model = model_by_name(case.model);
    let paper = refdata::fig5_series();

    let mut raw = Vec::new();
    for cfg in configs() {
        let batch = if cfg.large_batch {
            case.large_batch
        } else {
            case.batch
        };
        let training = TrainingConfig::new(model.clone(), batch, case.seq, case.parallelism())
            .with_precision(cfg.precision)
            .with_recompute(RecomputeMode::Selective)
            .with_schedule(PipelineSchedule::interleaved(2));
        let report = TrainingEstimator::new(&cfg.cluster)
            .estimate(&training)
            .expect("case config is valid");
        raw.push((cfg.label, batch, report));
    }

    let base_per_sample = raw[0].2.time_per_batch.secs() / raw[0].1 as f64;
    raw.into_iter()
        .zip(paper)
        .map(|((label, batch, report), paper_point)| {
            debug_assert_eq!(label, paper_point.label);
            let time_s = report.time_per_batch.secs();
            let per_sample = time_s / batch as f64;
            Bar {
                label,
                time_s,
                time_per_sample_s: per_sample,
                compute_s: report.breakdown.compute.secs(),
                communication_s: report.breakdown.communication().secs(),
                other_s: report.breakdown.other().secs(),
                speedup_vs_a100: base_per_sample / per_sample,
                paper_speedup: paper_point.speedup_vs_a100,
            }
        })
        .collect()
}

/// The figure as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "config".to_owned(),
        "time_s".to_owned(),
        "time_per_sample_ms".to_owned(),
        "compute_s".to_owned(),
        "communication_s".to_owned(),
        "other_s".to_owned(),
        "speedup_vs_a100".to_owned(),
        "paper_speedup".to_owned(),
    ]];
    for b in run() {
        out.push(vec![
            b.label.to_owned(),
            format!("{:.1}", b.time_s),
            format!("{:.1}", b.time_per_sample_s * 1e3),
            format!("{:.1}", b.compute_s),
            format!("{:.1}", b.communication_s),
            format!("{:.1}", b.other_s),
            format!("{:.1}", b.speedup_vs_a100),
            format!("{:.0}", b.paper_speedup),
        ]);
    }
    out
}

/// Renders the figure data for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
