//! Fig. 3: GEMV validation on a single A100 — predicted time vs. measured
//! GPU time, with varied (size-dependent) vs. constant DRAM utilization.
//!
//! The original figure correlates predictions against profiled A100 runs.
//! Per DESIGN.md's substitution rule, the "measured" series here comes from
//! a *surrogate measurement model*: the same roofline physics with the
//! varied-utilization curve, an extra software-overhead term, and
//! deterministic shape-dependent jitter (±6%) standing in for run-to-run
//! measurement noise. The two predictors are then scored against it exactly
//! as the paper scores against the GPU: the varied-utilization model should
//! track within a few percent, while the constant-utilization model stays
//! accurate for large kernels and degrades for small ones.

use optimus::hw::{presets, DeviceCalibration};
use optimus::prelude::*;
use optimus::roofline::RooflineModel;

/// One GEMV sample point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Matrix rows.
    pub m: usize,
    /// Matrix columns (reduction length).
    pub k: usize,
    /// Surrogate "GPU-measured" time, microseconds.
    pub gpu_us: f64,
    /// Prediction with the varied (size-dependent) utilization, µs.
    pub varied_us: f64,
    /// Prediction with a constant utilization factor, µs.
    pub const_us: f64,
}

/// The constant utilization factor of the simplified model (the paper's
/// orange points).
const CONSTANT_UTILIZATION: f64 = 0.7;

/// GEMV shapes spanning the LLM-relevant range (projection slices of
/// hidden sizes 512…16384).
#[must_use]
pub fn shapes() -> Vec<(usize, usize)> {
    let dims = [512usize, 1024, 2048, 4096, 5120, 8192, 12288, 16384];
    let mut out = Vec::new();
    for &m in &dims {
        for &k in &[1024usize, 4096, 12288] {
            out.push((m, k));
        }
    }
    out
}

/// Deterministic per-shape jitter in `[-0.06, +0.06]` — the measurement
/// noise of the surrogate GPU.
fn jitter(m: usize, k: usize) -> f64 {
    // A small hash keeps the "measurement" reproducible.
    let h = (m
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(k.wrapping_mul(0x85EB_CA6B)))
        % 1000;
    (h as f64 / 1000.0 - 0.5) * 0.12
}

/// Regenerates the scatter.
#[must_use]
pub fn run() -> Vec<Point> {
    let varied_dev = presets::a100_sxm_80gb();
    let const_dev = presets::a100_sxm_80gb().with_calibration(
        DeviceCalibration::datacenter_gpu()
            .with_constant_dram_utilization(Ratio::new(CONSTANT_UTILIZATION)),
    );
    let varied = RooflineModel::new(&varied_dev);
    let constant = RooflineModel::new(&const_dev);

    shapes()
        .into_iter()
        .map(|(m, k)| {
            let v = varied.gemv(m, k, Precision::Fp16).expect("fp16 on A100");
            let c = constant.gemv(m, k, Precision::Fp16).expect("fp16 on A100");
            // Surrogate measurement: varied-utilization physics + 1.5 µs of
            // extra software overhead + deterministic noise.
            let gpu = (v.total().micros() + 1.5) * (1.0 + jitter(m, k));
            Point {
                m,
                k,
                gpu_us: gpu,
                varied_us: v.total().micros(),
                const_us: c.total().micros(),
            }
        })
        .collect()
}

/// Mean absolute percentage error of a predictor against the surrogate.
#[must_use]
pub fn mape(points: &[Point], select: impl Fn(&Point) -> f64) -> f64 {
    points
        .iter()
        .map(|p| 100.0 * (select(p) - p.gpu_us).abs() / p.gpu_us)
        .sum::<f64>()
        / points.len() as f64
}

/// The scatter as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "m".to_owned(),
        "k".to_owned(),
        "gpu_us".to_owned(),
        "varied_us".to_owned(),
        "const_us".to_owned(),
    ]];
    for p in run() {
        out.push(vec![
            p.m.to_string(),
            p.k.to_string(),
            format!("{:.2}", p.gpu_us),
            format!("{:.2}", p.varied_us),
            format!("{:.2}", p.const_us),
        ]);
    }
    out
}

/// Renders the scatter plus MAPE summary.
#[must_use]
pub fn render() -> String {
    let points = run();
    let mut out = crate::markdown_table(&csv());
    out.push_str(&format!(
        "MAPE varied-utilization: {:.1}%  (paper: 5.4%)\n",
        mape(&points, |p| p.varied_us)
    ));
    out.push_str(&format!(
        "MAPE constant-utilization: {:.1}%\n",
        mape(&points, |p| p.const_us)
    ));
    out
}
