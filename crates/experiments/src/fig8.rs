//! Fig. 8: GEMM time per layer in the summarization (prefill) phase split
//! by bound type, A100 vs. H100, batch 1 and 16; inset: KV-cache and
//! weight memory (Llama2-13B, half precision).

use optimus::memory::inference_memory;
use optimus::model::presets;
use optimus::prelude::*;

/// One bar of the figure plus its memory-inset values.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Device label.
    pub device: &'static str,
    /// Batch size.
    pub batch: usize,
    /// Time of compute-bound prefill GEMMs per layer, microseconds.
    pub compute_bound_us: f64,
    /// Time of memory-bound prefill GEMMs per layer, microseconds.
    pub memory_bound_us: f64,
    /// KV-cache size at the 400-token final context, GB.
    pub kv_cache_gb: f64,
    /// Weight memory, GB.
    pub weights_gb: f64,
    /// Device memory capacity, GB.
    pub capacity_gb: f64,
}

impl Bar {
    /// Fraction of prefill GEMM time spent in compute-bound kernels.
    #[must_use]
    pub fn compute_fraction(&self) -> f64 {
        self.compute_bound_us / (self.compute_bound_us + self.memory_bound_us)
    }
}

/// Regenerates the four bars (A100/H100 × B = 1/16).
#[must_use]
pub fn run() -> Vec<Bar> {
    let devices = [
        ("A100-HBM2e", hw::presets::dgx_a100_hdr_cluster()),
        ("H100-HBM3", hw::presets::dgx_h100_ndr_cluster()),
    ];
    let mut bars = Vec::new();
    for (label, cluster) in devices {
        for batch in [1usize, 16] {
            let cfg = InferenceConfig::new(presets::llama2_13b(), batch, 200, 200, 1);
            let report = InferenceEstimator::new(&cluster)
                .estimate(&cfg)
                .expect("FP16 supported");
            let (mut compute_us, mut memory_us) = (0.0, 0.0);
            for g in &report.prefill_gemms {
                if g.bound.is_compute() {
                    compute_us += g.time.micros();
                } else {
                    memory_us += g.time.micros();
                }
            }
            let mem = inference_memory(&presets::llama2_13b(), batch, 400, 1, Precision::Fp16);
            bars.push(Bar {
                device: label,
                batch,
                compute_bound_us: compute_us,
                memory_bound_us: memory_us,
                kv_cache_gb: mem.kv_cache.gb(),
                weights_gb: mem.weights.gb(),
                capacity_gb: cluster.accelerator().dram.capacity.gb(),
            });
        }
    }
    bars
}

/// The figure as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "device".to_owned(),
        "batch".to_owned(),
        "compute_bound_us".to_owned(),
        "memory_bound_us".to_owned(),
        "compute_fraction_%".to_owned(),
        "kv_cache_gb".to_owned(),
        "weights_gb".to_owned(),
        "capacity_gb".to_owned(),
    ]];
    for b in run() {
        out.push(vec![
            b.device.to_owned(),
            b.batch.to_string(),
            format!("{:.0}", b.compute_bound_us),
            format!("{:.0}", b.memory_bound_us),
            format!("{:.0}", 100.0 * b.compute_fraction()),
            format!("{:.2}", b.kv_cache_gb),
            format!("{:.1}", b.weights_gb),
            format!("{:.0}", b.capacity_gb),
        ]);
    }
    out
}

/// Renders the figure data for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
