//! Reproduction harness for every table and figure of the paper.
//!
//! Each `tableN`/`figN` module exposes a `run()` returning structured rows
//! and a `render()` producing the human-readable table, so the same code
//! backs the CLI binaries (`cargo run -p optimus-experiments --bin table1`),
//! the Criterion benches, and the integration tests. `run_all` regenerates
//! everything and writes CSV files under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod tco;

mod util;

pub use util::{markdown_table, model_by_name, write_csv};

/// Runs every experiment and writes its CSV into `dir`.
///
/// # Errors
///
/// Returns an I/O error if `dir` is not writable.
pub fn run_all(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_csv(dir.join("table1.csv"), &table1::csv())?;
    write_csv(dir.join("table2.csv"), &table2::csv())?;
    write_csv(dir.join("table4.csv"), &table4::csv())?;
    write_csv(dir.join("fig3.csv"), &fig3::csv())?;
    write_csv(dir.join("fig4.csv"), &fig4::csv())?;
    write_csv(dir.join("fig5.csv"), &fig5::csv())?;
    write_csv(dir.join("fig6.csv"), &fig6::csv())?;
    write_csv(dir.join("fig7.csv"), &fig7::csv())?;
    write_csv(dir.join("fig8.csv"), &fig8::csv())?;
    write_csv(dir.join("fig9.csv"), &fig9::csv())?;
    write_csv(dir.join("ablations.csv"), &ablations::csv())?;
    write_csv(dir.join("tco.csv"), &tco::csv())?;
    write_csv(dir.join("scaling.csv"), &scaling::csv())?;
    Ok(())
}
