//! Strong-scaling and batch-sweep analyses.
fn main() {
    print!("{}", optimus_experiments::scaling::render());
}
