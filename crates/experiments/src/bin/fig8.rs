//! Regenerates fig8 of the paper.
fn main() {
    print!("{}", optimus_experiments::fig8::render());
}
