//! Regenerates Table 1 (training-time validation).
fn main() {
    print!("{}", optimus_experiments::table1::render());
    let rows = optimus_experiments::table1::run();
    println!(
        "mean |err| = {:.1}%",
        optimus_experiments::table1::mean_error_percent(&rows)
    );
}
