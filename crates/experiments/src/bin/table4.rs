//! Regenerates Table 4 (per-GEMM bound analysis).
fn main() {
    print!("{}", optimus_experiments::table4::render());
    let rows = optimus_experiments::table4::run();
    println!(
        "bound agreement = {:.0}%",
        100.0 * optimus_experiments::table4::bound_agreement(&rows)
    );
}
