//! Regenerates fig9 of the paper.
fn main() {
    print!("{}", optimus_experiments::fig9::render());
}
