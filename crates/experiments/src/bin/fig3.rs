//! Regenerates fig3 of the paper.
fn main() {
    print!("{}", optimus_experiments::fig3::render());
}
