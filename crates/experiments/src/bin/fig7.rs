//! Regenerates fig7 of the paper.
fn main() {
    print!("{}", optimus_experiments::fig7::render());
}
