//! Ablation studies over the suite's design choices.
fn main() {
    print!("{}", optimus_experiments::ablations::render());
}
