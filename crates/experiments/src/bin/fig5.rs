//! Regenerates fig5 of the paper.
fn main() {
    print!("{}", optimus_experiments::fig5::render());
}
