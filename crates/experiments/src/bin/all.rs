//! Runs every experiment and writes CSVs into `results/`.
fn main() {
    let dir = std::path::Path::new("results");
    optimus_experiments::run_all(dir).expect("results directory is writable");
    println!("wrote results/*.csv");
    for name in [
        "table1",
        "table2",
        "table4",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "ablations",
        "tco",
        "scaling",
    ] {
        println!("  results/{name}.csv");
    }
}
