//! Regenerates Fig. 6 (technology-node scaling with per-node DSE).
fn main() {
    print!("{}", optimus_experiments::fig6::render());
}
