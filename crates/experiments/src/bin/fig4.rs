//! Regenerates fig4 of the paper.
fn main() {
    print!("{}", optimus_experiments::fig4::render());
}
