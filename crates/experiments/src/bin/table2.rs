//! Regenerates Table 2 (inference-latency validation).
fn main() {
    print!("{}", optimus_experiments::table2::render());
    let rows = optimus_experiments::table2::run();
    println!(
        "mean |err| = {:.1}%",
        optimus_experiments::table2::mean_error_percent(&rows)
    );
}
