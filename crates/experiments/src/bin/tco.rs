//! Performance-per-TCO study (the paper's §7 future work).
fn main() {
    print!("{}", optimus_experiments::tco::render());
}
