//! Fig. 4: training memory breakdown for GPT-175B/530B/1T under the three
//! activation-recomputation strategies (Table 1 configurations, mixed
//! precision, A100 80 GB reference line).

use crate::util::model_by_name;
use optimus::memory::{training_memory, RecomputeMode, TrainingMemorySpec};
use optimus::prelude::*;

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Model name.
    pub model: &'static str,
    /// Recomputation label (`no` / `selective` / `full`).
    pub recompute: &'static str,
    /// Optimizer-state memory, GB.
    pub optimizer_gb: f64,
    /// Parameter (+ gradient) memory, GB.
    pub parameter_gb: f64,
    /// Activation memory, GB.
    pub activation_gb: f64,
    /// Whether the total fits an 80 GB A100.
    pub fits_a100: bool,
}

impl Bar {
    /// Total bar height, GB.
    #[must_use]
    pub fn total_gb(&self) -> f64 {
        self.optimizer_gb + self.parameter_gb + self.activation_gb
    }
}

/// The three `(model, batch, parallelism)` columns of the figure, from
/// Table 1.
fn configs() -> Vec<(&'static str, usize, Parallelism)> {
    vec![
        ("GPT-175B", 64, Parallelism::new(1, 8, 8)),
        ("GPT-530B", 280, Parallelism::new(1, 8, 35)),
        ("GPT-1008B", 512, Parallelism::new(1, 8, 64)),
    ]
}

/// Regenerates all nine bars.
#[must_use]
pub fn run() -> Vec<Bar> {
    let modes: [(&'static str, RecomputeMode); 3] = [
        ("no", RecomputeMode::None),
        ("selective", RecomputeMode::Selective),
        (
            "full",
            RecomputeMode::Full {
                checkpoints_per_stage: None,
            },
        ),
    ];
    let mut bars = Vec::new();
    for (model_name, batch, parallelism) in configs() {
        let model = model_by_name(model_name);
        for (label, mode) in modes {
            let report = training_memory(
                &model,
                &TrainingMemorySpec {
                    batch,
                    seq: 2048,
                    parallelism,
                    schedule: PipelineSchedule::OneFOneB,
                    precision: Precision::Fp16,
                    recompute: mode,
                },
            )
            .expect("Table 1 configs divide evenly");
            bars.push(Bar {
                model: model_name,
                recompute: label,
                optimizer_gb: report.optimizer.gb(),
                parameter_gb: (report.parameters + report.gradients).gb(),
                activation_gb: report.activations.gb(),
                fits_a100: report.fits(Bytes::from_gb(80.0)),
            });
        }
    }
    bars
}

/// The figure as rows of strings (header first).
#[must_use]
pub fn csv() -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "model".to_owned(),
        "recompute".to_owned(),
        "optimizer_gb".to_owned(),
        "parameter_gb".to_owned(),
        "activation_gb".to_owned(),
        "total_gb".to_owned(),
        "fits_a100_80gb".to_owned(),
    ]];
    for b in run() {
        out.push(vec![
            b.model.to_owned(),
            b.recompute.to_owned(),
            format!("{:.1}", b.optimizer_gb),
            format!("{:.1}", b.parameter_gb),
            format!("{:.1}", b.activation_gb),
            format!("{:.1}", b.total_gb()),
            b.fits_a100.to_string(),
        ]);
    }
    out
}

/// Renders the figure data for the terminal.
#[must_use]
pub fn render() -> String {
    crate::markdown_table(&csv())
}
