//! `optimus-cli` — command-line front end to the Optimus suite.
//!
//! ```text
//! optimus-cli train --model gpt-175b --cluster a100-hdr --batch 64 --tp 8 --pp 8 --sp
//! optimus-cli infer --model llama2-70b --cluster h100-ndr --tp 8
//! optimus-cli serve --model llama2-13b --cluster a100-hdr --tp 2 --rate 4 --requests 200
//! optimus-cli load-sweep --model llama2-13b --tp-list 1,2,4 --min-rate 1 --max-rate 64 --points 8
//! optimus-cli memory --model gpt-530b --batch 280 --tp 8 --pp 35 --recompute full
//! optimus-cli sweep --model llama2-13b --cluster a100-hdr --batch 64 --max-gpus 64
//! optimus-cli list
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "train" => commands::train(&parsed),
        "infer" => commands::infer(&parsed),
        "serve" => commands::serve(&parsed),
        "load-sweep" => commands::load_sweep(&parsed),
        "memory" => commands::memory(&parsed),
        "sweep" => commands::sweep(&parsed),
        "list" => Ok(commands::list()),
        "" | "help" | "-h" => Ok(commands::usage()),
        other => Err(args::ArgError(format!("unknown subcommand `{other}`"))),
    };
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    }
}
