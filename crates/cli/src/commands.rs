//! Subcommand implementations.

use crate::args::{ArgError, Args};
use optimus::memory::{training_memory, RecomputeMode, TrainingMemorySpec};
use optimus::prelude::*;
use optimus_sweep::{render_frontier, render_table, SweepEngine, SweepSpace, Workload};

/// Resolves a model preset name (case-insensitive, `-`/`_` agnostic).
///
/// # Errors
///
/// Returns [`ArgError`] listing the known names on a miss.
pub fn model_preset(name: &str) -> Result<ModelConfig, ArgError> {
    use optimus::model::presets as p;
    let key = name.to_lowercase().replace('_', "-");
    Ok(match key.as_str() {
        "gpt-7b" => p::gpt_7b(),
        "gpt-22b" => p::gpt_22b(),
        "gpt-175b" => p::gpt_175b(),
        "gpt-310b" => p::gpt_310b(),
        "gpt-530b" => p::gpt_530b(),
        "gpt-1008b" | "gpt-1t" => p::gpt_1008b(),
        "llama2-7b" => p::llama2_7b(),
        "llama2-13b" => p::llama2_13b(),
        "llama2-70b" => p::llama2_70b(),
        _ => {
            return Err(ArgError(format!(
                "unknown model `{name}`; try one of: gpt-7b, gpt-22b, gpt-175b, gpt-310b, \
                 gpt-530b, gpt-1008b, llama2-7b, llama2-13b, llama2-70b"
            )))
        }
    })
}

/// Resolves a cluster preset name.
///
/// # Errors
///
/// Returns [`ArgError`] listing the known names on a miss.
pub fn cluster_preset(name: &str) -> Result<ClusterSpec, ArgError> {
    use optimus::hw::presets as p;
    let key = name.to_lowercase().replace('_', "-");
    Ok(match key.as_str() {
        "a100-hdr" | "a100" => p::dgx_a100_hdr_cluster(),
        "h100-ndr" | "h100" => p::dgx_h100_ndr_cluster(),
        "h100-nvs" => p::dgx_h100_nvs_cluster(),
        "h200-nvs" | "h200" => p::dgx_h200_nvs_cluster(),
        "b200-ndr" => p::dgx_b200_ndr_cluster(),
        "b200-nvs" | "b200" => p::dgx_b200_nvs_cluster(),
        _ => {
            return Err(ArgError(format!(
                "unknown cluster `{name}`; try one of: a100-hdr, h100-ndr, h100-nvs, \
                 h200-nvs, b200-ndr, b200-nvs"
            )))
        }
    })
}

fn precision_of(name: &str) -> Result<Precision, ArgError> {
    Ok(match name.to_lowercase().as_str() {
        "fp16" => Precision::Fp16,
        "bf16" => Precision::Bf16,
        "fp8" => Precision::Fp8,
        "fp4" => Precision::Fp4,
        "fp32" => Precision::Fp32,
        other => return Err(ArgError(format!("unknown precision `{other}`"))),
    })
}

fn recompute_of(name: &str) -> Result<RecomputeMode, ArgError> {
    Ok(match name.to_lowercase().as_str() {
        "none" => RecomputeMode::None,
        "selective" => RecomputeMode::Selective,
        "full" => RecomputeMode::Full {
            checkpoints_per_stage: None,
        },
        other => return Err(ArgError(format!("unknown recompute mode `{other}`"))),
    })
}

fn parallelism_of(args: &Args) -> Result<Parallelism, ArgError> {
    Ok(Parallelism::new(
        args.get_usize("dp", 1)?,
        args.get_usize("tp", 1)?,
        args.get_usize("pp", 1)?,
    )
    .with_sp(args.flag("sp"))
    .with_microbatch(args.get_usize("microbatch", 1)?))
}

/// Parses a `--failure-process` value: `exp`/`exponential`,
/// `weibull:K` (Weibull uptimes with shape K), or `racks:N:MTBF`
/// (N racks, each failing wholesale every MTBF seconds on average, on
/// top of the per-GPU process).
fn failure_process_of(value: &str) -> Result<FailureProcess, ArgError> {
    let lower = value.to_lowercase();
    if lower == "exp" || lower == "exponential" {
        return Ok(FailureProcess::Exponential);
    }
    if let Some(shape) = lower.strip_prefix("weibull:") {
        let shape = shape.parse::<f64>().map_err(|_| {
            ArgError(format!(
                "--failure-process weibull:K expects a numeric shape, got `{value}`"
            ))
        })?;
        return Ok(FailureProcess::Weibull { shape });
    }
    if let Some(rest) = lower.strip_prefix("racks:") {
        let parsed = rest.split_once(':').and_then(|(racks, mtbf)| {
            Some((racks.parse::<usize>().ok()?, mtbf.parse::<f64>().ok()?))
        });
        let Some((racks, rack_mtbf_s)) = parsed else {
            return Err(ArgError(format!(
                "--failure-process racks:N:MTBF expects a rack count and seconds, got `{value}`"
            )));
        };
        return Ok(FailureProcess::RackCorrelated { racks, rack_mtbf_s });
    }
    Err(ArgError(format!(
        "unknown failure process `{value}`; expected `exp`, `weibull:K`, or `racks:N:MTBF`"
    )))
}

/// Parses a `--checkpoint-tiers` value: a comma list of extra tiers
/// (`peer`, `delta`) layered under the always-present persistent full
/// checkpoint.
fn checkpoint_tiers_of(value: &str) -> Result<Vec<CheckpointTier>, ArgError> {
    value
        .split(',')
        .map(|name| match name.trim().to_lowercase().as_str() {
            "peer" => Ok(CheckpointTier::peer()),
            "delta" => Ok(CheckpointTier::delta()),
            other => Err(ArgError(format!(
                "unknown checkpoint tier `{other}`; expected `peer` or `delta`"
            ))),
        })
        .collect()
}

/// Parses the resilience options shared by `train` and `sweep`:
/// `--mtbf S` (per-GPU MTBF, seconds) plus the optional
/// `--checkpoint-interval S` (Young–Daly auto when absent),
/// `--restart S`, `--failure-process exp|weibull:K|racks:N:MTBF`,
/// `--checkpoint-tiers peer,delta`, `--elastic` (+ `--rewarm S`,
/// `--repair S`), `--delta-frac F`, and `--checkpoint-util F`. Returns
/// [`CheckpointSpec::none`] when no resilience axis is requested at all.
fn checkpoint_of(args: &Args) -> Result<CheckpointSpec, ArgError> {
    if args.get("mtbf").is_none() {
        for key in [
            "checkpoint-interval",
            "restart",
            "failure-process",
            "checkpoint-tiers",
            "rewarm",
            "repair",
            "delta-frac",
            "checkpoint-util",
        ] {
            if args.get(key).is_some() {
                return Err(ArgError(format!("--{key} only applies with --mtbf")));
            }
        }
        if args.flag("elastic") {
            return Err(ArgError("--elastic only applies with --mtbf".to_owned()));
        }
        return Ok(CheckpointSpec::none());
    }
    let mtbf_s = args.get_f64("mtbf", 0.0)?;
    if mtbf_s <= 0.0 {
        return Err(ArgError(
            "--mtbf must be positive seconds of per-GPU uptime".to_owned(),
        ));
    }
    let elastic = args.flag("elastic");
    if !elastic {
        for key in ["rewarm", "repair"] {
            if args.get(key).is_some() {
                return Err(ArgError(format!("--{key} only applies with --elastic")));
            }
        }
    }
    let mut spec = CheckpointSpec::with_mtbf(mtbf_s);
    if args.get("checkpoint-interval").is_some() {
        spec = spec.with_interval(args.get_f64("checkpoint-interval", 0.0)?);
    }
    spec = spec.with_restart(args.get_f64("restart", 0.0)?);
    if let Some(value) = args.get("failure-process") {
        spec = spec.with_process(failure_process_of(value)?);
    }
    let tiers = match args.get("checkpoint-tiers") {
        Some(value) => checkpoint_tiers_of(value)?,
        None => Vec::new(),
    };
    if args.get("delta-frac").is_some() {
        if !tiers.iter().any(|t| t.kind == TierKind::PersistentDelta) {
            return Err(ArgError(
                "--delta-frac only applies with a `delta` entry in --checkpoint-tiers".to_owned(),
            ));
        }
        spec = spec.with_delta_fraction(args.get_f64("delta-frac", 0.0)?);
    }
    spec = spec.with_tiers(tiers);
    if elastic {
        spec = spec
            .with_elastic(true)
            .with_rewarm(args.get_f64("rewarm", 0.0)?)
            .with_repair(args.get_f64("repair", 0.0)?);
    }
    if args.get("checkpoint-util").is_some() {
        spec = spec.with_overhead_util(args.get_f64("checkpoint-util", 1.0)?);
    }
    spec.validate()
        .map_err(|reason| ArgError(format!("invalid resilience options: {reason}")))?;
    Ok(spec)
}

/// `optimus-cli train …` — training-time estimate.
///
/// # Errors
///
/// Returns [`ArgError`] for bad options or infeasible configurations.
pub fn train(args: &Args) -> Result<String, ArgError> {
    let model = model_preset(args.get_or("model", "gpt-175b"))?;
    let cluster = cluster_preset(args.get_or("cluster", "a100-hdr"))?;
    let cfg = TrainingConfig::new(
        model,
        args.get_usize("batch", 64)?,
        args.get_usize("seq", 2048)?,
        parallelism_of(args)?,
    )
    .with_precision(precision_of(args.get_or("precision", "fp16"))?)
    .with_recompute(recompute_of(args.get_or("recompute", "selective"))?)
    .with_flash(args.flag("flash"));

    let report = TrainingEstimator::new(&cluster)
        .with_checkpoint(checkpoint_of(args)?)
        .estimate(&cfg)
        .map_err(|e| ArgError(e.to_string()))?;

    if args.flag("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| ArgError(e.to_string()));
    }
    let mut out = String::new();
    out.push_str(&format!("config: {cfg}\ncluster: {cluster}\n\n{report}\n"));
    out.push_str(&format!(
        "\nfits {} device memory: {}\n",
        cluster.accelerator().dram.capacity,
        report.memory.fits(cluster.accelerator().dram.capacity)
    ));
    Ok(out)
}

/// `optimus-cli infer …` — serving-latency estimate.
///
/// # Errors
///
/// Returns [`ArgError`] for bad options.
pub fn infer(args: &Args) -> Result<String, ArgError> {
    let model = model_preset(args.get_or("model", "llama2-13b"))?;
    let cluster = cluster_preset(args.get_or("cluster", "a100-hdr"))?;
    let cfg = InferenceConfig::new(
        model,
        args.get_usize("batch", 1)?,
        args.get_usize("prefill", 200)?,
        args.get_usize("generate", 200)?,
        args.get_usize("tp", 1)?,
    )
    .with_precision(precision_of(args.get_or("precision", "fp16"))?);

    let report = InferenceEstimator::new(&cluster)
        .estimate(&cfg)
        .map_err(|e| ArgError(e.to_string()))?;

    if args.flag("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| ArgError(e.to_string()));
    }
    let mut out = format!("config: {cfg}\ncluster: {cluster}\n\n{report}\n");
    out.push_str("\nper-GEMM bound analysis (decode layer at full context):\n");
    for g in &report.decode_gemms {
        out.push_str(&format!(
            "  {:<20} {:>9.1} us  {}\n",
            g.role.to_string(),
            g.time.micros(),
            g.bound
        ));
    }
    out.push_str(&format!(
        "\nweights {:.1} GB + kv-cache {:.2} GB per device\n",
        report.memory.weights.gb(),
        report.memory.kv_cache.gb()
    ));
    Ok(out)
}

/// Parses a token-length option: either a single count (`200`) or an
/// inclusive `LO:HI` range (`50:400`).
fn length_dist_of(key: &str, value: &str) -> Result<optimus_serve::LengthDist, ArgError> {
    use optimus_serve::LengthDist;
    let parse_tokens = |v: &str| -> Result<usize, ArgError> {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| ArgError(format!("--{key} expects a positive token count, got `{v}`")))
    };
    match value.split_once(':') {
        None => Ok(LengthDist::Fixed {
            tokens: parse_tokens(value)?,
        }),
        Some((lo, hi)) => {
            let (lo, hi) = (parse_tokens(lo)?, parse_tokens(hi)?);
            if lo > hi {
                return Err(ArgError(format!(
                    "--{key} range must satisfy LO <= HI, got `{value}`"
                )));
            }
            Ok(LengthDist::Uniform { lo, hi })
        }
    }
}

/// Parses the routing options shared by `serve` and `load-sweep`:
/// `--router NAME` (+ `--router-seed N` for the random policy).
fn router_of(args: &Args) -> Result<optimus_serve::RouterPolicy, ArgError> {
    use optimus_serve::RouterPolicy;
    let name = args.get_or("router", "round-robin");
    if args.get("router-seed").is_some() && name != "random" {
        return Err(ArgError(
            "--router-seed only applies with --router random".to_owned(),
        ));
    }
    Ok(match name {
        "round-robin" => RouterPolicy::RoundRobin,
        "random" => RouterPolicy::Random {
            seed: args.get_usize("router-seed", 0)? as u64,
        },
        "least-outstanding" => RouterPolicy::LeastOutstanding,
        "shortest-queue" | "join-shortest-queue" => RouterPolicy::JoinShortestQueue,
        other => {
            return Err(ArgError(format!(
                "unknown router `{other}`; try one of: round-robin, random, \
                 least-outstanding, shortest-queue"
            )))
        }
    })
}

/// Parses the fault-injection options shared by `serve` and
/// `load-sweep`: `--mtbf S` (+ `--mttr S`, `--fault-seed N`,
/// `--failure-process exp|weibull:K` for the uptime law),
/// `--stragglers FRAC:MULT`, `--domains N` (+ `--domain-mtbf S`,
/// `--domain-mttr S` — `fleet_replicas` split into N contiguous groups
/// that fail together), and `--degrade MULT` (+ `--degrade-mode
/// flat|link`). `fleet_replicas` is the largest fleet the spec will run
/// against. Returns `None` when no fault axis is requested at all.
fn faults_of(
    args: &Args,
    fleet_replicas: usize,
) -> Result<Option<optimus_serve::FaultSpec>, ArgError> {
    use optimus_serve::{DegradeMode, FaultDomain, FaultSpec};
    let crashes = args.get("mtbf").is_some();
    let stragglers = args.get("stragglers");
    let domains = args.get("domains").is_some();
    let degrade = args.get("degrade").is_some();
    if !crashes && args.get("mttr").is_some() {
        return Err(ArgError("--mttr only applies with --mtbf".to_owned()));
    }
    if !crashes && args.get("failure-process").is_some() {
        return Err(ArgError(
            "--failure-process only applies with --mtbf".to_owned(),
        ));
    }
    if !domains {
        for key in ["domain-mtbf", "domain-mttr"] {
            if args.get(key).is_some() {
                return Err(ArgError(format!("--{key} only applies with --domains")));
            }
        }
    }
    if !degrade && args.get("degrade-mode").is_some() {
        return Err(ArgError(
            "--degrade-mode only applies with --degrade".to_owned(),
        ));
    }
    if !crashes && stragglers.is_none() && !domains && !degrade {
        if args.get("fault-seed").is_some() {
            return Err(ArgError(
                "--fault-seed only applies with --mtbf, --stragglers, or --domains".to_owned(),
            ));
        }
        return Ok(None);
    }
    let mut spec = FaultSpec::none();
    spec.seed = args.get_usize("fault-seed", 0)? as u64;
    if crashes {
        spec.mtbf_s = args.get_f64("mtbf", 0.0)?;
        if !(spec.mtbf_s.is_finite() && spec.mtbf_s > 0.0) {
            return Err(ArgError("--mtbf must be positive seconds".to_owned()));
        }
        spec.mttr_s = args.get_f64("mttr", 30.0)?;
        if let Some(value) = args.get("failure-process") {
            spec = spec.with_process(failure_process_of(value)?);
        }
    }
    if let Some(value) = stragglers {
        let parsed = value
            .split_once(':')
            .and_then(|(frac, mult)| Some((frac.parse::<f64>().ok()?, mult.parse::<f64>().ok()?)));
        let Some((frac, mult)) = parsed else {
            return Err(ArgError(format!(
                "--stragglers expects FRAC:MULT (e.g. 0.25:2.5), got `{value}`"
            )));
        };
        spec = spec.with_stragglers(frac, mult);
    }
    if domains {
        if fleet_replicas < 2 {
            return Err(ArgError(
                "--domains requires a fleet: --replicas 2 or more (serve) or a \
                 --replicas-list entry of 2 or more (load-sweep)"
                    .to_owned(),
            ));
        }
        let count = args.get_usize("domains", 0)?;
        if count == 0 || count > fleet_replicas {
            return Err(ArgError(format!(
                "--domains must lie in 1..={fleet_replicas} (the fleet size), got {count}"
            )));
        }
        if args.get("domain-mtbf").is_none() {
            return Err(ArgError(
                "--domains requires --domain-mtbf (mean seconds between domain outages)".to_owned(),
            ));
        }
        let mtbf_s = args.get_f64("domain-mtbf", 0.0)?;
        if mtbf_s <= 0.0 {
            return Err(ArgError(
                "--domain-mtbf must be positive seconds".to_owned(),
            ));
        }
        let mttr_s = args.get_f64("domain-mttr", 30.0)?;
        // Split the fleet into `count` contiguous near-even groups — the
        // shape of racks filled in replica order. The front groups take
        // the remainder.
        let (base, extra) = (fleet_replicas / count, fleet_replicas % count);
        let mut start = 0;
        spec = spec.with_domains(
            (0..count)
                .map(|d| {
                    let size = base + usize::from(d < extra);
                    let members = (start..start + size).collect();
                    start += size;
                    FaultDomain::new(members, mtbf_s, mttr_s)
                })
                .collect(),
        );
    }
    if degrade {
        let mult = args.get_f64("degrade", 1.0)?;
        if mult < 1.0 {
            return Err(ArgError(
                "--degrade must be a slowdown multiplier of at least 1".to_owned(),
            ));
        }
        spec = spec.with_degradation(mult);
        spec = spec.with_degrade_mode(match args.get_or("degrade-mode", "flat") {
            "flat" => DegradeMode::Flat,
            "link" => DegradeMode::Link,
            other => {
                return Err(ArgError(format!(
                    "unknown degrade mode `{other}`; expected `flat` or `link`"
                )))
            }
        });
    }
    spec.validate()
        .map_err(|reason| ArgError(format!("invalid fault options: {reason}")))?;
    Ok(Some(spec))
}

/// Parses the paged-KV options shared by `serve` and `load-sweep`:
/// `--kv-block N` tokens per block (0 or absent = legacy whole-lifetime
/// reservations) and `--preempt recompute|swap` for decode-time OOM.
fn kv_of(args: &Args) -> Result<optimus_serve::KvSpec, ArgError> {
    use optimus_serve::{KvSpec, PreemptPolicy};
    let block = args.get_usize("kv-block", 0)?;
    let policy = match args.get("preempt") {
        None => PreemptPolicy::Recompute,
        Some(_) if block == 0 => {
            return Err(ArgError(
                "--preempt only applies to paged KV; add --kv-block N".to_owned(),
            ))
        }
        Some("recompute") => PreemptPolicy::Recompute,
        Some("swap") => PreemptPolicy::Swap,
        Some(other) => {
            return Err(ArgError(format!(
                "unknown preemption policy `{other}`; expected `recompute` or `swap`"
            )))
        }
    };
    Ok(if block == 0 {
        KvSpec::reserved()
    } else {
        KvSpec::paged(block).with_policy(policy)
    })
}

/// Parses `--scheduler fifo|priority|sjf|priority-preempt`.
fn scheduler_of(args: &Args) -> Result<optimus_serve::Scheduler, ArgError> {
    use optimus_serve::Scheduler;
    match args.get_or("scheduler", "fifo") {
        "fifo" => Ok(Scheduler::Fifo),
        "priority" => Ok(Scheduler::Priority),
        "sjf" => Ok(Scheduler::Sjf),
        "priority-preempt" => Ok(Scheduler::PriorityPreempt),
        other => Err(ArgError(format!(
            "unknown scheduler `{other}`; expected `fifo`, `priority`, `sjf`, \
             or `priority-preempt`"
        ))),
    }
}

/// Parses the shared-prefix trace options: `--prefix-tokens N` activates
/// a pool of `--prefix-pool` prefixes hit with probability
/// `--prefix-rate`.
fn prefixes_of(args: &Args) -> Result<Option<optimus_serve::PrefixSpec>, ArgError> {
    let tokens = args.get_usize("prefix-tokens", 0)?;
    if tokens == 0 {
        for key in ["prefix-pool", "prefix-rate"] {
            if args.get(key).is_some() {
                return Err(ArgError(format!("--{key} requires --prefix-tokens N")));
            }
        }
        return Ok(None);
    }
    let pool = args.get_usize("prefix-pool", 8)?;
    if pool == 0 {
        return Err(ArgError("--prefix-pool must be at least 1".to_owned()));
    }
    let rate = args.get_f64("prefix-rate", 0.5)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(ArgError("--prefix-rate must lie in [0, 1]".to_owned()));
    }
    Ok(Some(optimus_serve::PrefixSpec { pool, tokens, rate }))
}

/// Parses `--priority-classes N` (1 = every request at priority 0).
fn priority_classes_of(args: &Args) -> Result<u8, ArgError> {
    let classes = args.get_usize("priority-classes", 1)?;
    if classes == 0 || classes > usize::from(u8::MAX) {
        return Err(ArgError(
            "--priority-classes must lie in 1..=255".to_owned(),
        ));
    }
    Ok(classes as u8)
}

/// Parses the SLO options shared by `serve` and `load-sweep`.
fn slo_of(args: &Args) -> Result<optimus_serve::SloSpec, ArgError> {
    let ttft_slo = args.get_f64("ttft-slo", 2000.0)?;
    let tpot_slo = args.get_f64("tpot-slo", 100.0)?;
    if ttft_slo <= 0.0 || tpot_slo <= 0.0 {
        return Err(ArgError("SLO targets must be positive".to_owned()));
    }
    Ok(optimus_serve::SloSpec {
        ttft: optimus::units::Time::from_millis(ttft_slo),
        tpot: optimus::units::Time::from_millis(tpot_slo),
    })
}

/// `optimus-cli serve …` — continuous-batching serving simulation with
/// SLO metrics, over one replica or (with `--replicas N`) a routed
/// fleet.
///
/// # Errors
///
/// Returns [`ArgError`] for bad options or configurations that cannot
/// serve (weights overflow the device, TP beyond a node).
pub fn serve(args: &Args) -> Result<String, ArgError> {
    use optimus_serve::{
        simulate, simulate_fleet, ArrivalProcess, FleetConfig, RecordMode, ServeConfig, TraceSpec,
    };
    let model = model_preset(args.get_or("model", "llama2-13b"))?;
    let cluster = cluster_preset(args.get_or("cluster", "a100-hdr"))?;
    let tp = args.get_usize("tp", 1)?;
    if tp == 0 {
        return Err(ArgError("--tp must be at least 1".to_owned()));
    }
    let precision = precision_of(args.get_or("precision", "fp16"))?;

    let arrival = match (args.get("rate"), args.get("interval")) {
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "--rate (Poisson) and --interval (fixed spacing) are mutually exclusive".to_owned(),
            ))
        }
        (_, None) => {
            let rate_per_s = args.get_f64("rate", 2.0)?;
            if rate_per_s <= 0.0 {
                return Err(ArgError("--rate must be positive".to_owned()));
            }
            ArrivalProcess::Poisson { rate_per_s }
        }
        (None, Some(_)) => {
            let interval_s = args.get_f64("interval", 1.0)?;
            if interval_s <= 0.0 {
                return Err(ArgError("--interval must be positive".to_owned()));
            }
            ArrivalProcess::Fixed { interval_s }
        }
    };
    let requests = args.get_usize("requests", 100)?;
    let slo = slo_of(args)?;

    let spec = TraceSpec {
        seed: args.get_usize("seed", 42)? as u64,
        requests,
        arrival,
        prompt: length_dist_of("prompt", args.get_or("prompt", "200"))?,
        output: length_dist_of("output", args.get_or("output", "64"))?,
        prefixes: prefixes_of(args)?,
        priority_classes: priority_classes_of(args)?,
    };
    // Per-request records default off beyond the exact-mode limit (a
    // million-request trace would otherwise carry a million records);
    // `--records` forces them on at any scale.
    let mut config = ServeConfig::new(tp)
        .with_precision(precision)
        .with_slo(slo)
        .with_kv(kv_of(args)?)
        .with_scheduler(scheduler_of(args)?);
    if args.flag("records") {
        config = config.with_records(RecordMode::On);
    }

    let arrival_desc = match arrival {
        ArrivalProcess::Poisson { rate_per_s } => format!("poisson {rate_per_s} req/s"),
        ArrivalProcess::Fixed { interval_s } => format!("fixed every {interval_s} s"),
    };

    let replicas = args.get_usize("replicas", 1)?;
    if replicas == 0 {
        return Err(ArgError("--replicas must be at least 1".to_owned()));
    }
    let faults = faults_of(args, replicas)?;
    if replicas > 1 || faults.is_some() {
        // Fleet path: route the trace online across identical replicas.
        // Fault injection is a fleet concern, so `--mtbf` on a single
        // replica also runs here (the router requeues its drained work).
        let fleet_config = FleetConfig {
            replicas,
            router: router_of(args)?,
            replica: config,
            faults: faults.unwrap_or_else(optimus_serve::FaultSpec::none),
        };
        let report = simulate_fleet(&cluster, std::sync::Arc::new(model), &fleet_config, &spec)
            .map_err(|e| ArgError(e.to_string()))?;
        if args.flag("json") {
            return serde_json::to_string_pretty(&report).map_err(|e| ArgError(e.to_string()));
        }
        let mut out = format!(
            "serve: {} on {} ({replicas} × TP{tp}, {precision}, {} GPUs)\ntrace: {requests} \
             requests, {arrival_desc}, seed {}\n\n{report}\n\nper replica:\n",
            report.model, report.cluster, report.gpus, spec.seed
        );
        for (i, r) in report.per_replica.iter().enumerate() {
            out.push_str(&format!(
                "  {i}: {:>6} routed, {:>6} completed  |  {:>8.1} tok/s, ttft p99 {:>10}, \
                 slo {:>5.1}%\n",
                report.routed[i],
                r.completed,
                r.tokens_per_s,
                r.ttft.p99.to_string(),
                r.slo.attainment * 100.0,
            ));
        }
        let (prefills, decodes): (usize, usize) =
            report.per_replica.iter().fold((0, 0), |(p, d), r| {
                (p + r.prefill_iterations, d + r.decode_iterations)
            });
        out.push_str(&format!(
            "\niterations: {prefills} prefill + {decodes} decode across replicas \
             (mean decode batch {:.1})\n",
            report.mean_decode_batch
        ));
        if let Some(f) = &report.faults {
            let downtime: Vec<String> = report
                .availability
                .per_replica_downtime
                .iter()
                .map(ToString::to_string)
                .collect();
            out.push_str(&format!(
                "churn: downtime per replica [{}], {} requeue events over {} requests\n",
                downtime.join(", "),
                report.availability.requeues,
                report.availability.requeued_requests,
            ));
            if !f.domains.is_empty() {
                let domains: Vec<String> = f
                    .domains
                    .iter()
                    .zip(&report.availability.per_domain_downtime)
                    .map(|(d, down)| format!("{:?} down {down}", d.replicas))
                    .collect();
                out.push_str(&format!("domains: {}\n", domains.join(", ")));
            }
        }
        return Ok(out);
    }
    for key in ["router", "router-seed"] {
        if args.get(key).is_some() {
            return Err(ArgError(format!(
                "--{key} does not apply without --replicas 2 or more"
            )));
        }
    }

    let report = simulate(&cluster, std::sync::Arc::new(model), &config, &spec)
        .map_err(|e| ArgError(e.to_string()))?;

    if args.flag("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| ArgError(e.to_string()));
    }
    let mut out = format!(
        "serve: {} on {} (TP{tp}, {precision})\ntrace: {requests} requests, {arrival_desc}, \
         seed {}\n\n{report}\n",
        report.model, report.cluster, spec.seed
    );
    out.push_str(&format!(
        "\niterations: {} prefill + {} decode (mean decode batch {:.1})\n",
        report.prefill_iterations, report.decode_iterations, report.mean_decode_batch
    ));
    Ok(out)
}

/// `optimus-cli load-sweep …` — saturation curves and the SLO-goodput
/// frontier over an (arrival-rate × strategy) grid of serving
/// simulations.
///
/// # Errors
///
/// Returns [`ArgError`] for bad options or a grid with no feasible
/// strategy.
pub fn load_sweep(args: &Args) -> Result<String, ArgError> {
    use optimus_serve::{load_sweep, LoadStrategy, LoadSweepSpec};

    let model = model_preset(args.get_or("model", "llama2-13b"))?;
    let cluster = cluster_preset(args.get_or("cluster", "a100-hdr"))?;

    // Strategy axis: a TP list crossed with a precision list and a
    // replica-count list — `gpus = tp × replicas`, so the frontier trades
    // TP-up against replicate-out at equal device counts.
    let positive_list = |key: &str, default: &str| -> Result<Vec<usize>, ArgError> {
        args.get_or(key, default)
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        ArgError(format!("--{key} expects positive integers, got `{t}`"))
                    })
            })
            .collect()
    };
    let tps = positive_list("tp-list", "1,2,4,8")?;
    let replicas_list = positive_list("replicas-list", "1")?;
    if args.get("router").is_some() && replicas_list.iter().all(|&r| r == 1) {
        return Err(ArgError(
            "--router does not apply without a --replicas-list entry of 2 or more".to_owned(),
        ));
    }
    let router = router_of(args)?;
    let precisions = args
        .get_or("precisions", "fp16")
        .split(',')
        .map(precision_of)
        .collect::<Result<Vec<_>, _>>()?;
    // KV axis: block sizes in tokens, 0 = the legacy reserved regime.
    let kv_blocks: Vec<usize> = args
        .get_or("kv-block-list", "0")
        .split(',')
        .map(|t| {
            t.trim().parse::<usize>().map_err(|_| {
                ArgError(format!(
                    "--kv-block-list expects non-negative integers, got `{t}`"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    if args.get("preempt").is_some() && kv_blocks.iter().all(|&b| b == 0) {
        return Err(ArgError(
            "--preempt only applies to paged KV; add a non-zero --kv-block-list entry".to_owned(),
        ));
    }
    let preempt = match args.get("preempt") {
        None | Some("recompute") => optimus_serve::PreemptPolicy::Recompute,
        Some("swap") => optimus_serve::PreemptPolicy::Swap,
        Some(other) => {
            return Err(ArgError(format!(
                "unknown preemption policy `{other}`; expected `recompute` or `swap`"
            )))
        }
    };
    // Scheduler axis. Priority-preempt entries require a paged KV entry
    // to pair with; reserved cells of that scheduler are infeasible.
    let schedulers: Vec<optimus_serve::Scheduler> = args
        .get_or("scheduler-list", args.get_or("scheduler", "fifo"))
        .split(',')
        .map(|t| match t.trim() {
            "fifo" => Ok(optimus_serve::Scheduler::Fifo),
            "priority" => Ok(optimus_serve::Scheduler::Priority),
            "sjf" => Ok(optimus_serve::Scheduler::Sjf),
            "priority-preempt" => Ok(optimus_serve::Scheduler::PriorityPreempt),
            other => Err(ArgError(format!(
                "unknown scheduler `{other}`; expected `fifo`, `priority`, `sjf`, \
                 or `priority-preempt`"
            ))),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut strategies: Vec<LoadStrategy> = Vec::new();
    for &tp in &tps {
        for &precision in &precisions {
            for &replicas in &replicas_list {
                for &block in &kv_blocks {
                    for &scheduler in &schedulers {
                        let kv = if block == 0 {
                            optimus_serve::KvSpec::reserved()
                        } else {
                            optimus_serve::KvSpec::paged(block).with_policy(preempt)
                        };
                        strategies.push(
                            LoadStrategy::single(tp, precision)
                                .with_replicas(replicas)
                                .with_kv(kv)
                                .with_scheduler(scheduler),
                        );
                    }
                }
            }
        }
    }

    // Rate axis: an explicit list, or a geometric grid over
    // [--min-rate, --max-rate] with --points entries.
    let rates: Vec<f64> = if let Some(list) = args.get("rates") {
        for key in ["min-rate", "max-rate", "points"] {
            if args.get(key).is_some() {
                return Err(ArgError(format!(
                    "--{key} does not apply with an explicit --rates list"
                )));
            }
        }
        list.split(',')
            .map(|r| {
                r.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or_else(|| ArgError(format!("--rates expects positive numbers, got `{r}`")))
            })
            .collect::<Result<Vec<_>, _>>()?
    } else {
        let lo = args.get_f64("min-rate", 0.5)?;
        let hi = args.get_f64("max-rate", 128.0)?;
        let points = args.get_usize("points", 16)?;
        if !(lo > 0.0 && hi >= lo) {
            return Err(ArgError(
                "--min-rate must be positive and --max-rate at least --min-rate".to_owned(),
            ));
        }
        if points == 0 {
            return Err(ArgError("--points must be at least 1".to_owned()));
        }
        if points == 1 {
            vec![lo]
        } else {
            (0..points)
                .map(|i| lo * (hi / lo).powf(i as f64 / (points - 1) as f64))
                .collect()
        }
    };

    let spec = LoadSweepSpec {
        seed: args.get_usize("seed", 42)? as u64,
        requests: args.get_usize("requests", 1000)?,
        prompt: length_dist_of("prompt", args.get_or("prompt", "200"))?,
        output: length_dist_of("output", args.get_or("output", "64"))?,
        rates,
        strategies,
        slo: slo_of(args)?,
        router,
        faults: faults_of(args, replicas_list.iter().copied().max().unwrap_or(1))?,
        prefixes: prefixes_of(args)?,
        priority_classes: priority_classes_of(args)?,
    };
    if spec.requests == 0 {
        return Err(ArgError("--requests must be at least 1".to_owned()));
    }

    let report = load_sweep(&cluster, &std::sync::Arc::new(model), &spec);
    if report.curves.is_empty() {
        let reasons: Vec<String> = report
            .infeasible
            .iter()
            .map(|i| format!("TP{} {}: {}", i.tp, i.precision, i.reason))
            .collect();
        return Err(ArgError(format!(
            "no feasible strategy in the grid:\n  {}",
            reasons.join("\n  ")
        )));
    }

    if args.flag("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| ArgError(e.to_string()));
    }

    let mut out = format!(
        "load-sweep: {} on {} — {} rates × {} strategies, {} requests/point, seed {}\n\
         slo: ttft ≤ {}, tpot ≤ {}\n",
        report.model,
        report.cluster,
        spec.rates.len(),
        spec.strategies.len(),
        report.requests_per_point,
        report.seed,
        report.slo.ttft,
        report.slo.tpot,
    );
    if let Some(f) = &report.faults {
        let mut axes = Vec::new();
        if f.mtbf_s > 0.0 {
            axes.push(format!("mtbf {} s, mttr {} s", f.mtbf_s, f.mttr_s));
        }
        if !f.domains.is_empty() {
            axes.push(format!("{} failure domain(s)", f.domains.len()));
        }
        if f.straggler_frac > 0.0 {
            axes.push(format!(
                "stragglers {}:{}",
                f.straggler_frac, f.straggler_mult
            ));
        }
        if f.degrade_mult != 1.0 {
            axes.push(format!(
                "degrade {}× ({:?})",
                f.degrade_mult, f.degrade_mode
            ));
        }
        out.push_str(&format!(
            "faults: {}, seed {} — availability-aware frontier\n",
            axes.join(", "),
            f.seed
        ));
    }
    for curve in &report.curves {
        let replicas_desc = if curve.replicas == 1 {
            String::new()
        } else {
            format!(" × {} replicas", curve.replicas)
        };
        out.push_str(&format!(
            "\nTP{} {}{replicas_desc} ({} GPU{}):\n  {:>10}  {:>9}  {:>9}  {:>12}  {:>7}  \
             {:>10}  {:>10}\n",
            curve.tp,
            curve.precision,
            curve.gpus,
            if curve.gpus == 1 { "" } else { "s" },
            "offered/s",
            "served/s",
            "tok/s",
            "goodput tok/s",
            "slo %",
            "ttft p99",
            "tpot p99",
        ));
        for p in &curve.points {
            out.push_str(&format!(
                "  {:>10.2}  {:>9.2}  {:>9.1}  {:>12.1}  {:>7.1}  {:>10}  {:>10}\n",
                p.offered_rate_per_s,
                p.requests_per_s,
                p.tokens_per_s,
                p.goodput_tokens_per_s,
                p.attainment * 100.0,
                p.ttft_p99.to_string(),
                p.tpot_p99.to_string(),
            ));
        }
    }
    out.push_str(&format!(
        "\nSLO-goodput frontier ({} point{}):\n",
        report.frontier.len(),
        if report.frontier.len() == 1 { "" } else { "s" }
    ));
    for p in &report.frontier {
        let replicas_desc = if p.replicas == 1 {
            String::new()
        } else {
            format!(" × {} replicas", p.replicas)
        };
        out.push_str(&format!(
            "  TP{} {}{replicas_desc} @ {:.2} req/s offered → {:.1} goodput tok/s on {} GPU{} \
             ({:.1}% slo)\n",
            p.tp,
            p.precision,
            p.offered_rate_per_s,
            p.goodput_tokens_per_s,
            p.gpus,
            if p.gpus == 1 { "" } else { "s" },
            p.attainment * 100.0,
        ));
    }
    for i in &report.infeasible {
        out.push_str(&format!(
            "\ninfeasible: TP{} {} × {} replica(s): {}\n",
            i.tp, i.precision, i.replicas, i.reason
        ));
    }
    Ok(out)
}

/// `optimus-cli memory …` — training memory dissection.
///
/// # Errors
///
/// Returns [`ArgError`] for bad options or indivisible configurations.
pub fn memory(args: &Args) -> Result<String, ArgError> {
    let model = model_preset(args.get_or("model", "gpt-175b"))?;
    let spec = TrainingMemorySpec {
        batch: args.get_usize("batch", 64)?,
        seq: args.get_usize("seq", 2048)?,
        parallelism: parallelism_of(args)?,
        schedule: PipelineSchedule::OneFOneB,
        precision: precision_of(args.get_or("precision", "fp16"))?,
        recompute: recompute_of(args.get_or("recompute", "selective"))?,
    };
    let report = training_memory(&model, &spec).map_err(|e| ArgError(e.to_string()))?;
    if args.flag("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| ArgError(e.to_string()));
    }
    Ok(format!("{report}\n"))
}

/// `optimus-cli sweep …` — exhaustive parallelization-strategy search
/// with a (latency, cost) Pareto frontier.
///
/// # Errors
///
/// Returns [`ArgError`] for bad options or an empty strategy space.
pub fn sweep(args: &Args) -> Result<String, ArgError> {
    /// A numeric option that the library layer requires to be ≥ 1.
    fn positive(args: &Args, key: &str, default: usize) -> Result<usize, ArgError> {
        let value = args.get_usize(key, default)?;
        if value == 0 {
            return Err(ArgError(format!("--{key} must be at least 1")));
        }
        Ok(value)
    }
    /// Rejects options that have no effect on the selected workload, so a
    /// sweep never silently answers a different question than asked.
    fn reject_inapplicable(args: &Args, workload: &str, keys: &[&str]) -> Result<(), ArgError> {
        for key in keys {
            if args.get(key).is_some() {
                return Err(ArgError(format!(
                    "--{key} does not apply to --workload {workload}"
                )));
            }
        }
        Ok(())
    }

    let model = model_preset(args.get_or("model", "llama2-13b"))?;
    let cluster = cluster_preset(args.get_or("cluster", "a100-hdr"))?;
    let max_gpus = positive(args, "max-gpus", 64)?;
    if args.flag("frontier-only") && args.get("top").is_some() {
        return Err(ArgError(
            "--top does not apply with --frontier-only".to_owned(),
        ));
    }
    if args.flag("full") && (args.flag("frontier-only") || args.get("top").is_some()) {
        return Err(ArgError(
            "--full does not apply with --frontier-only or --top".to_owned(),
        ));
    }

    let workload = match args.get_or("workload", "train") {
        "train" | "training" => {
            reject_inapplicable(args, "train", &["prefill", "generate"])?;
            Workload::Training {
                batch: positive(args, "batch", 64)?,
                seq: positive(args, "seq", 2048)?,
                recompute: recompute_of(args.get_or("recompute", "selective"))?,
                schedule: PipelineSchedule::OneFOneB,
            }
        }
        "infer" | "inference" => {
            reject_inapplicable(
                args,
                "infer",
                &[
                    "seq",
                    "recompute",
                    "mtbf",
                    "checkpoint-interval",
                    "restart",
                    "failure-process",
                    "checkpoint-tiers",
                    "rewarm",
                    "repair",
                    "delta-frac",
                    "checkpoint-util",
                ],
            )?;
            if args.flag("elastic") {
                return Err(ArgError(
                    "--elastic does not apply to --workload infer".to_owned(),
                ));
            }
            Workload::inference(
                positive(args, "batch", 1)?,
                positive(args, "prefill", 200)?,
                positive(args, "generate", 200)?,
            )
        }
        other => {
            return Err(ArgError(format!(
                "unknown workload `{other}`; expected `train` or `infer`"
            )))
        }
    };

    let mut space = SweepSpace::power_of_two(max_gpus);
    // Accept the singular `--precision` the other subcommands use as an
    // alias, so familiarity with `train`/`infer` carries over.
    if let Some(list) = args.get("precisions").or_else(|| args.get("precision")) {
        let precisions = list
            .split(',')
            .map(precision_of)
            .collect::<Result<Vec<_>, _>>()?;
        space = space.with_precisions(precisions);
    }

    let checkpoint = checkpoint_of(args)?;
    let mut report = SweepEngine::new(&cluster)
        .with_checkpoint(checkpoint.clone())
        .sweep(&model, &workload, &space);
    if report.evaluated.is_empty() {
        return Err(ArgError(format!(
            "no valid strategy for {} on {} within {max_gpus} GPUs",
            model.name, cluster.name
        )));
    }

    if args.flag("json") {
        // JSON honors the same shaping flags as the text output:
        // `--frontier-only` emits just the frontier array, `--top N` caps
        // `evaluated` at the N lowest-latency strategies (0 = no cap, rows
        // sorted by latency), and the default — spellable explicitly as
        // `--full` — dumps the complete report in stable strategy order.
        if args.flag("frontier-only") {
            return serde_json::to_string_pretty(&report.frontier)
                .map_err(|e| ArgError(e.to_string()));
        }
        if args.get("top").is_some() {
            let top = args.get_usize("top", 20)?;
            report.evaluated.sort_by_key(|r| r.latency);
            if top > 0 {
                report.evaluated.truncate(top);
            }
        }
        return serde_json::to_string_pretty(&report).map_err(|e| ArgError(e.to_string()));
    }

    let mut out = format!(
        "sweep: {} on {} (≤{max_gpus} GPUs)\n{} strategies valid, {} on the Pareto frontier, \
         {} rejected by the estimator\n\n",
        model.name,
        cluster.name,
        report.evaluated.len(),
        report.frontier.len(),
        report.rejected.len(),
    );
    if checkpoint.has_failures() {
        let interval = match checkpoint.interval_s {
            Some(s) => format!("checkpoint every {s} s"),
            None => "Young–Daly checkpoint interval".to_owned(),
        };
        let mut extras = String::new();
        if !checkpoint.process.is_exponential() {
            extras.push_str(&format!(", {} failures", checkpoint.process));
        }
        if !checkpoint.tiers.is_empty() {
            let names: Vec<String> = checkpoint
                .tiers
                .iter()
                .map(|t| t.kind.to_string())
                .collect();
            extras.push_str(&format!(", extra tiers: {}", names.join("+")));
        }
        if checkpoint.elastic {
            extras.push_str(", elastic fallback");
        }
        out.push_str(&format!(
            "resilience: per-GPU mtbf {} s, {interval}, restart {} s{extras} — latency, cost, \
             and energy are failure-expected\n\n",
            checkpoint.mtbf_s, checkpoint.restart_s
        ));
    }
    out.push_str(&render_frontier(&report));
    if !args.flag("frontier-only") {
        // `--full` is the explicit spelling of an uncapped table (= --top 0).
        let top = if args.flag("full") {
            0
        } else {
            args.get_usize("top", 20)?
        };
        if top == 0 {
            // `render_table` treats 0 as "no cap": label it accordingly.
            out.push_str(&format!(
                "\nall {} strategies by latency:\n",
                report.evaluated.len()
            ));
        } else {
            out.push_str(&format!("\ntop {top} strategies by latency:\n"));
        }
        out.push_str(&render_table(&report, top));
    }
    Ok(out)
}

/// `optimus-cli list` — the available presets.
#[must_use]
pub fn list() -> String {
    let mut out = String::from("models:\n");
    for m in optimus::model::presets::gpt_family()
        .into_iter()
        .chain([optimus::model::presets::gpt_7b()])
        .chain(optimus::model::presets::llama2_family())
    {
        out.push_str(&format!("  {m}\n"));
    }
    out.push_str("\nclusters:\n");
    for name in [
        "a100-hdr", "h100-ndr", "h100-nvs", "h200-nvs", "b200-ndr", "b200-nvs",
    ] {
        let c = cluster_preset(name).expect("preset list is in sync");
        out.push_str(&format!("  {c}\n"));
    }
    out
}

/// Top-level usage text.
#[must_use]
pub fn usage() -> String {
    "optimus-cli — analytical LLM performance modeling (IISWC 2024 reproduction)

USAGE:
  optimus-cli train  [--model M] [--cluster C] [--batch N] [--seq N]
                     [--dp N] [--tp N] [--pp N] [--sp] [--microbatch N]
                     [--precision P] [--recompute none|selective|full]
                     [--mtbf S] [--checkpoint-interval S] [--restart S]
                     [--failure-process exp|weibull:K|racks:N:MTBF]
                     [--checkpoint-tiers peer,delta] [--delta-frac F]
                     [--elastic] [--rewarm S] [--repair S]
                     [--checkpoint-util F]
                     [--flash] [--json]
  optimus-cli infer  [--model M] [--cluster C] [--batch N] [--prefill N]
                     [--generate N] [--tp N] [--precision P] [--json]
  optimus-cli serve  [--model M] [--cluster C] [--tp N] [--precision P]
                     [--replicas N] [--router POLICY] [--router-seed N]
                     [--kv-block N] [--preempt recompute|swap]
                     [--scheduler S] [--priority-classes N]
                     [--prefix-tokens N] [--prefix-pool N] [--prefix-rate F]
                     [--mtbf S] [--mttr S] [--fault-seed N]
                     [--failure-process exp|weibull:K]
                     [--domains N] [--domain-mtbf S] [--domain-mttr S]
                     [--stragglers F:M] [--degrade M]
                     [--degrade-mode flat|link]
                     [--requests N] [--seed N]
                     [--rate R | --interval S]
                     [--prompt N|LO:HI] [--output N|LO:HI]
                     [--ttft-slo MS] [--tpot-slo MS] [--records] [--json]
  optimus-cli load-sweep
                     [--model M] [--cluster C] [--tp-list N,N,..]
                     [--replicas-list N,N,..] [--router POLICY]
                     [--kv-block-list N,N,..] [--scheduler-list S,S,..]
                     [--preempt recompute|swap] [--priority-classes N]
                     [--prefix-tokens N] [--prefix-pool N] [--prefix-rate F]
                     [--mtbf S] [--mttr S] [--fault-seed N]
                     [--failure-process exp|weibull:K]
                     [--domains N] [--domain-mtbf S] [--domain-mttr S]
                     [--stragglers F:M] [--degrade M]
                     [--degrade-mode flat|link]
                     [--precisions P,P] [--requests N] [--seed N]
                     [--rates R,R,.. | --min-rate R --max-rate R --points N]
                     [--prompt N|LO:HI] [--output N|LO:HI]
                     [--ttft-slo MS] [--tpot-slo MS] [--json]
  optimus-cli memory [--model M] [--batch N] [--seq N] [--dp N] [--tp N]
                     [--pp N] [--sp] [--recompute MODE] [--json]
  optimus-cli sweep  [--model M] [--cluster C] [--workload train|infer]
                     [--max-gpus N] [--batch N] [--seq N] [--prefill N]
                     [--generate N] [--recompute MODE] [--precisions P,P]
                     [--mtbf S] [--checkpoint-interval S] [--restart S]
                     [--failure-process exp|weibull:K|racks:N:MTBF]
                     [--checkpoint-tiers peer,delta] [--delta-frac F]
                     [--elastic] [--rewarm S] [--repair S]
                     [--checkpoint-util F]
                     [--top N] [--frontier-only] [--full] [--json]
  optimus-cli list

FLEET OPTIONS (serve with --replicas ≥ 2, load-sweep with --replicas-list):
  --replicas N      identical replicas behind one router; the fleet
                    occupies tp × N GPUs (serve default 1)
  --router POLICY   round-robin (default), random, least-outstanding, or
                    shortest-queue; the state-aware policies observe live
                    per-replica queue depth at each arrival
  --router-seed N   RNG seed of the random router (default 0)

FAULT INJECTION (serve and load-sweep; deterministic, seeded):
  --mtbf S          mean seconds of uptime between replica crashes
                    (exponential, per replica); off unless given. Crashed
                    replicas drain their in-flight requests back to the
                    router for requeueing, and routers skip down replicas
  --mttr S          mean seconds to repair one crash (default 30)
  --failure-process exp|weibull:K
                    the uptime law behind --mtbf: `exp` (default,
                    memoryless) or `weibull:K` with shape K — K < 1
                    models infant mortality (bursty early failures),
                    K > 1 wear-out. Rack-correlated outages are spelled
                    with --domains here
  --fault-seed N    seed of the fault processes (default 0); independent
                    of the trace and router seeds
  --stragglers F:M  fraction F of replicas run every iteration M× slower
                    (drawn once per replica from the fault seed)
  --domains N       split the fleet into N contiguous failure domains —
                    racks, power feeds, leaf switches — whose members
                    crash and recover **together** on one shared seeded
                    outage process (requires a fleet of 2+ replicas)
  --domain-mtbf S   mean seconds of domain uptime between shared outages
                    (required with --domains)
  --domain-mttr S   mean seconds to repair one domain outage (default 30)
  --degrade M       fleet-wide slowdown multiplier ≥ 1 (default off)
  --degrade-mode    how --degrade is priced: `flat` scales every
                    iteration uniformly (default); `link` divides the
                    cluster's link bandwidths by M and re-prices every
                    iteration through the collective cost model

TRAINING RESILIENCE (train and sweep; Young–Daly checkpoint model):
  --mtbf S          mean seconds of uptime between failures of one GPU;
                    the job-level MTBF is S / gpus, so bigger strategies
                    fail proportionally more often. Latency, cost, and
                    energy figures become failure-expected (time over
                    goodput), and reports gain a resilience section
  --checkpoint-interval S
                    seconds of useful work between checkpoints (default:
                    the Young–Daly optimum √(2δM) per strategy)
  --restart S       seconds to restart after a failure, on top of the
                    lost half-interval of rework (default 0)
  --failure-process exp|weibull:K|racks:N:MTBF
                    the failure law: `exp` (default), `weibull:K`
                    (shape K — K < 1 infant mortality shortens the
                    effective cluster MTBF; rework priced by seeded
                    simulation), or `racks:N:MTBF` (N racks each failing
                    wholesale every MTBF seconds, superposed on the
                    per-GPU process)
  --checkpoint-tiers peer,delta
                    extra checkpoint tiers under the always-present
                    persistent full tier: `peer` snapshots into DP-peer
                    memory (priced as an all-gather; survives single-GPU
                    failures only), `delta` persists only the optimizer
                    delta (--delta-frac of its bytes, default 0.25).
                    Each tier runs at its own Young–Daly interval; tiers
                    that don't lower the expected waste report inactive
  --delta-frac F    fraction of optimizer state a delta checkpoint
                    writes (requires a `delta` tier; default 0.25)
  --elastic         on failure, also price shrinking the DP group by the
                    blast radius and continuing degraded (re-priced
                    through the estimator) vs a full restart; the report
                    keeps whichever wastes less
  --rewarm S        seconds to re-shard into the shrunken DP group
                    (requires --elastic; default 0)
  --repair S        mean seconds until the failed hardware rejoins
                    (requires --elastic; default 0)
  --checkpoint-util F
                    dynamic-power utilization during checkpoint/rework/
                    restart seconds, 0..=1 (default 1 = full burn);
                    below 1, energy and electricity cost inflate less
                    than latency and capex

PAGED KV, SCHEDULERS, AND SHARED PREFIXES (serve and load-sweep):
  --kv-block N      allocate KV in blocks of N tokens (vLLM-style paging)
                    instead of whole-lifetime reservations; admission
                    only needs the prompt's blocks, decode grows block by
                    block, and OOM preempts a victim. 0 or absent = the
                    legacy reserved regime (byte-identical reports)
  --preempt P       what decode-time OOM does to the victim: `recompute`
                    (drop blocks, prefill again later — the default) or
                    `swap` (stage blocks over the inter-node link, priced
                    both ways); requires --kv-block
  --scheduler S     admission order: `fifo` (default), `priority` (lowest
                    class first), `sjf` (shortest prompt+output first),
                    or `priority-preempt` (priority admission whose OOM
                    victims are the worst class; requires paged KV)
  --priority-classes N
                    draw each request's class uniformly from 0..N
                    (default 1 = every request equal)
  --prefix-tokens N the shared-prefix workload shape: requests carry one
                    of --prefix-pool fixed N-token prefixes with
                    probability --prefix-rate (pool default 8, rate 0.5).
                    Paged replicas cache prefix blocks with refcounts —
                    cache hits skip the prefix's prefill compute
  --kv-block-list N,N  (load-sweep) KV block sizes to sweep as a strategy
                    axis; 0 = reserved (default 0)
  --scheduler-list S,S  (load-sweep) schedulers to sweep as a strategy
                    axis (default fifo)

SERVE TRAFFIC AND SLO OPTIONS:
  --rate R          Poisson arrivals at R requests/s (default 2.0)
  --interval S      evenly spaced arrivals every S seconds instead
  --prompt N|LO:HI  prompt length: fixed or uniform over LO..=HI tokens
  --output N|LO:HI  output length: fixed or uniform over LO..=HI tokens
  --ttft-slo MS     time-to-first-token target, ms (default 2000)
  --tpot-slo MS     time-per-output-token target, ms (default 100)
  --records         force per-request records into the report; beyond
                    10k requests they default off (aggregates stay exact)

LOAD-SWEEP GRID OPTIONS:
  --tp-list N,N     tensor-parallel degrees to sweep (default 1,2,4,8)
  --replicas-list N,N  replica counts to cross with the TP list (default
                    1); each strategy occupies tp × replicas GPUs
  --precisions P,P  precisions to cross with the TP list (default fp16)
  --rates R,R       explicit offered arrival rates, req/s
  --min-rate R      geometric rate grid start (default 0.5)
  --max-rate R      geometric rate grid end (default 128)
  --points N        geometric rate grid size (default 16)
  --requests N      requests simulated per grid cell (default 1000)

SWEEP OUTPUT SHAPING (text and JSON alike):
  --frontier-only   only the Pareto frontier (JSON: the frontier array)
  --top N           cap the strategy rows at the N lowest-latency entries
                    (0 = no cap; JSON rows come out latency-sorted)
  --full            the complete report — the default for --json, spelled
                    out; for text, an uncapped table (default caps at 20)

EXAMPLES:
  optimus-cli train --model gpt-175b --cluster a100-hdr --batch 64 \\
      --tp 8 --pp 8 --sp --recompute selective
  optimus-cli infer --model llama2-70b --cluster h100-ndr --tp 8
  optimus-cli sweep --model llama2-13b --cluster a100-hdr --workload train \\
      --batch 64 --max-gpus 64
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned)).unwrap()
    }

    #[test]
    fn train_command_produces_report() {
        let out = train(&args(
            "train --model gpt-22b --cluster a100-hdr --batch 4 --tp 8 --recompute full",
        ))
        .unwrap();
        assert!(out.contains("time/batch"), "{out}");
        assert!(out.contains("fits"));
    }

    #[test]
    fn train_json_is_valid() {
        let out = train(&args("train --model gpt-22b --batch 4 --tp 8 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v.get("time_per_batch").is_some());
    }

    #[test]
    fn train_with_mtbf_reports_resilience() {
        let base = "train --model llama2-13b --batch 64 --dp 8 --tp 8 --sp \
                    --mtbf 100000000 --restart 300";
        let out = train(&args(base)).unwrap();
        assert!(out.contains("resilience"), "{out}");
        assert!(out.contains("goodput"), "{out}");
        let v: serde_json::Value =
            serde_json::from_str(&train(&args(&format!("{base} --json"))).unwrap()).unwrap();
        let resilience = v.get("resilience").expect("resilience section");
        let goodput = resilience
            .get("goodput")
            .and_then(serde_json::Value::as_f64)
            .unwrap();
        assert!(goodput > 0.0 && goodput < 1.0, "goodput {goodput}");
        assert!(resilience.get("interval").is_some());
        assert_eq!(
            resilience
                .get("auto_interval")
                .and_then(serde_json::Value::as_bool),
            Some(true)
        );
        // A fixed interval switches the auto flag off.
        let fixed: serde_json::Value = serde_json::from_str(
            &train(&args(&format!("{base} --checkpoint-interval 600 --json"))).unwrap(),
        )
        .unwrap();
        assert_eq!(
            fixed
                .get("resilience")
                .unwrap()
                .get("auto_interval")
                .and_then(serde_json::Value::as_bool),
            Some(false)
        );
    }

    #[test]
    fn train_without_mtbf_has_no_resilience_section() {
        let out = train(&args("train --model gpt-22b --batch 4 --tp 8 --json")).unwrap();
        assert!(!out.contains("resilience"), "{out}");
    }

    #[test]
    fn train_rejects_bad_resilience_options() {
        for bad in [
            "train --checkpoint-interval 600",
            "train --restart 60",
            "train --mtbf 0",
            "train --mtbf -5",
            "train --mtbf 1e8 --checkpoint-interval 0",
            "train --mtbf 1e8 --restart -1",
        ] {
            assert!(train(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn train_rejects_stack_options_without_their_anchors() {
        // Every stack flag names the flag it needs.
        for (bad, needs) in [
            ("train --failure-process weibull:0.7", "--mtbf"),
            ("train --checkpoint-tiers peer", "--mtbf"),
            ("train --delta-frac 0.5", "--mtbf"),
            ("train --checkpoint-util 0.5", "--mtbf"),
            ("train --rewarm 60", "--mtbf"),
            ("train --repair 600", "--mtbf"),
            ("train --elastic", "--mtbf"),
            ("train --mtbf 1e8 --rewarm 60", "--elastic"),
            ("train --mtbf 1e8 --repair 600", "--elastic"),
            ("train --mtbf 1e8 --delta-frac 0.5", "--checkpoint-tiers"),
            (
                "train --mtbf 1e8 --checkpoint-tiers peer --delta-frac 0.5",
                "--checkpoint-tiers",
            ),
        ] {
            let err = train(&args(bad)).unwrap_err();
            assert!(
                err.to_string().contains("only applies with") && err.to_string().contains(needs),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn train_rejects_malformed_stack_values() {
        for bad in [
            "train --mtbf 1e8 --failure-process weibull:x",
            "train --mtbf 1e8 --failure-process weibull:0",
            "train --mtbf 1e8 --failure-process racks:2",
            "train --mtbf 1e8 --failure-process racks:0:5000",
            "train --mtbf 1e8 --failure-process racks:2:0",
            "train --mtbf 1e8 --failure-process bogus",
            "train --mtbf 1e8 --checkpoint-tiers full",
            "train --mtbf 1e8 --checkpoint-tiers peer,peer",
            "train --mtbf 1e8 --checkpoint-tiers peer,delta --delta-frac 0",
            "train --mtbf 1e8 --checkpoint-tiers delta --delta-frac 1.5",
            "train --mtbf 1e8 --checkpoint-util 1.5",
            "train --mtbf 1e8 --checkpoint-util -0.1",
            "train --mtbf 1e8 --elastic --rewarm -1",
            "train --mtbf 1e8 --elastic --repair -1",
        ] {
            assert!(train(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn train_with_stack_reports_tiers_and_elastic() {
        let base = "train --model llama2-13b --batch 64 --dp 8 --tp 8 --sp \
                    --mtbf 40000 --restart 900 --failure-process weibull:0.7 \
                    --checkpoint-tiers peer,delta --elastic --rewarm 60 --repair 1800";
        let out = train(&args(base)).unwrap();
        assert!(out.contains("weibull"), "{out}");
        let v: serde_json::Value =
            serde_json::from_str(&train(&args(&format!("{base} --json"))).unwrap()).unwrap();
        let resilience = v.get("resilience").expect("resilience section");
        assert!(resilience.get("process").is_some(), "{resilience:?}");
        let tiers = resilience.get("tiers").unwrap().as_array().unwrap();
        assert_eq!(tiers.len(), 2);
        let elastic = resilience.get("elastic").expect("elastic section");
        assert!(elastic.get("chosen").is_some());
        // Goodput under a stacked spec is at least the plain-restart one.
        let restart = elastic
            .get("restart_goodput")
            .and_then(serde_json::Value::as_f64)
            .unwrap();
        let goodput = resilience
            .get("goodput")
            .and_then(serde_json::Value::as_f64)
            .unwrap();
        assert!(goodput >= restart, "goodput {goodput} < restart {restart}");
    }

    #[test]
    fn infer_command_produces_report() {
        let out = infer(&args("infer --model llama2-7b --tp 2")).unwrap();
        assert!(out.contains("latency"));
        assert!(out.contains("kv-cache"));
    }

    #[test]
    fn serve_command_produces_report() {
        let out = serve(&args(
            "serve --model llama2-7b --tp 1 --requests 12 --rate 4 --prompt 100 --output 8",
        ))
        .unwrap();
        assert!(out.contains("served 12/12"), "{out}");
        assert!(out.contains("ttft"), "{out}");
        assert!(out.contains("goodput"), "{out}");
    }

    #[test]
    fn serve_json_is_valid() {
        let out = serve(&args(
            "serve --model llama2-7b --requests 8 --interval 5 --prompt 100 --output 4 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v.get("ttft").is_some());
        assert!(v.get("slo").is_some());
        assert_eq!(
            v.get("completed").and_then(serde_json::Value::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn serve_accepts_length_ranges() {
        let out = serve(&args(
            "serve --model llama2-7b --requests 6 --rate 8 --prompt 50:150 --output 1:8",
        ))
        .unwrap();
        assert!(out.contains("served 6/6"), "{out}");
    }

    #[test]
    fn serve_rejects_bad_options() {
        for bad in [
            "serve --rate 0",
            "serve --interval 0",
            "serve --rate 2 --interval 3",
            "serve --prompt 0",
            "serve --prompt 200:100",
            "serve --output 10:x",
            "serve --tp 0",
            "serve --ttft-slo 0",
        ] {
            assert!(serve(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn serve_surfaces_infeasible_configs_cleanly() {
        // 175B weights cannot fit one 80 GB device at FP16.
        let err = serve(&args("serve --model gpt-175b --requests 1")).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
        let err = serve(&args("serve --model llama2-7b --tp 16 --requests 1")).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn serve_records_flag_restores_per_request_output() {
        // Past the 10k auto-off limit the report drops per-request
        // records; the flag must bring them back through the CLI wiring.
        // Tiny fixed lengths keep the just-over-the-limit trace cheap.
        let base = "serve --model llama2-7b --requests 10001 --rate 400 --prompt 20 --output 2";
        let per_request_len = |out: String| {
            serde_json::from_str::<serde_json::Value>(&out)
                .unwrap()
                .get("per_request")
                .unwrap()
                .as_array()
                .unwrap()
                .len()
        };
        let without = serve(&args(&format!("{base} --json"))).unwrap();
        assert_eq!(per_request_len(without), 0, "records default off past 10k");
        let with = serve(&args(&format!("{base} --json --records"))).unwrap();
        assert_eq!(per_request_len(with), 10001);
    }

    #[test]
    fn serve_replicas_runs_a_fleet() {
        let out = serve(&args(
            "serve --model llama2-7b --tp 1 --replicas 3 --router least-outstanding \
             --requests 30 --rate 12 --prompt 100 --output 8",
        ))
        .unwrap();
        assert!(out.contains("3 × TP1"), "{out}");
        assert!(out.contains("3 GPUs"), "{out}");
        assert!(out.contains("least-outstanding"), "{out}");
        assert!(out.contains("per replica:"), "{out}");
        assert!(out.contains("served 30/30"), "{out}");
    }

    #[test]
    fn serve_fleet_json_is_valid() {
        let out = serve(&args(
            "serve --model llama2-7b --replicas 2 --router random --router-seed 7 \
             --requests 16 --rate 8 --prompt 100 --output 4 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(
            v.get("replicas").and_then(serde_json::Value::as_f64),
            Some(2.0)
        );
        assert_eq!(v.get("gpus").and_then(serde_json::Value::as_f64), Some(2.0));
        assert_eq!(v.get("per_replica").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("completed").and_then(serde_json::Value::as_f64),
            Some(16.0)
        );
    }

    #[test]
    fn serve_rejects_bad_fleet_options() {
        for bad in [
            "serve --replicas 0",
            "serve --replicas 2 --router teleport",
            "serve --router least-outstanding",
            "serve --router-seed 9",
            "serve --replicas 1 --router round-robin",
            "serve --replicas 2 --router round-robin --router-seed 3",
        ] {
            assert!(serve(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn serve_with_faults_reports_availability() {
        let out = serve(&args(
            "serve --model llama2-7b --replicas 3 --requests 120 --rate 30 \
             --prompt 100:200 --output 4:16 --mtbf 5 --mttr 2 --fault-seed 7",
        ))
        .unwrap();
        assert!(out.contains("churn"), "{out}");
        assert!(out.contains("downtime per replica"), "{out}");
        let json = serve(&args(
            "serve --model llama2-7b --replicas 3 --requests 120 --rate 30 \
             --prompt 100:200 --output 4:16 --mtbf 5 --mttr 2 --fault-seed 7 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let availability = v.get("availability").unwrap();
        assert!(
            availability
                .get("crashes")
                .and_then(serde_json::Value::as_f64)
                .unwrap()
                > 0.0
        );
        let faults = v.get("faults").unwrap();
        assert_eq!(
            faults.get("mtbf_s").and_then(serde_json::Value::as_f64),
            Some(5.0)
        );
    }

    #[test]
    fn serve_single_replica_with_faults_takes_the_fleet_path() {
        let out = serve(&args(
            "serve --model llama2-7b --requests 60 --rate 20 --prompt 100 --output 8 \
             --mtbf 4 --mttr 1 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(
            v.get("replicas").and_then(serde_json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            v.get("completed").and_then(serde_json::Value::as_f64),
            Some(60.0)
        );
    }

    #[test]
    fn serve_rejects_bad_fault_options() {
        for bad in [
            "serve --mttr 10",
            "serve --fault-seed 3",
            "serve --replicas 2 --mtbf 0",
            "serve --replicas 2 --mtbf -5",
            "serve --replicas 2 --mtbf 10 --mttr 0",
            "serve --replicas 2 --stragglers half:2",
            "serve --replicas 2 --stragglers 1.5:2",
            "serve --replicas 2 --stragglers 0.5:0.5",
        ] {
            assert!(serve(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn serve_with_domains_reports_shared_outages() {
        let base = "serve --model llama2-7b --replicas 4 --requests 160 --rate 40 \
                    --prompt 100 --output 8 --domains 2 --domain-mtbf 8 --domain-mttr 2";
        let out = serve(&args(base)).unwrap();
        assert!(out.contains("churn"), "{out}");
        assert!(out.contains("domains: [0, 1]"), "{out}");
        let v: serde_json::Value =
            serde_json::from_str(&serve(&args(&format!("{base} --json"))).unwrap()).unwrap();
        let availability = v.get("availability").unwrap();
        assert_eq!(
            availability
                .get("per_domain_downtime")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
        assert!(
            availability
                .get("crashes")
                .and_then(serde_json::Value::as_f64)
                .unwrap()
                > 0.0
        );
        let domains = v
            .get("faults")
            .unwrap()
            .get("domains")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(domains.len(), 2);
        // Contiguous near-even split: [0, 1] and [2, 3].
        let members = |d: &serde_json::Value| {
            d.get("replicas")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|m| m.as_f64().unwrap() as usize)
                .collect::<Vec<_>>()
        };
        assert_eq!(members(&domains[0]), vec![0, 1]);
        assert_eq!(members(&domains[1]), vec![2, 3]);
    }

    #[test]
    fn serve_degrade_modes_run_through_the_fleet_path() {
        let flat = serve(&args(
            "serve --model llama2-7b --tp 2 --replicas 2 --requests 40 --rate 10 \
             --prompt 100 --output 8 --degrade 2 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&flat).unwrap();
        let faults = v.get("faults").unwrap();
        assert_eq!(
            faults
                .get("degrade_mult")
                .and_then(serde_json::Value::as_f64),
            Some(2.0)
        );
        let link = serve(&args(
            "serve --model llama2-7b --tp 2 --replicas 2 --requests 40 --rate 10 \
             --prompt 100 --output 8 --degrade 2 --degrade-mode link --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&link).unwrap();
        assert_eq!(
            v.get("faults")
                .unwrap()
                .get("degrade_mode")
                .and_then(serde_json::Value::as_str),
            Some("Link")
        );
        assert_ne!(flat, link, "the two pricing modes must not coincide");
    }

    #[test]
    fn serve_rejects_bad_domain_and_degrade_options() {
        for bad in [
            "serve --domains 2 --domain-mtbf 5",
            "serve --replicas 1 --domains 1 --domain-mtbf 5",
            "serve --replicas 4 --domains 0 --domain-mtbf 5",
            "serve --replicas 4 --domains 5 --domain-mtbf 5",
            "serve --replicas 4 --domains 2",
            "serve --replicas 4 --domains 2 --domain-mtbf 0",
            "serve --replicas 4 --domains 2 --domain-mtbf 5 --domain-mttr 0",
            "serve --domain-mtbf 5",
            "serve --domain-mttr 5",
            "serve --degrade 0.5",
            "serve --degrade-mode link",
            "serve --replicas 2 --degrade 2 --degrade-mode sideways",
        ] {
            assert!(serve(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn serve_rejects_bad_failure_process_options() {
        let err = serve(&args("serve --failure-process weibull:0.7")).unwrap_err();
        assert!(
            err.to_string().contains("only applies with --mtbf"),
            "{err}"
        );
        let err = serve(&args("serve --mtbf 5 --failure-process racks:2:5000")).unwrap_err();
        assert!(err.to_string().contains("--domains"), "{err}");
        for bad in [
            "serve --mtbf 5 --failure-process weibull:0",
            "serve --mtbf 5 --failure-process weibull:x",
            "serve --mtbf 5 --failure-process bogus",
        ] {
            assert!(serve(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn serve_weibull_uptimes_change_the_outage_pattern() {
        let base = "serve --model llama2-7b --tp 1 --requests 60 --rate 10 \
                    --prompt 100 --output 8 --mtbf 8 --mttr 2";
        let exp = serve(&args(&format!("{base} --json"))).unwrap();
        // Spelling the default law explicitly is byte-identical.
        let explicit = serve(&args(&format!("{base} --failure-process exp --json"))).unwrap();
        assert_eq!(exp, explicit);
        let weibull = serve(&args(&format!(
            "{base} --failure-process weibull:0.7 --json"
        )))
        .unwrap();
        assert_ne!(exp, weibull, "shape 0.7 must reshuffle the outages");
        let v: serde_json::Value = serde_json::from_str(&weibull).unwrap();
        let process = v.get("faults").unwrap().get("process").unwrap();
        assert_eq!(
            process
                .get("Weibull")
                .and_then(|w| w.get("shape"))
                .and_then(serde_json::Value::as_f64),
            Some(0.7)
        );
    }

    #[test]
    fn load_sweep_with_domains_labels_the_report() {
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1 --replicas-list 2 \
             --rates 20 --requests 80 --prompt 100 --output 8 \
             --domains 2 --domain-mtbf 6 --domain-mttr 2",
        ))
        .unwrap();
        assert!(out.contains("2 failure domain(s)"), "{out}");
        assert!(out.contains("availability-aware"), "{out}");
    }

    #[test]
    fn load_sweep_with_faults_runs_and_labels_the_report() {
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1 --replicas-list 2 \
             --rates 20 --requests 120 --prompt 100 --output 8 \
             --mtbf 5 --mttr 2 --fault-seed 3",
        ))
        .unwrap();
        assert!(out.contains("faults: mtbf 5 s"), "{out}");
        assert!(out.contains("availability-aware"), "{out}");
    }

    #[test]
    fn load_sweep_command_produces_curves_and_frontier() {
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1,2 --rates 1,8 --requests 24 \
             --prompt 100 --output 8",
        ))
        .unwrap();
        assert!(out.contains("2 rates × 2 strategies"), "{out}");
        assert!(out.contains("TP1"), "{out}");
        assert!(out.contains("TP2"), "{out}");
        assert!(out.contains("SLO-goodput frontier"), "{out}");
    }

    #[test]
    fn load_sweep_json_is_valid_and_deterministic() {
        let cmd = "load-sweep --model llama2-7b --tp-list 1,2 --rates 2,16 --requests 16 \
                   --prompt 50:150 --output 4:12 --json";
        let a = load_sweep(&args(cmd)).unwrap();
        let b = load_sweep(&args(cmd)).unwrap();
        assert_eq!(a, b);
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert_eq!(v.get("curves").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("frontier").is_some());
        assert!(v.get("infeasible").is_some());
    }

    #[test]
    fn load_sweep_geometric_grid_and_defaults() {
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1 --min-rate 1 --max-rate 4 --points 3 \
             --requests 8 --prompt 100 --output 4",
        ))
        .unwrap();
        assert!(out.contains("3 rates × 1 strategies"), "{out}");
    }

    #[test]
    fn load_sweep_replicas_list_adds_fleet_strategies() {
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1 --replicas-list 1,2 \
             --router shortest-queue --rates 2,24 --requests 24 --prompt 100 --output 8",
        ))
        .unwrap();
        assert!(out.contains("2 rates × 2 strategies"), "{out}");
        assert!(out.contains("TP1 FP16 (1 GPU)"), "{out}");
        assert!(out.contains("TP1 FP16 × 2 replicas (2 GPUs)"), "{out}");
    }

    #[test]
    fn load_sweep_multi_replica_frontier_point() {
        // The acceptance shape: llama2-7b on the A100 preset with
        // --replicas-list 1,2,4 must place at least one multi-replica
        // point on the SLO-goodput frontier, with gpus = tp × replicas.
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --cluster a100-hdr --tp-list 1,2 \
             --replicas-list 1,2,4 --rates 4,64 --requests 64 --prompt 50:200 \
             --output 4:24 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let frontier = v.get("frontier").unwrap().as_array().unwrap();
        let as_u = |p: &serde_json::Value, k: &str| {
            p.get(k).and_then(serde_json::Value::as_f64).unwrap() as usize
        };
        assert!(
            frontier.iter().any(|p| as_u(p, "replicas") > 1),
            "no multi-replica frontier point in {out}"
        );
        for p in frontier {
            assert_eq!(as_u(p, "gpus"), as_u(p, "tp") * as_u(p, "replicas"));
        }
    }

    #[test]
    fn load_sweep_rejects_bad_fleet_options() {
        for bad in [
            "load-sweep --replicas-list 0",
            "load-sweep --replicas-list 1,x",
            "load-sweep --router least-outstanding",
            "load-sweep --replicas-list 1 --router round-robin",
        ] {
            assert!(load_sweep(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn load_sweep_reports_infeasible_strategies() {
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1,16 --rates 4 --requests 8 \
             --prompt 100 --output 4",
        ))
        .unwrap();
        assert!(out.contains("infeasible: TP16"), "{out}");
    }

    #[test]
    fn load_sweep_rejects_bad_options() {
        for bad in [
            "load-sweep --rates 0",
            "load-sweep --rates 2,x",
            "load-sweep --rates 2 --min-rate 1",
            "load-sweep --min-rate 0",
            "load-sweep --min-rate 8 --max-rate 2",
            "load-sweep --points 0",
            "load-sweep --tp-list 0",
            "load-sweep --tp-list 1,a",
            "load-sweep --requests 0",
            "load-sweep --ttft-slo 0",
        ] {
            assert!(load_sweep(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn load_sweep_with_no_feasible_strategy_is_an_error() {
        let err = load_sweep(&args(
            "load-sweep --model gpt-175b --tp-list 1 --rates 4 --requests 4",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("no feasible strategy"), "{err}");
    }

    #[test]
    fn memory_command_produces_breakdown() {
        let out = memory(&args("memory --model gpt-175b --batch 64 --tp 8 --pp 8")).unwrap();
        assert!(out.contains("optimizer"));
    }

    #[test]
    fn unknown_model_is_helpful() {
        let err = train(&args("train --model gpt5")).unwrap_err();
        assert!(err.to_string().contains("llama2-13b"));
    }

    #[test]
    fn infeasible_config_is_an_error_not_a_panic() {
        // TP 16 exceeds the node size.
        let err = train(&args("train --model gpt-22b --tp 16 --batch 4")).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn sweep_command_produces_frontier() {
        let out = sweep(&args(
            "sweep --model llama2-13b --cluster a100-hdr --workload train --batch 16 \
             --max-gpus 16 --top 5",
        ))
        .unwrap();
        assert!(out.contains("strategies valid"), "{out}");
        assert!(out.contains("pareto frontier"), "{out}");
        assert!(out.contains("top 5 strategies"), "{out}");
    }

    #[test]
    fn sweep_json_is_valid_and_complete() {
        let out = sweep(&args(
            "sweep --model llama2-13b --workload infer --generate 16 --max-gpus 8 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v.get("evaluated").is_some());
        assert!(v.get("frontier").is_some());
    }

    #[test]
    fn sweep_with_mtbf_prices_failure_expected_figures() {
        let base = "sweep --model llama2-13b --workload train --batch 16 --max-gpus 16";
        let out = sweep(&args(&format!("{base} --mtbf 1e8 --restart 300"))).unwrap();
        assert!(out.contains("resilience: per-GPU mtbf"), "{out}");
        let with: serde_json::Value =
            serde_json::from_str(&sweep(&args(&format!("{base} --mtbf 1e8 --json"))).unwrap())
                .unwrap();
        let rows = with.get("evaluated").unwrap().as_array().unwrap();
        assert!(rows.iter().all(|r| {
            r.get("goodput")
                .and_then(serde_json::Value::as_f64)
                .is_some_and(|g| g > 0.0 && g < 1.0)
        }));
        // Without a failure axis the goodput column stays null.
        let without: serde_json::Value =
            serde_json::from_str(&sweep(&args(&format!("{base} --json"))).unwrap()).unwrap();
        assert!(without
            .get("evaluated")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .all(|r| r.get("goodput").unwrap().is_null()));
    }

    #[test]
    fn sweep_rejects_bad_resilience_options() {
        for bad in [
            "sweep --workload infer --mtbf 1e8",
            "sweep --workload infer --checkpoint-interval 600",
            "sweep --workload infer --restart 60",
            "sweep --checkpoint-interval 600",
            "sweep --restart 60",
            "sweep --mtbf 0",
        ] {
            assert!(sweep(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn sweep_rejects_stack_options_on_the_infer_workload() {
        for bad in [
            "sweep --workload infer --failure-process weibull:0.7",
            "sweep --workload infer --checkpoint-tiers peer",
            "sweep --workload infer --rewarm 60",
            "sweep --workload infer --repair 600",
            "sweep --workload infer --delta-frac 0.5",
            "sweep --workload infer --checkpoint-util 0.5",
            "sweep --workload infer --elastic",
        ] {
            let err = sweep(&args(bad)).unwrap_err();
            assert!(
                err.to_string()
                    .contains("does not apply to --workload infer"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn sweep_with_stack_labels_the_resilience_line() {
        let out = sweep(&args(
            "sweep --model llama2-13b --workload train --batch 16 --max-gpus 16 \
             --mtbf 40000 --restart 900 --failure-process weibull:0.7 \
             --checkpoint-tiers peer,delta --elastic --frontier-only",
        ))
        .unwrap();
        assert!(out.contains("weibull(k=0.7) failures"), "{out}");
        assert!(out.contains("extra tiers: peer+delta"), "{out}");
        assert!(out.contains("elastic fallback"), "{out}");
    }

    #[test]
    fn sweep_rejects_unknown_workload() {
        let err = sweep(&args("sweep --workload tuning")).unwrap_err();
        assert!(err.to_string().contains("train"));
    }

    #[test]
    fn sweep_rejects_degenerate_numbers_cleanly() {
        for bad in [
            "sweep --max-gpus 0",
            "sweep --batch 0",
            "sweep --workload infer --batch 0",
            "sweep --workload infer --generate 0",
        ] {
            let err = sweep(&args(bad)).unwrap_err();
            assert!(err.to_string().contains("at least 1"), "{bad}: {err}");
        }
    }

    #[test]
    fn sweep_rejects_inapplicable_options() {
        let err = sweep(&args("sweep --workload infer --seq 8192")).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
        let err = sweep(&args("sweep --workload train --generate 100")).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
    }

    #[test]
    fn sweep_honors_precision_list() {
        let out = sweep(&args(
            "sweep --model llama2-7b --workload infer --generate 8 --max-gpus 8 \
             --precisions fp16 --frontier-only",
        ))
        .unwrap();
        assert!(out.contains("FP16"));
        assert!(!out.contains("BF16"));
        // The singular spelling the other subcommands use works too.
        let aliased = sweep(&args(
            "sweep --model llama2-7b --workload infer --generate 8 --max-gpus 8 \
             --precision fp16 --frontier-only",
        ))
        .unwrap();
        assert_eq!(aliased, out);
    }

    #[test]
    fn sweep_rejects_top_with_frontier_only() {
        let err = sweep(&args("sweep --frontier-only --top 5")).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
    }

    #[test]
    fn sweep_rejects_full_with_shaping_flags() {
        for bad in ["sweep --full --top 5", "sweep --full --frontier-only"] {
            let err = sweep(&args(bad)).unwrap_err();
            assert!(err.to_string().contains("does not apply"), "{bad}: {err}");
        }
    }

    #[test]
    fn sweep_json_respects_frontier_only() {
        let base = "sweep --model llama2-13b --workload infer --generate 16 --max-gpus 8";
        let full: serde_json::Value =
            serde_json::from_str(&sweep(&args(&format!("{base} --json"))).unwrap()).unwrap();
        let frontier_len = full.get("frontier").unwrap().as_array().unwrap().len();
        let only: serde_json::Value =
            serde_json::from_str(&sweep(&args(&format!("{base} --json --frontier-only"))).unwrap())
                .unwrap();
        let rows = only
            .as_array()
            .expect("--frontier-only emits the frontier array");
        assert_eq!(rows.len(), frontier_len);
        assert!(rows[0].get("latency").is_some());
    }

    #[test]
    fn sweep_json_respects_top() {
        let base = "sweep --model llama2-13b --workload train --batch 16 --max-gpus 16";
        let top: serde_json::Value =
            serde_json::from_str(&sweep(&args(&format!("{base} --json --top 3"))).unwrap())
                .unwrap();
        let rows = top.get("evaluated").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 3, "--top must cap the JSON rows");
        // Rows come out latency-sorted: the cap keeps the fastest ones.
        let lat = |v: &serde_json::Value| {
            v.get("latency")
                .and_then(|l| l.get("secs"))
                .and_then(serde_json::Value::as_f64)
                .or_else(|| v.get("latency").and_then(serde_json::Value::as_f64))
                .expect("latency field")
        };
        assert!(lat(&rows[0]) <= lat(&rows[1]) && lat(&rows[1]) <= lat(&rows[2]));
        assert!(
            top.get("frontier").is_some(),
            "frontier stays in the report"
        );
    }

    #[test]
    fn sweep_json_full_matches_default() {
        let base = "sweep --model llama2-7b --workload infer --generate 8 --max-gpus 8";
        let default = sweep(&args(&format!("{base} --json"))).unwrap();
        let full = sweep(&args(&format!("{base} --json --full"))).unwrap();
        assert_eq!(
            default, full,
            "--full is the explicit spelling of the default"
        );
    }

    #[test]
    fn sweep_full_text_is_uncapped() {
        let out = sweep(&args(
            "sweep --model llama2-13b --workload train --batch 16 --max-gpus 16 --full",
        ))
        .unwrap();
        assert!(out.contains("all "), "{out}");
        assert!(out.contains("strategies by latency"), "{out}");
    }

    #[test]
    fn list_names_every_preset() {
        let out = list();
        assert!(out.contains("GPT-1008B"));
        assert!(out.contains("Llama2-70B"));
        assert!(out.contains("B200"));
    }

    #[test]
    fn serve_paged_json_has_a_paging_section_and_reserved_omits_it() {
        let base = "serve --model llama2-7b --requests 30 --rate 8 --prompt 50:200 \
                    --output 2:24 --seed 7 --json";
        let reserved: serde_json::Value =
            serde_json::from_str(&serve(&args(base)).unwrap()).unwrap();
        assert!(
            reserved.get("paging").is_none(),
            "the reserved regime must omit the paging section entirely"
        );
        let paged: serde_json::Value =
            serde_json::from_str(&serve(&args(&format!("{base} --kv-block 16"))).unwrap()).unwrap();
        let paging = paged.get("paging").expect("paged runs report paging");
        assert_eq!(
            paging
                .get("block_tokens")
                .and_then(serde_json::Value::as_f64),
            Some(16.0)
        );
        assert!(
            paging
                .get("total_blocks")
                .and_then(serde_json::Value::as_f64)
                > Some(0.0)
        );
    }

    #[test]
    fn serve_prefix_flags_produce_cache_hits() {
        let out = serve(&args(
            "serve --model llama2-7b --requests 60 --rate 20 --prompt 100:300 --output 2:16 \
             --seed 5 --kv-block 16 --prefix-tokens 64 --prefix-pool 4 --prefix-rate 0.7 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let paging = v.get("paging").expect("paging section");
        let hits = paging
            .get("prefix_hits")
            .and_then(serde_json::Value::as_f64);
        assert!(
            hits > Some(0.0),
            "prefix cache must actually hit: {paging:?}"
        );
    }

    #[test]
    fn serve_scheduler_flag_threads_through_to_the_report() {
        let out = serve(&args(
            "serve --model llama2-7b --requests 20 --rate 8 --prompt 50:200 --output 2:24 \
             --kv-block 16 --scheduler sjf --priority-classes 3 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(
            v.get("scheduler").and_then(serde_json::Value::as_str),
            Some("Sjf")
        );
    }

    #[test]
    fn serve_rejects_bad_paging_options() {
        for bad in [
            "serve --preempt swap",                       // --preempt needs --kv-block
            "serve --kv-block 16 --preempt teleport",     // unknown policy
            "serve --scheduler lifo",                     // unknown scheduler
            "serve --priority-classes 0",                 // below 1
            "serve --prefix-pool 4",                      // --prefix-pool needs --prefix-tokens
            "serve --prefix-rate 0.5",                    // --prefix-rate needs --prefix-tokens
            "serve --prefix-tokens 64 --prefix-rate 1.5", // rate beyond [0,1]
            "serve --prefix-tokens 64 --prefix-pool 0",   // empty pool
        ] {
            assert!(serve(&args(bad)).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn load_sweep_kv_and_scheduler_lists_cross_the_grid() {
        let out = load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1 --kv-block-list 0,16 \
             --scheduler-list fifo,sjf --rates 2,16 --requests 24 --prompt 50:150 \
             --output 4:12 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let curves = v.get("curves").unwrap().as_array().unwrap();
        assert_eq!(curves.len(), 4, "2 kv regimes × 2 schedulers");
        let mut seen: Vec<(u64, String)> = curves
            .iter()
            .map(|c| {
                (
                    c.get("kv")
                        .and_then(|k| k.get("block_tokens"))
                        .and_then(serde_json::Value::as_f64)
                        .unwrap() as u64,
                    c.get("scheduler")
                        .and_then(serde_json::Value::as_str)
                        .unwrap()
                        .to_owned(),
                )
            })
            .collect();
        seen.sort();
        assert_eq!(
            seen,
            vec![
                (0, "Fifo".to_owned()),
                (0, "Sjf".to_owned()),
                (16, "Fifo".to_owned()),
                (16, "Sjf".to_owned()),
            ]
        );
    }

    #[test]
    fn load_sweep_rejects_preempt_without_paged_cells() {
        assert!(load_sweep(&args(
            "load-sweep --model llama2-7b --tp-list 1 --rates 2 --requests 8 \
             --prompt 100 --output 4 --preempt swap"
        ))
        .is_err());
    }
}
