//! Minimal dependency-free argument parsing.
//!
//! The grammar is flat `--key value` pairs plus boolean `--flag`s, which
//! keeps the CLI self-contained (no new dependencies beyond the workspace
//! policy in DESIGN.md).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus its options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (`train`, `infer`, `memory`, `sweep`, `list`).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// A user error in the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv[1..]`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a dangling `--key` with no value where one
    /// is required, or a positional argument after the subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(token) = it.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument `{token}`"
                )));
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    options.insert(key.to_owned(), it.next().expect("peeked"));
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Ok(Self {
            command,
            options,
            flags,
        })
    }

    /// A string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// A floating-point option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as a finite
    /// number.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .ok_or_else(|| ArgError(format!("--{key} expects a number, got `{v}`"))),
        }
    }

    /// Whether a boolean flag was given.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = parse("train --model gpt-175b --tp 8 --sp --json").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("model"), Some("gpt-175b"));
        assert_eq!(a.get_usize("tp", 1).unwrap(), 8);
        assert!(a.flag("sp"));
        assert!(a.flag("json"));
        assert!(!a.flag("flash"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("infer").unwrap();
        assert_eq!(a.get_or("model", "llama2-13b"), "llama2-13b");
        assert_eq!(a.get_usize("tp", 1).unwrap(), 1);
    }

    #[test]
    fn rejects_positional() {
        assert!(parse("train gpt").is_err());
    }

    #[test]
    fn rejects_bad_number() {
        let a = parse("train --tp eight").unwrap();
        assert!(a.get_usize("tp", 1).is_err());
    }

    #[test]
    fn parses_floats_with_defaults() {
        let a = parse("serve --rate 2.5").unwrap();
        assert_eq!(a.get_f64("rate", 1.0).unwrap(), 2.5);
        assert_eq!(a.get_f64("interval", 4.0).unwrap(), 4.0);
        assert!(parse("serve --rate fast")
            .unwrap()
            .get_f64("rate", 1.0)
            .is_err());
        assert!(parse("serve --rate inf")
            .unwrap()
            .get_f64("rate", 1.0)
            .is_err());
    }
}
