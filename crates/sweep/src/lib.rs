//! Parallelization-strategy sweep engine with Pareto-frontier extraction.
//!
//! The headline use-case of an analytical performance model is answering
//! *"which (TP, PP, DP, microbatch, precision) configuration is fastest —
//! or cheapest — for this model on this cluster?"* without burning GPU
//! hours to find out. This crate turns the estimator stack into exactly
//! that tool:
//!
//! 1. [`SweepSpace`] enumerates the candidate strategy space and prunes
//!    invalid points up front — head/layer divisibility, intra-node TP
//!    placement, batch divisibility, precision support, and per-device
//!    memory capacity via `optimus-memory`;
//! 2. [`SweepEngine`] evaluates every surviving [`StrategyPoint`] through
//!    [`optimus_train::TrainingEstimator`] /
//!    [`optimus_infer::InferenceEstimator`] in parallel (rayon), attaching
//!    energy and amortized-cost figures from `optimus-energy`;
//! 3. [`pareto_frontier`] extracts the minimal (latency, cost) frontier,
//!    and [`SweepReport::best_by`] ranks by any [`Objective`] — the same
//!    evaluation interface the µArch allocation search in `optimus-dse`
//!    consumes.
//!
//! Results are **deterministic**: enumeration order is a fixed total order
//! over strategies, parallel evaluation preserves that order, and the
//! frontier scan is stable — so repeated runs and different
//! `RAYON_NUM_THREADS` settings produce byte-identical reports.
//!
//! ```
//! use optimus_hw::presets;
//! use optimus_model::presets as models;
//! use optimus_sweep::{SweepEngine, SweepSpace, Workload};
//!
//! let cluster = presets::dgx_a100_hdr_cluster();
//! let report = SweepEngine::new(&cluster).sweep(
//!     &models::llama2_13b(),
//!     &Workload::training(64, 2048),
//!     &SweepSpace::power_of_two(16),
//! );
//! let fastest = report.fastest().unwrap();
//! let cheapest = report.cheapest().unwrap();
//! assert!(fastest.latency <= cheapest.latency);
//! assert!(cheapest.cost_usd <= fastest.cost_usd);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod pareto;
mod report;
mod space;

pub use engine::{EvaluatedPoint, SweepEngine, SweepReport};
/// The shared search-evaluation interface, re-exported from `optimus-dse`
/// so both searches are driven through one trait.
pub use optimus_dse::Objective;
pub use pareto::{dominates, frontier_indices_by, pareto_frontier, pareto_frontier_indices};
pub use report::{render_frontier, render_table};
pub use space::{PointMemory, StrategyPoint, SweepSpace, Workload};
