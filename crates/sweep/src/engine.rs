//! Parallel evaluation of enumerated strategies.
//!
//! Evaluation is two-phase (the memoized pipeline of `optimus-train` /
//! `optimus-infer`): one [`optimus_train::PreparedTrainingEstimator`] or
//! [`optimus_infer::PreparedInferenceEstimator`] is built per sweep and
//! shared — memo tables included — by every rayon worker, and each point
//! reuses the memory footprint the pruning pass already computed. The hot
//! loop is `O(distinct-kernel-keys × ops + points × cheap-assembly)`
//! instead of `O(points × ops)`.

use crate::{pareto_frontier, PointMemory, StrategyPoint, SweepSpace, Workload};
use optimus_energy::{CostModel, EnergyModel};
use optimus_hw::ClusterSpec;
use optimus_infer::PreparedInferenceEstimator;
use optimus_model::ModelConfig;
use optimus_train::{CheckpointSpec, PreparedTrainingEstimator};
use optimus_units::{Bytes, Energy, Time};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One fully evaluated strategy: predicted latency, throughput, memory,
/// energy, and dollars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedPoint {
    /// The strategy.
    pub point: StrategyPoint,
    /// Devices occupied.
    pub gpus: usize,
    /// Time per execution: one training batch or one inference request
    /// batch.
    pub latency: Time,
    /// Work units per second: samples/s for training, generated tokens/s
    /// for inference.
    pub throughput: f64,
    /// Peak per-device memory footprint.
    pub memory_per_device: Bytes,
    /// System energy per execution.
    pub energy: Energy,
    /// Amortized capital + electricity cost per execution, USD.
    pub cost_usd: f64,
    /// Model FLOPs utilization (training only).
    pub mfu: Option<f64>,
    /// Effective goodput under the engine's [`CheckpointSpec`] — the
    /// useful fraction of wall-clock after checkpoint overhead, rework,
    /// and restarts. `None` when no failure process is modeled (then
    /// `latency`/`cost_usd` are the raw failure-free figures).
    pub goodput: Option<f64>,
}

/// The complete outcome of one sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Every valid, successfully evaluated strategy, ordered by
    /// [`StrategyPoint::sort_key`].
    pub evaluated: Vec<EvaluatedPoint>,
    /// The (latency, cost) Pareto frontier, ordered by ascending latency.
    pub frontier: Vec<EvaluatedPoint>,
    /// Strategies that passed pruning but failed evaluation (for example a
    /// TP degree the comm plan rejects); kept for diagnosability.
    pub rejected: Vec<StrategyPoint>,
}

impl SweepReport {
    /// The evaluated point minimizing latency.
    #[must_use]
    pub fn fastest(&self) -> Option<&EvaluatedPoint> {
        self.evaluated
            .iter()
            .min_by(|a, b| a.latency.cmp(&b.latency))
    }

    /// The evaluated point minimizing cost per execution.
    #[must_use]
    pub fn cheapest(&self) -> Option<&EvaluatedPoint> {
        self.evaluated.iter().min_by(|a, b| {
            a.cost_usd
                .partial_cmp(&b.cost_usd)
                .expect("costs are finite")
        })
    }

    /// The evaluated point minimizing an arbitrary [`crate::Objective`] —
    /// the same interface the µArch allocation search consumes. Ties break
    /// toward the earlier point in deterministic order.
    #[must_use]
    pub fn best_by<O: crate::Objective<EvaluatedPoint>>(
        &self,
        objective: &O,
    ) -> Option<&EvaluatedPoint> {
        let mut best: Option<(&EvaluatedPoint, f64)> = None;
        for p in &self.evaluated {
            let score = objective.evaluate(p);
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((p, score));
            }
        }
        best.map(|(p, _)| p)
    }
}

/// Evaluates strategy spaces against one cluster.
///
/// ```
/// use optimus_hw::presets;
/// use optimus_model::presets as models;
/// use optimus_sweep::{SweepEngine, SweepSpace, Workload};
///
/// let cluster = presets::dgx_a100_hdr_cluster();
/// let report = SweepEngine::new(&cluster).sweep(
///     &models::llama2_13b(),
///     &Workload::training(64, 2048),
///     &SweepSpace::power_of_two(16),
/// );
/// assert!(!report.frontier.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine<'a> {
    cluster: &'a ClusterSpec,
    energy: EnergyModel,
    cost: CostModel,
    checkpoint: CheckpointSpec,
}

impl<'a> SweepEngine<'a> {
    /// Creates an engine with energy/cost coefficients matched to the
    /// cluster's accelerator generation (by preset name: A100, H100/H200,
    /// B200). Unrecognized accelerators — including `tpu_v4` — fall back
    /// to A100-class economics; use [`Self::with_energy_model`] and
    /// [`Self::with_cost_model`] to supply accurate coefficients for such
    /// devices.
    #[must_use]
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        let (energy, cost) = economics_for(cluster);
        Self {
            cluster,
            energy,
            cost,
            checkpoint: CheckpointSpec::none(),
        }
    }

    /// Overrides the energy model.
    #[must_use]
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Overrides the cost model.
    #[must_use]
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Prices every training strategy under the same failure environment:
    /// each point's `latency` and `cost_usd` become the failure-expected
    /// figures (raw time over the strategy's effective goodput), so the
    /// Pareto frontier trades failure-expected latency against
    /// failure-expected cost. Points with more GPUs see a proportionally
    /// lower cluster MTBF — the blast-radius penalty the raw frontier
    /// hides. The default [`CheckpointSpec::none`] leaves every figure
    /// exactly as before; inference workloads ignore the spec.
    #[must_use]
    pub fn with_checkpoint(mut self, checkpoint: CheckpointSpec) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Enumerates, evaluates (in parallel), and extracts the Pareto
    /// frontier. The result is deterministic: the same inputs produce the
    /// same report regardless of `RAYON_NUM_THREADS`.
    #[must_use]
    pub fn sweep(
        &self,
        model: &ModelConfig,
        workload: &Workload,
        space: &SweepSpace,
    ) -> SweepReport {
        let points = space.enumerate_with_memory(model, self.cluster, workload);
        self.run(
            model,
            workload,
            points
                .into_iter()
                .map(|(point, memory)| (point, Some(memory)))
                .collect(),
        )
    }

    /// Evaluates an explicit list of strategies in parallel, preserving
    /// input order in `evaluated` (minus rejected points). Memory
    /// footprints are derived in-line here (an explicit list carries
    /// none); [`Self::sweep`] reuses the pruning pass's footprints
    /// instead.
    #[must_use]
    pub fn evaluate(
        &self,
        model: &ModelConfig,
        workload: &Workload,
        points: Vec<StrategyPoint>,
    ) -> SweepReport {
        self.run(
            model,
            workload,
            points.into_iter().map(|point| (point, None)).collect(),
        )
    }

    /// Builds the phase-1 prepared context once, evaluates every point
    /// through it in parallel, and assembles the report.
    fn run(
        &self,
        model: &ModelConfig,
        workload: &Workload,
        points: Vec<(StrategyPoint, Option<PointMemory>)>,
    ) -> SweepReport {
        let prepared = PreparedSweep::new(self, model, workload);
        let outcomes: Vec<Result<EvaluatedPoint, StrategyPoint>> = points
            .into_par_iter()
            .map(|(point, memory)| prepared.evaluate_point(point, memory))
            .collect();

        let mut evaluated = Vec::with_capacity(outcomes.len());
        let mut rejected = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(e) => evaluated.push(e),
                Err(p) => rejected.push(p),
            }
        }
        let frontier = pareto_frontier(&evaluated);
        SweepReport {
            evaluated,
            frontier,
            rejected,
        }
    }
}

/// The phase-1 context of one sweep: the prepared estimator (whose memo
/// tables are shared by every evaluation worker) plus the economics.
struct PreparedSweep<'e, 'a> {
    engine: &'e SweepEngine<'a>,
    workload: &'e Workload,
    kind: PreparedKind<'a>,
}

enum PreparedKind<'a> {
    Train(PreparedTrainingEstimator<'a>),
    Infer(PreparedInferenceEstimator<'a>),
}

impl<'e, 'a> PreparedSweep<'e, 'a> {
    fn new(engine: &'e SweepEngine<'a>, model: &ModelConfig, workload: &'e Workload) -> Self {
        // One deep clone per sweep; every point then shares the Arc.
        let model = Arc::new(model.clone());
        let kind = match workload {
            Workload::Training {
                batch,
                seq,
                recompute,
                schedule,
            } => PreparedKind::Train(
                PreparedTrainingEstimator::new(engine.cluster, model, *batch, *seq)
                    .with_recompute(*recompute)
                    .with_schedule(*schedule)
                    .with_checkpoint(engine.checkpoint.clone()),
            ),
            Workload::Inference {
                batch,
                prefill,
                generate,
            } => PreparedKind::Infer(PreparedInferenceEstimator::new(
                engine.cluster,
                model,
                *batch,
                *prefill,
                *generate,
            )),
        };
        Self {
            engine,
            workload,
            kind,
        }
    }

    /// Evaluates one strategy; `Err` carries the point back on estimator
    /// rejection. `memory` is the footprint the pruning pass computed for
    /// this point, if the caller has one.
    fn evaluate_point(
        &self,
        point: StrategyPoint,
        memory: Option<PointMemory>,
    ) -> Result<EvaluatedPoint, StrategyPoint> {
        let gpus = point.gpus();
        let energy_model = self.engine.energy.scaled_for_precision(point.precision);
        match &self.kind {
            PreparedKind::Train(prepared) => {
                let report = match memory {
                    Some(PointMemory::Training(m)) => {
                        prepared.estimate_with_memory(point.parallelism, point.precision, m)
                    }
                    _ => prepared.estimate(point.parallelism, point.precision),
                }
                .map_err(|_| point)?;
                let energy = energy_model.training_energy(&report, gpus);
                let cost = self.engine.cost.training_cost(&report, &energy, gpus);
                // Under an active CheckpointSpec the batch occupies the
                // system for `1/goodput` of its failure-free time —
                // checkpoints, rework, and restarts hold (and power) the
                // same GPUs — so latency, energy, and cost all inflate by
                // the same factor. With goodput = 1.0 (or no spec) the
                // figures are bitwise the raw ones. When the spec derates
                // overhead utilization below 1, the extra seconds burn the
                // dynamic draw at that fraction (plus the full static
                // floor), so energy and the electricity share of cost
                // inflate less than capex does.
                let (waste, goodput) = match &report.resilience {
                    Some(r) => (r.waste(), Some(r.goodput)),
                    None => (0.0, None),
                };
                let inflate = 1.0 + waste;
                let overhead_util = self.engine.checkpoint.overhead_util;
                let (energy_total, cost_usd) = if overhead_util == 1.0 {
                    (energy.total() * inflate, cost.total_usd * inflate)
                } else {
                    let total = energy.total() + energy.overhead_energy(waste, overhead_util);
                    (
                        total,
                        cost.capex_usd * inflate
                            + self.engine.cost.energy_usd_joules(total.joules()),
                    )
                };
                Ok(EvaluatedPoint {
                    point,
                    gpus,
                    latency: report.time_per_batch * inflate,
                    throughput: self.workload.work_units()
                        / (report.time_per_batch.secs() * inflate),
                    memory_per_device: report.memory.total(),
                    energy: energy_total,
                    cost_usd,
                    mfu: Some(report.mfu),
                    goodput,
                })
            }
            PreparedKind::Infer(prepared) => {
                let report = match memory {
                    Some(PointMemory::Inference(m)) => {
                        prepared.estimate_with_memory(point.parallelism.tp, point.precision, m)
                    }
                    _ => prepared.estimate(point.parallelism.tp, point.precision),
                }
                .map_err(|_| point)?;
                let energy = energy_model.inference_energy(&report, gpus);
                let cost = self.engine.cost.inference_cost(&report, &energy, gpus);
                Ok(EvaluatedPoint {
                    point,
                    gpus,
                    latency: report.total,
                    throughput: self.workload.work_units() / report.total.secs(),
                    memory_per_device: report.memory.total(),
                    energy: energy.total(),
                    cost_usd: cost.total_usd,
                    mfu: None,
                    goodput: None,
                })
            }
        }
    }
}

/// Energy/cost coefficients by accelerator generation, keyed on the
/// preset naming convention of `optimus-hw`. Unrecognized names default
/// to A100-class coefficients (see [`SweepEngine::new`]).
fn economics_for(cluster: &ClusterSpec) -> (EnergyModel, CostModel) {
    let name = cluster.accelerator().name.to_uppercase();
    if name.contains("A100") {
        (EnergyModel::a100_class(), CostModel::a100_system())
    } else if name.contains("B200") {
        (EnergyModel::b200_class(), CostModel::b200_system())
    } else if name.contains("H100") || name.contains("H200") {
        (EnergyModel::h100_class(), CostModel::h100_system())
    } else {
        (EnergyModel::a100_class(), CostModel::a100_system())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_model::presets as models;

    #[test]
    fn training_sweep_produces_consistent_rows() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = SweepEngine::new(&cluster).sweep(
            &models::llama2_13b(),
            &Workload::training(16, 2048),
            &SweepSpace::power_of_two(16),
        );
        assert!(!report.evaluated.is_empty());
        for row in &report.evaluated {
            assert!(row.latency.secs() > 0.0, "{row:?}");
            assert!(row.throughput > 0.0);
            assert!(row.cost_usd > 0.0);
            assert!(row.energy.joules() > 0.0);
            assert!(row.mfu.is_some());
        }
    }

    #[test]
    fn fastest_and_cheapest_are_on_the_frontier() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = SweepEngine::new(&cluster).sweep(
            &models::llama2_13b(),
            &Workload::training(16, 2048),
            &SweepSpace::power_of_two(16),
        );
        let fastest = report.fastest().unwrap();
        let cheapest = report.cheapest().unwrap();
        assert!(report.frontier.iter().any(|p| p.latency == fastest.latency));
        assert!(report
            .frontier
            .iter()
            .any(|p| p.cost_usd == cheapest.cost_usd));
    }

    #[test]
    fn best_by_latency_objective_matches_fastest() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = SweepEngine::new(&cluster).sweep(
            &models::llama2_13b(),
            &Workload::inference(1, 200, 32),
            &SweepSpace::power_of_two(8),
        );
        let by_objective = report
            .best_by(&|p: &EvaluatedPoint| p.latency.secs())
            .unwrap();
        assert_eq!(by_objective.latency, report.fastest().unwrap().latency);
    }

    #[test]
    fn economics_track_accelerator_generation() {
        let (a100_e, a100_c) = economics_for(&presets::dgx_a100_hdr_cluster());
        let (h100_e, h100_c) = economics_for(&presets::dgx_h100_ndr_cluster());
        let (b200_e, b200_c) = economics_for(&presets::dgx_b200_nvs_cluster());
        assert!(h100_e.compute_pj_per_flop < a100_e.compute_pj_per_flop);
        assert!(
            b200_e.compute_pj_per_flop < h100_e.compute_pj_per_flop,
            "B200 must not reuse H100 energy coefficients"
        );
        assert!(a100_c.gpu_price_usd < h100_c.gpu_price_usd);
        assert!(h100_c.gpu_price_usd < b200_c.gpu_price_usd);
    }

    #[test]
    fn inference_sweep_is_tensor_parallel_only() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = SweepEngine::new(&cluster).sweep(
            &models::llama2_13b(),
            &Workload::inference(1, 200, 16),
            &SweepSpace::power_of_two(64),
        );
        assert!(!report.evaluated.is_empty());
        for row in &report.evaluated {
            assert_eq!(row.point.parallelism.dp, 1);
            assert_eq!(row.point.parallelism.pp, 1);
            assert!(row.mfu.is_none());
        }
    }
}
