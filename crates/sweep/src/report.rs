//! Human-readable rendering of sweep results.

use crate::{EvaluatedPoint, SweepReport};

/// Column-aligned text table of evaluated points (one row each), with the
/// frontier marked. `limit` caps the number of body rows (0 = no cap).
#[must_use]
pub fn render_table(report: &SweepReport, limit: usize) -> String {
    let mut rows: Vec<&EvaluatedPoint> = report.evaluated.iter().collect();
    rows.sort_by_key(|a| a.latency);
    if limit > 0 {
        rows.truncate(limit);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<3} {:>14} {:>5} {:>6} {:>5} {:>5} {:>10} {:>12} {:>10} {:>10} {:>10} {:>6}\n",
        "",
        "dp-tp-pp-sp",
        "ubat",
        "prec",
        "gpus",
        "mfu",
        "latency",
        "throughput",
        "mem/gpu",
        "energy",
        "cost",
        "pareto"
    ));
    for row in rows {
        let on_frontier = report.frontier.iter().any(|f| f.point == row.point);
        out.push_str(&format!(
            "{:<3} {:>14} {:>5} {:>6} {:>5} {:>5} {:>10} {:>12} {:>10} {:>10} {:>10} {:>6}\n",
            if on_frontier { "*" } else { "" },
            row.point.parallelism.to_string(),
            row.point.parallelism.microbatch,
            row.point.precision.to_string(),
            row.gpus,
            row.mfu
                .map_or_else(|| "-".to_owned(), |m| format!("{:.2}", m)),
            format!("{:.4} s", row.latency.secs()),
            format!("{:.1}/s", row.throughput),
            format!("{:.1} GB", row.memory_per_device.gb()),
            format!("{:.1} kJ", row.energy.joules() / 1e3),
            format!("${:.4}", row.cost_usd),
            if on_frontier { "yes" } else { "" },
        ));
    }
    out
}

/// Renders only the Pareto frontier, ascending latency.
#[must_use]
pub fn render_frontier(report: &SweepReport) -> String {
    let mut out = String::from("pareto frontier (latency vs cost):\n");
    for row in &report.frontier {
        out.push_str(&format!(
            "  {:>14} ubatch={:<2} {:>5}  {:>5} gpus  {:>10}  ${:.4}\n",
            row.point.parallelism.to_string(),
            row.point.parallelism.microbatch,
            row.point.precision.to_string(),
            row.gpus,
            format!("{:.4} s", row.latency.secs()),
            row.cost_usd,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{SweepEngine, SweepSpace, Workload};
    use optimus_hw::presets;
    use optimus_model::presets as models;

    #[test]
    fn table_marks_frontier_rows() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = SweepEngine::new(&cluster).sweep(
            &models::llama2_13b(),
            &Workload::inference(1, 200, 16),
            &SweepSpace::power_of_two(8),
        );
        let table = super::render_table(&report, 0);
        assert!(table.contains("pareto"));
        assert!(table.contains("yes"));
        let frontier = super::render_frontier(&report);
        assert!(frontier.lines().count() >= 2);
    }
}
