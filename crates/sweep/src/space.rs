//! The strategy space: candidate axes, enumeration, and validity pruning.

use optimus_hw::{ClusterSpec, Precision};
use optimus_memory::{
    inference_memory, training_memory, InferenceMemoryReport, RecomputeMode, TrainingMemoryReport,
    TrainingMemorySpec,
};
use optimus_model::ModelConfig;
use optimus_parallel::{Parallelism, PipelineSchedule};
use optimus_units::Bytes;
use serde::{Deserialize, Serialize};

/// The per-device memory footprint the pruning pass derived for a
/// surviving strategy point. Enumeration already has to compute this to
/// decide feasibility; returning it lets the evaluation phase reuse the
/// breakdown instead of re-deriving it per point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointMemory {
    /// A training footprint (weights/grads/optimizer/activations).
    Training(TrainingMemoryReport),
    /// An inference footprint (weights/KV-cache).
    Inference(InferenceMemoryReport),
}

impl PointMemory {
    /// Total per-device bytes.
    #[must_use]
    pub fn total(&self) -> Bytes {
        match self {
            Self::Training(m) => m.total(),
            Self::Inference(m) => m.total(),
        }
    }
}

/// One candidate distributed-execution strategy: a full parallelization
/// plus the numeric precision it runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StrategyPoint {
    /// DP/TP/PP/SP/microbatch configuration.
    pub parallelism: Parallelism,
    /// Compute precision for weights and activations.
    pub precision: Precision,
}

impl StrategyPoint {
    /// Total devices the strategy occupies.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.parallelism.total_gpus()
    }

    /// A stable total order over points, used to keep enumeration and
    /// reporting deterministic regardless of evaluation order.
    #[must_use]
    pub fn sort_key(&self) -> (usize, usize, usize, usize, bool, u8) {
        let p = self.parallelism;
        (
            p.tp,
            p.pp,
            p.dp,
            p.microbatch,
            p.sp,
            precision_rank(self.precision),
        )
    }
}

/// Stable rank of a precision for ordering (widest first, like
/// [`Precision::all`]).
fn precision_rank(p: Precision) -> u8 {
    Precision::all()
        .iter()
        .position(|q| *q == p)
        .map_or(u8::MAX, |i| i as u8)
}

impl core::fmt::Display for StrategyPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} ubatch={} {}",
            self.parallelism, self.parallelism.microbatch, self.precision
        )
    }
}

/// The workload a sweep optimizes for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// One training batch.
    Training {
        /// Global batch size (samples).
        batch: usize,
        /// Sequence length.
        seq: usize,
        /// Activation recomputation strategy.
        recompute: RecomputeMode,
        /// Pipeline schedule.
        schedule: PipelineSchedule,
    },
    /// One serving request batch (prefill + auto-regressive decode).
    Inference {
        /// Serving batch size.
        batch: usize,
        /// Prompt length in tokens.
        prefill: usize,
        /// Generated tokens.
        generate: usize,
    },
}

impl Workload {
    /// A training workload with the paper's defaults (1F1B, selective
    /// recomputation).
    #[must_use]
    pub fn training(batch: usize, seq: usize) -> Self {
        Self::Training {
            batch,
            seq,
            recompute: RecomputeMode::Selective,
            schedule: PipelineSchedule::OneFOneB,
        }
    }

    /// An inference workload.
    #[must_use]
    pub fn inference(batch: usize, prefill: usize, generate: usize) -> Self {
        Self::Inference {
            batch,
            prefill,
            generate,
        }
    }

    /// Work units completed per execution: samples for training, generated
    /// tokens for inference (the denominators of throughput and
    /// cost-per-unit).
    #[must_use]
    pub fn work_units(&self) -> f64 {
        match self {
            Self::Training { batch, .. } => *batch as f64,
            Self::Inference {
                batch, generate, ..
            } => (*batch * *generate) as f64,
        }
    }
}

/// Candidate axes of the sweep. Axes are sorted and deduplicated at
/// enumeration time, and every combination is filtered through the
/// validity rules of [`SweepSpace::enumerate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpace {
    /// Largest total device count a strategy may occupy.
    pub max_gpus: usize,
    /// Tensor-parallel degrees to try.
    pub tp: Vec<usize>,
    /// Pipeline-parallel degrees to try.
    pub pp: Vec<usize>,
    /// Data-parallel degrees to try.
    pub dp: Vec<usize>,
    /// Microbatch sizes to try (training only).
    pub microbatch: Vec<usize>,
    /// Precisions to try (pruned to what the device supports).
    pub precisions: Vec<Precision>,
    /// Whether to include sequence-parallel variants of TP>1 points.
    pub try_sequence_parallel: bool,
}

impl SweepSpace {
    /// Power-of-two axes up to `max_gpus`, FP16/BF16, with SP variants —
    /// the space the paper's Megatron-style configurations live in.
    #[must_use]
    pub fn power_of_two(max_gpus: usize) -> Self {
        assert!(max_gpus > 0, "sweep needs at least one device");
        let pows = |cap: usize| -> Vec<usize> {
            (0..)
                .map(|e| 1usize << e)
                .take_while(|v| *v <= cap)
                .collect()
        };
        Self {
            max_gpus,
            tp: pows(max_gpus),
            pp: pows(max_gpus),
            dp: pows(max_gpus),
            microbatch: vec![1, 2, 4, 8],
            precisions: vec![Precision::Fp16, Precision::Bf16],
            try_sequence_parallel: true,
        }
    }

    /// Overrides the precision axis.
    #[must_use]
    pub fn with_precisions(mut self, precisions: Vec<Precision>) -> Self {
        self.precisions = precisions;
        self
    }

    /// Enumerates every **valid** strategy point, in a deterministic order
    /// that does not depend on thread count or hash state.
    ///
    /// A point survives pruning when:
    ///
    /// * the TP group fits in one node and divides both the query-head and
    ///   KV-head counts (a head cannot be split across TP ranks);
    /// * PP divides the layer count;
    /// * `dp · microbatch` divides the training batch (inference strategies
    ///   are TP-only: `dp = pp = microbatch = 1`);
    /// * the device supports the precision;
    /// * the total device count is within `max_gpus`;
    /// * the per-device memory footprint (weights, optimizer state,
    ///   activations / KV-cache) fits the device DRAM capacity.
    #[must_use]
    pub fn enumerate(
        &self,
        model: &ModelConfig,
        cluster: &ClusterSpec,
        workload: &Workload,
    ) -> Vec<StrategyPoint> {
        self.enumerate_with_memory(model, cluster, workload)
            .into_iter()
            .map(|(point, _)| point)
            .collect()
    }

    /// Like [`Self::enumerate`], but returns each surviving point together
    /// with the [`PointMemory`] footprint the pruning pass computed for it,
    /// so evaluation never re-derives memory. The point order and survivor
    /// set are identical to [`Self::enumerate`].
    #[must_use]
    pub fn enumerate_with_memory(
        &self,
        model: &ModelConfig,
        cluster: &ClusterSpec,
        workload: &Workload,
    ) -> Vec<(StrategyPoint, PointMemory)> {
        let device = cluster.accelerator();
        let gpus_per_node = cluster.node.gpus_per_node;

        let mut tp_axis = self.sorted_axis(&self.tp);
        tp_axis.retain(|&tp| {
            tp <= gpus_per_node
                && model.heads.is_multiple_of(tp)
                && model.kv_heads().is_multiple_of(tp)
        });
        let mut pp_axis = self.sorted_axis(&self.pp);
        pp_axis.retain(|&pp| model.layers.is_multiple_of(pp) && pp <= self.max_gpus);
        let dp_axis = self.sorted_axis(&self.dp);
        let mb_axis = self.sorted_axis(&self.microbatch);
        let precisions: Vec<Precision> = {
            let mut ps: Vec<Precision> = self
                .precisions
                .iter()
                .copied()
                .filter(|&p| device.peak(p).is_ok())
                .collect();
            ps.sort_by_key(|&p| precision_rank(p));
            ps.dedup();
            ps
        };

        let mut points = Vec::new();
        match workload {
            Workload::Training {
                batch,
                seq,
                recompute,
                schedule,
            } => {
                for &tp in &tp_axis {
                    for &pp in &pp_axis {
                        for &dp in &dp_axis {
                            if dp * tp * pp > self.max_gpus {
                                continue;
                            }
                            for &mb in &mb_axis {
                                if !batch.is_multiple_of(dp * mb) {
                                    continue;
                                }
                                for sp in self.sp_variants(tp) {
                                    let parallelism = Parallelism::new(dp, tp, pp)
                                        .with_sp(sp)
                                        .with_microbatch(mb);
                                    for &precision in &precisions {
                                        let spec = TrainingMemorySpec {
                                            batch: *batch,
                                            seq: *seq,
                                            parallelism,
                                            schedule: *schedule,
                                            precision,
                                            recompute: *recompute,
                                        };
                                        if let Ok(m) = training_memory(model, &spec) {
                                            if m.fits(device.dram.capacity) {
                                                points.push((
                                                    StrategyPoint {
                                                        parallelism,
                                                        precision,
                                                    },
                                                    PointMemory::Training(m),
                                                ));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Workload::Inference {
                batch,
                prefill,
                generate,
            } => {
                let context = prefill + generate;
                for &tp in &tp_axis {
                    if tp > self.max_gpus {
                        continue;
                    }
                    let parallelism = Parallelism::tensor_parallel(tp);
                    for &precision in &precisions {
                        let memory = inference_memory(model, *batch, context, tp, precision);
                        if memory.fits(device.dram.capacity) {
                            points.push((
                                StrategyPoint {
                                    parallelism,
                                    precision,
                                },
                                PointMemory::Inference(memory),
                            ));
                        }
                    }
                }
            }
        }
        points.sort_by_key(|(point, _)| point.sort_key());
        points.dedup_by(|a, b| a.0 == b.0);
        points
    }

    fn sorted_axis(&self, axis: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = axis.iter().copied().filter(|&v| v > 0).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// SP variants to try for a TP degree: plain TP always; the
    /// sequence-parallel variant only where SP differs (TP > 1).
    fn sp_variants(&self, tp: usize) -> impl Iterator<Item = bool> {
        let with_sp = self.try_sequence_parallel && tp > 1;
        core::iter::once(false).chain(with_sp.then_some(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_model::presets as models;

    #[test]
    fn axes_are_deduplicated_and_sorted() {
        let mut space = SweepSpace::power_of_two(8);
        space.tp = vec![8, 1, 2, 2, 4];
        let points = space.enumerate(
            &models::llama2_13b(),
            &presets::dgx_a100_hdr_cluster(),
            &Workload::inference(1, 200, 200),
        );
        let tps: Vec<usize> = points.iter().map(|p| p.parallelism.tp).collect();
        assert!(
            tps.windows(2).all(|w| w[0] <= w[1]),
            "inference axis must come out sorted: {tps:?}"
        );
        assert_eq!(points.len(), {
            let mut unique = points.clone();
            unique.dedup();
            unique.len()
        });
    }

    #[test]
    fn tp_respects_head_divisibility() {
        // GPT-22B has 64 heads; Llama2-70B has 64 query heads but only
        // 8 KV heads, so TP is capped by both.
        let space = SweepSpace::power_of_two(64);
        let cluster = presets::dgx_a100_hdr_cluster();
        let points = space.enumerate(
            &models::llama2_70b(),
            &cluster,
            &Workload::inference(1, 200, 200),
        );
        assert!(points.iter().all(|p| models::llama2_70b()
            .kv_heads()
            .is_multiple_of(p.parallelism.tp)));
    }

    #[test]
    fn pp_must_divide_layers() {
        let space = SweepSpace::power_of_two(64);
        let cluster = presets::dgx_a100_hdr_cluster();
        // Llama2-13B has 40 layers: pp ∈ {1, 2, 4, 8} from the
        // power-of-two axis (16 does not divide 40).
        let points = space.enumerate(
            &models::llama2_13b(),
            &cluster,
            &Workload::training(64, 2048),
        );
        assert!(points.iter().all(|p| 40 % p.parallelism.pp == 0));
        assert!(points.iter().any(|p| p.parallelism.pp == 8));
        assert!(!points.iter().any(|p| p.parallelism.pp == 16));
    }

    #[test]
    fn memory_overflow_is_pruned() {
        // GPT-175B on a single device can never fit: every surviving
        // point must use many GPUs.
        let space = SweepSpace::power_of_two(64);
        let cluster = presets::dgx_a100_hdr_cluster();
        let points = space.enumerate(&models::gpt_175b(), &cluster, &Workload::training(64, 2048));
        assert!(!points.is_empty(), "some sharded config must fit");
        assert!(
            points.iter().all(|p| p.gpus() >= 16),
            "a 175B model cannot train on a handful of 80 GB devices"
        );
    }

    #[test]
    fn batch_divisibility_is_enforced() {
        let space = SweepSpace::power_of_two(8);
        let cluster = presets::dgx_a100_hdr_cluster();
        let points = space.enumerate(
            &models::llama2_13b(),
            &cluster,
            &Workload::training(6, 2048),
        );
        for p in &points {
            assert!(
                6 % (p.parallelism.dp * p.parallelism.microbatch) == 0,
                "{p}"
            );
        }
    }
}
