//! Pareto-frontier extraction over (latency, cost).

use crate::EvaluatedPoint;

/// Extracts the minimal (latency, cost) Pareto frontier: every returned
/// point is non-dominated, and every dominated input is excluded.
///
/// A point *p* dominates *q* when `p.latency ≤ q.latency` and
/// `p.cost_usd ≤ q.cost_usd` with at least one strict inequality. Points
/// with identical (latency, cost) coordinates are collapsed to the first
/// in deterministic order, so the frontier is minimal.
///
/// The result is sorted by ascending latency (therefore descending cost),
/// and is deterministic for a deterministic input order. This is a
/// materializing wrapper over [`pareto_frontier_indices`]: the scan runs
/// entirely over indices and each frontier point is cloned exactly once,
/// at the end — this runs on every sweep, so no [`EvaluatedPoint`] (with
/// its nested report data) is copied speculatively.
#[must_use]
pub fn pareto_frontier(points: &[EvaluatedPoint]) -> Vec<EvaluatedPoint> {
    pareto_frontier_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// The frontier as indices into `points`, ascending latency — the
/// allocation-free core of [`pareto_frontier`] for callers that only need
/// to mark or count frontier rows.
#[must_use]
pub fn pareto_frontier_indices(points: &[EvaluatedPoint]) -> Vec<usize> {
    frontier_indices_by(
        points,
        |p| (p.latency.secs(), p.cost_usd),
        |a, b| a.point.sort_key().cmp(&b.point.sort_key()),
    )
}

/// The minimal Pareto frontier of an arbitrary point cloud under two
/// minimized objectives, as indices into `points` sorted by the first
/// objective — the generic core behind [`pareto_frontier_indices`], also
/// reused by the serving load-sweep's SLO-goodput frontier (an axis to be
/// maximized is negated before being passed in).
///
/// `objectives` maps a point to its `(primary, secondary)` coordinates
/// (compared with [`f64::total_cmp`], so any finite values work, negatives
/// included); `tie_break` orders points with identical coordinates so the
/// survivor of a duplicate-coordinate collapse does not depend on input
/// order. The result is minimal (no member dominates another), complete
/// (every non-member is dominated or coordinate-equal), and permutation
/// invariant when `tie_break` is a total order on point identity.
#[must_use]
pub fn frontier_indices_by<T>(
    points: &[T],
    objectives: impl Fn(&T) -> (f64, f64),
    tie_break: impl Fn(&T, &T) -> core::cmp::Ordering,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Ascending primary objective; ties broken by the secondary, then by
    // the caller's stable identity order so the scan below keeps exactly
    // one of each coordinate pair.
    order.sort_by(|&a, &b| {
        let ((pa, sa), (pb, sb)) = (objectives(&points[a]), objectives(&points[b]));
        pa.total_cmp(&pb)
            .then_with(|| sa.total_cmp(&sb))
            .then_with(|| tie_break(&points[a], &points[b]))
    });

    let mut frontier = Vec::new();
    let mut best_secondary = f64::INFINITY;
    for i in order {
        // Strictly better on the secondary objective than everything
        // primary-better-or-equal seen so far ⇒ non-dominated. An equal
        // secondary at equal-or-worse primary is dominated (or a duplicate
        // coordinate), so strict `<` also keeps the frontier minimal.
        let (_, secondary) = objectives(&points[i]);
        if secondary < best_secondary {
            best_secondary = secondary;
            frontier.push(i);
        }
    }
    frontier
}

/// Whether `a` dominates `b` on (latency, cost).
#[must_use]
pub fn dominates(a: &EvaluatedPoint, b: &EvaluatedPoint) -> bool {
    let le = a.latency <= b.latency && a.cost_usd <= b.cost_usd;
    let strict = a.latency < b.latency || a.cost_usd < b.cost_usd;
    le && strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategyPoint;
    use optimus_hw::Precision;
    use optimus_parallel::Parallelism;
    use optimus_units::{Bytes, Energy, Time};

    fn row(tp: usize, latency: f64, cost: f64) -> EvaluatedPoint {
        EvaluatedPoint {
            point: StrategyPoint {
                parallelism: Parallelism::new(1, tp, 1),
                precision: Precision::Fp16,
            },
            gpus: tp,
            latency: Time::from_secs(latency),
            throughput: 1.0 / latency,
            memory_per_device: Bytes::from_gb(10.0),
            energy: Energy::new(1.0),
            cost_usd: cost,
            mfu: None,
            goodput: None,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let rows = vec![row(1, 4.0, 1.0), row(2, 2.0, 2.0), row(4, 3.0, 3.0)];
        let frontier = pareto_frontier(&rows);
        // (3.0, 3.0) is dominated by (2.0, 2.0).
        assert_eq!(frontier.len(), 2);
        assert!(frontier.iter().all(|p| p.latency.secs() != 3.0));
    }

    #[test]
    fn frontier_is_sorted_and_minimal() {
        let rows = vec![
            row(1, 5.0, 1.0),
            row(2, 4.0, 2.0),
            row(4, 3.0, 3.0),
            row(8, 2.0, 5.0),
            row(8, 2.5, 4.0),
        ];
        let frontier = pareto_frontier(&rows);
        assert!(frontier
            .windows(2)
            .all(|w| w[0].latency < w[1].latency || w[0].cost_usd > w[1].cost_usd));
        for (i, a) in frontier.iter().enumerate() {
            for (j, b) in frontier.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b), "{i} dominates {j}");
                }
            }
        }
    }

    #[test]
    fn duplicate_coordinates_collapse() {
        let rows = vec![row(1, 2.0, 2.0), row(2, 2.0, 2.0)];
        let frontier = pareto_frontier(&rows);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].point.parallelism.tp, 1, "first in stable order");
    }

    #[test]
    fn indices_agree_with_materialized_frontier() {
        let rows = vec![
            row(1, 5.0, 1.0),
            row(2, 4.0, 2.0),
            row(4, 3.0, 3.0),
            row(8, 2.0, 5.0),
            row(8, 2.5, 4.0),
        ];
        let indices = pareto_frontier_indices(&rows);
        let materialized = pareto_frontier(&rows);
        assert_eq!(indices.len(), materialized.len());
        for (&i, p) in indices.iter().zip(&materialized) {
            assert_eq!(&rows[i], p);
        }
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let rows = vec![row(1, 1.0, 1.0)];
        assert_eq!(pareto_frontier(&rows).len(), 1);
        assert!(pareto_frontier(&[]).is_empty());
    }
}
