//! Pareto-frontier extraction over (latency, cost).

use crate::EvaluatedPoint;

/// Extracts the minimal (latency, cost) Pareto frontier: every returned
/// point is non-dominated, and every dominated input is excluded.
///
/// A point *p* dominates *q* when `p.latency ≤ q.latency` and
/// `p.cost_usd ≤ q.cost_usd` with at least one strict inequality. Points
/// with identical (latency, cost) coordinates are collapsed to the first
/// in deterministic order, so the frontier is minimal.
///
/// The result is sorted by ascending latency (therefore descending cost),
/// and is deterministic for a deterministic input order. This is a
/// materializing wrapper over [`pareto_frontier_indices`]: the scan runs
/// entirely over indices and each frontier point is cloned exactly once,
/// at the end — this runs on every sweep, so no [`EvaluatedPoint`] (with
/// its nested report data) is copied speculatively.
#[must_use]
pub fn pareto_frontier(points: &[EvaluatedPoint]) -> Vec<EvaluatedPoint> {
    pareto_frontier_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// The frontier as indices into `points`, ascending latency — the
/// allocation-free core of [`pareto_frontier`] for callers that only need
/// to mark or count frontier rows.
#[must_use]
pub fn pareto_frontier_indices(points: &[EvaluatedPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Ascending latency; ties broken by cost, then by the stable strategy
    // order so the scan below keeps exactly one of each coordinate pair.
    order.sort_by(|&a, &b| {
        let (a, b) = (&points[a], &points[b]);
        a.latency
            .cmp(&b.latency)
            .then_with(|| a.cost_usd.total_cmp(&b.cost_usd))
            .then_with(|| a.point.sort_key().cmp(&b.point.sort_key()))
    });

    let mut frontier = Vec::new();
    let mut best_cost = f64::INFINITY;
    for i in order {
        // Strictly cheaper than everything faster-or-equal seen so far ⇒
        // non-dominated. Equal cost at equal-or-higher latency is
        // dominated (or a duplicate coordinate), so strict `<` also keeps
        // the frontier minimal.
        if points[i].cost_usd < best_cost {
            best_cost = points[i].cost_usd;
            frontier.push(i);
        }
    }
    frontier
}

/// Whether `a` dominates `b` on (latency, cost).
#[must_use]
pub fn dominates(a: &EvaluatedPoint, b: &EvaluatedPoint) -> bool {
    let le = a.latency <= b.latency && a.cost_usd <= b.cost_usd;
    let strict = a.latency < b.latency || a.cost_usd < b.cost_usd;
    le && strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategyPoint;
    use optimus_hw::Precision;
    use optimus_parallel::Parallelism;
    use optimus_units::{Bytes, Energy, Time};

    fn row(tp: usize, latency: f64, cost: f64) -> EvaluatedPoint {
        EvaluatedPoint {
            point: StrategyPoint {
                parallelism: Parallelism::new(1, tp, 1),
                precision: Precision::Fp16,
            },
            gpus: tp,
            latency: Time::from_secs(latency),
            throughput: 1.0 / latency,
            memory_per_device: Bytes::from_gb(10.0),
            energy: Energy::new(1.0),
            cost_usd: cost,
            mfu: None,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let rows = vec![row(1, 4.0, 1.0), row(2, 2.0, 2.0), row(4, 3.0, 3.0)];
        let frontier = pareto_frontier(&rows);
        // (3.0, 3.0) is dominated by (2.0, 2.0).
        assert_eq!(frontier.len(), 2);
        assert!(frontier.iter().all(|p| p.latency.secs() != 3.0));
    }

    #[test]
    fn frontier_is_sorted_and_minimal() {
        let rows = vec![
            row(1, 5.0, 1.0),
            row(2, 4.0, 2.0),
            row(4, 3.0, 3.0),
            row(8, 2.0, 5.0),
            row(8, 2.5, 4.0),
        ];
        let frontier = pareto_frontier(&rows);
        assert!(frontier
            .windows(2)
            .all(|w| w[0].latency < w[1].latency || w[0].cost_usd > w[1].cost_usd));
        for (i, a) in frontier.iter().enumerate() {
            for (j, b) in frontier.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b), "{i} dominates {j}");
                }
            }
        }
    }

    #[test]
    fn duplicate_coordinates_collapse() {
        let rows = vec![row(1, 2.0, 2.0), row(2, 2.0, 2.0)];
        let frontier = pareto_frontier(&rows);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].point.parallelism.tp, 1, "first in stable order");
    }

    #[test]
    fn indices_agree_with_materialized_frontier() {
        let rows = vec![
            row(1, 5.0, 1.0),
            row(2, 4.0, 2.0),
            row(4, 3.0, 3.0),
            row(8, 2.0, 5.0),
            row(8, 2.5, 4.0),
        ];
        let indices = pareto_frontier_indices(&rows);
        let materialized = pareto_frontier(&rows);
        assert_eq!(indices.len(), materialized.len());
        for (&i, p) in indices.iter().zip(&materialized) {
            assert_eq!(&rows[i], p);
        }
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let rows = vec![row(1, 1.0, 1.0)];
        assert_eq!(pareto_frontier(&rows).len(), 1);
        assert!(pareto_frontier(&[]).is_empty());
    }
}
