//! Pinned resilience-aware frontier behavior: llama2-13b on the A100
//! preset within 64 GPUs.
//!
//! Failure-free, the (latency, cost) frontier keeps a 64-GPU strategy —
//! it is the latency end of the trade-off. Under a finite per-GPU MTBF
//! the cluster-level failure rate grows with the GPU count (blast
//! radius), the Young–Daly waste inflates big strategies hardest, and
//! the same 64-GPU strategy is **dominated**: a smaller strategy now has
//! both lower failure-expected latency and lower cost. The degenerate
//! [`CheckpointSpec::none`] must leave the sweep untouched, field for
//! field and byte for byte.

use optimus_hw::presets;
use optimus_memory::RecomputeMode;
use optimus_model::presets as models;
use optimus_parallel::PipelineSchedule;
use optimus_sweep::{SweepEngine, SweepSpace, Workload};
use optimus_train::CheckpointSpec;

fn workload() -> Workload {
    Workload::Training {
        batch: 64,
        seq: 2048,
        recompute: RecomputeMode::Selective,
        schedule: PipelineSchedule::OneFOneB,
    }
}

/// A per-GPU MTBF of ~2.8 hours with a 15-minute restart — the harsh
/// end of real fleets, where resilience decides the strategy choice.
fn harsh() -> CheckpointSpec {
    CheckpointSpec::with_mtbf(10_000.0).with_restart(900.0)
}

#[test]
fn finite_mtbf_dominates_the_failure_free_latency_champion() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = models::llama2_13b();
    let space = SweepSpace::power_of_two(64);

    let free = SweepEngine::new(&cluster).sweep(&model, &workload(), &space);
    let faulty =
        SweepEngine::new(&cluster)
            .with_checkpoint(harsh())
            .sweep(&model, &workload(), &space);

    assert!(
        free.frontier.iter().any(|p| p.gpus == 64),
        "failure-free, a 64-GPU strategy anchors the latency end"
    );
    assert!(
        faulty.frontier.iter().all(|p| p.gpus < 64),
        "under a {} s per-GPU MTBF every 64-GPU strategy is dominated: \
         its cluster MTBF is 64× worse, so the Young–Daly waste eats the \
         latency it was buying",
        harsh().mtbf_s
    );
    // The dominated strategy did not vanish from the evaluation — it
    // lost on merit, with an explicit goodput below its smaller rivals'.
    let worst = faulty
        .evaluated
        .iter()
        .filter(|p| p.gpus == 64)
        .map(|p| p.goodput.expect("active spec prices every strategy"))
        .fold(f64::INFINITY, f64::min);
    let best_small = faulty
        .evaluated
        .iter()
        .filter(|p| p.gpus <= 8)
        .map(|p| p.goodput.expect("active spec prices every strategy"))
        .fold(0.0, f64::max);
    assert!(
        worst < best_small,
        "64-GPU goodput {worst} should trail 8-GPU goodput {best_small}"
    );
    // Every evaluated strategy carries a priced goodput in (0, 1).
    assert!(faulty
        .evaluated
        .iter()
        .all(|p| p.goodput.is_some_and(|g| g > 0.0 && g < 1.0)));
    assert!(free.evaluated.iter().all(|p| p.goodput.is_none()));
}

/// The PR 7-era champion — the best single-tier strategy under the
/// harsh spec — is itself dominated once the spec prices the full
/// stack: Weibull infant mortality (k = 0.7) punishes the plain
/// restart-everything model, while peer/delta tiers and elastic
/// continuation claw the waste back. Every strategy's goodput improves
/// or holds, and the old champion's own (latency, cost) point moves
/// strictly down.
#[test]
fn tiered_elastic_stack_dominates_the_single_tier_champion() {
    use optimus_hw::FailureProcess;
    use optimus_train::CheckpointTier;

    let cluster = presets::dgx_a100_hdr_cluster();
    let model = models::llama2_13b();
    let space = SweepSpace::power_of_two(64);

    let weibull = harsh().with_process(FailureProcess::Weibull { shape: 0.7 });
    // No repair wait: `repair_s` models extra downtime both recovery
    // arms pay, so pricing it here would change the question, not the
    // answer. The stack's win comes from tiers + cheap re-warm alone.
    let stacked = weibull
        .clone()
        .with_tiers(vec![CheckpointTier::peer(), CheckpointTier::delta()])
        .with_elastic(true)
        .with_rewarm(60.0);

    let single =
        SweepEngine::new(&cluster)
            .with_checkpoint(weibull)
            .sweep(&model, &workload(), &space);
    let full =
        SweepEngine::new(&cluster)
            .with_checkpoint(stacked)
            .sweep(&model, &workload(), &space);

    // Same strategy space, point for point.
    assert_eq!(single.evaluated.len(), full.evaluated.len());
    let champion = single
        .frontier
        .iter()
        .min_by(|a, b| a.latency.partial_cmp(&b.latency).unwrap())
        .expect("the harsh frontier is non-empty");
    let mut strictly_better = 0usize;
    for (a, b) in single.evaluated.iter().zip(&full.evaluated) {
        assert_eq!(a.point, b.point, "evaluation order is deterministic");
        let (ga, gb) = (a.goodput.unwrap(), b.goodput.unwrap());
        assert!(
            gb >= ga - 1e-12,
            "{:?}: stacked goodput {gb} under single-tier {ga}",
            a.point
        );
        strictly_better += usize::from(gb > ga + 1e-9);
        if a.point == champion.point {
            assert!(
                b.latency < champion.latency && b.cost_usd < champion.cost_usd,
                "the single-tier champion must be strictly repriced: \
                 latency {} → {}, cost {} → {}",
                champion.latency,
                b.latency,
                champion.cost_usd,
                b.cost_usd
            );
        }
    }
    assert!(
        strictly_better > 0,
        "the stack must strictly improve at least one strategy"
    );
}

#[test]
fn none_checkpoint_reproduces_the_spec_free_sweep_exactly() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let model = models::llama2_13b();
    let space = SweepSpace::power_of_two(64);

    let free = SweepEngine::new(&cluster).sweep(&model, &workload(), &space);
    let none = SweepEngine::new(&cluster)
        .with_checkpoint(CheckpointSpec::none())
        .sweep(&model, &workload(), &space);

    assert_eq!(free, none, "CheckpointSpec::none() must be invisible");
    assert_eq!(
        serde_json::to_string_pretty(&free).unwrap(),
        serde_json::to_string_pretty(&none).unwrap(),
        "byte-identical serialization"
    );
}
