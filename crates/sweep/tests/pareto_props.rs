//! Property tests of `pareto_frontier_indices` / `pareto_frontier` over
//! random point clouds:
//!
//! * **minimality** — no frontier member dominates another;
//! * **completeness** — every non-member is dominated by (or coordinate-
//!   equal to) a frontier member;
//! * **permutation invariance** — shuffling the input does not change the
//!   frontier;
//! * **idempotence** — the frontier of the frontier is the frontier.
//!
//! Coordinates are drawn from a small integer grid so duplicate latencies,
//! duplicate costs, and fully duplicated points all occur often — the tie
//! cases a hand-written example table tends to miss.

use optimus_hw::Precision;
use optimus_parallel::Parallelism;
use optimus_sweep::{
    dominates, pareto_frontier, pareto_frontier_indices, EvaluatedPoint, StrategyPoint,
};
use optimus_units::{Bytes, Energy, Time};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an evaluated point with a unique identity (`microbatch = id`),
/// so points with equal (latency, cost) coordinates remain
/// distinguishable and the stable tie-break is observable.
fn row(id: usize, latency_ms: usize, cost: usize) -> EvaluatedPoint {
    EvaluatedPoint {
        point: StrategyPoint {
            parallelism: Parallelism::new(1, 1, 1).with_microbatch(id + 1),
            precision: Precision::Fp16,
        },
        gpus: 1,
        latency: Time::from_millis(latency_ms as f64),
        throughput: 1.0,
        memory_per_device: Bytes::from_gb(1.0),
        energy: Energy::new(1.0),
        cost_usd: cost as f64,
        mfu: None,
        goodput: None,
    }
}

/// Random clouds on an 8×8 grid: collisions on every axis are common.
fn cloud() -> impl Strategy<Value = Vec<EvaluatedPoint>> {
    proptest::collection::vec((0usize..8, 0usize..8), 1..40).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(id, (l, c))| row(id, l, c))
            .collect()
    })
}

/// Deterministic Fisher–Yates shuffle driven by a sampled seed.
fn shuffled(points: &[EvaluatedPoint], seed: u64) -> Vec<EvaluatedPoint> {
    let mut out = points.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        out.swap(i, j);
    }
    out
}

/// The identity of a point for cross-permutation comparison.
fn key(p: &EvaluatedPoint) -> (u64, u64, usize) {
    (
        p.latency.secs().to_bits(),
        p.cost_usd.to_bits(),
        p.point.parallelism.microbatch,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No frontier member may dominate another, and distinct members may
    /// not even share coordinates (the frontier is minimal).
    #[test]
    fn frontier_is_minimal(points in cloud()) {
        let frontier = pareto_frontier(&points);
        prop_assert!(!frontier.is_empty(), "a non-empty cloud has a frontier");
        for (i, a) in frontier.iter().enumerate() {
            for (j, b) in frontier.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(a, b), "frontier member {i} dominates {j}");
                    prop_assert!(
                        !(a.latency == b.latency && a.cost_usd == b.cost_usd),
                        "duplicate coordinates must collapse to one member"
                    );
                }
            }
        }
    }

    /// Every point outside the frontier is dominated by — or coordinate-
    /// equal to — some frontier member (the frontier is complete).
    #[test]
    fn frontier_is_complete(points in cloud()) {
        let frontier = pareto_frontier(&points);
        for p in &points {
            let covered = frontier
                .iter()
                .any(|f| dominates(f, p) || (f.latency == p.latency && f.cost_usd == p.cost_usd));
            prop_assert!(covered, "point {:?} escapes the frontier", key(p));
        }
    }

    /// Shuffling the input changes neither the frontier coordinates nor
    /// which concrete points represent them: the tie-break runs on the
    /// stable strategy order, not on input position.
    #[test]
    fn frontier_is_invariant_under_permutation((points, seed) in (cloud(), 0u64..1_000)) {
        let baseline: Vec<_> = pareto_frontier(&points).iter().map(key).collect();

        let perm = shuffled(&points, seed);
        let of_perm: Vec<_> = pareto_frontier(&perm).iter().map(key).collect();
        prop_assert_eq!(&baseline, &of_perm, "shuffle changed the frontier");

        let mut reversed = points.clone();
        reversed.reverse();
        let of_rev: Vec<_> = pareto_frontier(&reversed).iter().map(key).collect();
        prop_assert_eq!(&baseline, &of_rev, "reversal changed the frontier");
    }

    /// The frontier is a fixed point: extracting it from itself returns
    /// it unchanged, and the index form agrees with the materialized form.
    #[test]
    fn frontier_is_idempotent_and_indices_agree(points in cloud()) {
        let frontier = pareto_frontier(&points);
        let again = pareto_frontier(&frontier);
        prop_assert_eq!(&frontier, &again);

        let indices = pareto_frontier_indices(&points);
        prop_assert_eq!(indices.len(), frontier.len());
        for (&i, f) in indices.iter().zip(&frontier) {
            prop_assert_eq!(&points[i], f);
        }
    }
}
