//! Regression pin: `enumerate` + `evaluate` performs **exactly one**
//! memory-footprint computation per candidate point — during pruning —
//! and the evaluation phase performs **zero**.
//!
//! The probe is `optimus_memory::footprint_computations()`, a process-wide
//! counter, so this file holds a single `#[test]` (its own integration-test
//! binary = its own process) to keep the differences exact.

use optimus_hw::presets;
use optimus_memory::footprint_computations;
use optimus_model::presets as models;
use optimus_sweep::{SweepEngine, SweepSpace, Workload};

#[test]
fn evaluation_never_recomputes_the_pruning_footprints() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let engine = SweepEngine::new(&cluster);
    let model = models::llama2_13b();
    let space = SweepSpace::power_of_two(16);

    for workload in [
        Workload::training(16, 2048),
        Workload::inference(1, 200, 16),
    ] {
        // Enumeration computes one footprint per *candidate* (surviving or
        // memory-pruned — it must, to decide which is which).
        let before_enumerate = footprint_computations();
        let points = space.enumerate_with_memory(&model, &cluster, &workload);
        let per_candidate = footprint_computations() - before_enumerate;
        assert!(
            per_candidate >= points.len(),
            "pruning must cost at least one footprint per survivor \
             ({per_candidate} computations, {} survivors)",
            points.len()
        );

        // The full sweep = the same enumeration + evaluation. If evaluation
        // re-derived memory, the sweep would exceed the enumeration count.
        let before_sweep = footprint_computations();
        let report = engine.sweep(&model, &workload, &space);
        let during_sweep = footprint_computations() - before_sweep;
        assert_eq!(report.evaluated.len(), points.len());
        assert_eq!(
            during_sweep,
            per_candidate,
            "the evaluation phase re-computed {} memory footprints that \
             pruning already derived",
            during_sweep - per_candidate
        );

        // Explicit point lists carry no footprints, so `evaluate` derives
        // exactly one per point — and no more.
        let strategy_points: Vec<_> = points.iter().map(|(p, _)| *p).collect();
        let n = strategy_points.len();
        let before_explicit = footprint_computations();
        let explicit = engine.evaluate(&model, &workload, strategy_points);
        assert_eq!(explicit.evaluated.len(), n);
        assert_eq!(
            footprint_computations() - before_explicit,
            n,
            "explicit evaluation must derive exactly one footprint per point"
        );
    }
}
