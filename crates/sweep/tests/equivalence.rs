//! The memoization contract: a sweep through the shared, memoized
//! phase-1 context must be **byte-identical** (via JSON) to evaluating
//! every point naively — one fresh estimator context per point, no shared
//! memo state, memory footprint re-derived from scratch.

use optimus_hw::presets;
use optimus_model::presets as models;
use optimus_sweep::{pareto_frontier, SweepEngine, SweepReport, SweepSpace, Workload};

/// Builds the naive report: every point goes through its own
/// single-point `evaluate` call, so nothing is shared or reused between
/// points — each call builds a fresh prepared context whose memo tables
/// see exactly one strategy.
fn naive_report(
    engine: &SweepEngine<'_>,
    cluster: &optimus_hw::ClusterSpec,
    model: &optimus_model::ModelConfig,
    workload: &Workload,
    space: &SweepSpace,
) -> SweepReport {
    let points = space.enumerate(model, cluster, workload);
    let mut evaluated = Vec::new();
    let mut rejected = Vec::new();
    for point in points {
        let one = engine.evaluate(model, workload, vec![point]);
        evaluated.extend(one.evaluated);
        rejected.extend(one.rejected);
    }
    let frontier = pareto_frontier(&evaluated);
    SweepReport {
        evaluated,
        frontier,
        rejected,
    }
}

#[test]
fn memoized_training_sweep_is_byte_identical_to_naive() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let engine = SweepEngine::new(&cluster);
    let model = models::llama2_13b();
    let workload = Workload::training(16, 2048);
    let space = SweepSpace::power_of_two(16);

    let memoized = engine.sweep(&model, &workload, &space);
    let naive = naive_report(&engine, &cluster, &model, &workload, &space);

    assert!(!memoized.evaluated.is_empty());
    let memoized_json = serde_json::to_string(&memoized).unwrap();
    let naive_json = serde_json::to_string(&naive).unwrap();
    assert_eq!(
        memoized_json, naive_json,
        "memoized sweep diverges from naive per-point evaluation"
    );
}

#[test]
fn memoized_inference_sweep_is_byte_identical_to_naive() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let engine = SweepEngine::new(&cluster);
    let model = models::llama2_13b();
    let workload = Workload::inference(1, 200, 16);
    let space = SweepSpace::power_of_two(8);

    let memoized = engine.sweep(&model, &workload, &space);
    let naive = naive_report(&engine, &cluster, &model, &workload, &space);

    assert!(!memoized.evaluated.is_empty());
    let memoized_json = serde_json::to_string(&memoized).unwrap();
    let naive_json = serde_json::to_string(&naive).unwrap();
    assert_eq!(
        memoized_json, naive_json,
        "memoized sweep diverges from naive per-point evaluation"
    );
}

/// `evaluate` on an explicit point list (which derives memory in-line)
/// must agree with `sweep` (which reuses the pruning pass's footprints)
/// over the same points.
#[test]
fn pruned_footprints_match_inline_derivation() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let engine = SweepEngine::new(&cluster);
    let model = models::llama2_13b();
    let workload = Workload::training(16, 2048);
    let space = SweepSpace::power_of_two(16);

    let swept = engine.sweep(&model, &workload, &space);
    let points = space.enumerate(&model, &cluster, &workload);
    let explicit = engine.evaluate(&model, &workload, points);

    assert_eq!(
        serde_json::to_string(&swept).unwrap(),
        serde_json::to_string(&explicit).unwrap()
    );
}
