//! Integration tests of the sweep engine's headline guarantees: the
//! acceptance-scale strategy count, byte-identical results across thread
//! counts and repeated runs, and Pareto-frontier minimality.

use optimus_hw::presets;
use optimus_model::presets as models;
use optimus_sweep::{dominates, SweepEngine, SweepSpace, Workload};

/// The paper's headline question at acceptance scale: Llama2-13B training
/// on a DGX-A100 cluster must yield well over 200 valid strategies.
#[test]
fn llama13b_on_a100_enumerates_hundreds_of_strategies() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let space = SweepSpace::power_of_two(64);
    let points = space.enumerate(
        &models::llama2_13b(),
        &cluster,
        &Workload::training(64, 2048),
    );
    assert!(
        points.len() >= 200,
        "expected ≥200 valid strategies, got {}",
        points.len()
    );
}

/// The full report — every row, every field — must be byte-identical when
/// evaluated on one thread and on many, and across repeated runs.
///
/// Explicit `ThreadPoolBuilder::install` scopes (not `RAYON_NUM_THREADS`
/// mutation) pin the pool size, so the comparison also holds against real
/// rayon, whose global pool reads the environment only once.
#[test]
fn report_is_byte_identical_across_thread_counts_and_runs() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let engine = SweepEngine::new(&cluster);
    let model = models::llama2_13b();
    let workload = Workload::training(32, 2048);
    let space = SweepSpace::power_of_two(32);
    let run = || serde_json::to_string(&engine.sweep(&model, &workload, &space)).unwrap();
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };

    let single = pool(1).install(run);
    let seven = pool(7).install(run);
    let default_threads = run();
    let repeat = run();

    assert_eq!(single, seven, "1 thread vs 7 threads");
    assert_eq!(single, default_threads, "1 thread vs default threads");
    assert_eq!(default_threads, repeat, "repeated runs");
}

/// The memo table of the two-phase pipeline must not introduce thread
/// sensitivity: on one thread the table fills strictly in point order; on
/// eight, workers race to publish entries and hit each other's results.
/// Both schedules must produce byte-identical reports — for training
/// (layer-cost table) and inference (per-step tables). Exercised at
/// `RAYON_NUM_THREADS ∈ {1, 8}` via explicitly installed pools.
#[test]
fn memo_table_is_deterministic_across_one_and_eight_threads() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let engine = SweepEngine::new(&cluster);
    let model = models::llama2_13b();
    let space = SweepSpace::power_of_two(16);
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    };

    for workload in [
        Workload::training(16, 2048),
        Workload::inference(1, 200, 16),
    ] {
        let run = || serde_json::to_string(&engine.sweep(&model, &workload, &space)).unwrap();
        let one = pool(1).install(run);
        let eight = pool(8).install(run);
        assert_eq!(one, eight, "1 thread vs 8 threads for {workload:?}");
    }
}

/// No frontier point may dominate another (minimality), and every
/// evaluated point must be dominated by or equal to something on the
/// frontier (completeness).
#[test]
fn frontier_is_minimal_and_complete() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let report = SweepEngine::new(&cluster).sweep(
        &models::llama2_13b(),
        &Workload::training(64, 2048),
        &SweepSpace::power_of_two(64),
    );
    assert!(!report.frontier.is_empty());

    for (i, a) in report.frontier.iter().enumerate() {
        for (j, b) in report.frontier.iter().enumerate() {
            if i != j {
                assert!(
                    !dominates(a, b),
                    "frontier point {i} dominates frontier point {j}"
                );
            }
        }
    }

    for p in &report.evaluated {
        let covered = report
            .frontier
            .iter()
            .any(|f| dominates(f, p) || (f.latency == p.latency && f.cost_usd == p.cost_usd));
        assert!(
            covered,
            "evaluated point {:?} escapes the frontier",
            p.point
        );
    }
}

/// Sequence-parallel variants appear only for TP > 1, and every strategy
/// respects the cluster's node size.
#[test]
fn structural_invariants_hold() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let report = SweepEngine::new(&cluster).sweep(
        &models::llama2_13b(),
        &Workload::training(64, 2048),
        &SweepSpace::power_of_two(64),
    );
    for row in &report.evaluated {
        let p = row.point.parallelism;
        assert!(p.tp <= cluster.node.gpus_per_node);
        assert!(!(p.sp && p.tp == 1), "SP without TP is a duplicate point");
        assert!(row.gpus <= 64);
        assert!(row.memory_per_device <= cluster.accelerator().dram.capacity);
    }
}

/// The sweep JSON round-trips through the serialization layer.
#[test]
fn report_roundtrips_through_json() {
    let cluster = presets::dgx_a100_hdr_cluster();
    let report = SweepEngine::new(&cluster).sweep(
        &models::llama2_13b(),
        &Workload::inference(1, 200, 8),
        &SweepSpace::power_of_two(8),
    );
    let json = serde_json::to_string(&report).unwrap();
    let back: optimus_sweep::SweepReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
