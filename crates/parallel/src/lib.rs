//! Parallelization mapper: DP/TP/PP/SP configuration, pipeline schedules,
//! and the communication plan they imply.
//!
//! Follows the Megatron-LM mapping the paper adopts (§3.2):
//!
//! * **TP/SP within a node** — tensor- and sequence-parallel groups have the
//!   highest communication intensity, so the device mapper places them on
//!   the NVLink fabric ([`optimus_hw::ClusterSpec::link_for_group`]);
//! * **PP/DP across nodes** — pipeline stages exchange microbatch
//!   activations point-to-point; data-parallel replicas all-reduce
//!   gradients once per batch;
//! * per layer and microbatch, the TP sharding requires **one all-reduce in
//!   the forward pass per block** (MHA and MLP → 2 per layer) and the same
//!   in backward; sequence parallelism replaces each all-reduce by an
//!   all-gather + reduce-scatter pair of equal total volume (§1.3), so SP
//!   costs the same communication while sharding the norm/dropout
//!   activations.
//!
//! Pipeline schedules (GPipe, PipeDream-Flush/1F1B, interleaved 1F1B) are
//! modeled by their *bubble fraction* and their *in-flight microbatch
//! count* (which multiplies activation memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm_plan;
mod config;
mod schedule;

pub use comm_plan::CommPlan;
pub use config::{ParallelError, Parallelism};
pub use schedule::PipelineSchedule;
