//! Pipeline-parallel schedules.

use serde::{Deserialize, Serialize};

/// A pipeline-parallel execution schedule (§3.2 adopts all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum PipelineSchedule {
    /// GPipe: all microbatch forwards, then all backwards. Bubble fraction
    /// `(pp−1)/m`, but **every** microbatch's activations are live at the
    /// peak.
    GPipe,
    /// PipeDream-Flush / 1F1B: one-forward-one-backward steady state. The
    /// same `(pp−1)/m` bubble, but at most `pp` microbatches in flight.
    #[default]
    OneFOneB,
    /// Interleaved 1F1B: each device hosts `stages_per_device` smaller
    /// virtual stages, dividing the bubble by that factor at the price of
    /// proportionally more pipeline communication.
    Interleaved1F1B {
        /// Virtual pipeline stages per device (`v ≥ 1`).
        stages_per_device: usize,
    },
}

impl PipelineSchedule {
    /// Creates an interleaved schedule.
    ///
    /// # Panics
    ///
    /// Panics if `stages_per_device` is zero.
    #[must_use]
    pub fn interleaved(stages_per_device: usize) -> Self {
        assert!(stages_per_device > 0, "virtual stages must be positive");
        Self::Interleaved1F1B { stages_per_device }
    }

    /// The pipeline bubble as a fraction of the busy (per-microbatch) time:
    /// `(pp−1)/m` for GPipe and 1F1B, `(pp−1)/(v·m)` for interleaved 1F1B.
    #[must_use]
    pub fn bubble_fraction(&self, pp: usize, microbatches: usize) -> f64 {
        assert!(pp > 0 && microbatches > 0, "degenerate pipeline");
        if pp == 1 {
            return 0.0;
        }
        let base = (pp - 1) as f64 / microbatches as f64;
        match self {
            Self::GPipe | Self::OneFOneB => base,
            Self::Interleaved1F1B { stages_per_device } => base / *stages_per_device as f64,
        }
    }

    /// Peak number of microbatches whose activations are simultaneously
    /// live on the most loaded stage (multiplies activation memory).
    #[must_use]
    pub fn inflight_microbatches(&self, pp: usize, microbatches: usize) -> usize {
        match self {
            Self::GPipe => microbatches,
            Self::OneFOneB | Self::Interleaved1F1B { .. } => microbatches.min(pp),
        }
    }

    /// Multiplier on the number of pipeline point-to-point transfers
    /// relative to plain 1F1B (interleaving sends each microbatch through
    /// `v` stage boundaries per device).
    #[must_use]
    pub fn p2p_multiplier(&self) -> f64 {
        match self {
            Self::GPipe | Self::OneFOneB => 1.0,
            Self::Interleaved1F1B { stages_per_device } => *stages_per_device as f64,
        }
    }
}

impl core::fmt::Display for PipelineSchedule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::GPipe => f.write_str("GPipe"),
            Self::OneFOneB => f.write_str("1F1B"),
            Self::Interleaved1F1B { stages_per_device } => {
                write!(f, "interleaved-1F1B(v={stages_per_device})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_fractions() {
        assert_eq!(PipelineSchedule::GPipe.bubble_fraction(8, 64), 7.0 / 64.0);
        assert_eq!(
            PipelineSchedule::OneFOneB.bubble_fraction(8, 64),
            7.0 / 64.0
        );
        assert_eq!(
            PipelineSchedule::interleaved(4).bubble_fraction(8, 64),
            7.0 / 256.0
        );
        assert_eq!(PipelineSchedule::OneFOneB.bubble_fraction(1, 64), 0.0);
    }

    #[test]
    fn inflight_counts() {
        assert_eq!(PipelineSchedule::GPipe.inflight_microbatches(8, 64), 64);
        assert_eq!(PipelineSchedule::OneFOneB.inflight_microbatches(8, 64), 8);
        assert_eq!(PipelineSchedule::OneFOneB.inflight_microbatches(8, 4), 4);
    }

    #[test]
    fn interleaving_multiplies_p2p() {
        assert_eq!(PipelineSchedule::interleaved(4).p2p_multiplier(), 4.0);
        assert_eq!(PipelineSchedule::OneFOneB.p2p_multiplier(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_virtual_stages_rejected() {
        let _ = PipelineSchedule::interleaved(0);
    }
}
