//! The communication plan implied by a parallelism configuration.

use crate::Parallelism;
use optimus_collective::{Collective, CommModel};
use optimus_hw::ClusterSpec;
use optimus_units::{Bytes, Time};

/// Plans and costs the collectives of one training/inference step under the
/// Megatron device mapping: TP/SP on the intra-node fabric, PP and DP on
/// whichever fabric their group spans.
#[derive(Debug, Clone)]
pub struct CommPlan<'a> {
    cluster: &'a ClusterSpec,
    parallelism: Parallelism,
    comm: CommModel,
}

impl<'a> CommPlan<'a> {
    /// Creates a plan for `parallelism` mapped onto `cluster`.
    #[must_use]
    pub fn new(cluster: &'a ClusterSpec, parallelism: Parallelism, comm: CommModel) -> Self {
        Self {
            cluster,
            parallelism,
            comm,
        }
    }

    /// The parallelism being planned.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Tensor-parallel communication of **one layer's forward pass over one
    /// microbatch**: one all-reduce per block (MHA + MLP ⇒ two) of the
    /// full activation `volume`; under SP each all-reduce becomes an
    /// all-gather + reduce-scatter pair of identical total cost (§1.3).
    #[must_use]
    pub fn tp_layer_forward(&self, activation_volume: Bytes) -> Time {
        let tp = self.parallelism.tp;
        if tp == 1 {
            return Time::ZERO;
        }
        let link = self.cluster.link_for_group(tp);
        if self.parallelism.sp {
            let ag = self
                .comm
                .time(Collective::AllGather, activation_volume, tp, link);
            let rs = self
                .comm
                .time(Collective::ReduceScatter, activation_volume, tp, link);
            (ag + rs) * 2.0
        } else {
            self.comm
                .time(Collective::AllReduce, activation_volume, tp, link)
                * 2.0
        }
    }

    /// Tensor-parallel communication of one layer's backward pass over one
    /// microbatch — symmetric with the forward pass.
    #[must_use]
    pub fn tp_layer_backward(&self, activation_volume: Bytes) -> Time {
        self.tp_layer_forward(activation_volume)
    }

    /// Data-parallel gradient all-reduce over the per-device gradient
    /// volume, once per global batch. Crosses nodes when the Megatron
    /// layout strides DP ranks past node boundaries.
    #[must_use]
    pub fn dp_gradient_allreduce(&self, gradient_volume: Bytes) -> Time {
        let dp = self.parallelism.dp;
        if dp == 1 {
            return Time::ZERO;
        }
        let link = if self
            .parallelism
            .dp_crosses_nodes(self.cluster.node.gpus_per_node)
        {
            &self.cluster.inter_link
        } else {
            self.cluster
                .link_for_group(dp * self.parallelism.tp * self.parallelism.pp)
        };
        self.comm
            .time(Collective::AllReduce, gradient_volume, dp, link)
    }

    /// One pipeline-stage boundary crossing for one microbatch's
    /// activations. PP groups span nodes in the Megatron layout whenever
    /// `tp·pp` exceeds a node.
    #[must_use]
    pub fn pp_hop(&self, activation_volume: Bytes) -> Time {
        if self.parallelism.pp == 1 {
            return Time::ZERO;
        }
        let spans_nodes =
            self.parallelism.tp * self.parallelism.pp > self.cluster.node.gpus_per_node;
        let link = if spans_nodes {
            &self.cluster.inter_link
        } else {
            &self.cluster.node.intra_link
        };
        self.comm
            .time(Collective::PointToPoint, activation_volume, 2, link)
    }

    /// Tensor-parallel communication of one **inference** layer (prefill or
    /// a single decode step): two all-reduces of the block output
    /// activations, sized by the (often tiny) per-step volume — the
    /// latency-sensitive regime where the tree algorithm matters (§3.4).
    #[must_use]
    pub fn tp_layer_inference(&self, activation_volume: Bytes) -> Time {
        self.tp_layer_forward(activation_volume)
    }

    /// Bytes one device injects into the fabric for one layer's forward
    /// TP/SP collectives (two all-reduce-equivalent events). Used by the
    /// energy model.
    #[must_use]
    pub fn tp_layer_forward_wire_bytes(&self, activation_volume: Bytes) -> Bytes {
        let tp = self.parallelism.tp;
        if tp == 1 {
            return Bytes::ZERO;
        }
        CommModel::wire_bytes(Collective::AllReduce, activation_volume, tp) * 2.0
    }

    /// Bytes one device injects for the DP gradient all-reduce.
    #[must_use]
    pub fn dp_wire_bytes(&self, gradient_volume: Bytes) -> Bytes {
        CommModel::wire_bytes(Collective::AllReduce, gradient_volume, self.parallelism.dp)
    }

    /// Bytes one device injects per pipeline-stage crossing.
    #[must_use]
    pub fn pp_wire_bytes(&self, activation_volume: Bytes) -> Bytes {
        if self.parallelism.pp == 1 {
            return Bytes::ZERO;
        }
        CommModel::wire_bytes(Collective::PointToPoint, activation_volume, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;

    fn cluster() -> ClusterSpec {
        presets::dgx_a100_hdr_cluster()
    }

    #[test]
    fn tp1_is_free() {
        let c = cluster();
        let plan = CommPlan::new(&c, Parallelism::single(), CommModel::auto());
        assert_eq!(plan.tp_layer_forward(Bytes::from_mib(50.0)), Time::ZERO);
    }

    #[test]
    fn sp_costs_the_same_as_tp() {
        // Ring all-reduce = all-gather + reduce-scatter, so SP's pairs cost
        // exactly what TP's all-reduces cost (the paper's "without
        // incurring communication overhead").
        let c = cluster();
        let tp = CommPlan::new(&c, Parallelism::new(1, 8, 1), CommModel::Ring);
        let sp = CommPlan::new(&c, Parallelism::new(1, 8, 1).with_sp(true), CommModel::Ring);
        let v = Bytes::from_mib(50.0);
        let a = tp.tp_layer_forward(v);
        let b = sp.tp_layer_forward(v);
        assert!((a.secs() - b.secs()).abs() / a.secs() < 1e-9);
    }

    #[test]
    fn dp_across_nodes_uses_infiniband() {
        let c = cluster();
        // tp·pp = 64 ≥ 8 GPUs/node: DP replicas sit on different nodes.
        let plan = CommPlan::new(&c, Parallelism::new(4, 8, 8), CommModel::Ring);
        let v = Bytes::from_gib(2.0);
        let t_inter = plan.dp_gradient_allreduce(v);
        // The same volume on NVLink would be ~12x faster (300 vs 25 GB/s).
        let intra_plan = CommPlan::new(&c, Parallelism::new(4, 1, 1), CommModel::Ring);
        let t_intra = intra_plan.dp_gradient_allreduce(v);
        assert!(t_inter.secs() > 5.0 * t_intra.secs());
    }

    #[test]
    fn pp_hop_uses_inter_node_when_spanning() {
        let c = cluster();
        let spanning = CommPlan::new(&c, Parallelism::new(1, 8, 8), CommModel::auto());
        let local = CommPlan::new(&c, Parallelism::new(1, 2, 4), CommModel::auto());
        let v = Bytes::from_mib(24.0);
        assert!(spanning.pp_hop(v) > local.pp_hop(v));
    }

    #[test]
    fn pp1_hop_is_free() {
        let c = cluster();
        let plan = CommPlan::new(&c, Parallelism::new(8, 8, 1), CommModel::auto());
        assert_eq!(plan.pp_hop(Bytes::from_mib(24.0)), Time::ZERO);
    }
}
