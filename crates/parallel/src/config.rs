//! The parallelism configuration.

use optimus_hw::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Error produced when a parallelism configuration is inconsistent with a
/// cluster or a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParallelError {
    /// TP (and SP) groups must fit inside one node (§3.2: "TP and SP are
    /// always implemented within a node due to their higher communication
    /// overhead").
    TpExceedsNode {
        /// Requested tensor-parallel degree.
        tp: usize,
        /// GPUs available per node.
        gpus_per_node: usize,
    },
    /// The global batch must divide evenly into `dp · microbatch` slices.
    IndivisibleBatch {
        /// Global batch size.
        batch: usize,
        /// Data-parallel degree.
        dp: usize,
        /// Microbatch size.
        microbatch: usize,
    },
    /// The layer count must divide evenly across pipeline stages.
    IndivisibleLayers {
        /// Number of layers.
        layers: usize,
        /// Pipeline-parallel degree.
        pp: usize,
    },
}

impl core::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::TpExceedsNode { tp, gpus_per_node } => write!(
                f,
                "tensor-parallel degree {tp} exceeds the {gpus_per_node} GPUs of a node"
            ),
            Self::IndivisibleBatch {
                batch,
                dp,
                microbatch,
            } => write!(
                f,
                "batch {batch} does not divide into dp={dp} replicas of microbatch {microbatch}"
            ),
            Self::IndivisibleLayers { layers, pp } => {
                write!(
                    f,
                    "{layers} layers do not divide across {pp} pipeline stages"
                )
            }
        }
    }
}

impl std::error::Error for ParallelError {}

/// A DP × TP × PP (× SP) parallelization of a training or inference job.
///
/// ```
/// use optimus_parallel::Parallelism;
/// // Table 1, GPT-175B row: 64 GPUs as 1-8-8 with SP.
/// let p = Parallelism::new(1, 8, 8).with_sp(true);
/// assert_eq!(p.total_gpus(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Data-parallel degree.
    pub dp: usize,
    /// Tensor(-model)-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Whether sequence parallelism shards the norm/dropout streams across
    /// the TP group (SP degree always equals TP degree in Megatron).
    pub sp: bool,
    /// Microbatch size per pipeline slot (samples).
    pub microbatch: usize,
}

impl Parallelism {
    /// Creates a configuration with no SP and microbatch 1.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero.
    #[must_use]
    pub fn new(dp: usize, tp: usize, pp: usize) -> Self {
        assert!(
            dp > 0 && tp > 0 && pp > 0,
            "parallel degrees must be positive"
        );
        Self {
            dp,
            tp,
            pp,
            sp: false,
            microbatch: 1,
        }
    }

    /// A single-device configuration.
    #[must_use]
    pub fn single() -> Self {
        Self::new(1, 1, 1)
    }

    /// Pure tensor parallelism over `tp` devices (the inference mapping).
    #[must_use]
    pub fn tensor_parallel(tp: usize) -> Self {
        Self::new(1, tp, 1)
    }

    /// Enables/disables sequence parallelism.
    #[must_use]
    pub fn with_sp(mut self, sp: bool) -> Self {
        self.sp = sp;
        self
    }

    /// Sets the microbatch size.
    ///
    /// # Panics
    ///
    /// Panics if `microbatch` is zero.
    #[must_use]
    pub fn with_microbatch(mut self, microbatch: usize) -> Self {
        assert!(microbatch > 0, "microbatch must be positive");
        self.microbatch = microbatch;
        self
    }

    /// Total devices: `dp · tp · pp`.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.dp * self.tp * self.pp
    }

    /// Number of microbatches each pipeline processes per global batch.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::IndivisibleBatch`] if the batch does not
    /// split evenly.
    pub fn microbatches(&self, batch: usize) -> Result<usize, ParallelError> {
        let denom = self.dp * self.microbatch;
        if batch == 0 || !batch.is_multiple_of(denom) {
            return Err(ParallelError::IndivisibleBatch {
                batch,
                dp: self.dp,
                microbatch: self.microbatch,
            });
        }
        Ok(batch / denom)
    }

    /// Layers held by each pipeline stage.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::IndivisibleLayers`] if layers do not split
    /// evenly across stages.
    pub fn layers_per_stage(&self, layers: usize) -> Result<usize, ParallelError> {
        if layers == 0 || !layers.is_multiple_of(self.pp) {
            return Err(ParallelError::IndivisibleLayers {
                layers,
                pp: self.pp,
            });
        }
        Ok(layers / self.pp)
    }

    /// Checks device-mapping constraints against a cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::TpExceedsNode`] when the TP group cannot be
    /// placed inside one node.
    pub fn validate(&self, cluster: &ClusterSpec) -> Result<(), ParallelError> {
        if self.tp > cluster.node.gpus_per_node {
            return Err(ParallelError::TpExceedsNode {
                tp: self.tp,
                gpus_per_node: cluster.node.gpus_per_node,
            });
        }
        Ok(())
    }

    /// Whether the DP gradient all-reduce crosses node boundaries (DP ranks
    /// are strided by `tp · pp` devices in the Megatron layout).
    #[must_use]
    pub fn dp_crosses_nodes(&self, gpus_per_node: usize) -> bool {
        self.dp > 1 && self.tp * self.pp >= gpus_per_node
    }
}

impl core::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}-{}-{}-{}",
            self.dp,
            self.tp,
            self.pp,
            if self.sp { self.tp } else { 1 }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;

    #[test]
    fn total_gpus_and_display() {
        let p = Parallelism::new(6, 8, 64).with_sp(false);
        assert_eq!(p.total_gpus(), 3072);
        assert_eq!(p.to_string(), "6-8-64-1");
        assert_eq!(
            Parallelism::new(1, 8, 8).with_sp(true).to_string(),
            "1-8-8-8"
        );
    }

    #[test]
    fn microbatch_division() {
        let p = Parallelism::new(8, 8, 8).with_microbatch(2);
        assert_eq!(p.microbatches(1024).unwrap(), 64);
        assert!(p.microbatches(100).is_err());
    }

    #[test]
    fn layer_division() {
        let p = Parallelism::new(1, 8, 8);
        assert_eq!(p.layers_per_stage(96).unwrap(), 12);
        assert!(p.layers_per_stage(100).is_err());
    }

    #[test]
    fn tp_must_fit_in_node() {
        let cluster = presets::dgx_a100_hdr_cluster();
        assert!(Parallelism::new(1, 8, 1).validate(&cluster).is_ok());
        let err = Parallelism::new(1, 16, 1).validate(&cluster).unwrap_err();
        assert!(matches!(err, ParallelError::TpExceedsNode { .. }));
    }

    #[test]
    fn dp_node_crossing() {
        assert!(Parallelism::new(2, 8, 1).dp_crosses_nodes(8));
        assert!(!Parallelism::new(2, 2, 1).dp_crosses_nodes(8));
        assert!(!Parallelism::new(1, 8, 8).dp_crosses_nodes(8));
    }
}
