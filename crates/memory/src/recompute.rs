//! Activation memory under the three recomputation strategies.

use optimus_model::ModelConfig;
use optimus_units::Bytes;
use serde::{Deserialize, Serialize};

/// The activation-recomputation strategy (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RecomputeMode {
    /// Keep every activation (fastest, largest footprint).
    #[default]
    None,
    /// Recompute the attention softmax/dropout region (Eq. 2): nearly the
    /// memory of full recomputation at a small compute cost.
    Selective,
    /// Checkpoint layer inputs and recompute everything else (Eq. 1):
    /// roughly doubles forward time.
    Full {
        /// Number of checkpoints per pipeline stage (`N_ckp` in Eq. 1).
        /// `None` checkpoints every layer.
        checkpoints_per_stage: Option<usize>,
    },
}

impl core::fmt::Display for RecomputeMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::None => f.write_str("none"),
            Self::Selective => f.write_str("selective"),
            Self::Full { .. } => f.write_str("full"),
        }
    }
}

/// The `5·a·s²·b/t` attention term: softmax input (2 bytes/elem), dropout
/// mask (1 byte/elem), dropout output (2 bytes/elem).
fn attention_quadratic_bytes(model: &ModelConfig, batch: usize, seq: usize, tp: usize) -> f64 {
    let dropout_mask = if model.dropout { 1.0 } else { 0.0 };
    let dropout_out = if model.dropout { 2.0 } else { 0.0 };
    let per_elem = 2.0 + dropout_mask + dropout_out; // softmax + dropout
    per_elem * model.heads as f64 * (seq * seq) as f64 * batch as f64 / tp as f64
}

/// Stored activation bytes of **one layer for one microbatch** with *no*
/// recomputation, under TP degree `tp` (and SP when `sp`).
///
/// Follows the Korthikanti accounting for 2-byte activations: the linear
/// term is `s·b·h·(10 + 24/t)` without SP (`34·s·b·h/t` with SP) and the
/// attention term is the `5·a·s²·b/t` of Eq. 2's softmax/dropout region
/// (scaled down when the model has no dropout).
#[must_use]
pub fn activation_bytes_per_layer(
    model: &ModelConfig,
    batch: usize,
    seq: usize,
    tp: usize,
    sp: bool,
) -> Bytes {
    assert!(batch > 0 && seq > 0 && tp > 0, "degenerate workload");
    let sbh = (seq * batch) as f64 * model.hidden as f64;
    let t = tp as f64;
    let linear = if sp {
        34.0 * sbh / t
    } else {
        sbh * (10.0 + 24.0 / t)
    };
    Bytes::new(linear + attention_quadratic_bytes(model, batch, seq, tp))
}

/// Input activation of one transformer layer (`A_inp` of Eq. 1): the
/// 2-byte `s·b·h` hidden-state tensor (sharded by `t` under SP).
#[must_use]
pub fn layer_input_bytes(
    model: &ModelConfig,
    batch: usize,
    seq: usize,
    tp: usize,
    sp: bool,
) -> Bytes {
    let sbh = (seq * batch) as f64 * model.hidden as f64;
    let div = if sp { tp as f64 } else { 1.0 };
    Bytes::new(2.0 * sbh / div)
}

/// Activation memory of one pipeline stage for one microbatch, split into
/// the part that **persists** until the microbatch's backward pass (and
/// therefore multiplies with the in-flight microbatch count) and the
/// **transient** working set that exists only while one microbatch is
/// being recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageActivation {
    /// Stored per in-flight microbatch (checkpoints / kept activations).
    pub stored: Bytes,
    /// Transient recomputation working set (one microbatch at a time).
    pub transient: Bytes,
}

impl StageActivation {
    /// Peak activation memory with `inflight` microbatches in flight.
    #[must_use]
    pub fn peak(&self, inflight: usize) -> Bytes {
        self.stored * inflight as f64 + self.transient
    }
}

/// Activation components of **one pipeline stage for one microbatch**:
/// `layers_per_stage` layers under the chosen recomputation mode.
///
/// * `None`: all layers' activations stored — `L·A_tot`;
/// * `Selective`: Eq. 2 stored — `L·(A_tot − A_sm − A_do_mask − A_do_out)`;
///   the attention term reappears transiently during recomputation;
/// * `Full`: Eq. 1 — `N_ckp·A_inp` stored, `(L/N_ckp)·(A_tot − A_inp)`
///   transient (one segment is re-materialized at a time).
#[must_use]
pub fn stage_activation_components(
    model: &ModelConfig,
    batch: usize,
    seq: usize,
    tp: usize,
    sp: bool,
    layers_per_stage: usize,
    mode: RecomputeMode,
) -> StageActivation {
    assert!(layers_per_stage > 0, "a stage holds at least one layer");
    let layers = layers_per_stage as f64;
    let a_tot = activation_bytes_per_layer(model, batch, seq, tp, sp);
    match mode {
        RecomputeMode::None => StageActivation {
            stored: a_tot * layers,
            transient: Bytes::ZERO,
        },
        RecomputeMode::Selective => {
            let attn = attention_quadratic_bytes(model, batch, seq, tp);
            StageActivation {
                stored: Bytes::new((a_tot.bytes() - attn) * layers),
                transient: Bytes::new(attn),
            }
        }
        RecomputeMode::Full {
            checkpoints_per_stage,
        } => {
            let n_ckp = checkpoints_per_stage
                .unwrap_or(layers_per_stage)
                .clamp(1, layers_per_stage) as f64;
            let a_inp = layer_input_bytes(model, batch, seq, tp, sp);
            StageActivation {
                stored: Bytes::new(n_ckp * a_inp.bytes()),
                transient: Bytes::new((layers / n_ckp) * (a_tot.bytes() - a_inp.bytes())),
            }
        }
    }
}

/// Total activation bytes of one stage for one microbatch (stored +
/// transient) — Eq. 1/Eq. 2 as printed in the paper.
#[must_use]
pub fn stage_activation_bytes(
    model: &ModelConfig,
    batch: usize,
    seq: usize,
    tp: usize,
    sp: bool,
    layers_per_stage: usize,
    mode: RecomputeMode,
) -> Bytes {
    let c = stage_activation_components(model, batch, seq, tp, sp, layers_per_stage, mode);
    c.stored + c.transient
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::presets;

    #[test]
    fn matches_korthikanti_closed_form() {
        // GPT-175B, t=8, b=1, s=2048, no SP:
        // sbh(10+3) + 5·96·2048²·1/8.
        let m = presets::gpt_175b();
        let got = activation_bytes_per_layer(&m, 1, 2048, 8, false).bytes();
        let sbh = 2048.0 * 12288.0;
        let expected = sbh * 13.0 + 5.0 * 96.0 * 2048.0 * 2048.0 / 8.0;
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn sp_shards_the_linear_term() {
        let m = presets::gpt_175b();
        let no_sp = activation_bytes_per_layer(&m, 1, 2048, 8, false);
        let sp = activation_bytes_per_layer(&m, 1, 2048, 8, true);
        assert!(sp < no_sp);
        // Linear term: 34/8 vs 13 → SP saves ~3x on the linear part.
        let sbh = 2048.0 * 12288.0;
        let expected_sp = sbh * 34.0 / 8.0 + 5.0 * 96.0 * 2048.0 * 2048.0 / 8.0;
        assert!((sp.bytes() - expected_sp).abs() / expected_sp < 1e-12);
    }

    #[test]
    fn ordering_none_selective_full() {
        let m = presets::gpt_175b();
        let args = (1, 2048, 8, false, 12);
        let (b, s, t, sp, l) = args;
        let none = stage_activation_bytes(&m, b, s, t, sp, l, RecomputeMode::None);
        let sel = stage_activation_bytes(&m, b, s, t, sp, l, RecomputeMode::Selective);
        let full = stage_activation_bytes(
            &m,
            b,
            s,
            t,
            sp,
            l,
            RecomputeMode::Full {
                checkpoints_per_stage: None,
            },
        );
        assert!(none > sel, "selective saves the attention term");
        assert!(sel > full, "full saves everything but checkpoints");
    }

    #[test]
    fn eq1_with_every_layer_checkpointed() {
        // N_ckp = L ⇒ A_full = L·A_inp + (A_tot − A_inp).
        let m = presets::gpt_22b();
        let (b, s, t) = (4, 2048, 8);
        let l = 6;
        let a_inp = layer_input_bytes(&m, b, s, t, false).bytes();
        let a_tot = activation_bytes_per_layer(&m, b, s, t, false).bytes();
        let got = stage_activation_bytes(
            &m,
            b,
            s,
            t,
            false,
            l,
            RecomputeMode::Full {
                checkpoints_per_stage: None,
            },
        )
        .bytes();
        let expected = l as f64 * a_inp + (a_tot - a_inp);
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn no_dropout_models_store_less_attention_state() {
        let gpt = presets::gpt_7b(); // dropout
        let mut no_dropout = gpt.clone();
        no_dropout.dropout = false;
        let with_do = activation_bytes_per_layer(&gpt, 1, 2048, 1, false);
        let without = activation_bytes_per_layer(&no_dropout, 1, 2048, 1, false);
        assert!(with_do > without);
    }
}
