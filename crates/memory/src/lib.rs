//! Memory-footprint models: weights, gradients, optimizer states,
//! activations under recomputation, and the KV-cache.
//!
//! Implements the paper's §3.3 (activation recomputation, Eqs. 1–2) and
//! §3.5 (KV-cache sizing), with per-layer activation volumes following the
//! Megatron selective-recomputation analysis (Korthikanti et al.) that the
//! paper validates against:
//!
//! * no recomputation, TP degree `t`:
//!   `A_tot = s·b·h·(10 + 24/t) + 5·a·s²·b/t` bytes (2-byte activations);
//! * with SP the first term becomes `34·s·b·h/t`;
//! * **selective** recomputation drops the `5·a·s²·b/t` attention term
//!   (Eq. 2);
//! * **full** recomputation stores only checkpoint inputs plus one
//!   segment's working set (Eq. 1).
//!
//! ```
//! use optimus_hw::Precision;
//! use optimus_memory::{training_memory, RecomputeMode, TrainingMemorySpec};
//! use optimus_model::presets;
//! use optimus_parallel::{Parallelism, PipelineSchedule};
//!
//! let spec = TrainingMemorySpec {
//!     batch: 64,
//!     seq: 2048,
//!     parallelism: Parallelism::new(1, 8, 8),
//!     schedule: PipelineSchedule::OneFOneB,
//!     precision: Precision::Fp16,
//!     recompute: RecomputeMode::Full { checkpoints_per_stage: None },
//! };
//! let report = training_memory(&presets::gpt_175b(), &spec).unwrap();
//! // Full recomputation fits GPT-175B on 80 GB devices.
//! assert!(report.total().gb() < 80.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod footprint;
mod kv;
mod recompute;

pub use footprint::{
    footprint_computations, inference_memory, training_memory, InferenceMemoryReport,
    TrainingMemoryReport, TrainingMemorySpec,
};
pub use kv::kv_cache_bytes;
pub use recompute::{
    activation_bytes_per_layer, layer_input_bytes, stage_activation_bytes,
    stage_activation_components, RecomputeMode, StageActivation,
};
