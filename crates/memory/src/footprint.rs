//! Per-device memory reports for training and inference.

use crate::{kv_cache_bytes, stage_activation_components, RecomputeMode};
use optimus_hw::Precision;
use optimus_model::ModelConfig;
use optimus_parallel::{ParallelError, Parallelism, PipelineSchedule};
use optimus_units::Bytes;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide count of footprint computations, for regression tests
/// that pin down how often the estimator pipeline re-derives memory.
static FOOTPRINT_COMPUTATIONS: AtomicUsize = AtomicUsize::new(0);

/// How many times [`training_memory`] or [`inference_memory`] has run in
/// this process. Purely observational instrumentation (one relaxed atomic
/// increment per call): the sweep pipeline promises exactly one footprint
/// computation per candidate point — during pruning — and its tests assert
/// the evaluation phase adds zero by differencing this counter. Counts
/// from concurrently running code are included, so tests that difference
/// it must own the process (run in their own integration-test binary).
#[must_use]
pub fn footprint_computations() -> usize {
    FOOTPRINT_COMPUTATIONS.load(Ordering::Relaxed)
}

/// Bytes per parameter of Adam optimizer state in mixed-precision training:
/// FP32 master weights + first moment + second moment.
const OPTIMIZER_BYTES_PER_PARAM: f64 = 12.0;
/// Bytes per parameter of the gradient buffer (FP32 main gradients).
const GRADIENT_BYTES_PER_PARAM: f64 = 4.0;

/// Inputs of a training-memory estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingMemorySpec {
    /// Global batch size (samples).
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Parallelization.
    pub parallelism: Parallelism,
    /// Pipeline schedule (sets in-flight microbatch count).
    pub schedule: PipelineSchedule,
    /// Training precision (weight/activation width).
    pub precision: Precision,
    /// Activation-recomputation strategy.
    pub recompute: RecomputeMode,
}

/// Per-device memory breakdown for training (the bars of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingMemoryReport {
    /// Model weights (training precision).
    pub parameters: Bytes,
    /// Gradient buffer.
    pub gradients: Bytes,
    /// Optimizer states (FP32 master copy + Adam moments).
    pub optimizer: Bytes,
    /// Stored activations under the chosen recomputation mode.
    pub activations: Bytes,
}

impl TrainingMemoryReport {
    /// Total per-device footprint.
    #[must_use]
    pub fn total(&self) -> Bytes {
        self.parameters + self.gradients + self.optimizer + self.activations
    }

    /// Whether the footprint fits a device of the given capacity.
    #[must_use]
    pub fn fits(&self, capacity: Bytes) -> bool {
        self.total() <= capacity
    }
}

impl core::fmt::Display for TrainingMemoryReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "params {} + grads {} + optimizer {} + activations {} = {}",
            self.parameters,
            self.gradients,
            self.optimizer,
            self.activations,
            self.total()
        )
    }
}

/// Parameters held by the most loaded device: a pipeline stage's layer
/// shard plus the embedding shard (first/last stage carry the embedding and
/// LM head, which is the peak).
fn params_per_device(model: &ModelConfig, p: Parallelism) -> Result<f64, ParallelError> {
    let layers_per_stage = p.layers_per_stage(model.layers)?;
    let layer_part = layers_per_stage as f64 * model.layer_param_count() / p.tp as f64;
    let embedding_part = model.embedding_param_count() / p.tp as f64;
    Ok(layer_part + embedding_part)
}

/// Estimates the per-device training memory breakdown.
///
/// # Errors
///
/// Returns a [`ParallelError`] when the batch does not divide into
/// microbatches or the layers do not divide across pipeline stages.
pub fn training_memory(
    model: &ModelConfig,
    spec: &TrainingMemorySpec,
) -> Result<TrainingMemoryReport, ParallelError> {
    FOOTPRINT_COMPUTATIONS.fetch_add(1, Ordering::Relaxed);
    let p = spec.parallelism;
    let params = params_per_device(model, p)?;
    let microbatches = p.microbatches(spec.batch)?;
    let layers_per_stage = p.layers_per_stage(model.layers)?;
    let inflight = spec.schedule.inflight_microbatches(p.pp, microbatches);

    let activation = stage_activation_components(
        model,
        p.microbatch,
        spec.seq,
        p.tp,
        p.sp,
        layers_per_stage,
        spec.recompute,
    );

    Ok(TrainingMemoryReport {
        parameters: Bytes::new(params * spec.precision.bytes()),
        gradients: Bytes::new(params * GRADIENT_BYTES_PER_PARAM),
        optimizer: Bytes::new(params * OPTIMIZER_BYTES_PER_PARAM),
        activations: activation.peak(inflight),
    })
}

/// Per-device memory breakdown for inference (the inset of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceMemoryReport {
    /// Model weights (serving precision).
    pub weights: Bytes,
    /// KV-cache at the given batch and maximum context.
    pub kv_cache: Bytes,
}

impl InferenceMemoryReport {
    /// Total per-device footprint.
    #[must_use]
    pub fn total(&self) -> Bytes {
        self.weights + self.kv_cache
    }

    /// Whether the footprint fits a device of the given capacity.
    #[must_use]
    pub fn fits(&self, capacity: Bytes) -> bool {
        self.total() <= capacity
    }
}

/// Estimates the per-device inference memory at `batch` and peak `context`.
#[must_use]
pub fn inference_memory(
    model: &ModelConfig,
    batch: usize,
    context: usize,
    tp: usize,
    precision: Precision,
) -> InferenceMemoryReport {
    FOOTPRINT_COMPUTATIONS.fetch_add(1, Ordering::Relaxed);
    assert!(tp > 0, "tp must be positive");
    InferenceMemoryReport {
        weights: Bytes::new(model.param_count() * precision.bytes() / tp as f64),
        kv_cache: kv_cache_bytes(model, batch, context, precision) / tp as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::presets;

    fn spec(recompute: RecomputeMode) -> TrainingMemorySpec {
        TrainingMemorySpec {
            batch: 64,
            seq: 2048,
            parallelism: Parallelism::new(1, 8, 8),
            schedule: PipelineSchedule::OneFOneB,
            precision: Precision::Fp16,
            recompute,
        }
    }

    #[test]
    fn gpt175b_fits_only_with_recomputation() {
        // Fig. 4's headline: on 80 GB A100s (TP8·PP8, batch 64) GPT-175B
        // overflows without recomputation and fits with it.
        let m = presets::gpt_175b();
        let cap = Bytes::from_gb(80.0);
        let none = training_memory(&m, &spec(RecomputeMode::None)).unwrap();
        // Table 1 pairs selective recomputation with SP (1-8-8-8 rows).
        let mut sel_spec = spec(RecomputeMode::Selective);
        sel_spec.parallelism = sel_spec.parallelism.with_sp(true);
        let sel = training_memory(&m, &sel_spec).unwrap();
        let full = training_memory(
            &m,
            &spec(RecomputeMode::Full {
                checkpoints_per_stage: None,
            }),
        )
        .unwrap();
        assert!(!none.fits(cap), "no recompute: {}", none.total());
        assert!(sel.fits(cap), "selective+SP: {}", sel.total());
        assert!(full.fits(cap), "full: {}", full.total());
        assert!(none.activations > sel.activations);
        assert!(sel.activations > full.activations);
    }

    #[test]
    fn static_memory_is_18_bytes_per_param() {
        let m = presets::gpt_175b();
        let r = training_memory(&m, &spec(RecomputeMode::Selective)).unwrap();
        let static_bytes = (r.parameters + r.gradients + r.optimizer).bytes();
        // ~175e9/64 params per device × 18 bytes.
        let params = 175.4e9 / 64.0;
        let ratio = static_bytes / (params * 18.0);
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio:.3}");
    }

    #[test]
    fn optimizer_dominates_static_memory() {
        // The Fig. 4 bars: optimizer state is the largest static category.
        let m = presets::gpt_530b();
        let s = TrainingMemorySpec {
            batch: 280,
            seq: 2048,
            parallelism: Parallelism::new(1, 8, 35),
            schedule: PipelineSchedule::OneFOneB,
            precision: Precision::Fp16,
            recompute: RecomputeMode::Full {
                checkpoints_per_stage: None,
            },
        };
        let r = training_memory(&m, &s).unwrap();
        assert!(r.optimizer > r.parameters + r.gradients);
    }

    #[test]
    fn indivisible_configs_error() {
        let m = presets::gpt_175b();
        let mut s = spec(RecomputeMode::None);
        s.parallelism = Parallelism::new(1, 8, 7); // 96 % 7 != 0
        assert!(training_memory(&m, &s).is_err());
        let mut s2 = spec(RecomputeMode::None);
        s2.batch = 63;
        s2.parallelism = Parallelism::new(2, 8, 8);
        assert!(training_memory(&m, &s2).is_err());
    }

    #[test]
    fn inference_memory_matches_weights_plus_kv() {
        let m = presets::llama2_13b();
        let r = inference_memory(&m, 1, 400, 1, Precision::Fp16);
        // 13B × 2 bytes ≈ 26 GB of weights.
        assert!((r.weights.gb() - 26.0).abs() < 0.5, "weights {}", r.weights);
        assert!(r.kv_cache.gb() < 0.4);
        assert!(r.fits(Bytes::from_gb(80.0)));
    }

    #[test]
    fn tp_shards_inference_memory() {
        let m = presets::llama2_70b();
        let one = inference_memory(&m, 1, 400, 1, Precision::Fp16);
        let eight = inference_memory(&m, 1, 400, 8, Precision::Fp16);
        assert!((one.total().bytes() / eight.total().bytes() - 8.0).abs() < 1e-9);
        // 70B at FP16 does not fit one 80 GB GPU; it fits eight.
        assert!(!one.fits(Bytes::from_gb(80.0)));
        assert!(eight.fits(Bytes::from_gb(80.0)));
    }

    #[test]
    fn gpipe_holds_all_microbatches() {
        let m = presets::gpt_22b();
        let mut s = TrainingMemorySpec {
            batch: 32,
            seq: 2048,
            parallelism: Parallelism::new(1, 8, 6),
            schedule: PipelineSchedule::GPipe,
            precision: Precision::Fp16,
            recompute: RecomputeMode::None,
        };
        let gpipe = training_memory(&m, &s).unwrap();
        s.schedule = PipelineSchedule::OneFOneB;
        let one_f = training_memory(&m, &s).unwrap();
        // 32 microbatches in flight vs 6.
        let ratio = gpipe.activations.bytes() / one_f.activations.bytes();
        assert!((ratio - 32.0 / 6.0).abs() < 1e-9);
    }
}
