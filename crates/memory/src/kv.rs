//! KV-cache sizing (§3.5).

use optimus_hw::Precision;
use optimus_model::ModelConfig;
use optimus_units::Bytes;

/// Total KV-cache size for a serving batch:
///
/// ```text
/// 2 × batch × context × precision-bytes × layers × kv-hidden
/// ```
///
/// (the paper's formula, with the embedding dimension generalized to
/// `kv_heads · head_dim` so grouped-query models cache proportionally
/// less). Divide by the TP degree for the per-device share.
#[must_use]
pub fn kv_cache_bytes(
    model: &ModelConfig,
    batch: usize,
    context: usize,
    precision: Precision,
) -> Bytes {
    assert!(batch > 0 && context > 0, "degenerate KV-cache request");
    Bytes::new(
        2.0 * batch as f64
            * context as f64
            * precision.bytes()
            * model.layers as f64
            * model.kv_hidden() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::presets;

    #[test]
    fn matches_paper_formula_for_mha() {
        // Llama2-13B, B=1, 400-token context, FP16:
        // 2·1·400·2·40·5120 = 327.68 MB.
        let m = presets::llama2_13b();
        let got = kv_cache_bytes(&m, 1, 400, Precision::Fp16);
        assert!((got.bytes() - 327_680_000.0).abs() < 1.0);
    }

    #[test]
    fn gqa_caches_less() {
        let full = kv_cache_bytes(&presets::llama2_13b(), 1, 4096, Precision::Fp16);
        let gqa = kv_cache_bytes(&presets::llama2_70b(), 1, 4096, Precision::Fp16);
        // 70B has 2x layers and 1.6x hidden but 8x fewer KV heads:
        // cache is 8192/8=1024 wide vs 5120 → (80·1024)/(40·5120) = 0.4.
        let ratio = gqa.bytes() / full.bytes();
        assert!((ratio - 0.4).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn scales_linearly_with_batch_and_context() {
        let m = presets::llama2_7b();
        let base = kv_cache_bytes(&m, 1, 100, Precision::Fp16);
        assert_eq!(
            kv_cache_bytes(&m, 16, 100, Precision::Fp16).bytes(),
            base.bytes() * 16.0
        );
        assert_eq!(
            kv_cache_bytes(&m, 1, 400, Precision::Fp16).bytes(),
            base.bytes() * 4.0
        );
    }

    #[test]
    fn fp8_halves_the_cache() {
        let m = presets::llama2_7b();
        let fp16 = kv_cache_bytes(&m, 1, 1000, Precision::Fp16);
        let fp8 = kv_cache_bytes(&m, 1, 1000, Precision::Fp8);
        assert_eq!(fp8.bytes() * 2.0, fp16.bytes());
    }
}
