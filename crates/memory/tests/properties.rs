//! Property-based tests of the memory-footprint models.

use optimus_hw::Precision;
use optimus_memory::{
    activation_bytes_per_layer, kv_cache_bytes, stage_activation_bytes, training_memory,
    RecomputeMode, TrainingMemorySpec,
};
use optimus_model::presets;
use optimus_parallel::{Parallelism, PipelineSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Activation memory is linear in microbatch size.
    #[test]
    fn activations_linear_in_batch(b in 1usize..16, s_exp in 7u32..12) {
        let m = presets::gpt_22b();
        let s = 1usize << s_exp;
        let one = activation_bytes_per_layer(&m, 1, s, 8, false).bytes();
        let many = activation_bytes_per_layer(&m, b, s, 8, false).bytes();
        prop_assert!((many / one - b as f64).abs() < 1e-9);
    }

    /// The recompute-mode ordering none ≥ selective ≥ full holds for all
    /// workload shapes.
    #[test]
    fn mode_ordering_universal(b in 1usize..8, s_exp in 7u32..12, tp in 1usize..9, layers in 1usize..16) {
        let m = presets::gpt_175b();
        let s = 1usize << s_exp;
        let none = stage_activation_bytes(&m, b, s, tp, false, layers, RecomputeMode::None);
        let sel = stage_activation_bytes(&m, b, s, tp, false, layers, RecomputeMode::Selective);
        let full = stage_activation_bytes(
            &m, b, s, tp, false, layers,
            RecomputeMode::Full { checkpoints_per_stage: None },
        );
        prop_assert!(none >= sel);
        prop_assert!(sel.bytes() >= full.bytes() * 0.999);
    }

    /// SP never increases activation memory.
    #[test]
    fn sp_never_hurts(b in 1usize..8, tp in 2usize..9) {
        let m = presets::gpt_22b();
        let plain = activation_bytes_per_layer(&m, b, 2048, tp, false);
        let sp = activation_bytes_per_layer(&m, b, 2048, tp, true);
        prop_assert!(sp <= plain);
    }

    /// KV-cache is exactly linear in batch, context, layers, and width.
    #[test]
    fn kv_cache_linearity(b in 1usize..32, ctx in 1usize..4096) {
        let m = presets::llama2_7b();
        let unit = kv_cache_bytes(&m, 1, 1, Precision::Fp16).bytes();
        let got = kv_cache_bytes(&m, b, ctx, Precision::Fp16).bytes();
        prop_assert!((got - unit * b as f64 * ctx as f64).abs() < 1.0);
    }

    /// Fewer checkpoints (smaller N_ckp) trade stored inputs for a larger
    /// transient segment; total Eq. 1 memory stays within a bounded band
    /// and is minimized near sqrt(L).
    #[test]
    fn checkpoint_count_tradeoff(n_ckp in 1usize..16) {
        let m = presets::gpt_175b();
        let layers = 16;
        let full = |n: Option<usize>| {
            stage_activation_bytes(
                &m, 1, 2048, 8, false, layers,
                RecomputeMode::Full { checkpoints_per_stage: n },
            )
            .bytes()
        };
        let none_mode =
            stage_activation_bytes(&m, 1, 2048, 8, false, layers, RecomputeMode::None).bytes();
        prop_assert!(full(Some(n_ckp)) <= none_mode);
    }

    /// Training memory is monotone non-increasing in TP degree.
    #[test]
    fn training_memory_monotone_in_tp(tp_exp in 0u32..3) {
        let m = presets::gpt_175b();
        let spec = |tp: usize| TrainingMemorySpec {
            batch: 64,
            seq: 2048,
            parallelism: Parallelism::new(1, tp, 8),
            schedule: PipelineSchedule::OneFOneB,
            precision: Precision::Fp16,
            recompute: RecomputeMode::Selective,
        };
        let lo = 1usize << tp_exp;
        let hi = lo * 2;
        let mem_lo = training_memory(&m, &spec(lo)).unwrap().total();
        let mem_hi = training_memory(&m, &spec(hi)).unwrap().total();
        prop_assert!(mem_hi <= mem_lo);
    }
}
