//! DSE over real µArch syntheses: the optimizer must push the allocation
//! in the physically sensible direction.

use optimus_dse::{GradientDescent, GridSearch, SearchSpace};
use optimus_hw::memtech::DramTechnology;
use optimus_hw::{MemoryLevelKind, Precision};
use optimus_tech::{Allocation, ResourceBudget, TechNode, UArchEngine};

/// A compute-heavy synthetic objective: time dominated by FLOPs over the
/// synthesized peak (a fat-GEMM workload).
fn compute_heavy(engine: &UArchEngine, alloc: Allocation) -> f64 {
    let acc = engine.synthesize(
        TechNode::N5,
        ResourceBudget::datacenter_gpu(),
        alloc,
        DramTechnology::Hbm3,
    );
    let peak = acc.peak(Precision::Fp16).unwrap().get();
    1e18 / peak
}

/// A cache-sensitive objective: time improves with L2 capacity (a blocked
/// workload whose traffic scales like 1/sqrt(cache)) but still pays for
/// compute.
fn cache_sensitive(engine: &UArchEngine, alloc: Allocation) -> f64 {
    let acc = engine.synthesize(
        TechNode::N5,
        ResourceBudget::datacenter_gpu(),
        alloc,
        DramTechnology::Hbm2,
    );
    let peak = acc.peak(Precision::Fp16).unwrap().get();
    let l2 = acc.level(MemoryLevelKind::L2).unwrap().capacity.bytes();
    1e17 / peak + 2e14 / l2.sqrt()
}

#[test]
fn compute_heavy_objective_maxes_compute_fraction() {
    let engine = UArchEngine::a100_at_n7();
    let space = SearchSpace::default();
    let result =
        GradientDescent::default().minimize(&space, |a: Allocation| compute_heavy(&engine, a));
    assert!(
        result.best.allocation.compute.get() > 0.7,
        "expected the compute bound (0.80), got {}",
        result.best.allocation.compute
    );
}

#[test]
fn cache_sensitive_objective_buys_sram() {
    let engine = UArchEngine::a100_at_n7();
    let space = SearchSpace::default();
    let compute_only =
        GradientDescent::default().minimize(&space, |a: Allocation| compute_heavy(&engine, a));
    let balanced =
        GradientDescent::default().minimize(&space, |a: Allocation| cache_sensitive(&engine, a));
    assert!(
        balanced.best.allocation.sram > compute_only.best.allocation.sram,
        "cache-sensitive workload should allocate more SRAM: {} vs {}",
        balanced.best.allocation.sram,
        compute_only.best.allocation.sram
    );
}

#[test]
fn gradient_descent_matches_grid_on_real_objective() {
    let engine = UArchEngine::a100_at_n7();
    let space = SearchSpace::default();
    let gd =
        GradientDescent::default().minimize(&space, |a: Allocation| cache_sensitive(&engine, a));
    let grid =
        GridSearch { resolution: 24 }.minimize(&space, |a: Allocation| cache_sensitive(&engine, a));
    assert!(
        gd.best.objective <= grid.best.objective * 1.03,
        "descent {} should be within 3% of a 24x24 grid {}",
        gd.best.objective,
        grid.best.objective
    );
}

#[test]
fn descent_uses_fewer_evaluations_than_grid() {
    let engine = UArchEngine::a100_at_n7();
    let space = SearchSpace::default();
    let gd =
        GradientDescent::default().minimize(&space, |a: Allocation| cache_sensitive(&engine, a));
    let grid =
        GridSearch { resolution: 24 }.minimize(&space, |a: Allocation| cache_sensitive(&engine, a));
    // Descent spends ≤ ~300 evaluations (60 iterations × 5 probes) vs.
    // 576 for the 24×24 grid.
    assert!(
        gd.evaluations < grid.evaluations,
        "descent {} vs grid {}",
        gd.evaluations,
        grid.evaluations
    );
}
