//! DSE optimizers: projected gradient descent plus baselines.

use crate::SearchSpace;
use optimus_tech::Allocation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// The allocation evaluated.
    pub allocation: Allocation,
    /// Objective value (predicted execution time, seconds).
    pub objective: f64,
}

/// The outcome of a DSE run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// The best point found.
    pub best: DsePoint,
    /// Every accepted iterate, in order (for convergence plots).
    pub history: Vec<DsePoint>,
    /// Total objective evaluations spent.
    pub evaluations: usize,
}

/// Projected finite-difference gradient descent — the paper's search
/// algorithm (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientDescent {
    /// Maximum descent iterations.
    pub iterations: usize,
    /// Initial step size in fraction units.
    pub learning_rate: f64,
    /// Finite-difference probe width.
    pub probe: f64,
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self {
            iterations: 60,
            learning_rate: 0.08,
            probe: 1e-3,
        }
    }
}

/// Implements the [`crate::Objective`]-driven entry point — the same
/// evaluation interface the strategy sweep in `optimus-sweep` uses — for
/// each optimizer, bridging to its closure-based `minimize`.
macro_rules! impl_minimize_objective {
    ($($optimizer:ty),*) => {$(
        impl $optimizer {
            /// Minimizes a shared [`crate::Objective`] over `space`.
            pub fn minimize_objective<O: crate::Objective<Allocation>>(
                &self,
                space: &SearchSpace,
                objective: &O,
            ) -> DseResult {
                self.minimize(space, |a| objective.evaluate(&a))
            }
        }
    )*};
}

impl_minimize_objective!(GradientDescent, RandomSearch, GridSearch);

impl GradientDescent {
    /// Minimizes `objective` over `space`, starting from the centroid.
    ///
    /// The step size halves whenever a step fails to improve, giving the
    /// usual robust backtracking behaviour on noisy analytical objectives.
    pub fn minimize<F>(&self, space: &SearchSpace, mut objective: F) -> DseResult
    where
        F: FnMut(Allocation) -> f64,
    {
        let mut evals = 0;
        let mut eval = |a: Allocation, evals: &mut usize| {
            *evals += 1;
            objective(a)
        };

        let mut current = space.center();
        let mut current_val = eval(current, &mut evals);
        let mut history = vec![DsePoint {
            allocation: current,
            objective: current_val,
        }];
        let mut lr = self.learning_rate;

        for _ in 0..self.iterations {
            let (c, s) = (current.compute.get(), current.sram.get());
            // Central differences on both coordinates (projected).
            let g_c = (eval(space.project(c + self.probe, s), &mut evals)
                - eval(space.project(c - self.probe, s), &mut evals))
                / (2.0 * self.probe);
            let g_s = (eval(space.project(c, s + self.probe), &mut evals)
                - eval(space.project(c, s - self.probe), &mut evals))
                / (2.0 * self.probe);

            let norm = (g_c * g_c + g_s * g_s).sqrt();
            if norm < 1e-12 || lr < 1e-5 {
                break;
            }
            let candidate = space.project(c - lr * g_c / norm, s - lr * g_s / norm);
            let candidate_val = eval(candidate, &mut evals);
            if candidate_val < current_val {
                current = candidate;
                current_val = candidate_val;
                history.push(DsePoint {
                    allocation: current,
                    objective: current_val,
                });
            } else {
                lr *= 0.5;
            }
        }

        DseResult {
            best: DsePoint {
                allocation: current,
                objective: current_val,
            },
            history,
            evaluations: evals,
        }
    }
}

/// Uniform random sampling baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomSearch {
    /// Number of samples.
    pub samples: usize,
    /// RNG seed (runs are deterministic).
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self {
            samples: 200,
            seed: 0x5eed_0717,
        }
    }
}

impl RandomSearch {
    /// Minimizes `objective` by uniform sampling of the feasible region.
    pub fn minimize<F>(&self, space: &SearchSpace, mut objective: F) -> DseResult
    where
        F: FnMut(Allocation) -> f64,
    {
        assert!(self.samples > 0, "need at least one sample");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<DsePoint> = None;
        let mut history = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let c = rng.gen_range(space.compute.0..=space.compute.1);
            let s = rng.gen_range(space.sram.0..=space.sram.1);
            let allocation = space.project(c, s);
            let objective_val = objective(allocation);
            let point = DsePoint {
                allocation,
                objective: objective_val,
            };
            if best.is_none_or(|b| objective_val < b.objective) {
                best = Some(point);
                history.push(point);
            }
        }
        DseResult {
            best: best.expect("samples > 0"),
            history,
            evaluations: self.samples,
        }
    }
}

/// Exhaustive grid baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSearch {
    /// Grid points per dimension.
    pub resolution: usize,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self { resolution: 16 }
    }
}

impl GridSearch {
    /// Minimizes `objective` over a `resolution × resolution` grid.
    pub fn minimize<F>(&self, space: &SearchSpace, mut objective: F) -> DseResult
    where
        F: FnMut(Allocation) -> f64,
    {
        assert!(
            self.resolution >= 2,
            "grid needs at least 2 points per axis"
        );
        let mut best: Option<DsePoint> = None;
        let mut history = Vec::new();
        let n = self.resolution;
        let mut evals = 0;
        for i in 0..n {
            for j in 0..n {
                let c = space.compute.0
                    + (space.compute.1 - space.compute.0) * i as f64 / (n - 1) as f64;
                let s = space.sram.0 + (space.sram.1 - space.sram.0) * j as f64 / (n - 1) as f64;
                let allocation = space.project(c, s);
                let objective_val = objective(allocation);
                evals += 1;
                let point = DsePoint {
                    allocation,
                    objective: objective_val,
                };
                if best.is_none_or(|b| objective_val < b.objective) {
                    best = Some(point);
                    history.push(point);
                }
            }
        }
        DseResult {
            best: best.expect("resolution >= 2"),
            history,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bowl(a: Allocation) -> f64 {
        (a.compute.get() - 0.55).powi(2) + 2.0 * (a.sram.get() - 0.25).powi(2) + 0.1
    }

    #[test]
    fn gradient_descent_finds_the_bowl_minimum() {
        let result = GradientDescent::default().minimize(&SearchSpace::default(), bowl);
        assert!(
            (result.best.allocation.compute.get() - 0.55).abs() < 0.05,
            "compute {} off-target",
            result.best.allocation.compute
        );
        assert!((result.best.allocation.sram.get() - 0.25).abs() < 0.05);
        assert!(result.best.objective < 0.105);
    }

    #[test]
    fn objective_trait_drives_every_optimizer() {
        // The shared `Objective` interface (also consumed by the sweep in
        // `optimus-sweep`) must reach the same optimum as the closure path.
        let space = SearchSpace::default();
        let objective = |a: &Allocation| bowl(*a);
        let gd = GradientDescent::default().minimize_objective(&space, &objective);
        assert_eq!(
            gd.best.allocation,
            GradientDescent::default()
                .minimize(&space, bowl)
                .best
                .allocation
        );
        let rs = RandomSearch::default().minimize_objective(&space, &objective);
        assert_eq!(
            rs.best.allocation,
            RandomSearch::default()
                .minimize(&space, bowl)
                .best
                .allocation
        );
        let gs = GridSearch::default().minimize_objective(&space, &objective);
        assert_eq!(
            gs.best.allocation,
            GridSearch::default().minimize(&space, bowl).best.allocation
        );
    }

    #[test]
    fn history_is_monotonically_improving() {
        let result = GradientDescent::default().minimize(&SearchSpace::default(), bowl);
        assert!(result
            .history
            .windows(2)
            .all(|w| w[1].objective <= w[0].objective));
    }

    #[test]
    fn descent_beats_or_matches_random() {
        let space = SearchSpace::default();
        let gd = GradientDescent::default().minimize(&space, bowl);
        let rs = RandomSearch {
            samples: 50,
            seed: 42,
        }
        .minimize(&space, bowl);
        assert!(gd.best.objective <= rs.best.objective * 1.05);
    }

    #[test]
    fn grid_search_covers_the_space() {
        let result = GridSearch { resolution: 21 }.minimize(&SearchSpace::default(), bowl);
        assert_eq!(result.evaluations, 441);
        assert!((result.best.allocation.compute.get() - 0.55).abs() < 0.06);
    }

    #[test]
    fn boundary_minimum_is_projected() {
        // Objective decreasing in compute: optimum pinned at the bound.
        let f = |a: Allocation| 1.0 - a.compute.get();
        let result = GradientDescent::default().minimize(&SearchSpace::default(), f);
        assert!(result.best.allocation.compute.get() > 0.7);
        assert!(
            result.best.allocation.compute.get() + result.best.allocation.sram.get() <= 0.90 + 1e-9
        );
    }

    #[test]
    fn random_search_is_deterministic() {
        let space = SearchSpace::default();
        let a = RandomSearch::default().minimize(&space, bowl);
        let b = RandomSearch::default().minimize(&space, bowl);
        assert_eq!(a.best.allocation, b.best.allocation);
    }
}
