//! Design-space exploration over micro-architecture resource allocations.
//!
//! The paper's DSE framework (§3.6) "solves a constrained optimization
//! problem: the search space contains all possible choices of area, power,
//! and perimeter fractions for each component ... A gradient-descent search
//! algorithm is employed to find the optimal design point that minimizes
//! the execution time."
//!
//! This crate provides exactly that: a [`SearchSpace`] of allocation
//! fractions with a budget constraint, a projected finite-difference
//! [`GradientDescent`] optimizer, and [`RandomSearch`]/[`GridSearch`]
//! baselines for sanity-checking convergence. The objective is any closure
//! from an [`optimus_tech::Allocation`] to a predicted execution time in
//! seconds — typically an [`optimus_tech::UArchEngine::synthesize`] call
//! followed by a training or inference estimate.
//!
//! ```
//! use optimus_dse::{GradientDescent, SearchSpace};
//!
//! // A toy objective with its optimum at compute = 0.6, sram = 0.2.
//! let objective = |a: optimus_tech::Allocation| {
//!     (a.compute.get() - 0.6).powi(2) + (a.sram.get() - 0.2).powi(2)
//! };
//! let result = GradientDescent::default().minimize(&SearchSpace::default(), objective);
//! assert!((result.best.allocation.compute.get() - 0.6).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod objective;
mod optimizer;
mod space;

pub use objective::Objective;
pub use optimizer::{DsePoint, DseResult, GradientDescent, GridSearch, RandomSearch};
pub use space::SearchSpace;
