//! The shared evaluation interface of every search in the suite.
//!
//! Both the µArch allocation search in this crate and the
//! parallelization-strategy sweep in `optimus-sweep` rank candidate points
//! by a scalar figure of merit. [`Objective`] names that interface once so
//! harness code (CLI, experiments, benches) can plug the same objective —
//! "minimize latency", "minimize dollars per batch" — into either search.

/// A scalar figure of merit over candidate points of type `P`.
///
/// Lower is better everywhere in the suite (execution time, energy,
/// dollars). Closures implement it automatically:
///
/// ```
/// use optimus_dse::Objective;
///
/// let squared = |x: &f64| x * x;
/// assert_eq!(Objective::evaluate(&squared, &3.0), 9.0);
/// ```
pub trait Objective<P> {
    /// Scores a candidate point; **lower is better**.
    fn evaluate(&self, point: &P) -> f64;
}

impl<P, F: Fn(&P) -> f64> Objective<P> for F {
    fn evaluate(&self, point: &P) -> f64 {
        self(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_objectives() {
        fn best<P, O: Objective<P>>(objective: &O, points: &[P]) -> f64 {
            points
                .iter()
                .map(|p| objective.evaluate(p))
                .fold(f64::INFINITY, f64::min)
        }
        let latency = |x: &f64| *x;
        assert_eq!(best(&latency, &[3.0, 1.0, 2.0]), 1.0);
    }
}
