//! The allocation search space.

use optimus_tech::Allocation;
use optimus_units::Ratio;
use serde::{Deserialize, Serialize};

/// Bounds on the allocation fractions explored by the DSE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Inclusive bounds on the compute fraction.
    pub compute: (f64, f64),
    /// Inclusive bounds on the SRAM fraction.
    pub sram: (f64, f64),
    /// Maximum combined fraction (the rest is I/O and overhead, which a
    /// real die cannot shrink to zero).
    pub max_total: f64,
}

impl SearchSpace {
    /// Projects an arbitrary `(compute, sram)` point into the feasible
    /// region: clamp each coordinate, then rescale if the budget constraint
    /// is violated.
    #[must_use]
    pub fn project(&self, compute: f64, sram: f64) -> Allocation {
        let mut c = compute.clamp(self.compute.0, self.compute.1);
        let mut s = sram.clamp(self.sram.0, self.sram.1);
        let total = c + s;
        if total > self.max_total {
            let scale = self.max_total / total;
            c = (c * scale).max(self.compute.0);
            s = (s * scale).max(self.sram.0);
        }
        Allocation::new(Ratio::saturating(c), Ratio::saturating(s))
    }

    /// The centroid of the space (the descent starting point).
    #[must_use]
    pub fn center(&self) -> Allocation {
        self.project(
            0.5 * (self.compute.0 + self.compute.1),
            0.5 * (self.sram.0 + self.sram.1),
        )
    }
}

impl Default for SearchSpace {
    /// Compute ∈ [5%, 80%], SRAM ∈ [5%, 60%], at most 90% combined (at
    /// least 10% of the die remains I/O and overhead).
    fn default() -> Self {
        Self {
            compute: (0.05, 0.80),
            sram: (0.05, 0.60),
            max_total: 0.90,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_respects_bounds() {
        let space = SearchSpace::default();
        let a = space.project(2.0, -1.0);
        assert!(a.compute.get() <= 0.80);
        assert!(a.sram.get() >= 0.05);
    }

    #[test]
    fn projection_respects_budget() {
        let space = SearchSpace::default();
        let a = space.project(0.8, 0.6);
        assert!(a.compute.get() + a.sram.get() <= 0.90 + 1e-9);
    }

    #[test]
    fn feasible_points_pass_through() {
        let space = SearchSpace::default();
        let a = space.project(0.45, 0.20);
        assert!((a.compute.get() - 0.45).abs() < 1e-12);
        assert!((a.sram.get() - 0.20).abs() < 1e-12);
    }
}
