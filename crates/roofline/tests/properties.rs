//! Property-based tests of the tiling engine and the roofline model.

use optimus_hw::{presets, Precision};
use optimus_roofline::{blocked_traffic, choose_tile, GemmShape, RooflineModel};
use optimus_units::Bytes;
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8192, 1usize..8192, 1usize..8192)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chosen tile always fits the capacity it was sized for.
    #[test]
    fn tile_respects_capacity((m, n, k) in dims(), cap_kib in 8.0f64..65536.0) {
        let shape = GemmShape::new(m, n, k);
        let cap = Bytes::from_kib(cap_kib);
        let tile = choose_tile(shape, cap, 2.0);
        prop_assert!(
            tile.working_set() as f64 * 2.0 <= cap.bytes() * 1.05 + 8.0,
            "tile {tile} overflows {cap}"
        );
    }

    /// Blocked traffic never undercuts the compulsory minimum
    /// (read A and B once, write C once).
    #[test]
    fn traffic_at_least_compulsory((m, n, k) in dims(), cap_kib in 8.0f64..65536.0) {
        let shape = GemmShape::new(m, n, k);
        let tile = choose_tile(shape, Bytes::from_kib(cap_kib), 2.0);
        let traffic = blocked_traffic(shape, tile, 2.0);
        prop_assert!(traffic.bytes() >= shape.min_io(2.0).bytes() * 0.999);
    }

    /// More capacity never increases traffic.
    #[test]
    fn traffic_monotone_in_capacity((m, n, k) in dims()) {
        let shape = GemmShape::new(m, n, k);
        let small = blocked_traffic(shape, choose_tile(shape, Bytes::from_kib(64.0), 2.0), 2.0);
        let large = blocked_traffic(shape, choose_tile(shape, Bytes::from_mib(16.0), 2.0), 2.0);
        prop_assert!(large.bytes() <= small.bytes() * 1.001);
    }

    /// Kernel time is positive and at least the ideal compute time.
    #[test]
    fn cost_at_least_ideal_compute((m, n, k) in dims()) {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let shape = GemmShape::new(m, n, k);
        let cost = model.gemm(shape, Precision::Fp16).unwrap();
        let ideal = shape.flops().get() / 312e12;
        prop_assert!(cost.total().secs() >= ideal * 0.999);
        prop_assert!(cost.total().secs() > 0.0);
    }

    /// Doubling the reduction depth doubles FLOPs and never shrinks time.
    #[test]
    fn monotone_in_k(m in 1usize..2048, n in 1usize..2048, k in 1usize..2048) {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let t1 = model.gemm(GemmShape::new(m, n, k), Precision::Fp16).unwrap().total();
        let t2 = model.gemm(GemmShape::new(m, n, 2 * k), Precision::Fp16).unwrap().total();
        prop_assert!(t2 >= t1 * 0.999);
    }

    /// Lower precision never makes a kernel slower (less traffic, more
    /// throughput) on a device that supports both.
    #[test]
    fn lower_precision_not_slower((m, n, k) in dims()) {
        let h100 = presets::h100_sxm();
        let model = RooflineModel::new(&h100);
        let shape = GemmShape::new(m, n, k);
        let fp16 = model.gemm(shape, Precision::Fp16).unwrap().total();
        let fp8 = model.gemm(shape, Precision::Fp8).unwrap().total();
        prop_assert!(fp8 <= fp16 * 1.001, "fp8 {fp8} vs fp16 {fp16}");
    }

    /// The bound classification is consistent with the component times.
    #[test]
    fn bound_matches_argmax((m, n, k) in dims()) {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let cost = model.gemm(GemmShape::new(m, n, k), Precision::Fp16).unwrap();
        let bound = cost.bound();
        if bound.is_compute() {
            prop_assert!(cost.compute_time >= cost.memory_time());
        } else if bound.is_memory() {
            prop_assert!(cost.memory_time() >= cost.compute_time);
        }
    }

    /// Transposed problems cost the same (traffic and FLOPs symmetric).
    #[test]
    fn transpose_symmetry((m, n, k) in dims()) {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let a = model.gemm(GemmShape::new(m, n, k), Precision::Fp16).unwrap().total();
        let b = model
            .gemm(GemmShape::new(m, n, k).transposed(), Precision::Fp16)
            .unwrap()
            .total();
        prop_assert!((a.secs() - b.secs()).abs() / a.secs() < 0.35, "{a} vs {b}");
    }
}
