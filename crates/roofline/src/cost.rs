//! Kernel cost reports and bound-type classification.

use optimus_hw::MemoryLevelKind;
use optimus_units::{Bytes, FlopCount, Time};
use serde::{Deserialize, Serialize};

/// What limits a kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundType {
    /// Arithmetic throughput is the bottleneck.
    Compute,
    /// Traffic at the given memory level is the bottleneck.
    Memory(MemoryLevelKind),
    /// The kernel is so small that fixed software overhead dominates.
    Overhead,
}

impl BoundType {
    /// `true` for [`BoundType::Compute`].
    #[must_use]
    pub fn is_compute(self) -> bool {
        matches!(self, Self::Compute)
    }

    /// `true` for any [`BoundType::Memory`] level.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Self::Memory(_))
    }

    /// `true` when bound specifically by off-chip DRAM.
    #[must_use]
    pub fn is_dram(self) -> bool {
        matches!(self, Self::Memory(MemoryLevelKind::Dram))
    }
}

impl core::fmt::Display for BoundType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Compute => f.write_str("compute"),
            Self::Memory(level) => write!(f, "memory ({level})"),
            Self::Overhead => f.write_str("overhead"),
        }
    }
}

/// The cost breakdown of one kernel as predicted by the roofline model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Optional kernel label (e.g. `"QKV projection"`).
    pub name: String,
    /// Total floating-point work.
    pub flops: FlopCount,
    /// Pure arithmetic time at the derated peak.
    pub compute_time: Time,
    /// Per-level `(level, traffic, transfer time)`, ordered inner → outer.
    pub level_times: Vec<(MemoryLevelKind, Bytes, Time)>,
    /// Fixed software overhead added on top.
    pub overhead: Time,
}

impl KernelCost {
    /// A zero-cost kernel (useful as an additive identity).
    #[must_use]
    pub fn free(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            flops: FlopCount::ZERO,
            compute_time: Time::ZERO,
            level_times: Vec::new(),
            overhead: Time::ZERO,
        }
    }

    /// The limiting (maximum) of compute and per-level times, before
    /// overhead.
    #[must_use]
    pub fn roofline_time(&self) -> Time {
        self.level_times
            .iter()
            .map(|&(_, _, t)| t)
            .fold(self.compute_time, Time::max)
    }

    /// Total predicted execution time: roofline maximum plus overhead.
    #[must_use]
    pub fn total(&self) -> Time {
        self.roofline_time() + self.overhead
    }

    /// What limits this kernel.
    ///
    /// Classified as [`BoundType::Overhead`] only when the fixed overhead
    /// exceeds the roofline time, else by whichever of compute/levels
    /// attains the maximum.
    #[must_use]
    pub fn bound(&self) -> BoundType {
        let roof = self.roofline_time();
        if self.overhead > roof {
            return BoundType::Overhead;
        }
        let mut bound = BoundType::Compute;
        let mut best = self.compute_time;
        for &(kind, _, t) in &self.level_times {
            if t > best {
                best = t;
                bound = BoundType::Memory(kind);
            }
        }
        bound
    }

    /// Traffic at the given level, if modeled.
    #[must_use]
    pub fn traffic(&self, level: MemoryLevelKind) -> Option<Bytes> {
        self.level_times
            .iter()
            .find(|(k, _, _)| *k == level)
            .map(|&(_, b, _)| b)
    }

    /// DRAM traffic (zero if DRAM is not among the modeled levels).
    #[must_use]
    pub fn dram_traffic(&self) -> Bytes {
        self.traffic(MemoryLevelKind::Dram).unwrap_or(Bytes::ZERO)
    }

    /// The transfer time at the slowest memory level (the "memory time" of
    /// the paper's bound-type breakdowns).
    #[must_use]
    pub fn memory_time(&self) -> Time {
        self.level_times
            .iter()
            .map(|&(_, _, t)| t)
            .fold(Time::ZERO, Time::max)
    }

    /// Convenience view used by the bound-type breakdown figures: the pair
    /// `(compute_time, memory_time)` of the kernel.
    #[must_use]
    pub fn split(&self) -> (Time, Time) {
        (self.compute_time, self.memory_time())
    }
}

/// The `bound` field shown in reports; kept as a method-produced value, but
/// re-exported as a serializable snapshot for tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSummary {
    /// Kernel label.
    pub name: String,
    /// Predicted total time.
    pub time: Time,
    /// Bound classification.
    pub bound: BoundType,
}

impl From<&KernelCost> for KernelSummary {
    fn from(cost: &KernelCost) -> Self {
        Self {
            name: cost.name.clone(),
            time: cost.total(),
            bound: cost.bound(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(compute_ms: f64, dram_ms: f64, overhead_ms: f64) -> KernelCost {
        KernelCost {
            name: "test".into(),
            flops: FlopCount::from_giga(1.0),
            compute_time: Time::from_millis(compute_ms),
            level_times: vec![(
                MemoryLevelKind::Dram,
                Bytes::from_mib(1.0),
                Time::from_millis(dram_ms),
            )],
            overhead: Time::from_millis(overhead_ms),
        }
    }

    #[test]
    fn compute_bound_when_compute_dominates() {
        let c = cost(2.0, 1.0, 0.0);
        assert_eq!(c.bound(), BoundType::Compute);
        assert!((c.total().millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_when_dram_dominates() {
        let c = cost(1.0, 2.0, 0.0);
        assert!(c.bound().is_dram());
        assert!((c.total().millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_bound_for_tiny_kernels() {
        let c = cost(0.001, 0.002, 1.0);
        assert_eq!(c.bound(), BoundType::Overhead);
    }

    #[test]
    fn total_adds_overhead() {
        let c = cost(2.0, 1.0, 0.5);
        assert!((c.total().millis() - 2.5).abs() < 1e-9);
    }
}
