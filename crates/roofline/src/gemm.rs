//! The hierarchical roofline engine.

use crate::{blocked_traffic, choose_tile, BatchedGemm, GemmShape, KernelCost};
use optimus_hw::{Accelerator, HwError, MemoryLevelKind, Precision};
use optimus_units::{Bytes, Ratio, Time};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the roofline engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineConfig {
    /// Capacity visible to one blocking unit at the shared/L1 level.
    ///
    /// [`optimus_hw::MemoryLevel`] records *aggregate* capacity, but tiles
    /// are chosen per SM. The effective per-SM blocking store is shared
    /// memory **plus the register file** (modern GEMMs accumulate the
    /// output tile in registers while A/B stream through shared memory):
    /// ~160 KiB shared + ~256 KiB registers ≈ 416 KiB. Modeling only the
    /// shared memory makes large GEMMs spuriously L2-bound — the
    /// mis-prediction the paper calls out in DeepFlow (§5.3).
    pub sharedl1_tile_capacity: Bytes,
    /// Fraction of the (chip-wide) L2 usable for blocking; the rest holds
    /// other streams and metadata.
    pub l2_blocking_fraction: Ratio,
}

impl Default for RooflineConfig {
    fn default() -> Self {
        Self {
            sharedl1_tile_capacity: Bytes::from_kib(416.0),
            l2_blocking_fraction: Ratio::new(0.5),
        }
    }
}

/// The hierarchical roofline model bound to one accelerator.
///
/// See the crate-level docs for the methodology; construct with
/// [`RooflineModel::new`] and cost kernels with [`RooflineModel::gemm`],
/// [`RooflineModel::batched_gemm`], or
/// [`RooflineModel::eltwise`](crate::EltwiseOp).
#[derive(Debug, Clone)]
pub struct RooflineModel<'a> {
    device: &'a Accelerator,
    config: RooflineConfig,
}

impl<'a> RooflineModel<'a> {
    /// Creates a model for `device` with default tiling configuration.
    #[must_use]
    pub fn new(device: &'a Accelerator) -> Self {
        Self {
            device,
            config: RooflineConfig::default(),
        }
    }

    /// Creates a model with explicit tiling configuration.
    #[must_use]
    pub fn with_config(device: &'a Accelerator, config: RooflineConfig) -> Self {
        Self { device, config }
    }

    /// The device this model predicts for.
    #[must_use]
    pub fn device(&self) -> &Accelerator {
        self.device
    }

    /// Costs a single GEMM. See [`RooflineModel::batched_gemm`].
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedPrecision`] if the device has no peak
    /// throughput entry for `precision`.
    pub fn gemm(&self, shape: GemmShape, precision: Precision) -> Result<KernelCost, HwError> {
        self.batched_gemm(BatchedGemm::single(shape), precision)
    }

    /// Costs a GEMV `y[m] = A[m×k]·x[k]`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedPrecision`] as for
    /// [`RooflineModel::gemm`].
    pub fn gemv(&self, m: usize, k: usize, precision: Precision) -> Result<KernelCost, HwError> {
        self.gemm(GemmShape::gemv(m, k), precision)
    }

    /// Costs a batch of independent, identically shaped GEMMs launched as
    /// one kernel (per-head attention products, for example).
    ///
    /// Compute time: `batch · 2mnk` over the derated peak. The derating is
    /// the product of the calibrated peak fraction and the tile-quantization
    /// efficiency of the device's matmul macro-tile.
    ///
    /// Memory time at each level: the blocked traffic for tiles sized to
    /// that level, over the level bandwidth derated by the calibrated
    /// utilization (size-dependent for DRAM — the GEMV model of §4.1).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedPrecision`] if the device has no peak
    /// throughput entry for `precision`.
    pub fn batched_gemm(
        &self,
        gemm: BatchedGemm,
        precision: Precision,
    ) -> Result<KernelCost, HwError> {
        let peak = self.device.peak(precision)?;
        let calib = &self.device.calibration;
        let bytes_per_elem = precision.bytes();
        let shape = gemm.shape;
        let batch = gemm.batch as f64;

        // --- compute time ---------------------------------------------
        let quant = self.tile_quantization(shape);
        let eff = calib.gemm_peak_fraction.get() * quant.get();
        let flops = gemm.flops();
        let compute_time = if eff > 0.0 {
            flops / (peak * eff)
        } else {
            Time::ZERO
        };

        // --- memory time per hierarchy level ---------------------------
        let mut level_times = Vec::with_capacity(self.device.on_chip.len() + 1);
        for level in self.device.hierarchy() {
            let blocking_capacity = self.blocking_capacity(level.kind, level.capacity);
            // Traffic crossing *into* this level is governed by tiles that
            // fit one level further in; traffic crossing *out of* DRAM is
            // governed by L2-resident tiles, etc. We therefore size tiles
            // by the capacity of the next-inner level, which for the
            // innermost on-chip level is its own per-unit capacity.
            let tile = choose_tile(shape, blocking_capacity, bytes_per_elem);
            let traffic = blocked_traffic(shape, tile, bytes_per_elem) * batch;
            let util = match level.kind {
                MemoryLevelKind::Dram => calib.dram_utilization.factor(traffic),
                _ => calib.onchip_utilization,
            };
            let bw = level.bandwidth * util.get();
            let time = if bw.get() > 0.0 {
                traffic / bw
            } else {
                Time::ZERO
            };
            level_times.push((level.kind, traffic, time));
        }

        Ok(KernelCost {
            name: format!("gemm {gemm}"),
            flops,
            compute_time,
            level_times,
            overhead: calib.kernel_overhead,
        })
    }

    /// Costs a kernel described directly by its arithmetic work and its
    /// per-level traffic — the escape hatch for fused kernels whose data
    /// movement does not follow the blocked-GEMM pattern (FlashAttention
    /// being the canonical example: §1.1, "focusing on the memory access to
    /// and from DRAM at the cost of FLOPs").
    ///
    /// Levels absent from `traffic` contribute no memory time. The compute
    /// time uses the calibrated GEMM peak fraction; DRAM traffic is derated
    /// by the size-dependent utilization curve like any other kernel.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::UnsupportedPrecision`] if the device has no peak
    /// throughput entry for `precision`.
    pub fn custom_kernel(
        &self,
        name: impl Into<String>,
        flops: optimus_units::FlopCount,
        traffic: &[(MemoryLevelKind, Bytes)],
        precision: Precision,
    ) -> Result<KernelCost, HwError> {
        let peak = self.device.peak(precision)?;
        let calib = &self.device.calibration;
        let eff = calib.gemm_peak_fraction.get();
        let compute_time = if eff > 0.0 {
            flops / (peak * eff)
        } else {
            Time::ZERO
        };
        let mut level_times = Vec::with_capacity(traffic.len());
        for &(kind, volume) in traffic {
            let Some(level) = self.device.level(kind) else {
                continue;
            };
            let util = match kind {
                MemoryLevelKind::Dram => calib.dram_utilization.factor(volume),
                _ => calib.onchip_utilization,
            };
            let bw = level.bandwidth * util.get();
            let time = if bw.get() > 0.0 {
                volume / bw
            } else {
                Time::ZERO
            };
            level_times.push((kind, volume, time));
        }
        Ok(KernelCost {
            name: name.into(),
            flops,
            compute_time,
            level_times,
            overhead: calib.kernel_overhead,
        })
    }

    /// Tile-quantization efficiency: fraction of the matmul macro-tiles'
    /// work that is useful for this shape. Skinny GEMMs (decode) waste most
    /// of each tile, which is one reason they run far below peak.
    fn tile_quantization(&self, shape: GemmShape) -> Ratio {
        let c = &self.device.compute;
        let round_up = |dim: usize, tile: usize| -> f64 {
            let t = tile as f64;
            ((dim as f64) / t).ceil() * t
        };
        let useful = shape.m as f64 * shape.n as f64 * shape.k as f64;
        let padded =
            round_up(shape.m, c.tile_m) * round_up(shape.n, c.tile_n) * round_up(shape.k, c.tile_k);
        Ratio::saturating(useful / padded)
    }

    /// The capacity used to size blocking tiles whose traffic crosses the
    /// boundary of `kind`.
    fn blocking_capacity(&self, kind: MemoryLevelKind, own_capacity: Bytes) -> Bytes {
        match kind {
            // DRAM traffic is blocked by what fits in L2.
            MemoryLevelKind::Dram => self
                .device
                .level(MemoryLevelKind::L2)
                .map(|l| l.capacity * self.config.l2_blocking_fraction.get())
                .unwrap_or(own_capacity),
            // L2 traffic is blocked by what one SM keeps in shared memory.
            MemoryLevelKind::L2 => self.config.sharedl1_tile_capacity,
            // Shared-memory traffic is blocked by the register macro-tile.
            _ => {
                let c = &self.device.compute;
                let elems =
                    (c.tile_m * c.tile_k + c.tile_k * c.tile_n + c.tile_m * c.tile_n) as f64;
                // Express the macro-tile working set as a capacity so the
                // same tile chooser applies.
                Bytes::new(elems * 4.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::{presets, DeviceCalibration};

    #[test]
    fn fat_gemm_is_compute_bound_on_a100() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let cost = model
            .gemm(GemmShape::new(8192, 8192, 8192), Precision::Fp16)
            .unwrap();
        assert!(cost.bound().is_compute(), "bound = {}", cost.bound());
        // 2·8192³ = 1.1 PFLOP at ~243 TFLOP/s effective ≈ 4.5 ms.
        let ms = cost.total().millis();
        assert!((3.0..7.0).contains(&ms), "unexpected time {ms:.2} ms");
    }

    #[test]
    fn decode_gemv_is_dram_bound_on_a100() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        // One decode step of an MLP layer: weights 4096x16384 read per token.
        let cost = model
            .gemm(GemmShape::new(1, 16384, 4096), Precision::Fp16)
            .unwrap();
        assert!(cost.bound().is_dram(), "bound = {}", cost.bound());
    }

    #[test]
    fn ideal_device_matches_hand_roofline() {
        let dev = presets::a100_sxm_80gb().with_calibration(DeviceCalibration::ideal());
        let model = RooflineModel::new(&dev);
        // Small GEMM fitting in L2: DRAM traffic = min IO; compute at peak.
        let shape = GemmShape::new(1024, 1024, 1024);
        let cost = model.gemm(shape, Precision::Fp16).unwrap();
        let flop_time = shape.flops().get() / 312e12;
        assert!(
            (cost.compute_time.secs() - flop_time).abs() / flop_time < 1e-6,
            "ideal compute time"
        );
        let dram = cost.dram_traffic();
        assert!((dram.bytes() - shape.min_io(2.0).bytes()).abs() < 1.0);
    }

    #[test]
    fn quantization_penalizes_ragged_shapes() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let aligned = model
            .gemm(GemmShape::new(4096, 4096, 4096), Precision::Fp16)
            .unwrap();
        let ragged = model
            .gemm(GemmShape::new(4096 + 1, 4096 + 1, 4096), Precision::Fp16)
            .unwrap();
        // Nearly identical work, but the ragged shape pads a whole tile row.
        assert!(ragged.compute_time > aligned.compute_time);
    }

    #[test]
    fn batch_scales_flops_and_traffic() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let shape = GemmShape::new(200, 200, 128);
        let one = model.gemm(shape, Precision::Fp16).unwrap();
        let forty = model
            .batched_gemm(BatchedGemm::new(40, shape), Precision::Fp16)
            .unwrap();
        assert!((forty.flops.get() / one.flops.get() - 40.0).abs() < 1e-9);
        assert!(forty.dram_traffic().bytes() >= 39.0 * one.dram_traffic().bytes());
        // One kernel launch either way.
        assert_eq!(forty.overhead, one.overhead);
    }

    #[test]
    fn unsupported_precision_propagates() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        assert!(model
            .gemm(GemmShape::new(10, 10, 10), Precision::Fp4)
            .is_err());
    }

    #[test]
    fn h100_fat_gemms_shift_toward_memory_bound() {
        // Table 4's headline: GEMMs that are compute-bound on A100 become
        // DRAM-bound on H100 because compute grew 3.2x but DRAM only 1.7x.
        let shape = GemmShape::new(200, 5120 * 3, 5120); // QKV, Llama2-13B prefill
        let a100 = presets::a100_sxm_80gb();
        let h100 = presets::h100_sxm();
        let on_a100 = RooflineModel::new(&a100)
            .gemm(shape, Precision::Fp16)
            .unwrap();
        let on_h100 = RooflineModel::new(&h100)
            .gemm(shape, Precision::Fp16)
            .unwrap();
        assert!(on_a100.bound().is_compute(), "A100: {}", on_a100.bound());
        assert!(on_h100.bound().is_memory(), "H100: {}", on_h100.bound());
    }
}
