//! Tile selection and blocked-GEMM traffic accounting.

use crate::GemmShape;
use optimus_units::Bytes;
use serde::{Deserialize, Serialize};

/// A blocking tile `(tm, tn, tk)` for a GEMM, chosen so the working set
/// `tm·tn + (tm + tn)·tk` fits in the capacity of a memory level.
///
/// The schedule is *output-stationary*: a `tm×tn` block of `C` stays
/// resident in the level while `tk`-deep slices of `A` and `B` stream
/// through, which is how real GPU GEMM kernels are organized (the `C` tile
/// accumulates in registers/L2 across the whole reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// Tile rows.
    pub tm: usize,
    /// Tile columns.
    pub tn: usize,
    /// Streaming reduction-slice depth.
    pub tk: usize,
}

impl Tile {
    /// Working-set size of the tile in elements (resident `C` block plus
    /// one streaming `A` and `B` slice).
    #[must_use]
    pub fn working_set(&self) -> usize {
        self.tm * self.tn + (self.tm + self.tn) * self.tk
    }
}

impl core::fmt::Display for Tile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {}, {})", self.tm, self.tn, self.tk)
    }
}

/// Chooses an output-stationary blocking tile for `shape` whose working set
/// fits in `capacity` at `bytes_per_elem` per element.
///
/// Half the capacity is reserved for the resident `C` block (`tm = tn =
/// sqrt(cap/2)`, clamped by the problem dimensions); the remainder holds
/// the streaming `A`/`B` slices, which sets `tk`. Skinny problems
/// (`m` or `n` small) automatically free capacity for deeper slices. This
/// mirrors DeepFlow's capacity-driven tiling without its exhaustive search;
/// the traffic volumes agree at LLM-layer problem sizes (see tests).
#[must_use]
pub fn choose_tile(shape: GemmShape, capacity: Bytes, bytes_per_elem: f64) -> Tile {
    assert!(bytes_per_elem > 0.0, "element width must be positive");
    let cap_elems = (capacity.bytes() / bytes_per_elem).max(4.0);
    let t = (cap_elems / 2.0).sqrt().max(1.0);

    let tm = shape.m.min(t as usize).max(1);
    let tn = shape.n.min(t as usize).max(1);
    // Remaining capacity feeds the streaming slices:
    // (tm + tn) · tk ≤ cap − tm·tn.
    let tk_budget = ((cap_elems - (tm * tn) as f64) / (tm + tn) as f64).max(1.0);
    let tk = shape.k.min(tk_budget as usize).max(1);

    Tile { tm, tn, tk }
}

/// Traffic in bytes that a blocked GEMM moves across the boundary of the
/// level that holds `tile`, under the output-stationary schedule:
///
/// * every column-block pass reloads `A`: `m·k · ⌈n/tn⌉` elements,
/// * every row-block pass reloads `B`: `k·n · ⌈m/tm⌉` elements,
/// * each `C` element crosses the boundary once on the way out: `m·n`.
#[must_use]
pub fn blocked_traffic(shape: GemmShape, tile: Tile, bytes_per_elem: f64) -> Bytes {
    let m = shape.m as f64;
    let n = shape.n as f64;
    let k = shape.k as f64;
    let n_passes = (n / tile.tn as f64).ceil();
    let m_passes = (m / tile.tm as f64).ceil();

    let a = m * k * n_passes;
    let b = k * n * m_passes;
    let c = m * n;
    Bytes::new((a + b + c) * bytes_per_elem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_fits_capacity() {
        let shape = GemmShape::new(8192, 8192, 8192);
        let cap = Bytes::from_mib(20.0);
        let tile = choose_tile(shape, cap, 2.0);
        assert!(
            (tile.working_set() as f64) * 2.0 <= cap.bytes() * 1.01,
            "working set {} exceeds capacity",
            tile.working_set()
        );
    }

    #[test]
    fn tile_clamped_by_problem() {
        let shape = GemmShape::new(4, 1, 1 << 20);
        let tile = choose_tile(shape, Bytes::from_mib(1.0), 2.0);
        assert_eq!(tile.tm, 4);
        assert_eq!(tile.tn, 1);
        assert!(
            tile.tk > 10_000,
            "freed capacity goes to tk, got {}",
            tile.tk
        );
    }

    #[test]
    fn single_pass_traffic_is_minimal() {
        // Problem fits entirely in the level: traffic = read A + read B + write C.
        let shape = GemmShape::new(64, 64, 64);
        let tile = choose_tile(shape, Bytes::from_mib(10.0), 2.0);
        let traffic = blocked_traffic(shape, tile, 2.0);
        assert!((traffic.bytes() - shape.min_io(2.0).bytes()).abs() < 1.0);
    }

    #[test]
    fn traffic_grows_when_capacity_shrinks() {
        let shape = GemmShape::new(4096, 4096, 4096);
        let big = blocked_traffic(shape, choose_tile(shape, Bytes::from_mib(40.0), 2.0), 2.0);
        let small = blocked_traffic(shape, choose_tile(shape, Bytes::from_kib(256.0), 2.0), 2.0);
        assert!(small.bytes() > 2.0 * big.bytes());
    }

    #[test]
    fn optimal_traffic_scales_like_io_lower_bound() {
        // For an n³ GEMM blocked with cache of M elements, traffic should
        // scale like n³/sqrt(M) (the Hong–Kung lower-bound shape).
        let shape = GemmShape::new(8192, 8192, 8192);
        let cap1 = Bytes::from_mib(8.0);
        let cap4 = Bytes::from_mib(32.0);
        let t1 = blocked_traffic(shape, choose_tile(shape, cap1, 2.0), 2.0);
        let t4 = blocked_traffic(shape, choose_tile(shape, cap4, 2.0), 2.0);
        let ratio = t1.bytes() / t4.bytes();
        assert!(
            (ratio - 2.0).abs() < 0.35,
            "4x capacity should roughly halve traffic, ratio = {ratio:.2}"
        );
    }

    #[test]
    fn gemv_traffic_is_matrix_read() {
        // y = A·x with A of 4096×4096: traffic ≈ the matrix itself.
        let shape = GemmShape::gemv(4096, 4096);
        let tile = choose_tile(shape, Bytes::from_mib(20.0), 2.0);
        let traffic = blocked_traffic(shape, tile, 2.0);
        let matrix = (4096.0 * 4096.0) * 2.0;
        assert!(traffic.bytes() < matrix * 1.01);
        assert!(traffic.bytes() > matrix * 0.99);
    }

    #[test]
    fn c_crosses_boundary_once() {
        // Even with many k-slices, C traffic stays m·n (output-stationary).
        let shape = GemmShape::new(256, 256, 1 << 16);
        let tile = Tile {
            tm: 256,
            tn: 256,
            tk: 64,
        };
        let traffic = blocked_traffic(shape, tile, 1.0);
        let expected = (256.0 * 65536.0) + (65536.0 * 256.0) + (256.0 * 256.0);
        assert!((traffic.bytes() - expected).abs() < 1.0);
    }
}
