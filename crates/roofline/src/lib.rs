//! Hierarchical roofline model with memory-subsystem-aware tiling.
//!
//! This crate is the per-device performance engine of the suite, following
//! the DeepFlow approach the paper builds on (§3.1): a GEMM is costed by
//!
//! 1. its **compute time** — FLOPs over peak throughput, derated by a
//!    calibrated peak fraction and the *tile-quantization* efficiency of the
//!    device's matmul tile;
//! 2. the **traffic time at every memory level** — the blocked-GEMM data
//!    volume that must cross each level boundary given tiles sized to the
//!    level's capacity, over the level's (utilization-derated) bandwidth.
//!
//! The kernel's time is the maximum of these, and the level that attains the
//! maximum classifies the kernel as *compute-bound* or *memory-bound at
//! level X* — the classification behind the paper's Table 4, Fig. 7, and
//! Fig. 8. GEMV kernels (the auto-regressive decode regime) fall out of the
//! same model: their DRAM traffic is small, so the size-dependent DRAM
//! utilization factor (§4.1) derates the achievable bandwidth exactly as the
//! paper's clustered factors do.
//!
//! ```
//! use optimus_hw::{presets, Precision};
//! use optimus_roofline::{GemmShape, RooflineModel};
//!
//! let a100 = presets::a100_sxm_80gb();
//! let model = RooflineModel::new(&a100);
//! // A fat training GEMM is compute-bound on A100...
//! let fat = model.gemm(GemmShape::new(4096, 4096, 4096), Precision::Fp16).unwrap();
//! assert!(fat.bound().is_compute());
//! // ...while a skinny decode GEMV is DRAM-bound.
//! let skinny = model.gemm(GemmShape::new(1, 4096, 4096), Precision::Fp16).unwrap();
//! assert!(skinny.bound().is_memory());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod eltwise;
mod gemm;
mod shape;
mod tiling;

pub use cost::{BoundType, KernelCost, KernelSummary};
pub use eltwise::{EltwiseKind, EltwiseOp};
pub use gemm::{RooflineConfig, RooflineModel};
pub use shape::{BatchedGemm, GemmShape};
pub use tiling::{blocked_traffic, choose_tile, Tile};
