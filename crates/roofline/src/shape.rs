//! GEMM problem shapes.

use optimus_units::{Bytes, FlopCount};
use serde::{Deserialize, Serialize};

/// The shape of a (possibly degenerate) matrix multiplication
/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// A GEMV is simply a shape with `n == 1` (or `m == 1`); the paper's
/// "skinny GEMMs" are shapes where one dimension is much smaller than the
/// others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// The contraction (reduction) dimension.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dimensions must be positive");
        Self { m, n, k }
    }

    /// A GEMV `y[m] = A[m×k] · x[k]`.
    #[must_use]
    pub fn gemv(m: usize, k: usize) -> Self {
        Self::new(m, 1, k)
    }

    /// Floating-point operations (multiply + add counted separately).
    #[must_use]
    pub fn flops(&self) -> FlopCount {
        FlopCount::new(2.0 * self.m as f64 * self.n as f64 * self.k as f64)
    }

    /// Minimum possible traffic: read `A` and `B` once, write `C` once.
    #[must_use]
    pub fn min_io(&self, bytes_per_elem: f64) -> Bytes {
        let elems = (self.m * self.k) as f64 + (self.k * self.n) as f64 + (self.m * self.n) as f64;
        Bytes::new(elems * bytes_per_elem)
    }

    /// Arithmetic intensity in FLOP/byte at the minimum-traffic limit.
    #[must_use]
    pub fn arithmetic_intensity(&self, bytes_per_elem: f64) -> f64 {
        self.flops().get() / self.min_io(bytes_per_elem).bytes()
    }

    /// `true` if one of the output dimensions is 1 (matrix–vector product).
    #[must_use]
    pub fn is_gemv(&self) -> bool {
        self.m == 1 || self.n == 1
    }

    /// The transposed problem (swaps `m` and `n`); traffic and FLOPs are
    /// symmetric under this.
    #[must_use]
    pub fn transposed(&self) -> Self {
        Self {
            m: self.n,
            n: self.m,
            k: self.k,
        }
    }
}

impl core::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// A batch of independent, identically shaped GEMMs, e.g. the per-head
/// attention products `Q·Kᵀ` executed for every `(batch, head)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchedGemm {
    /// Number of independent GEMMs.
    pub batch: usize,
    /// The shape of each one.
    pub shape: GemmShape,
}

impl BatchedGemm {
    /// Creates a batched GEMM.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn new(batch: usize, shape: GemmShape) -> Self {
        assert!(batch > 0, "batch must be positive");
        Self { batch, shape }
    }

    /// A single GEMM.
    #[must_use]
    pub fn single(shape: GemmShape) -> Self {
        Self::new(1, shape)
    }

    /// Total FLOPs across the batch.
    #[must_use]
    pub fn flops(&self) -> FlopCount {
        self.shape.flops() * self.batch as f64
    }
}

impl core::fmt::Display for BatchedGemm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.batch == 1 {
            write!(f, "{}", self.shape)
        } else {
            write!(f, "{}x[{}]", self.batch, self.shape)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_counts_fma_as_two() {
        let s = GemmShape::new(200, 15360, 5120);
        assert!((s.flops().get() - 2.0 * 200.0 * 15360.0 * 5120.0).abs() < 1.0);
    }

    #[test]
    fn gemv_detection() {
        assert!(GemmShape::gemv(4096, 4096).is_gemv());
        assert!(!GemmShape::new(64, 64, 64).is_gemv());
    }

    #[test]
    fn arithmetic_intensity_of_square_gemm_grows_with_size() {
        let small = GemmShape::new(64, 64, 64).arithmetic_intensity(2.0);
        let big = GemmShape::new(4096, 4096, 4096).arithmetic_intensity(2.0);
        assert!(big > small);
        // Square n×n×n GEMM at p bytes: 2n³ / (3n²p) = n/(1.5 p).
        assert!((big - 4096.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn transpose_preserves_flops() {
        let s = GemmShape::new(17, 1, 300);
        assert_eq!(s.flops(), s.transposed().flops());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = GemmShape::new(0, 1, 1);
    }
}
