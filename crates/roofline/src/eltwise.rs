//! Cost model for normalization and element-wise kernels.
//!
//! The paper's §1.2 taxonomy splits transformer kernels into tensor
//! contractions, normalizations (softmax, layer-norm), and element-wise
//! operations (non-linearities, biases, dropout). The latter two groups are
//! memory-bound streaming kernels: their time is their DRAM traffic over the
//! (derated) DRAM bandwidth. Kernel fusion reduces that traffic by keeping
//! intermediate values on chip, which is modeled by fusing ops into one
//! [`EltwiseOp`] with a single read and write of the stream.

use crate::{KernelCost, RooflineModel};
use optimus_hw::MemoryLevelKind;
use optimus_units::{Bytes, FlopCount, Time};
use serde::{Deserialize, Serialize};

/// The kind of a streaming (non-GEMM) kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EltwiseKind {
    /// Row-wise softmax (attention probabilities).
    Softmax,
    /// LayerNorm (GPT-style).
    LayerNorm,
    /// RMSNorm (Llama-style).
    RmsNorm,
    /// Dropout (reads stream, writes stream + 1-byte mask).
    Dropout,
    /// GELU non-linearity.
    Gelu,
    /// SiLU non-linearity (with gating multiply, Llama MLP).
    Silu,
    /// Residual addition.
    Add,
    /// Rotary position embedding application.
    Rope,
    /// Generic 1-read/1-write element-wise op.
    Map,
}

impl EltwiseKind {
    /// Average number of stream traversals (reads + writes) per element,
    /// in units of the element width.
    ///
    /// Softmax needs a max/sum pass and a scale pass (2 reads + 1 write);
    /// norms similarly; dropout writes an extra 1-byte mask, accounted as a
    /// fractional traversal by the caller via [`EltwiseOp::extra_bytes`].
    #[must_use]
    pub fn stream_passes(self) -> f64 {
        match self {
            Self::Softmax | Self::LayerNorm | Self::RmsNorm => 3.0,
            Self::Dropout => 2.0,
            Self::Gelu | Self::Map | Self::Rope => 2.0,
            Self::Silu => 3.0, // gate stream + up stream read, one write
            Self::Add => 3.0,  // two reads, one write
        }
    }

    /// Rough arithmetic cost per element (FLOPs); only matters for
    /// completeness of FLOP accounting, never the binding term.
    #[must_use]
    pub fn flops_per_element(self) -> f64 {
        match self {
            Self::Softmax => 5.0,
            Self::LayerNorm => 8.0,
            Self::RmsNorm => 6.0,
            Self::Dropout => 2.0,
            Self::Gelu => 10.0,
            Self::Silu => 6.0,
            Self::Add => 1.0,
            Self::Rope => 6.0,
            Self::Map => 1.0,
        }
    }
}

impl core::fmt::Display for EltwiseKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Softmax => "softmax",
            Self::LayerNorm => "layernorm",
            Self::RmsNorm => "rmsnorm",
            Self::Dropout => "dropout",
            Self::Gelu => "gelu",
            Self::Silu => "silu",
            Self::Add => "add",
            Self::Rope => "rope",
            Self::Map => "map",
        };
        f.write_str(s)
    }
}

/// A streaming kernel over `elements` values of `bytes_per_elem` width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EltwiseOp {
    /// Kernel kind.
    pub kind: EltwiseKind,
    /// Number of elements in the stream.
    pub elements: f64,
    /// Element width in bytes.
    pub bytes_per_elem: f64,
    /// Additional traffic not proportional to the element width (e.g. the
    /// 1-byte dropout mask written per element).
    pub extra_bytes: f64,
}

impl EltwiseOp {
    /// Creates a streaming kernel.
    ///
    /// # Panics
    ///
    /// Panics if `elements` or `bytes_per_elem` is not positive.
    #[must_use]
    pub fn new(kind: EltwiseKind, elements: f64, bytes_per_elem: f64) -> Self {
        assert!(elements > 0.0, "element count must be positive");
        assert!(bytes_per_elem > 0.0, "element width must be positive");
        let extra_bytes = match kind {
            // Dropout stores a 1-byte mask per element.
            EltwiseKind::Dropout => elements,
            _ => 0.0,
        };
        Self {
            kind,
            elements,
            bytes_per_elem,
            extra_bytes,
        }
    }

    /// Total DRAM traffic of the kernel.
    #[must_use]
    pub fn traffic(&self) -> Bytes {
        Bytes::new(
            self.elements * self.bytes_per_elem * self.kind.stream_passes() + self.extra_bytes,
        )
    }

    /// Arithmetic work (never binding, recorded for completeness).
    #[must_use]
    pub fn flops(&self) -> FlopCount {
        FlopCount::new(self.elements * self.kind.flops_per_element())
    }
}

impl RooflineModel<'_> {
    /// Costs a streaming kernel: DRAM traffic over derated DRAM bandwidth,
    /// plus the calibrated kernel overhead. Always memory- (or overhead-)
    /// bound by construction.
    #[must_use]
    pub fn eltwise(&self, op: EltwiseOp) -> KernelCost {
        let calib = &self.device().calibration;
        let traffic = op.traffic();
        let util = calib.dram_utilization.factor(traffic);
        let bw = self.device().dram.bandwidth * util.get();
        let time = if bw.get() > 0.0 {
            traffic / bw
        } else {
            Time::ZERO
        };
        KernelCost {
            name: format!("{} x{:.0}", op.kind, op.elements),
            flops: op.flops(),
            compute_time: Time::ZERO,
            level_times: vec![(MemoryLevelKind::Dram, traffic, time)],
            overhead: calib.kernel_overhead,
        }
    }

    /// Costs a chain of element-wise kernels fused into one pass: the
    /// stream is read once and written once regardless of the chain length
    /// (the kernel-fusion optimization of §1.2).
    #[must_use]
    pub fn fused_eltwise(&self, ops: &[EltwiseOp]) -> KernelCost {
        let Some(first) = ops.first() else {
            return KernelCost::free("fused (empty)");
        };
        let stream = Bytes::new(first.elements * first.bytes_per_elem * 2.0);
        let extra = Bytes::new(ops.iter().map(|o| o.extra_bytes).sum::<f64>());
        let traffic = stream + extra;
        let calib = &self.device().calibration;
        let util = calib.dram_utilization.factor(traffic);
        let bw = self.device().dram.bandwidth * util.get();
        let time = if bw.get() > 0.0 {
            traffic / bw
        } else {
            Time::ZERO
        };
        KernelCost {
            name: format!("fused x{}", ops.len()),
            flops: FlopCount::new(ops.iter().map(|o| o.flops().get()).sum()),
            compute_time: Time::ZERO,
            level_times: vec![(MemoryLevelKind::Dram, traffic, time)],
            overhead: calib.kernel_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;

    #[test]
    fn softmax_is_memory_bound() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        // Attention softmax over (heads · s · s) elements.
        let op = EltwiseOp::new(EltwiseKind::Softmax, 40.0 * 2048.0 * 2048.0, 2.0);
        let cost = model.eltwise(op);
        assert!(cost.bound().is_memory());
        // 3 passes over 320 MiB at ~1.6 TB/s → ~0.6 ms.
        let ms = cost.total().millis();
        assert!((0.3..1.5).contains(&ms), "time {ms:.3} ms");
    }

    #[test]
    fn dropout_mask_adds_traffic() {
        let plain = EltwiseOp::new(EltwiseKind::Map, 1e6, 2.0);
        let dropout = EltwiseOp::new(EltwiseKind::Dropout, 1e6, 2.0);
        assert!(
            (dropout.traffic().bytes() - plain.traffic().bytes() - 1e6).abs() < 1.0,
            "mask costs one extra byte per element"
        );
    }

    #[test]
    fn fusion_reduces_traffic() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let ops = [
            EltwiseOp::new(EltwiseKind::Gelu, 1e8, 2.0),
            EltwiseOp::new(EltwiseKind::Add, 1e8, 2.0),
            EltwiseOp::new(EltwiseKind::Map, 1e8, 2.0),
        ];
        let separate: f64 = ops.iter().map(|&o| model.eltwise(o).total().secs()).sum();
        let fused = model.fused_eltwise(&ops).total().secs();
        assert!(
            fused < separate * 0.5,
            "fused {fused} vs separate {separate}"
        );
    }

    #[test]
    fn tiny_op_is_dominated_by_fixed_costs() {
        let a100 = presets::a100_sxm_80gb();
        let model = RooflineModel::new(&a100);
        let cost = model.eltwise(EltwiseOp::new(EltwiseKind::Add, 128.0, 2.0));
        // A 768-byte kernel never binds on arithmetic: it is limited by
        // launch overhead and the deeply derated small-transfer bandwidth.
        assert!(!cost.bound().is_compute());
        assert!(cost.total() < optimus_units::Time::from_micros(50.0));
    }
}
