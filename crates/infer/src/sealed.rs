//! The sealed, immutable decode-cost table.
//!
//! The memoized [`crate::PreparedInferenceEstimator`] prices a decode
//! iteration with two `RwLock<HashMap>` lookups plus a fresh
//! communication plan per call — fine for a strategy sweep's thousands of
//! evaluations, hostile to a serving simulator's millions. A
//! [`DecodeCostTable`] trades a one-time fill for a zero-locking,
//! zero-hashing inner loop: decode iteration costs are precomputed for
//! one `(tp, precision)` pair over a quantized `(batch, kv-context)`
//! grid, and a lookup is two array indexations.
//!
//! The grid is **exact** for small coordinates (every batch up to
//! [`LogGrid::exact`], every context up to the same bound for its axis)
//! and **log-scale bucketed** beyond, with each query rounded **up** to
//! its bucket representative — more load never prices cheaper. On the
//! exact region the table is bit-identical to
//! [`crate::PreparedInferenceEstimator::decode_iteration`]; on the
//! bucketed region it overstates the cost by at most one bucket ratio
//! (`2^(1/per_octave)`, ≈4.4% at the default 16 buckets per octave).

use optimus_units::Time;

/// Exact coverage of the default decode-table batch axis.
pub const BATCH_EXACT: usize = 64;
/// Exact coverage of the default decode-table kv-context axis.
pub const KV_EXACT: usize = 256;
/// Log-scale resolution beyond the exact region: buckets per doubling.
pub const BUCKETS_PER_OCTAVE: usize = 16;

/// A monotone quantization grid over positive integers: every value up to
/// `exact` maps to itself; beyond, values collapse onto logarithmically
/// spaced bucket representatives (rounding **up**), `per_octave` buckets
/// per doubling, capped at `max`.
#[derive(Debug, Clone)]
pub struct LogGrid {
    exact: usize,
    per_octave: usize,
    /// Sorted, deduplicated representative values; `values[i]` is the
    /// smallest representative ≥ any query mapping to index `i`.
    values: Vec<usize>,
}

impl LogGrid {
    /// Builds the grid covering `1..=max`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(exact: usize, per_octave: usize, max: usize) -> Self {
        assert!(
            exact > 0 && per_octave > 0 && max > 0,
            "degenerate grid parameters"
        );
        let mut values: Vec<usize> = (1..=exact.min(max)).collect();
        let mut bucket = 1u32;
        while *values.last().expect("non-empty") < max {
            // Representative of bucket `b`: ⌈exact · 2^(b/per_octave)⌉,
            // strictly increasing and capped at `max`.
            let scale = 2f64.powf(f64::from(bucket) / per_octave as f64);
            let v = ((exact as f64 * scale).ceil() as usize).min(max);
            if v > *values.last().expect("non-empty") {
                values.push(v);
            }
            bucket += 1;
        }
        Self {
            exact,
            per_octave,
            values,
        }
    }

    /// Number of representatives (the table dimension along this axis).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid is empty (never: the grid always covers 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Largest value the grid covers.
    #[must_use]
    pub fn max(&self) -> usize {
        *self.values.last().expect("grid is never empty")
    }

    /// The exact-coverage bound of this grid.
    #[must_use]
    pub fn exact(&self) -> usize {
        self.exact
    }

    /// Buckets per doubling beyond the exact region.
    #[must_use]
    pub fn per_octave(&self) -> usize {
        self.per_octave
    }

    /// The representative values in ascending order.
    #[must_use]
    pub fn values(&self) -> &[usize] {
        &self.values
    }

    /// Index of the bucket holding `value` (rounding up; values above the
    /// cap clamp to the last bucket). The exact region is an identity
    /// lookup; the bucketed region is a branch-predictable binary search
    /// over at most a few hundred representatives — no hashing, no locks.
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    #[must_use]
    pub fn index_of(&self, value: usize) -> usize {
        assert!(value > 0, "grid values are positive");
        if value <= self.exact {
            return (value - 1).min(self.values.len() - 1);
        }
        // First representative ≥ value (round up); clamp above the cap.
        self.values
            .partition_point(|&v| v < value)
            .min(self.values.len() - 1)
    }

    /// The bucket representative `value` rounds up to.
    #[must_use]
    pub fn round_up(&self, value: usize) -> usize {
        self.values[self.index_of(value)]
    }
}

/// A sealed decode-iteration cost table for one `(tp, precision)` serving
/// strategy: `cost[batch][kv]` over the quantized grids, immutable after
/// construction, safe to share across threads by reference with zero
/// synchronization. Built by
/// [`crate::PreparedInferenceEstimator::seal_decode_costs`].
#[derive(Debug, Clone)]
pub struct DecodeCostTable {
    pub(crate) batch_grid: LogGrid,
    pub(crate) kv_grid: LogGrid,
    /// Seconds, batch-major: `costs[bi * kv_grid.len() + ki]`.
    pub(crate) costs: Vec<f64>,
}

impl DecodeCostTable {
    /// Wall-clock time of one decode iteration of `batch` requests at
    /// aggregate context `kv_len`, both rounded up to their bucket
    /// representatives (and clamped to the table's ceilings). Lock-free
    /// and hash-free: two grid indexations and one array read.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `kv_len` is zero.
    #[must_use]
    pub fn decode_iteration(&self, batch: usize, kv_len: usize) -> Time {
        let bi = self.batch_grid.index_of(batch);
        let ki = self.kv_grid.index_of(kv_len);
        Time::from_secs(self.costs[bi * self.kv_grid.len() + ki])
    }

    /// Number of precomputed entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.costs.len()
    }

    /// The batch-axis grid.
    #[must_use]
    pub fn batch_grid(&self) -> &LogGrid {
        &self.batch_grid
    }

    /// The kv-context-axis grid.
    #[must_use]
    pub fn kv_grid(&self) -> &LogGrid {
        &self.kv_grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_exact_below_the_threshold() {
        let g = LogGrid::new(64, 16, 4096);
        for v in 1..=64 {
            assert_eq!(g.index_of(v), v - 1);
            assert_eq!(g.round_up(v), v);
        }
    }

    #[test]
    fn grid_rounds_up_and_is_monotone() {
        let g = LogGrid::new(64, 16, 4096);
        let mut last = 0;
        for v in 1..=4096 {
            let r = g.round_up(v);
            assert!(r >= v, "{v} rounded down to {r}");
            assert!(r >= last, "round_up must be monotone");
            // Bucket ratio bound: representative within one bucket step.
            assert!(
                (r as f64) < (v as f64) * 2f64.powf(1.0 / 16.0) + 1.0,
                "{v} rounded too far up to {r}"
            );
            last = r;
        }
    }

    #[test]
    fn grid_clamps_above_the_cap() {
        let g = LogGrid::new(8, 4, 100);
        assert_eq!(g.round_up(100), 100);
        assert_eq!(g.round_up(10_000), 100);
        assert_eq!(g.max(), 100);
    }

    #[test]
    fn grid_representatives_are_their_own_buckets() {
        let g = LogGrid::new(16, 8, 2048);
        for (i, &v) in g.values().iter().enumerate() {
            assert_eq!(g.index_of(v), i, "representative {v} must index itself");
        }
    }

    #[test]
    fn grid_is_logarithmically_small() {
        let g = LogGrid::new(64, 16, 1_000_000);
        // 64 exact + ~16·log2(1e6/64) ≈ 64 + 223 buckets.
        assert!(g.len() < 300, "grid blew up: {} entries", g.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_queries_are_rejected() {
        let _ = LogGrid::new(8, 4, 100).index_of(0);
    }
}
