//! The memoized two-phase inference estimator.
//!
//! An inference sweep evaluates every feasible (TP, precision) pair of one
//! (model, cluster, request-shape) triple, and the decode loop alone costs
//! `generate` operator-graph traversals per point. The per-step kernel
//! costs depend only on `(seq, kv_len, tp, precision)` — and the
//! embedding/LM-head stage does not even see `kv_len`, so all decode steps
//! of a point share one entry. [`PreparedInferenceEstimator`] holds the
//! roofline and two concurrent memo tables over those keys; per-point
//! evaluation reduces to lookups plus the communication and assembly
//! arithmetic.
//!
//! Memo values are pure functions of their keys, so concurrent fill order
//! cannot change any result: a memoized sweep is byte-identical to naive
//! per-point evaluation.

use crate::{GemmAnalysis, InferenceBreakdown, InferenceConfig, InferenceReport};
use optimus_collective::CommModel;
use optimus_hw::{ClusterSpec, HwError, Precision};
use optimus_memory::{inference_memory, InferenceMemoryReport};
use optimus_model::{graph, GraphParams, ModelConfig, Op, OpKind};
use optimus_parallel::{CommPlan, Parallelism};
use optimus_roofline::{KernelCost, RooflineModel};
use optimus_units::{Bytes, FlopCount, Time};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Cost of one operator list: bound-type time breakdown, the
/// energy-relevant volumes, and the per-GEMM analysis rows (memoized with
/// the rest so warm points never re-cost a GEMM). Cached behind an [`Arc`]
/// so warm lookups clone a pointer, not the rows.
#[derive(Debug, Clone, Default)]
struct StepCost {
    bd: InferenceBreakdown,
    flops: FlopCount,
    dram: Bytes,
    gemms: Vec<GemmAnalysis>,
}

/// Memo key of one transformer layer's kernels: `(batch, seq, kv_len, tp,
/// precision)`. `seq` is the prompt length for prefill and 1 for decode;
/// `kv_len` is the attention context. A one-shot estimate uses a single
/// batch value, but the serving iteration APIs vary it — continuous
/// batching grows and shrinks the decode batch every iteration — so the
/// batch is part of the key.
type LayerKey = (usize, usize, usize, usize, Precision);

/// Memo key of the embedding + LM-head stage: `(batch, seq, tp,
/// precision)` — these ops never read the attention context, which is what
/// collapses the whole decode loop's head work onto a single entry.
type ExtraKey = (usize, usize, usize, Precision);

/// Phase-1 state of the two-phase inference estimator: the roofline and
/// the per-step kernel-cost memo tables, fixed to one (model, cluster,
/// request shape). Build once per sweep, call
/// [`PreparedInferenceEstimator::estimate`] per (TP, precision) point.
///
/// ```
/// use optimus_hw::presets;
/// use optimus_hw::Precision;
/// use optimus_infer::PreparedInferenceEstimator;
/// use optimus_model::presets as models;
/// use std::sync::Arc;
///
/// let cluster = presets::dgx_a100_hdr_cluster();
/// let prepared = PreparedInferenceEstimator::new(
///     &cluster, Arc::new(models::llama2_13b()), 1, 200, 200);
/// let t1 = prepared.estimate(1, Precision::Fp16).unwrap();
/// let t8 = prepared.estimate(8, Precision::Fp16).unwrap();
/// assert!(t8.total < t1.total);
/// ```
#[derive(Debug)]
pub struct PreparedInferenceEstimator<'a> {
    cluster: &'a ClusterSpec,
    roofline: RooflineModel<'a>,
    model: Arc<ModelConfig>,
    batch: usize,
    prefill: usize,
    generate: usize,
    comm: CommModel,
    layer_cache: RwLock<HashMap<LayerKey, Result<Arc<StepCost>, HwError>>>,
    extra_cache: RwLock<HashMap<ExtraKey, Result<Arc<StepCost>, HwError>>>,
}

impl<'a> PreparedInferenceEstimator<'a> {
    /// Prepares an estimator for one (model, cluster, request shape) with
    /// automatic collective selection.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero (same contract as
    /// [`InferenceConfig::new`]).
    #[must_use]
    pub fn new(
        cluster: &'a ClusterSpec,
        model: Arc<ModelConfig>,
        batch: usize,
        prefill: usize,
        generate: usize,
    ) -> Self {
        assert!(
            batch > 0 && prefill > 0 && generate > 0,
            "inference shape must be positive"
        );
        Self {
            cluster,
            roofline: RooflineModel::new(cluster.accelerator()),
            model,
            batch,
            prefill,
            generate,
            comm: CommModel::Auto,
            layer_cache: RwLock::new(HashMap::new()),
            extra_cache: RwLock::new(HashMap::new()),
        }
    }

    /// Prepares from a full [`InferenceConfig`], adopting its request-level
    /// fields. The config's `tp` and `precision` are *per-point* inputs —
    /// pass them to [`Self::estimate`] instead.
    #[must_use]
    pub fn from_config(cluster: &'a ClusterSpec, cfg: &InferenceConfig) -> Self {
        Self::new(
            cluster,
            Arc::clone(&cfg.model),
            cfg.batch,
            cfg.prefill,
            cfg.generate,
        )
        .with_comm(cfg.comm)
    }

    /// Prepares an estimator for iteration-level serving simulation, where
    /// every batch/sequence shape arrives per call through
    /// [`Self::prefill_iteration`] and [`Self::decode_iteration`] rather
    /// than from a fixed request shape.
    #[must_use]
    pub fn for_serving(cluster: &'a ClusterSpec, model: Arc<ModelConfig>) -> Self {
        Self::new(cluster, model, 1, 1, 1)
    }

    /// Sets the collective policy.
    #[must_use]
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Number of distinct per-step kernel keys materialized so far.
    #[must_use]
    pub fn cached_keys(&self) -> usize {
        self.layer_cache.read().expect("layer cache poisoned").len()
            + self.extra_cache.read().expect("extra cache poisoned").len()
    }

    /// Phase-2 evaluation of one (TP, precision) point, computing the
    /// memory footprint in-line.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] when the device lacks the serving precision.
    pub fn estimate(&self, tp: usize, precision: Precision) -> Result<InferenceReport, HwError> {
        let memory = inference_memory(
            &self.model,
            self.batch,
            self.prefill + self.generate,
            tp,
            precision,
        );
        self.estimate_with_memory(tp, precision, memory)
    }

    /// Phase-2 evaluation with a memory footprint computed elsewhere — the
    /// sweep engine passes the footprint its pruning pass already derived.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] when the device lacks the serving precision.
    pub fn estimate_with_memory(
        &self,
        tp: usize,
        precision: Precision,
        memory: InferenceMemoryReport,
    ) -> Result<InferenceReport, HwError> {
        assert!(tp > 0, "tp must be positive");
        let parallelism = Parallelism::tensor_parallel(tp);
        let plan = CommPlan::new(self.cluster, parallelism, self.comm);
        let layers = self.model.layers as f64;

        // --- prefill -----------------------------------------------------
        let pre_params = GraphParams::prefill(self.batch, self.prefill, tp, precision);
        let mut prefill_bd = InferenceBreakdown::default();
        let mut device_flops = FlopCount::ZERO;
        let mut dram_traffic = Bytes::ZERO;
        let mut network_traffic = Bytes::ZERO;
        let pre_layer = self.layer_cost(&pre_params)?;
        add_scaled(&mut prefill_bd, &pre_layer.bd, layers);
        device_flops += pre_layer.flops * layers;
        dram_traffic += pre_layer.dram * layers;

        // Two all-reduces per layer over the full prompt activations.
        let pre_volume =
            Bytes::new((self.batch * self.prefill * self.model.hidden) as f64 * precision.bytes());
        prefill_bd.communication += plan.tp_layer_inference(pre_volume) * layers;
        network_traffic += plan.tp_layer_forward_wire_bytes(pre_volume) * layers;

        // Embedding + head once (only the final token's logits matter for
        // generation, but serving stacks compute the full prompt's logits
        // in the summarization pass).
        let pre_extra = self.extra_cost(&pre_params)?;
        add_scaled(&mut prefill_bd, &pre_extra.bd, 1.0);
        device_flops += pre_extra.flops;
        dram_traffic += pre_extra.dram;

        let prefill_time = prefill_bd.total();

        // --- decode loop (exact, token by token) ---------------------------
        let mut decode_bd = InferenceBreakdown::default();
        let decode_comm_volume =
            Bytes::new((self.batch * self.model.hidden) as f64 * precision.bytes());
        for step in 0..self.generate {
            let ctx = self.prefill + step;
            let dp = GraphParams::decode(self.batch, ctx, tp, precision);
            let layer = self.layer_cost(&dp)?;
            add_scaled(&mut decode_bd, &layer.bd, layers);
            device_flops += layer.flops * layers;
            dram_traffic += layer.dram * layers;
            decode_bd.communication += plan.tp_layer_inference(decode_comm_volume) * layers;
            network_traffic += plan.tp_layer_forward_wire_bytes(decode_comm_volume) * layers;

            let extra = self.extra_cost(&dp)?;
            add_scaled(&mut decode_bd, &extra.bd, 1.0);
            device_flops += extra.flops;
            dram_traffic += extra.dram;
        }
        let decode_time = decode_bd.total();
        let per_token = decode_time / self.generate as f64;

        // --- totals ---------------------------------------------------------
        let mut breakdown = prefill_bd;
        add_scaled(&mut breakdown, &decode_bd, 1.0);
        // `add_scaled` does not sum communication (it is not a KernelCost
        // category); combine explicitly.
        breakdown.communication = prefill_bd.communication + decode_bd.communication;

        // --- per-GEMM analyses ------------------------------------------------
        // Both tables are warm memo hits: the prefill layer was costed
        // above, and the final decode context is the last loop step.
        let prefill_gemms = pre_layer.gemms.clone();
        let final_ctx = self.prefill + self.generate - 1;
        let decode_params = GraphParams::decode(self.batch, final_ctx, tp, precision);
        let decode_gemms = self.layer_cost(&decode_params)?.gemms.clone();

        Ok(InferenceReport {
            total: prefill_time + decode_time,
            prefill: prefill_time,
            decode: decode_time,
            per_token,
            breakdown,
            prefill_breakdown: prefill_bd,
            memory,
            prefill_gemms,
            decode_gemms,
            device_flops,
            dram_traffic,
            network_traffic,
        })
    }

    /// Wall-clock time of one continuous-batching **prefill iteration**:
    /// `batch` prompts of `prompt` tokens each run through every layer
    /// (with the per-layer TP all-reduces) plus the embedding/LM-head
    /// stage. Memoized on `(batch, prompt, tp, precision)` like every
    /// other step, so a serving simulator re-pricing the same prompt
    /// length pays a hash lookup.
    ///
    /// The request-shape fields the estimator was prepared with (`batch`,
    /// `prefill`, `generate`) are not consulted — iteration pricing is
    /// fully parameterized by its arguments.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] when the device lacks the serving precision.
    ///
    /// # Panics
    ///
    /// Panics if `batch`, `prompt`, or `tp` is zero.
    pub fn prefill_iteration(
        &self,
        batch: usize,
        prompt: usize,
        tp: usize,
        precision: Precision,
    ) -> Result<Time, HwError> {
        assert!(
            batch > 0 && prompt > 0 && tp > 0,
            "degenerate prefill iteration"
        );
        let gp = GraphParams::prefill(batch, prompt, tp, precision);
        let layer = self.layer_cost(&gp)?;
        let extra = self.extra_cost(&gp)?;
        let layers = self.model.layers as f64;
        let plan = CommPlan::new(self.cluster, Parallelism::tensor_parallel(tp), self.comm);
        let volume = Bytes::new((batch * prompt * self.model.hidden) as f64 * precision.bytes());
        Ok(layer.bd.total() * layers + plan.tp_layer_inference(volume) * layers + extra.bd.total())
    }

    /// Wall-clock time of one continuous-batching **decode iteration**:
    /// `batch` requests each generate one token attending over `kv_len`
    /// cached entries (a mixed batch is priced at its aggregate context —
    /// see `optimus-serve`), through every layer plus the per-layer TP
    /// all-reduces and the LM-head stage. Memoized on
    /// `(batch, kv_len, tp, precision)`.
    ///
    /// For `batch = 1` this is exactly the per-step term of
    /// [`Self::estimate`]'s decode loop, which is what lets a serving
    /// simulator degenerate to the static analytical model when requests
    /// never overlap.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] when the device lacks the serving precision.
    ///
    /// # Panics
    ///
    /// Panics if `batch`, `kv_len`, or `tp` is zero.
    pub fn decode_iteration(
        &self,
        batch: usize,
        kv_len: usize,
        tp: usize,
        precision: Precision,
    ) -> Result<Time, HwError> {
        assert!(
            batch > 0 && kv_len > 0 && tp > 0,
            "degenerate decode iteration"
        );
        let gp = GraphParams::decode(batch, kv_len, tp, precision);
        let layer = self.layer_cost(&gp)?;
        let extra = self.extra_cost(&gp)?;
        let layers = self.model.layers as f64;
        let plan = CommPlan::new(self.cluster, Parallelism::tensor_parallel(tp), self.comm);
        let volume = Bytes::new((batch * self.model.hidden) as f64 * precision.bytes());
        Ok(layer.bd.total() * layers + plan.tp_layer_inference(volume) * layers + extra.bd.total())
    }

    /// Seals decode-iteration costs for one `(tp, precision)` strategy
    /// into an immutable [`crate::DecodeCostTable`] covering batches up to
    /// `max_batch` and aggregate contexts up to `max_kv` on the default
    /// quantization grids (exact to [`crate::sealed::BATCH_EXACT`] /
    /// [`crate::sealed::KV_EXACT`], then
    /// [`crate::sealed::BUCKETS_PER_OCTAVE`] log-scale buckets per
    /// doubling).
    ///
    /// Each entry is computed through the same operator-costing path as
    /// [`Self::decode_iteration`], with the same floating-point evaluation
    /// order, so grid points are **bit-identical** to the memoized path —
    /// but the fill bypasses the memo tables entirely: sealing neither
    /// takes the locks per entry nor grows the maps, and lookups against
    /// the sealed table do zero locking and zero hashing.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] when the device lacks the serving precision.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch`, `max_kv`, or `tp` is zero.
    pub fn seal_decode_costs(
        &self,
        max_batch: usize,
        max_kv: usize,
        tp: usize,
        precision: Precision,
    ) -> Result<crate::DecodeCostTable, HwError> {
        use crate::sealed::{LogGrid, BATCH_EXACT, BUCKETS_PER_OCTAVE, KV_EXACT};
        assert!(
            max_batch > 0 && max_kv > 0 && tp > 0,
            "degenerate decode-table bounds"
        );
        let batch_grid = LogGrid::new(BATCH_EXACT, BUCKETS_PER_OCTAVE, max_batch);
        let kv_grid = LogGrid::new(KV_EXACT, BUCKETS_PER_OCTAVE, max_kv);
        let layers = self.model.layers as f64;
        let plan = CommPlan::new(self.cluster, Parallelism::tensor_parallel(tp), self.comm);
        let mut costs = Vec::with_capacity(batch_grid.len() * kv_grid.len());
        for &batch in batch_grid.values() {
            // The embedding/LM-head stage and the per-layer all-reduce
            // volume never see the context (pinned by
            // `extra_ops_are_context_independent`) — one evaluation per
            // batch row, built at any representative context.
            let head_gp = GraphParams::decode(batch, 1, tp, precision);
            let extra_ops: Vec<Op> = graph::embedding_ops(&self.model, &head_gp)
                .into_iter()
                .chain(graph::head_ops(&self.model, &head_gp))
                .collect();
            let extra = self.ops_cost(&extra_ops, precision)?;
            let volume = Bytes::new((batch * self.model.hidden) as f64 * precision.bytes());
            for &kv_len in kv_grid.values() {
                let gp = GraphParams::decode(batch, kv_len, tp, precision);
                let layer =
                    self.ops_cost(&graph::layer_forward_ops(&self.model, &gp), precision)?;
                // Identical expression (and f64 evaluation order) to
                // `decode_iteration`, so exact-grid entries match it
                // bit-for-bit.
                let total = layer.bd.total() * layers
                    + plan.tp_layer_inference(volume) * layers
                    + extra.bd.total();
                costs.push(total.secs());
            }
        }
        Ok(crate::DecodeCostTable {
            batch_grid,
            kv_grid,
            costs,
        })
    }

    /// One transformer layer's kernels for the pass described by `gp`,
    /// memoized on `(batch, seq, kv_len, tp, precision)`.
    fn layer_cost(&self, gp: &GraphParams) -> Result<Arc<StepCost>, HwError> {
        let key = (gp.batch, gp.seq, gp.kv_len, gp.tp, gp.precision);
        if let Some(hit) = self
            .layer_cache
            .read()
            .expect("layer cache poisoned")
            .get(&key)
        {
            return hit.clone();
        }
        let computed = self
            .ops_cost(&graph::layer_forward_ops(&self.model, gp), gp.precision)
            .map(Arc::new);
        self.layer_cache
            .write()
            .expect("layer cache poisoned")
            .entry(key)
            .or_insert_with(|| computed.clone());
        computed
    }

    /// The embedding + LM-head stage for the pass described by `gp`,
    /// memoized on `(batch, seq, tp, precision)` — `kv_len` never reaches
    /// these ops, so every decode step shares one entry.
    fn extra_cost(&self, gp: &GraphParams) -> Result<Arc<StepCost>, HwError> {
        let key = (gp.batch, gp.seq, gp.tp, gp.precision);
        if let Some(hit) = self
            .extra_cache
            .read()
            .expect("extra cache poisoned")
            .get(&key)
        {
            return hit.clone();
        }
        let ops: Vec<Op> = graph::embedding_ops(&self.model, gp)
            .into_iter()
            .chain(graph::head_ops(&self.model, gp))
            .collect();
        let computed = self.ops_cost(&ops, gp.precision).map(Arc::new);
        self.extra_cache
            .write()
            .expect("extra cache poisoned")
            .entry(key)
            .or_insert_with(|| computed.clone());
        computed
    }

    /// Costs an operator list, accumulating each kernel's time into the
    /// breakdown category of its bound type.
    fn ops_cost(&self, ops: &[Op], precision: Precision) -> Result<StepCost, HwError> {
        let mut total = StepCost::default();
        for op in ops {
            let cost = self.op_cost(op, precision)?;
            accumulate(&mut total.bd, &cost);
            total.flops += cost.flops;
            total.dram += cost.dram_traffic();
            if let OpKind::Gemm(_) = op.kind {
                total.gemms.push(GemmAnalysis {
                    role: op.role,
                    time: cost.total(),
                    bound: cost.bound(),
                });
            }
        }
        Ok(total)
    }

    fn op_cost(&self, op: &Op, precision: Precision) -> Result<KernelCost, HwError> {
        match op.kind {
            OpKind::Gemm(g) => self.roofline.batched_gemm(g, precision),
            OpKind::Eltwise(e) => Ok(self.roofline.eltwise(e)),
            OpKind::Flash(fa) => {
                self.roofline
                    .custom_kernel("flash-attention", fa.flops(), &fa.traffic(), precision)
            }
        }
    }
}

/// Adds `scale` copies of `src` kernel categories into `dst`
/// (communication is handled separately by the caller).
fn add_scaled(dst: &mut InferenceBreakdown, src: &InferenceBreakdown, scale: f64) {
    dst.compute += src.compute * scale;
    dst.memory += src.memory * scale;
    dst.overhead += src.overhead * scale;
}

/// Files one kernel's roofline time under its bound type, and its fixed
/// overhead under `overhead`.
fn accumulate(bd: &mut InferenceBreakdown, cost: &KernelCost) {
    let t = cost.roofline_time();
    if cost.bound().is_compute() {
        bd.compute += t;
    } else {
        bd.memory += t;
    }
    bd.overhead += cost.overhead;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InferenceConfig, InferenceEstimator};
    use optimus_hw::presets;
    use optimus_model::presets as models;

    /// The prepared path and the one-shot estimator must produce identical
    /// reports — same code, memoized vs not.
    #[test]
    fn prepared_matches_one_shot_estimator() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let prepared = PreparedInferenceEstimator::new(&cluster, Arc::clone(&model), 1, 200, 32);
        for tp in [1, 2, 8] {
            let cfg = InferenceConfig::new(Arc::clone(&model), 1, 200, 32, tp);
            let one_shot = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
            let fast = prepared.estimate(tp, Precision::Fp16).unwrap();
            assert_eq!(one_shot, fast, "tp={tp}");
        }
    }

    /// The load-bearing assumption behind [`ExtraKey`]: the embedding and
    /// LM-head operator lists must be **identical across context lengths**
    /// (only `seq`/`tp`/`precision` may shape them). This pins the graph
    /// builder itself, independently of the memoized evaluation path — if
    /// a future graph change makes these ops read `kv_len`, this fails
    /// even though the memoized and naive paths would agree (both would
    /// share the same wrong entry).
    #[test]
    fn extra_ops_are_context_independent() {
        let model = models::llama2_70b(); // GQA: the most structured head
        for tp in [1, 4] {
            let short = GraphParams::decode(2, 10, tp, Precision::Fp16);
            let long = GraphParams::decode(2, 4000, tp, Precision::Fp16);
            assert_eq!(
                graph::embedding_ops(&model, &short),
                graph::embedding_ops(&model, &long),
                "embedding ops must not depend on kv_len (tp={tp})"
            );
            assert_eq!(
                graph::head_ops(&model, &short),
                graph::head_ops(&model, &long),
                "head ops must not depend on kv_len (tp={tp})"
            );
        }
    }

    /// The serving iteration APIs are the static estimator's own terms: a
    /// prefill iteration plus the per-step decode iterations must sum to
    /// the one-shot report's end-to-end latency (up to f64 summation
    /// order).
    #[test]
    fn iterations_sum_to_the_one_shot_estimate() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let (batch, prompt, generate) = (2, 150, 24);
        for tp in [1, 4] {
            let prepared = PreparedInferenceEstimator::new(
                &cluster,
                Arc::clone(&model),
                batch,
                prompt,
                generate,
            );
            let report = prepared.estimate(tp, Precision::Fp16).unwrap();
            let serving = PreparedInferenceEstimator::for_serving(&cluster, Arc::clone(&model));
            let mut total = serving
                .prefill_iteration(batch, prompt, tp, Precision::Fp16)
                .unwrap();
            for step in 0..generate {
                total += serving
                    .decode_iteration(batch, prompt + step, tp, Precision::Fp16)
                    .unwrap();
            }
            let rel = (total.secs() - report.total.secs()).abs() / report.total.secs();
            assert!(rel < 1e-9, "tp={tp}: rel err {rel}");
        }
    }

    /// Decode iterations must be priced per batch size: a batch of 8
    /// decodes costs more than a batch of 1 (weights amortize, KV reads
    /// do not) but far less than 8 separate batch-1 iterations.
    #[test]
    fn decode_iterations_batch_sublinearly() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let serving =
            PreparedInferenceEstimator::for_serving(&cluster, Arc::new(models::llama2_13b()));
        let one = serving
            .decode_iteration(1, 500, 1, Precision::Fp16)
            .unwrap();
        let eight = serving
            .decode_iteration(8, 500, 1, Precision::Fp16)
            .unwrap();
        assert!(eight > one, "more work must take longer");
        assert!(
            eight < one * 8.0,
            "batching must amortize the weight reads: {eight} vs 8×{one}"
        );
    }

    /// The sealed decode-cost table must be **bit-identical** to the
    /// memoized `decode_iteration` path on its exact grid region, and
    /// within one round-up bucket of it beyond — same costing code, with
    /// vs without the per-call locking and hashing.
    #[test]
    fn sealed_table_matches_decode_iteration_on_the_exact_grid() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let serving =
            PreparedInferenceEstimator::for_serving(&cluster, Arc::new(models::llama2_13b()));
        for tp in [1, 2] {
            let table = serving
                .seal_decode_costs(200, 1000, tp, Precision::Fp16)
                .unwrap();
            // Exact region: every covered (batch, kv) pair matches the
            // memoized path bit-for-bit.
            for batch in [1usize, 2, 17, 64] {
                for kv in [1usize, 3, 100, 256] {
                    let sealed = table.decode_iteration(batch, kv);
                    let memoized = serving
                        .decode_iteration(batch, kv, tp, Precision::Fp16)
                        .unwrap();
                    assert_eq!(
                        sealed.secs().to_bits(),
                        memoized.secs().to_bits(),
                        "tp={tp} batch={batch} kv={kv}"
                    );
                }
            }
            // Bucketed region: the sealed cost is the memoized cost of the
            // round-up representative — never cheaper than exact.
            for (batch, kv) in [(100usize, 300usize), (199, 999)] {
                let rep_b = table.batch_grid().round_up(batch);
                let rep_k = table.kv_grid().round_up(kv);
                let sealed = table.decode_iteration(batch, kv);
                let at_rep = serving
                    .decode_iteration(rep_b, rep_k, tp, Precision::Fp16)
                    .unwrap();
                assert_eq!(sealed.secs().to_bits(), at_rep.secs().to_bits());
                let exact = serving
                    .decode_iteration(batch, kv, tp, Precision::Fp16)
                    .unwrap();
                assert!(sealed >= exact, "rounding up must never price cheaper");
            }
        }
    }

    /// Sealing must not grow the memo tables: the whole point is a
    /// bounded, immutable structure next to (not inside) the caches.
    #[test]
    fn sealing_bypasses_the_memo_tables() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let serving =
            PreparedInferenceEstimator::for_serving(&cluster, Arc::new(models::llama2_7b()));
        let before = serving.cached_keys();
        let table = serving
            .seal_decode_costs(500, 2000, 1, Precision::Fp16)
            .unwrap();
        assert!(table.entries() > 0);
        assert_eq!(
            serving.cached_keys(),
            before,
            "sealing must not touch the RwLock'd memo tables"
        );
        // The table stays logarithmically small even for generous bounds.
        assert!(
            table.entries() < 80_000,
            "table blew up: {} entries",
            table.entries()
        );
    }

    /// All decode steps of one point share a single embedding/head entry,
    /// so the extra cache stays tiny while the layer cache holds one entry
    /// per distinct context length.
    #[test]
    fn decode_steps_share_the_head_entry() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let generate = 16;
        let prepared = PreparedInferenceEstimator::new(
            &cluster,
            Arc::new(models::llama2_7b()),
            1,
            100,
            generate,
        );
        prepared.estimate(1, Precision::Fp16).unwrap();
        // Layer entries: 1 prefill + `generate` decode contexts; extra
        // entries: 1 prefill + 1 decode.
        let after_one = prepared.cached_keys();
        assert_eq!(after_one, (1 + generate) + 2);
        // A second estimate at the same point adds nothing.
        prepared.estimate(1, Precision::Fp16).unwrap();
        assert_eq!(prepared.cached_keys(), after_one);
    }
}
