//! End-to-end analytical performance model for LLM inference.
//!
//! Covers the paper's inference methodology: a compute-heavy **prefill**
//! (summarization) phase over the prompt, followed by an exact token-by-
//! token **decode** loop whose skinny GEMMs stream the weights and the
//! growing KV-cache from DRAM (§3.5), with tensor-parallel all-reduces per
//! layer costed by the latency-aware tree algorithm (§3.4). Reports split
//! latency by bound type (compute/memory/communication/overhead), provide
//! the per-GEMM analysis of Table 4, and the weight/KV-cache footprint of
//! Fig. 8's inset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod estimator;
mod prepared;
mod report;
pub mod sealed;

pub use config::InferenceConfig;
pub use estimator::InferenceEstimator;
pub use prepared::PreparedInferenceEstimator;
pub use report::{GemmAnalysis, InferenceBreakdown, InferenceReport};
pub use sealed::{DecodeCostTable, LogGrid};
