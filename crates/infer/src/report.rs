//! Inference-latency reports.

use optimus_memory::InferenceMemoryReport;
use optimus_model::OpRole;
use optimus_roofline::BoundType;
use optimus_units::Time;
use serde::{Deserialize, Serialize};

/// Where inference latency goes, classified per kernel by its roofline
/// bound type (the memory/communication stacks of Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct InferenceBreakdown {
    /// Time in kernels that bind on arithmetic.
    pub compute: Time,
    /// Time in kernels that bind on a memory level (DRAM or on-chip).
    pub memory: Time,
    /// Collective-communication time (TP all-reduces).
    pub communication: Time,
    /// Fixed kernel-launch/software overhead.
    pub overhead: Time,
}

impl InferenceBreakdown {
    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> Time {
        self.compute + self.memory + self.communication + self.overhead
    }
}

/// One row of a per-GEMM bound analysis (the paper's Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmAnalysis {
    /// The GEMM's role in the layer.
    pub role: OpRole,
    /// Predicted kernel time.
    pub time: Time,
    /// What limits it.
    pub bound: BoundType,
}

/// The full output of an inference estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// End-to-end latency: prefill + all decode steps.
    pub total: Time,
    /// Prompt-summarization (prefill) latency.
    pub prefill: Time,
    /// Auto-regressive generation latency.
    pub decode: Time,
    /// Mean decode latency per generated token.
    pub per_token: Time,
    /// Bound-type breakdown of the end-to-end latency.
    pub breakdown: InferenceBreakdown,
    /// Bound-type breakdown of the prefill phase alone (Fig. 8).
    pub prefill_breakdown: InferenceBreakdown,
    /// Per-device weight + KV-cache footprint at the final context length.
    pub memory: InferenceMemoryReport,
    /// Per-GEMM analysis of one prefill layer (Table 4).
    pub prefill_gemms: Vec<GemmAnalysis>,
    /// Per-GEMM analysis of one decode layer at full context.
    pub decode_gemms: Vec<GemmAnalysis>,
    /// Arithmetic work executed per device for the whole request.
    pub device_flops: optimus_units::FlopCount,
    /// DRAM traffic per device for the whole request.
    pub dram_traffic: optimus_units::Bytes,
    /// Bytes injected into the fabric per device for the whole request.
    pub network_traffic: optimus_units::Bytes,
}

impl core::fmt::Display for InferenceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "latency {} (prefill {}, decode {}, {}/token)",
            self.total, self.prefill, self.decode, self.per_token
        )?;
        write!(
            f,
            "  compute {}  memory {}  comm {}  overhead {}",
            self.breakdown.compute,
            self.breakdown.memory,
            self.breakdown.communication,
            self.breakdown.overhead
        )
    }
}
