//! Inference-job description.

use optimus_collective::CommModel;
use optimus_hw::Precision;
use optimus_model::ModelConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One LLM serving request shape: a prompt is *summarized* (prefill) and
/// `generate` tokens are produced auto-regressively with a KV-cache (§3.5).
///
/// The model is held behind an [`Arc`] so that sweeps evaluating many TP ×
/// precision configurations of one architecture share a single allocation
/// instead of deep-cloning the [`ModelConfig`] per point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// The served model.
    pub model: Arc<ModelConfig>,
    /// Serving batch size.
    pub batch: usize,
    /// Prompt (summarization) length in tokens.
    pub prefill: usize,
    /// Number of generated tokens.
    pub generate: usize,
    /// Tensor-parallel degree (the only parallelism used for inference,
    /// §1.3).
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// Collective-algorithm policy. Defaults to automatic, which picks the
    /// double-binary-tree for the latency-bound decode all-reduces (§3.4).
    pub comm: CommModel,
}

impl InferenceConfig {
    /// Creates a config at FP16 with automatic collective selection.
    /// Accepts an owned [`ModelConfig`] or an existing [`Arc`] (shared
    /// across sweep points).
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn new(
        model: impl Into<Arc<ModelConfig>>,
        batch: usize,
        prefill: usize,
        generate: usize,
        tp: usize,
    ) -> Self {
        assert!(
            batch > 0 && prefill > 0 && generate > 0 && tp > 0,
            "inference shape must be positive"
        );
        Self {
            model: model.into(),
            batch,
            prefill,
            generate,
            tp,
            precision: Precision::Fp16,
            comm: CommModel::Auto,
        }
    }

    /// Sets the serving precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the collective policy.
    #[must_use]
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// The paper's Table 2 shape: B = 1, 200-token prompt, 200 generated.
    #[must_use]
    pub fn nvidia_llama_benchmark(model: impl Into<Arc<ModelConfig>>, tp: usize) -> Self {
        Self::new(model, 1, 200, 200, tp)
    }
}

impl core::fmt::Display for InferenceConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} B={} prefill={} generate={} TP={} {}",
            self.model.name, self.batch, self.prefill, self.generate, self.tp, self.precision
        )
    }
}
