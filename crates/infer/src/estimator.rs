//! The end-to-end inference-latency estimator.

use crate::{InferenceConfig, InferenceReport, PreparedInferenceEstimator};
use optimus_hw::{ClusterSpec, HwError};

/// Predicts end-to-end LLM serving latency on a (single- or multi-GPU)
/// system.
///
/// The prefill phase runs the full prompt through the stack (fat GEMMs,
/// compute- or DRAM-bound depending on the device — Table 4); each decode
/// step then runs one token against the growing KV-cache (skinny GEMMs,
/// DRAM-bound) followed by two tensor-parallel all-reduces per layer whose
/// kilobyte-sized messages are latency-dominated (§3.4). The decode loop is
/// evaluated **exactly**, token by token, so KV-cache growth is captured.
///
/// This type is the convenient one-shot entry point; it delegates to
/// [`PreparedInferenceEstimator`], which carries the actual model and
/// memoizes per-step kernel costs when many (TP, precision) points are
/// evaluated against one request shape.
///
/// ```
/// use optimus_hw::presets;
/// use optimus_infer::{InferenceConfig, InferenceEstimator};
/// use optimus_model::presets as models;
///
/// let cluster = presets::dgx_a100_hdr_cluster();
/// let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
/// let report = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
/// // NVIDIA reports 3.88 s for this row; the model must land nearby.
/// assert!((2.8..5.2).contains(&report.total.secs()));
/// ```
#[derive(Debug, Clone)]
pub struct InferenceEstimator<'a> {
    cluster: &'a ClusterSpec,
}

impl<'a> InferenceEstimator<'a> {
    /// Creates an estimator for `cluster`.
    #[must_use]
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        Self { cluster }
    }

    /// Predicts serving latency and its breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] when the device lacks the serving precision.
    pub fn estimate(&self, cfg: &InferenceConfig) -> Result<InferenceReport, HwError> {
        PreparedInferenceEstimator::from_config(self.cluster, cfg).estimate(cfg.tp, cfg.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_model::presets as models;

    fn a100() -> ClusterSpec {
        presets::dgx_a100_hdr_cluster()
    }

    fn h100() -> ClusterSpec {
        presets::dgx_h100_ndr_cluster()
    }

    #[test]
    fn llama13b_single_a100_near_nvidia() {
        // Table 2: 3884 ms measured, 4263 ms paper-predicted.
        let cluster = a100();
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
        let r = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
        let ms = r.total.millis();
        assert!(
            (3000.0..5000.0).contains(&ms),
            "expected ~3.9-4.3 s, got {ms:.0} ms"
        );
    }

    #[test]
    fn h100_beats_a100_via_hbm3() {
        // §4.3: the A100→H100 inference gain tracks the DRAM upgrade
        // (1.935 → 3.35 TB/s ≈ 1.7x), not the 3.2x compute gain.
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
        let a = a100();
        let h = h100();
        let t_a100 = InferenceEstimator::new(&a).estimate(&cfg).unwrap().total;
        let t_h100 = InferenceEstimator::new(&h).estimate(&cfg).unwrap().total;
        let speedup = t_a100 / t_h100;
        assert!(
            (1.3..2.2).contains(&speedup),
            "speedup {speedup:.2} should track DRAM bandwidth"
        );
    }

    #[test]
    fn decode_is_memory_bound() {
        let cluster = a100();
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
        let r = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
        for g in &r.decode_gemms {
            assert!(
                !g.bound.is_compute(),
                "{}: decode GEMMs must not be compute-bound",
                g.role
            );
        }
        assert!(r.breakdown.memory > r.breakdown.compute);
    }

    #[test]
    fn inference_scales_poorly_with_gpus() {
        // §4.3: "inference scales poorly with the number of GPUs".
        let cluster = a100();
        let est = InferenceEstimator::new(&cluster);
        let t1 = est
            .estimate(&InferenceConfig::nvidia_llama_benchmark(
                models::llama2_13b(),
                1,
            ))
            .unwrap()
            .total;
        let t8 = est
            .estimate(&InferenceConfig::nvidia_llama_benchmark(
                models::llama2_13b(),
                8,
            ))
            .unwrap()
            .total;
        let speedup = t1 / t8;
        assert!(speedup > 1.2, "some speedup expected, got {speedup:.2}");
        assert!(speedup < 5.0, "far from linear scaling, got {speedup:.2}");
    }

    #[test]
    fn communication_dominates_memory_at_8_gpus() {
        // §6.2: "for 8 GPUs, communication time is roughly 1.6x of memory
        // time (for Llama2-13B)".
        let cluster = a100();
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 8);
        let r = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
        let ratio = r.breakdown.communication / r.breakdown.memory;
        assert!(
            (0.8..3.0).contains(&ratio),
            "comm/memory ratio {ratio:.2} should be around 1.6"
        );
    }

    #[test]
    fn larger_batch_raises_throughput_with_modest_latency_growth() {
        // §6.1: "Larger batch sizes improve inference throughput but at the
        // cost of latency. However, the growth of latency with B is rather
        // modest."
        let cluster = a100();
        let est = InferenceEstimator::new(&cluster);
        let b1 = est
            .estimate(&InferenceConfig::new(models::llama2_13b(), 1, 200, 200, 1))
            .unwrap()
            .total;
        let b16 = est
            .estimate(&InferenceConfig::new(models::llama2_13b(), 16, 200, 200, 1))
            .unwrap()
            .total;
        let latency_growth = b16 / b1;
        assert!(
            latency_growth < 4.0,
            "16x batch should cost far less than 16x latency, got {latency_growth:.2}x"
        );
        let throughput_gain = 16.0 / latency_growth;
        assert!(throughput_gain > 4.0);
    }

    #[test]
    fn kv_cache_grows_decode_time() {
        let cluster = a100();
        let est = InferenceEstimator::new(&cluster);
        let short = est
            .estimate(&InferenceConfig::new(models::llama2_7b(), 1, 100, 50, 1))
            .unwrap();
        let long = est
            .estimate(&InferenceConfig::new(models::llama2_7b(), 1, 3000, 50, 1))
            .unwrap();
        assert!(
            long.per_token > short.per_token,
            "longer context reads a bigger KV-cache per token"
        );
    }
}
