//! The end-to-end inference-latency estimator.

use crate::{GemmAnalysis, InferenceBreakdown, InferenceConfig, InferenceReport};
use optimus_hw::{ClusterSpec, HwError};
use optimus_memory::inference_memory;
use optimus_model::{graph, GraphParams, Op, OpKind};
use optimus_parallel::{CommPlan, Parallelism};
use optimus_roofline::{KernelCost, RooflineModel};
use optimus_units::{Bytes, FlopCount};

/// Predicts end-to-end LLM serving latency on a (single- or multi-GPU)
/// system.
///
/// The prefill phase runs the full prompt through the stack (fat GEMMs,
/// compute- or DRAM-bound depending on the device — Table 4); each decode
/// step then runs one token against the growing KV-cache (skinny GEMMs,
/// DRAM-bound) followed by two tensor-parallel all-reduces per layer whose
/// kilobyte-sized messages are latency-dominated (§3.4). The decode loop is
/// evaluated **exactly**, token by token, so KV-cache growth is captured.
///
/// ```
/// use optimus_hw::presets;
/// use optimus_infer::{InferenceConfig, InferenceEstimator};
/// use optimus_model::presets as models;
///
/// let cluster = presets::dgx_a100_hdr_cluster();
/// let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
/// let report = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
/// // NVIDIA reports 3.88 s for this row; the model must land nearby.
/// assert!((2.8..5.2).contains(&report.total.secs()));
/// ```
#[derive(Debug, Clone)]
pub struct InferenceEstimator<'a> {
    cluster: &'a ClusterSpec,
}

impl<'a> InferenceEstimator<'a> {
    /// Creates an estimator for `cluster`.
    #[must_use]
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        Self { cluster }
    }

    /// Predicts serving latency and its breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] when the device lacks the serving precision.
    pub fn estimate(&self, cfg: &InferenceConfig) -> Result<InferenceReport, HwError> {
        let device = self.cluster.accelerator();
        let roofline = RooflineModel::new(device);
        let parallelism = Parallelism::tensor_parallel(cfg.tp);
        let plan = CommPlan::new(self.cluster, parallelism, cfg.comm);

        // --- prefill -----------------------------------------------------
        let pre_params = GraphParams::prefill(cfg.batch, cfg.prefill, cfg.tp, cfg.precision);
        let pre_layer_ops = graph::layer_forward_ops(&cfg.model, &pre_params);
        let mut prefill_bd = InferenceBreakdown::default();
        let mut device_flops = FlopCount::ZERO;
        let mut dram_traffic = Bytes::ZERO;
        let mut network_traffic = Bytes::ZERO;
        let layers = cfg.model.layers as f64;
        let (pre_layer, pre_flops, pre_dram) =
            self.ops_breakdown(&roofline, &pre_layer_ops, cfg)?;
        add_scaled(&mut prefill_bd, &pre_layer, layers);
        device_flops += pre_flops * layers;
        dram_traffic += pre_dram * layers;

        // Two all-reduces per layer over the full prompt activations.
        let pre_volume =
            Bytes::new((cfg.batch * cfg.prefill * cfg.model.hidden) as f64 * cfg.precision.bytes());
        prefill_bd.communication += plan.tp_layer_inference(pre_volume) * cfg.model.layers as f64;
        network_traffic += plan.tp_layer_forward_wire_bytes(pre_volume) * layers;

        // Embedding + head once (only the final token's logits matter for
        // generation, but serving stacks compute the full prompt's logits
        // in the summarization pass).
        let pre_extra: Vec<Op> = graph::embedding_ops(&cfg.model, &pre_params)
            .into_iter()
            .chain(graph::head_ops(&cfg.model, &pre_params))
            .collect();
        let (extra_bd, extra_flops, extra_dram) = self.ops_breakdown(&roofline, &pre_extra, cfg)?;
        add_scaled(&mut prefill_bd, &extra_bd, 1.0);
        device_flops += extra_flops;
        dram_traffic += extra_dram;

        let prefill_time = prefill_bd.total();

        // --- decode loop (exact, token by token) ---------------------------
        let mut decode_bd = InferenceBreakdown::default();
        let decode_comm_volume =
            Bytes::new((cfg.batch * cfg.model.hidden) as f64 * cfg.precision.bytes());
        for step in 0..cfg.generate {
            let ctx = cfg.prefill + step;
            let dp = GraphParams::decode(cfg.batch, ctx, cfg.tp, cfg.precision);
            let layer_ops = graph::layer_forward_ops(&cfg.model, &dp);
            let (layer_bd, layer_flops, layer_dram) =
                self.ops_breakdown(&roofline, &layer_ops, cfg)?;
            add_scaled(&mut decode_bd, &layer_bd, layers);
            device_flops += layer_flops * layers;
            dram_traffic += layer_dram * layers;
            decode_bd.communication +=
                plan.tp_layer_inference(decode_comm_volume) * cfg.model.layers as f64;
            network_traffic += plan.tp_layer_forward_wire_bytes(decode_comm_volume) * layers;

            let extra: Vec<Op> = graph::embedding_ops(&cfg.model, &dp)
                .into_iter()
                .chain(graph::head_ops(&cfg.model, &dp))
                .collect();
            let (extra_bd, extra_flops, extra_dram) = self.ops_breakdown(&roofline, &extra, cfg)?;
            add_scaled(&mut decode_bd, &extra_bd, 1.0);
            device_flops += extra_flops;
            dram_traffic += extra_dram;
        }
        let decode_time = decode_bd.total();
        let per_token = decode_time / cfg.generate as f64;

        // --- totals ---------------------------------------------------------
        let mut breakdown = prefill_bd;
        add_scaled(&mut breakdown, &decode_bd, 1.0);
        // `add_scaled` does not sum communication (it is not a KernelCost
        // category); combine explicitly.
        breakdown.communication = prefill_bd.communication + decode_bd.communication;

        let memory = inference_memory(
            &cfg.model,
            cfg.batch,
            cfg.prefill + cfg.generate,
            cfg.tp,
            cfg.precision,
        );

        // --- per-GEMM analyses ------------------------------------------------
        let prefill_gemms = self.gemm_table(&roofline, &pre_layer_ops, cfg)?;
        let final_ctx = cfg.prefill + cfg.generate - 1;
        let decode_params = GraphParams::decode(cfg.batch, final_ctx, cfg.tp, cfg.precision);
        let decode_ops = graph::layer_forward_ops(&cfg.model, &decode_params);
        let decode_gemms = self.gemm_table(&roofline, &decode_ops, cfg)?;

        Ok(InferenceReport {
            total: prefill_time + decode_time,
            prefill: prefill_time,
            decode: decode_time,
            per_token,
            breakdown,
            prefill_breakdown: prefill_bd,
            memory,
            prefill_gemms,
            decode_gemms,
            device_flops,
            dram_traffic,
            network_traffic,
        })
    }

    /// Costs an operator list, accumulating each kernel's time into the
    /// breakdown category of its bound type.
    fn ops_breakdown(
        &self,
        roofline: &RooflineModel<'_>,
        ops: &[Op],
        cfg: &InferenceConfig,
    ) -> Result<(InferenceBreakdown, FlopCount, Bytes), HwError> {
        let mut bd = InferenceBreakdown::default();
        let mut flops = FlopCount::ZERO;
        let mut dram = Bytes::ZERO;
        for op in ops {
            let cost = self.op_cost(roofline, op, cfg)?;
            accumulate(&mut bd, &cost);
            flops += cost.flops;
            dram += cost.dram_traffic();
        }
        Ok((bd, flops, dram))
    }

    fn op_cost(
        &self,
        roofline: &RooflineModel<'_>,
        op: &Op,
        cfg: &InferenceConfig,
    ) -> Result<KernelCost, HwError> {
        match op.kind {
            OpKind::Gemm(g) => roofline.batched_gemm(g, cfg.precision),
            OpKind::Eltwise(e) => Ok(roofline.eltwise(e)),
            OpKind::Flash(fa) => {
                roofline.custom_kernel("flash-attention", fa.flops(), &fa.traffic(), cfg.precision)
            }
        }
    }

    fn gemm_table(
        &self,
        roofline: &RooflineModel<'_>,
        ops: &[Op],
        cfg: &InferenceConfig,
    ) -> Result<Vec<GemmAnalysis>, HwError> {
        let mut rows = Vec::new();
        for op in ops {
            if let OpKind::Gemm(g) = op.kind {
                let cost = roofline.batched_gemm(g, cfg.precision)?;
                rows.push(GemmAnalysis {
                    role: op.role,
                    time: cost.total(),
                    bound: cost.bound(),
                });
            }
        }
        Ok(rows)
    }
}

/// Adds `scale` copies of `src` kernel categories into `dst`
/// (communication is handled separately by the caller).
fn add_scaled(dst: &mut InferenceBreakdown, src: &InferenceBreakdown, scale: f64) {
    dst.compute += src.compute * scale;
    dst.memory += src.memory * scale;
    dst.overhead += src.overhead * scale;
}

/// Files one kernel's roofline time under its bound type, and its fixed
/// overhead under `overhead`.
fn accumulate(bd: &mut InferenceBreakdown, cost: &KernelCost) {
    let t = cost.roofline_time();
    if cost.bound().is_compute() {
        bd.compute += t;
    } else {
        bd.memory += t;
    }
    bd.overhead += cost.overhead;
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_model::presets as models;

    fn a100() -> ClusterSpec {
        presets::dgx_a100_hdr_cluster()
    }

    fn h100() -> ClusterSpec {
        presets::dgx_h100_ndr_cluster()
    }

    #[test]
    fn llama13b_single_a100_near_nvidia() {
        // Table 2: 3884 ms measured, 4263 ms paper-predicted.
        let cluster = a100();
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
        let r = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
        let ms = r.total.millis();
        assert!(
            (3000.0..5000.0).contains(&ms),
            "expected ~3.9-4.3 s, got {ms:.0} ms"
        );
    }

    #[test]
    fn h100_beats_a100_via_hbm3() {
        // §4.3: the A100→H100 inference gain tracks the DRAM upgrade
        // (1.935 → 3.35 TB/s ≈ 1.7x), not the 3.2x compute gain.
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
        let a = a100();
        let h = h100();
        let t_a100 = InferenceEstimator::new(&a).estimate(&cfg).unwrap().total;
        let t_h100 = InferenceEstimator::new(&h).estimate(&cfg).unwrap().total;
        let speedup = t_a100 / t_h100;
        assert!(
            (1.3..2.2).contains(&speedup),
            "speedup {speedup:.2} should track DRAM bandwidth"
        );
    }

    #[test]
    fn decode_is_memory_bound() {
        let cluster = a100();
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
        let r = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
        for g in &r.decode_gemms {
            assert!(
                !g.bound.is_compute(),
                "{}: decode GEMMs must not be compute-bound",
                g.role
            );
        }
        assert!(r.breakdown.memory > r.breakdown.compute);
    }

    #[test]
    fn inference_scales_poorly_with_gpus() {
        // §4.3: "inference scales poorly with the number of GPUs".
        let cluster = a100();
        let est = InferenceEstimator::new(&cluster);
        let t1 = est
            .estimate(&InferenceConfig::nvidia_llama_benchmark(
                models::llama2_13b(),
                1,
            ))
            .unwrap()
            .total;
        let t8 = est
            .estimate(&InferenceConfig::nvidia_llama_benchmark(
                models::llama2_13b(),
                8,
            ))
            .unwrap()
            .total;
        let speedup = t1 / t8;
        assert!(speedup > 1.2, "some speedup expected, got {speedup:.2}");
        assert!(speedup < 5.0, "far from linear scaling, got {speedup:.2}");
    }

    #[test]
    fn communication_dominates_memory_at_8_gpus() {
        // §6.2: "for 8 GPUs, communication time is roughly 1.6x of memory
        // time (for Llama2-13B)".
        let cluster = a100();
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 8);
        let r = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
        let ratio = r.breakdown.communication / r.breakdown.memory;
        assert!(
            (0.8..3.0).contains(&ratio),
            "comm/memory ratio {ratio:.2} should be around 1.6"
        );
    }

    #[test]
    fn larger_batch_raises_throughput_with_modest_latency_growth() {
        // §6.1: "Larger batch sizes improve inference throughput but at the
        // cost of latency. However, the growth of latency with B is rather
        // modest."
        let cluster = a100();
        let est = InferenceEstimator::new(&cluster);
        let b1 = est
            .estimate(&InferenceConfig::new(models::llama2_13b(), 1, 200, 200, 1))
            .unwrap()
            .total;
        let b16 = est
            .estimate(&InferenceConfig::new(models::llama2_13b(), 16, 200, 200, 1))
            .unwrap()
            .total;
        let latency_growth = b16 / b1;
        assert!(
            latency_growth < 4.0,
            "16x batch should cost far less than 16x latency, got {latency_growth:.2}x"
        );
        let throughput_gain = 16.0 / latency_growth;
        assert!(throughput_gain > 4.0);
    }

    #[test]
    fn kv_cache_grows_decode_time() {
        let cluster = a100();
        let est = InferenceEstimator::new(&cluster);
        let short = est
            .estimate(&InferenceConfig::new(models::llama2_7b(), 1, 100, 50, 1))
            .unwrap();
        let long = est
            .estimate(&InferenceConfig::new(models::llama2_7b(), 1, 3000, 50, 1))
            .unwrap();
        assert!(
            long.per_token > short.per_token,
            "longer context reads a bigger KV-cache per token"
        );
    }
}
