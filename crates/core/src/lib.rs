//! **Optimus** — analytical performance modeling and workload analysis of
//! distributed LLM training and inference.
//!
//! This crate is the facade of a workspace that reproduces, as a
//! production-quality Rust library, the methodology of *"Performance
//! Modeling and Workload Analysis of Distributed Large Language Model
//! Training and Inference"* (IISWC 2024):
//!
//! | Layer | Crate | Re-exported as |
//! |-------|-------|----------------|
//! | Typed quantities | `optimus-units` | [`units`] |
//! | Architecture abstraction (GPUs, memory, links) | `optimus-hw` | [`hw`] |
//! | Technology nodes + µArch engine | `optimus-tech` | [`tech`] |
//! | Hierarchical roofline | `optimus-roofline` | [`roofline`] |
//! | Collective cost models | `optimus-collective` | [`collective`] |
//! | LLM configs + operator graphs | `optimus-model` | [`model`] |
//! | Parallelization mapper | `optimus-parallel` | [`parallel`] |
//! | Memory footprints | `optimus-memory` | [`memory`] |
//! | Training estimator | `optimus-train` | [`train`] |
//! | Inference estimator | `optimus-infer` | [`infer`] |
//! | Design-space exploration | `optimus-dse` | [`dse`] |
//! | Energy + TCO models (§7 future work) | `optimus-energy` | [`energy`] |
//!
//! The [`refdata`] module embeds every published number the paper validates
//! against (Tables 1–4 and the figure series), so the experiment harness
//! can report relative errors exactly as the paper's δE columns do.
//!
//! # Quickstart
//!
//! ```
//! use optimus::prelude::*;
//!
//! // How long does one GPT-175B batch take on 64 A100s (Table 1 row)?
//! let cluster = hw::presets::dgx_a100_hdr_cluster();
//! let cfg = TrainingConfig::new(
//!     model::presets::gpt_175b(),
//!     64,
//!     2048,
//!     Parallelism::new(1, 8, 8),
//! )
//! .with_recompute(RecomputeMode::Full { checkpoints_per_stage: None });
//! let report = TrainingEstimator::new(&cluster).estimate(&cfg)?;
//! assert!((10.0..25.0).contains(&report.time_per_batch.secs()));
//! # Ok::<(), optimus::train::TrainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use optimus_collective as collective;
pub use optimus_dse as dse;
pub use optimus_energy as energy;
pub use optimus_hw as hw;
pub use optimus_infer as infer;
pub use optimus_memory as memory;
pub use optimus_model as model;
pub use optimus_parallel as parallel;
pub use optimus_roofline as roofline;
pub use optimus_tech as tech;
pub use optimus_train as train;
pub use optimus_units as units;

pub mod refdata;

/// The types needed by almost every user of the suite.
pub mod prelude {
    pub use crate::hw;
    pub use crate::hw::FailureProcess;
    pub use crate::hw::{Accelerator, ClusterSpec, Precision};
    pub use crate::infer::{
        InferenceConfig, InferenceEstimator, InferenceReport, PreparedInferenceEstimator,
    };
    pub use crate::memory::RecomputeMode;
    pub use crate::model;
    pub use crate::model::ModelConfig;
    pub use crate::parallel::{Parallelism, PipelineSchedule};
    pub use crate::refdata;
    pub use crate::train::{
        CheckpointSpec, CheckpointTier, ElasticReport, PreparedTrainingEstimator, ResilienceReport,
        TierKind, TrainingConfig, TrainingEstimator, TrainingReport,
    };
    pub use crate::units::{Bandwidth, Bytes, FlopCount, FlopThroughput, Ratio, Time};
}

/// Relative error `|predicted − reference| / reference` in percent — the
/// paper's δE metric.
///
/// # Panics
///
/// Panics if `reference` is zero.
#[must_use]
pub fn relative_error_percent(predicted: f64, reference: f64) -> f64 {
    assert!(reference != 0.0, "reference must be non-zero");
    100.0 * (predicted - reference).abs() / reference.abs()
}

#[cfg(test)]
mod tests {
    #[test]
    fn relative_error() {
        assert!((super::relative_error_percent(16.9, 18.1) - 6.63).abs() < 0.01);
        assert_eq!(super::relative_error_percent(5.0, 5.0), 0.0);
    }
}
