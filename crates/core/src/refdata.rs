//! Published reference numbers the paper validates against.
//!
//! Tables 1, 2, and 4 are transcribed verbatim from the paper; Table 3
//! carries the case-study configurations; the Fig. 5 series holds the
//! approximate normalized bar heights implied by the paper's §5.2 text
//! (4× for H100-NDR over A100-HDR, 2× more for NVS, …, ~35× total for
//! B200-NVS-L). These constants are the *measurement substitute* discussed
//! in `DESIGN.md`: the original experiments ran on hardware we cannot
//! execute, so the published results themselves serve as the reference
//! series that our predictions are scored against.

use optimus_memory::RecomputeMode;
use optimus_parallel::Parallelism;

/// One row of Table 1 (training-time validation on A100 systems).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Model preset name (matches `optimus_model::presets`).
    pub model: &'static str,
    /// Total GPUs.
    pub gpus: usize,
    /// Global batch size.
    pub batch: usize,
    /// Data-parallel degree.
    pub dp: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Sequence parallelism enabled.
    pub sp: bool,
    /// Whether recomputation is selective (`true`) or full (`false`).
    pub selective: bool,
    /// Reported training time per batch (Megatron/Korthikanti), seconds.
    pub t_ref_secs: f64,
    /// The paper's own prediction, seconds.
    pub t_paper_secs: f64,
}

impl Table1Row {
    /// The row's parallelism.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.dp, self.tp, self.pp).with_sp(self.sp)
    }

    /// The row's recomputation mode.
    #[must_use]
    pub fn recompute(&self) -> RecomputeMode {
        if self.selective {
            RecomputeMode::Selective
        } else {
            RecomputeMode::Full {
                checkpoints_per_stage: None,
            }
        }
    }

    /// The paper's relative error for this row, percent.
    #[must_use]
    pub fn paper_error_percent(&self) -> f64 {
        crate::relative_error_percent(self.t_paper_secs, self.t_ref_secs)
    }
}

/// Table 1, transcribed. Note: the GPT-22B rows list 8 GPUs, which fixes
/// PP = 1 (TP = 8 fills the machine); the "1-8-8-*" string printed in the
/// paper for those rows is inconsistent with its own #GPUs column, and the
/// source experiments (Korthikanti et al.) used TP = 8 on one node.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let r = |model, gpus, batch, dp, tp, pp, sp, selective, t_ref_secs, t_paper_secs| Table1Row {
        model,
        gpus,
        batch,
        dp,
        tp,
        pp,
        sp,
        selective,
        t_ref_secs,
        t_paper_secs,
    };
    vec![
        // --- TP and PP only, full recomputation -------------------------
        r("GPT-22B", 8, 4, 1, 8, 1, false, false, 1.4, 1.4),
        r("GPT-175B", 64, 64, 1, 8, 8, false, false, 18.1, 16.9),
        r("GPT-530B", 280, 280, 1, 8, 35, false, false, 49.1, 46.8),
        r("GPT-1008B", 512, 512, 1, 8, 64, false, false, 94.4, 87.9),
        // --- TP, PP and SP, selective recomputation -----------------------
        r("GPT-22B", 8, 4, 1, 8, 1, true, true, 1.1, 1.1),
        r("GPT-175B", 64, 64, 1, 8, 8, true, true, 13.8, 12.9),
        r("GPT-530B", 280, 280, 1, 8, 35, true, true, 37.8, 35.5),
        r("GPT-1008B", 512, 512, 1, 8, 64, true, true, 71.5, 69.1),
        // --- DP, TP and PP, full recomputation ------------------------------
        r("GPT-310B", 1920, 2160, 15, 8, 16, false, false, 37.6, 34.1),
        r("GPT-530B", 2520, 2520, 9, 8, 35, false, false, 54.2, 51.2),
        r(
            "GPT-1008B",
            3072,
            3072,
            6,
            8,
            64,
            false,
            false,
            102.4,
            100.7,
        ),
    ]
}

/// One row of Table 2 (inference-latency validation, B = 1, 200-token
/// prompt, 200 generated tokens).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Model preset name.
    pub model: &'static str,
    /// GPUs = TP degree.
    pub tp: usize,
    /// NVIDIA-reported latency on A100, milliseconds.
    pub t_nvidia_a100_ms: f64,
    /// The paper's prediction on A100, milliseconds.
    pub t_paper_a100_ms: f64,
    /// NVIDIA-reported latency on H100, milliseconds.
    pub t_nvidia_h100_ms: f64,
    /// The paper's prediction on H100, milliseconds.
    pub t_paper_h100_ms: f64,
}

/// Table 2, transcribed.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    let r = |model, tp, a_nv, a_pred, h_nv, h_pred| Table2Row {
        model,
        tp,
        t_nvidia_a100_ms: a_nv,
        t_paper_a100_ms: a_pred,
        t_nvidia_h100_ms: h_nv,
        t_paper_h100_ms: h_pred,
    };
    vec![
        r("Llama2-70B", 8, 4735.0, 4284.0, 3202.0, 3147.0),
        r("Llama2-70B", 4, 6403.0, 6019.0, 4116.0, 3986.0),
        r("Llama2-70B", 2, 10500.0, 10042.0, 6267.0, 6186.0),
        r("Llama2-13B", 8, 1693.0, 1514.0, 1201.0, 1209.0),
        r("Llama2-13B", 4, 1894.0, 1748.0, 1431.0, 1258.0),
        r("Llama2-13B", 2, 2499.0, 2492.0, 1717.0, 1617.0),
        r("Llama2-13B", 1, 3884.0, 4263.0, 2396.0, 2599.0),
        r("Llama2-7B", 8, 1187.0, 1096.0, 828.0, 899.0),
        r("Llama2-7B", 4, 1280.0, 1166.0, 924.0, 869.0),
        r("Llama2-7B", 2, 1544.0, 1526.0, 1143.0, 1016.0),
        r("Llama2-7B", 1, 2190.0, 2472.0, 1440.0, 1522.0),
    ]
}

/// A case-study configuration of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseConfig {
    /// Model preset name.
    pub model: &'static str,
    /// Default batch size.
    pub batch: usize,
    /// Enlarged batch ("L" configurations exploiting big DRAM).
    pub large_batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// DP degree.
    pub dp: usize,
    /// TP (= SP) degree.
    pub tp: usize,
    /// PP degree.
    pub pp: usize,
}

impl CaseConfig {
    /// The configured parallelism (SP always on in the case studies).
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.dp, self.tp, self.pp).with_sp(true)
    }

    /// Total GPUs.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.dp * self.tp * self.pp
    }
}

/// Table 3: the GPT-175B GPU-generation study (Fig. 5).
#[must_use]
pub fn case_gpt175b() -> CaseConfig {
    CaseConfig {
        model: "GPT-175B",
        batch: 1024,
        large_batch: 4096,
        seq: 2048,
        dp: 128,
        tp: 8,
        pp: 8,
    }
}

/// Table 3: the GPT-7B technology-node study (Figs. 6–7), 1024 GPUs.
#[must_use]
pub fn case_gpt7b() -> CaseConfig {
    CaseConfig {
        model: "GPT-7B",
        batch: 512,
        large_batch: 512,
        seq: 2048,
        dp: 64,
        tp: 4,
        pp: 4,
    }
}

/// Bound type in a reference table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefBound {
    /// Compute-bound.
    Compute,
    /// Memory-bound.
    Memory,
}

/// One row of Table 4 (per-GEMM analysis, Llama2-13B prefill of 200
/// tokens, B = 1, half precision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// The paper's GEMM-function label.
    pub gemm: &'static str,
    /// A100 time, microseconds.
    pub a100_us: f64,
    /// A100 bound type.
    pub a100_bound: RefBound,
    /// H100 time, microseconds.
    pub h100_us: f64,
    /// H100 bound type.
    pub h100_bound: RefBound,
}

/// Table 4, transcribed.
#[must_use]
pub fn table4() -> Vec<Table4Row> {
    use RefBound::{Compute, Memory};
    let r = |gemm, a100_us, a100_bound, h100_us, h100_bound| Table4Row {
        gemm,
        a100_us,
        a100_bound,
        h100_us,
        h100_bound,
    };
    vec![
        r("merged-head X.WK/Q/V = K,Q,V", 82.0, Compute, 32.0, Memory),
        r("single head Q.KT = R", 3.0, Memory, 2.0, Memory),
        r("single head softmax(R).V = Z", 3.0, Memory, 2.0, Memory),
        r("Z.W = O", 42.0, Compute, 17.0, Memory),
        r("O.WMLP1 = O1", 216.0, Compute, 81.0, Memory),
        r("O1.WMLP2 = O2", 109.0, Compute, 42.0, Memory),
    ]
}

/// A Fig. 5 system configuration and its approximate published speedup
/// over the A100-HDR baseline (digitized from §5.2's multipliers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Configuration label as printed on the figure's x-axis.
    pub label: &'static str,
    /// Approximate published speedup over A100-HDR.
    pub speedup_vs_a100: f64,
    /// Whether the "L" (large-batch) configuration applies.
    pub large_batch: bool,
}

/// The Fig. 5 series. The paper's text gives the multiplier chain; bar
/// heights are approximate (±20%) digitizations and are used for *shape*
/// comparison only.
#[must_use]
pub fn fig5_series() -> Vec<Fig5Point> {
    vec![
        Fig5Point {
            label: "A100-HDR",
            speedup_vs_a100: 1.0,
            large_batch: false,
        },
        Fig5Point {
            label: "H100-NDR",
            speedup_vs_a100: 4.0,
            large_batch: false,
        },
        Fig5Point {
            label: "H100-NVS",
            speedup_vs_a100: 8.0,
            large_batch: false,
        },
        Fig5Point {
            label: "H200-NVS-L",
            speedup_vs_a100: 24.0,
            large_batch: true,
        },
        Fig5Point {
            label: "B200-NDR",
            speedup_vs_a100: 12.0,
            large_batch: false,
        },
        Fig5Point {
            label: "B200-NVS",
            speedup_vs_a100: 28.0,
            large_batch: false,
        },
        Fig5Point {
            label: "B200-NVS-L",
            speedup_vs_a100: 35.0,
            large_batch: true,
        },
    ]
}

/// §6.2's observations for Fig. 9, used as reference checks: on 8 A100s
/// serving Llama2-13B, communication ≈ 1.6× memory time; NV3 → NV4 buys a
/// ~12% communication gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Reference {
    /// Communication-to-memory time ratio at 8 GPUs.
    pub comm_to_memory_8gpu: f64,
    /// Fractional communication improvement from NVLink3 to NVLink4.
    pub nv4_comm_gain: f64,
}

/// The Fig. 9 reference observations.
#[must_use]
pub fn fig9_reference() -> Fig9Reference {
    Fig9Reference {
        comm_to_memory_8gpu: 1.6,
        nv4_comm_gain: 0.12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_gpu_counts_are_consistent() {
        for row in table1() {
            assert_eq!(
                row.dp * row.tp * row.pp,
                row.gpus,
                "{} ({}-{}-{})",
                row.model,
                row.dp,
                row.tp,
                row.pp
            );
        }
    }

    #[test]
    fn table1_paper_errors_below_10_percent() {
        // §4.2: "the relative errors are mostly well below 10%".
        for row in table1() {
            assert!(
                row.paper_error_percent() < 10.0,
                "{}: paper error {:.1}%",
                row.model,
                row.paper_error_percent()
            );
        }
    }

    #[test]
    fn table2_paper_errors_below_13_percent() {
        // §4.3: "we match the actual reported numbers within a relative
        // error of 13%".
        for row in table2() {
            let a = crate::relative_error_percent(row.t_paper_a100_ms, row.t_nvidia_a100_ms);
            let h = crate::relative_error_percent(row.t_paper_h100_ms, row.t_nvidia_h100_ms);
            assert!(a <= 13.0 && h <= 13.0, "{} TP{}", row.model, row.tp);
        }
    }

    #[test]
    fn case_configs_match_table3() {
        assert_eq!(case_gpt175b().gpus(), 8192);
        assert_eq!(case_gpt7b().gpus(), 1024);
    }

    #[test]
    fn table4_h100_is_all_memory_bound() {
        // §6.1: "On H100, all the GEMMs in both prefill and generation
        // phases are DRAM-bound."
        for row in table4() {
            assert_eq!(row.h100_bound, RefBound::Memory, "{}", row.gemm);
        }
    }

    #[test]
    fn fig5_series_is_monotone_in_the_text_chain() {
        let s = fig5_series();
        assert_eq!(s.len(), 7);
        assert_eq!(s[0].speedup_vs_a100, 1.0);
        assert!(s.last().unwrap().speedup_vs_a100 >= 30.0);
    }
}
