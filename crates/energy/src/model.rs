//! Per-event energy accounting.

use optimus_infer::InferenceReport;
use optimus_tech::{ScalingRule, TechNode};
use optimus_train::TrainingReport;
use optimus_units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// Energy coefficients of one accelerator, decomposed by event type.
///
/// Calibration sanity (A100 class): at full tilt an A100 executes
/// ~2×10^14 effective FLOP/s and streams ~1.5 TB/s from HBM2e; with
/// 0.8 pJ/FLOP and 35 pJ/DRAM-byte the dynamic draw is ~160 + ~55 W, which
/// together with a ~130 W static floor lands near the 400 W TDP — the
/// right first-order split between compute, memory, and leakage/fan/IO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic energy per floating-point operation, picojoules.
    pub compute_pj_per_flop: f64,
    /// Energy per byte moved to/from DRAM, picojoules.
    pub dram_pj_per_byte: f64,
    /// Energy per byte injected into the network fabric, picojoules.
    pub network_pj_per_byte: f64,
    /// Always-on power per device (leakage, clocks, fans, idle HBM).
    pub static_power: Power,
}

/// Energy of one workload execution, by category.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EnergyReport {
    /// Arithmetic (tensor-core) energy across the system.
    pub compute: Energy,
    /// DRAM access energy across the system.
    pub dram: Energy,
    /// Network energy across the system.
    pub network: Energy,
    /// Static energy: per-device floor × execution time × device count.
    pub static_floor: Energy,
}

impl EnergyReport {
    /// Total energy.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.compute + self.dram + self.network + self.static_floor
    }

    /// Mean system power over the execution.
    #[must_use]
    pub fn mean_power(&self, duration: Time) -> Power {
        Power::new(self.total().joules() / duration.secs().max(1e-12))
    }

    /// Activity-proportional (non-static) energy: compute + DRAM +
    /// network.
    #[must_use]
    pub fn dynamic(&self) -> Energy {
        self.compute + self.dram + self.network
    }

    /// Energy burned during `waste` extra seconds per useful second of
    /// this execution (checkpoint writes, rework, restarts), with the
    /// dynamic draw derated to `util` of its busy-time rate. The static
    /// floor always burns — idle GPUs still power HBM refresh, fans, and
    /// leakage — so `util = 1` reproduces full-burn inflation and
    /// `util = 0` prices overhead time at the static floor alone.
    #[must_use]
    pub fn overhead_energy(&self, waste: f64, util: f64) -> Energy {
        (self.dynamic() * util + self.static_floor) * waste
    }
}

impl core::fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "compute {} + dram {} + network {} + static {} = {}",
            self.compute,
            self.dram,
            self.network,
            self.static_floor,
            self.total()
        )
    }
}

impl EnergyModel {
    /// A100-class coefficients (N7 logic, HBM2e).
    #[must_use]
    pub fn a100_class() -> Self {
        Self {
            compute_pj_per_flop: 0.8,
            dram_pj_per_byte: 35.0,
            network_pj_per_byte: 60.0,
            static_power: Power::from_watts(130.0),
        }
    }

    /// H100-class coefficients (N5 logic, HBM3): one power-rule step below
    /// A100 on compute, slightly cheaper HBM3 I/O per byte.
    #[must_use]
    pub fn h100_class() -> Self {
        Self {
            compute_pj_per_flop: 0.8 / 1.3,
            dram_pj_per_byte: 30.0,
            network_pj_per_byte: 50.0,
            static_power: Power::from_watts(160.0),
        }
    }

    /// B200-class coefficients (N4-class logic, HBM3e): one power-rule
    /// step below H100 on compute, slightly cheaper HBM3e I/O per byte.
    /// The canonical Blackwell model — used by both the TCO experiments
    /// and the strategy sweep so their energy figures agree.
    #[must_use]
    pub fn b200_class() -> Self {
        let h100 = Self::h100_class();
        Self {
            compute_pj_per_flop: h100.compute_pj_per_flop / 1.3,
            dram_pj_per_byte: 28.0,
            ..h100
        }
    }

    /// Coefficients at an arbitrary technology node: compute energy follows
    /// the iso-performance power rule (÷1.3 per step from the N7 anchor);
    /// DRAM and network energy are technology-of-their-own and stay fixed
    /// unless overridden.
    #[must_use]
    pub fn at_node(node: TechNode) -> Self {
        let rule = ScalingRule::iso_performance();
        let factor = rule.power_capacity_factor(TechNode::N7, node);
        let base = Self::a100_class();
        Self {
            compute_pj_per_flop: base.compute_pj_per_flop / factor,
            ..base
        }
    }

    /// Scales the per-FLOP energy for a narrower arithmetic format:
    /// multiplier/adder energy tracks operand width to first order, so an
    /// FP8 FLOP costs about half an FP16 FLOP and FP4 a quarter — the
    /// energy side of the transformer-engine story.
    #[must_use]
    pub fn scaled_for_precision(mut self, precision: optimus_hw::Precision) -> Self {
        self.compute_pj_per_flop *= precision.bytes() / 2.0;
        self
    }

    /// Energy of one training batch on `gpus` devices.
    #[must_use]
    pub fn training_energy(&self, report: &TrainingReport, gpus: usize) -> EnergyReport {
        assert!(gpus > 0, "a system has at least one device");
        let n = gpus as f64;
        EnergyReport {
            compute: Energy::new(report.device_flops.get() * self.compute_pj_per_flop * 1e-12 * n),
            dram: Energy::new(report.dram_traffic.bytes() * self.dram_pj_per_byte * 1e-12 * n),
            network: Energy::new(
                report.network_traffic.bytes() * self.network_pj_per_byte * 1e-12 * n,
            ),
            static_floor: self.static_power * report.time_per_batch * n,
        }
    }

    /// Energy of one inference request (prefill + generation) on `gpus`
    /// devices.
    #[must_use]
    pub fn inference_energy(&self, report: &InferenceReport, gpus: usize) -> EnergyReport {
        assert!(gpus > 0, "a system has at least one device");
        let n = gpus as f64;
        EnergyReport {
            compute: Energy::new(report.device_flops.get() * self.compute_pj_per_flop * 1e-12 * n),
            dram: Energy::new(report.dram_traffic.bytes() * self.dram_pj_per_byte * 1e-12 * n),
            network: Energy::new(
                report.network_traffic.bytes() * self.network_pj_per_byte * 1e-12 * n,
            ),
            static_floor: self.static_power * report.total * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_infer::{InferenceConfig, InferenceEstimator};
    use optimus_model::presets as models;
    use optimus_parallel::Parallelism;
    use optimus_train::{TrainingConfig, TrainingEstimator};

    fn train_report() -> TrainingReport {
        let cluster = presets::dgx_a100_hdr_cluster();
        let cfg = TrainingConfig::new(models::gpt_7b(), 16, 2048, Parallelism::new(1, 8, 1));
        TrainingEstimator::new(&cluster).estimate(&cfg).unwrap()
    }

    #[test]
    fn training_power_is_physically_plausible() {
        let report = train_report();
        let energy = EnergyModel::a100_class().training_energy(&report, 8);
        let per_gpu = energy.mean_power(report.time_per_batch).watts() / 8.0;
        // Between idle floor and ~TDP.
        assert!(
            (130.0..450.0).contains(&per_gpu),
            "mean per-GPU power {per_gpu:.0} W"
        );
    }

    #[test]
    fn compute_dominates_training_energy() {
        // Training is compute-intensive: arithmetic outweighs DRAM traffic.
        let report = train_report();
        let energy = EnergyModel::a100_class().training_energy(&report, 8);
        assert!(energy.compute > energy.dram);
    }

    #[test]
    fn dram_dominates_inference_dynamic_energy() {
        // Decode streams weights: DRAM energy beats compute energy.
        let cluster = presets::dgx_a100_hdr_cluster();
        let cfg = InferenceConfig::nvidia_llama_benchmark(models::llama2_13b(), 1);
        let report = InferenceEstimator::new(&cluster).estimate(&cfg).unwrap();
        let energy = EnergyModel::a100_class().inference_energy(&report, 1);
        assert!(
            energy.dram > energy.compute,
            "dram {} vs compute {}",
            energy.dram,
            energy.compute
        );
    }

    #[test]
    fn node_scaling_cheapens_compute_only() {
        let n7 = EnergyModel::at_node(TechNode::N7);
        let n3 = EnergyModel::at_node(TechNode::N3);
        assert!(n3.compute_pj_per_flop < n7.compute_pj_per_flop);
        assert_eq!(n3.dram_pj_per_byte, n7.dram_pj_per_byte);
        // Two steps at 1.3x each.
        let ratio = n7.compute_pj_per_flop / n3.compute_pj_per_flop;
        assert!((ratio - 1.69).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_linearly_with_system_size() {
        let report = train_report();
        let model = EnergyModel::a100_class();
        let e8 = model.training_energy(&report, 8).total();
        let e16 = model.training_energy(&report, 16).total();
        assert!((e16.joules() / e8.joules() - 2.0).abs() < 1e-9);
    }
}
