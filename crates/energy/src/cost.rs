//! Total-cost-of-operation accounting.

use crate::EnergyReport;
use optimus_infer::InferenceReport;
use optimus_train::TrainingReport;
use optimus_units::Time;
use serde::{Deserialize, Serialize};

/// Seconds per (365-day) year.
const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Capital and operational cost parameters of a GPU system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Street price of one accelerator, USD.
    pub gpu_price_usd: f64,
    /// Multiplier covering the rest of the system (host, fabric, storage,
    /// facility share) on top of the accelerators.
    pub system_overhead: f64,
    /// Capital amortization horizon, years.
    pub amortization_years: f64,
    /// Electricity price, USD per kWh.
    pub electricity_usd_per_kwh: f64,
    /// Power usage effectiveness of the data center (facility watts per IT
    /// watt).
    pub pue: f64,
}

impl CostModel {
    /// A100-era system economics (~15 k$/GPU).
    #[must_use]
    pub fn a100_system() -> Self {
        Self {
            gpu_price_usd: 15_000.0,
            system_overhead: 1.5,
            amortization_years: 4.0,
            electricity_usd_per_kwh: 0.08,
            pue: 1.3,
        }
    }

    /// H100-era system economics (~30 k$/GPU).
    #[must_use]
    pub fn h100_system() -> Self {
        Self {
            gpu_price_usd: 30_000.0,
            ..Self::a100_system()
        }
    }

    /// B200-era system economics (~40 k$/GPU).
    #[must_use]
    pub fn b200_system() -> Self {
        Self {
            gpu_price_usd: 40_000.0,
            ..Self::a100_system()
        }
    }

    /// Amortized capital cost of `gpus` accelerators per second of use.
    #[must_use]
    pub fn capex_usd_per_second(&self, gpus: usize) -> f64 {
        self.gpu_price_usd * self.system_overhead * gpus as f64
            / (self.amortization_years * SECONDS_PER_YEAR)
    }

    /// Electricity cost of an energy report, USD.
    #[must_use]
    pub fn energy_usd(&self, energy: &EnergyReport) -> f64 {
        self.energy_usd_joules(energy.total().joules())
    }

    /// Electricity cost of a raw joule count, USD — for callers that
    /// assemble energy totals outside an [`EnergyReport`] (e.g. the
    /// sweep's derated checkpoint-overhead pricing).
    #[must_use]
    pub fn energy_usd_joules(&self, joules: f64) -> f64 {
        let kwh = joules / 3.6e6;
        kwh * self.pue * self.electricity_usd_per_kwh
    }

    /// TCO of one training batch.
    #[must_use]
    pub fn training_cost(
        &self,
        report: &TrainingReport,
        energy: &EnergyReport,
        gpus: usize,
    ) -> TcoReport {
        self.cost_of(report.time_per_batch, energy, gpus)
    }

    /// TCO of one inference request.
    #[must_use]
    pub fn inference_cost(
        &self,
        report: &InferenceReport,
        energy: &EnergyReport,
        gpus: usize,
    ) -> TcoReport {
        self.cost_of(report.total, energy, gpus)
    }

    /// TCO of an arbitrary execution window.
    #[must_use]
    pub fn cost_of(&self, duration: Time, energy: &EnergyReport, gpus: usize) -> TcoReport {
        let capex_usd = self.capex_usd_per_second(gpus) * duration.secs();
        let energy_usd = self.energy_usd(energy);
        TcoReport {
            capex_usd,
            energy_usd,
            total_usd: capex_usd + energy_usd,
            duration,
        }
    }
}

/// The cost of one execution window, split into capital and energy shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoReport {
    /// Amortized capital share, USD.
    pub capex_usd: f64,
    /// Electricity share (with PUE), USD.
    pub energy_usd: f64,
    /// Total, USD.
    pub total_usd: f64,
    /// The execution window the cost covers.
    pub duration: Time,
}

impl TcoReport {
    /// *Performance per TCO*: work units per dollar, given the work
    /// completed in the window (e.g. samples for training, requests or
    /// tokens for inference).
    #[must_use]
    pub fn perf_per_usd(&self, work_units: f64) -> f64 {
        work_units / self.total_usd.max(f64::MIN_POSITIVE)
    }
}

impl core::fmt::Display for TcoReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "${:.4} (capex ${:.4} + energy ${:.4}) over {}",
            self.total_usd, self.capex_usd, self.energy_usd, self.duration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnergyModel;
    use optimus_hw::presets;
    use optimus_model::presets as models;
    use optimus_parallel::Parallelism;
    use optimus_train::{TrainingConfig, TrainingEstimator};

    #[test]
    fn capex_math() {
        let m = CostModel::a100_system();
        // 8 GPUs × $15k × 1.5 overhead / 4 years.
        let per_year = m.capex_usd_per_second(8) * SECONDS_PER_YEAR;
        assert!((per_year - 8.0 * 15_000.0 * 1.5 / 4.0).abs() < 1.0);
    }

    #[test]
    fn capex_dominates_at_current_electricity_prices() {
        // A well-known TCO fact this model must reproduce: amortized
        // hardware, not electricity, is the larger share for GPU clusters.
        let cluster = presets::dgx_a100_hdr_cluster();
        let cfg = TrainingConfig::new(models::gpt_7b(), 16, 2048, Parallelism::new(1, 8, 1));
        let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
        let energy = EnergyModel::a100_class().training_energy(&report, 8);
        let cost = CostModel::a100_system().training_cost(&report, &energy, 8);
        assert!(cost.capex_usd > cost.energy_usd);
    }

    #[test]
    fn gpt3_training_run_cost_order_of_magnitude() {
        // End-to-end sanity against the paper's §1 framing ("training a
        // GPT-3 transformer model costs around $10M"). That estimate is
        // cloud-priced (~$1.5+/GPU-hour on 2020 hardware); our *owned-
        // hardware* TCO (~$0.65/A100-hour amortized) should come out a
        // small integer factor below it, in the high hundreds of
        // thousands of dollars for a 300 B-token run.
        let cluster = presets::dgx_a100_hdr_cluster();
        let p = Parallelism::new(16, 8, 8).with_sp(true);
        let cfg = TrainingConfig::new(models::gpt_175b(), 1024, 2048, p)
            .with_recompute(optimus_memory::RecomputeMode::Selective);
        let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
        let gpus = p.total_gpus();
        let energy = EnergyModel::a100_class().training_energy(&report, gpus);
        let per_batch = CostModel::a100_system().training_cost(&report, &energy, gpus);

        let tokens_per_batch = 1024.0 * 2048.0;
        let batches = 300e9 / tokens_per_batch;
        let owned_usd = per_batch.total_usd * batches;
        assert!(
            (2e5..2e6).contains(&owned_usd),
            "owned-hardware GPT-3 run cost ${:.2}M out of band",
            owned_usd / 1e6
        );
        // At a $1.5/GPU-hour cloud rate the A100 run costs around a
        // million dollars; the paper's "$10M" figure is the original
        // V100-era estimate — V100s deliver roughly 8x fewer effective
        // FLOP/s, which recovers the single-digit-millions band.
        let gpu_hours = report.time_per_batch.secs() * batches * gpus as f64 / 3600.0;
        let cloud_usd = gpu_hours * 1.5;
        assert!(
            (4e5..3e6).contains(&cloud_usd),
            "cloud-priced A100 GPT-3 run ${:.2}M out of band",
            cloud_usd / 1e6
        );
        let v100_era_usd = cloud_usd * 8.0;
        assert!(
            (3e6..3e7).contains(&v100_era_usd),
            "V100-era estimate ${:.1}M should match the paper's ~$10M",
            v100_era_usd / 1e6
        );
    }

    #[test]
    fn perf_per_usd_is_inverse_of_cost() {
        let report = TcoReport {
            capex_usd: 1.0,
            energy_usd: 1.0,
            total_usd: 2.0,
            duration: Time::from_secs(1.0),
        };
        assert!((report.perf_per_usd(10.0) - 5.0).abs() < 1e-12);
    }
}
