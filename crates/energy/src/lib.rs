//! Energy and total-cost-of-operation (TCO) models.
//!
//! The paper's conclusion (§7) names this as the framework's next step:
//! *"integrating a cost and an energy model into the current performance
//! modeling framework, and performing complete performance per TCO
//! analysis."* This crate implements that extension on top of the
//! energy-relevant totals the estimators already report (executed FLOPs,
//! DRAM traffic, network wire traffic, execution time):
//!
//! * [`EnergyModel`] — per-event energies (pJ/FLOP, pJ/DRAM-byte,
//!   pJ/network-byte) plus a static power floor, with technology-node
//!   scaling following the same 1.3×-per-step power rule as the µArch
//!   engine;
//! * [`CostModel`] — amortized capital cost plus electricity (with PUE),
//!   yielding $ per training batch / per 1k inference requests and the
//!   paper's *performance per TCO* metric.
//!
//! ```
//! use optimus_energy::{CostModel, EnergyModel};
//! use optimus_hw::presets;
//! use optimus_model::presets as models;
//! use optimus_parallel::Parallelism;
//! use optimus_train::{TrainingConfig, TrainingEstimator};
//!
//! let cluster = presets::dgx_a100_hdr_cluster();
//! let cfg = TrainingConfig::new(models::gpt_7b(), 16, 2048, Parallelism::new(1, 8, 1));
//! let report = TrainingEstimator::new(&cluster).estimate(&cfg).unwrap();
//!
//! let energy = EnergyModel::a100_class().training_energy(&report, 8);
//! let cost = CostModel::a100_system().training_cost(&report, &energy, 8);
//! assert!(energy.total().joules() > 0.0);
//! assert!(cost.total_usd > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod model;

pub use cost::{CostModel, TcoReport};
pub use model::{EnergyModel, EnergyReport};
