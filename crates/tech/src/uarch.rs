//! The micro-architecture synthesis engine.

use crate::{ScalingRule, TechNode};
use optimus_hw::memtech::DramTechnology;
use optimus_hw::{Accelerator, MemoryLevel, MemoryLevelKind};
use optimus_units::{Area, Power, Ratio};
use serde::{Deserialize, Serialize};

/// The silicon resource budget of one accelerator die (§3.6: "a given
/// budget and allocation of hardware resources (i.e., area, power, and chip
/// perimeter)").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Die area.
    pub area: Area,
    /// Power envelope.
    pub power: Power,
}

impl ResourceBudget {
    /// A reticle-class data-center GPU budget (A100: 826 mm², 400 W).
    #[must_use]
    pub fn datacenter_gpu() -> Self {
        Self {
            area: Area::from_mm2(826.0),
            power: Power::from_watts(400.0),
        }
    }
}

/// How the budget is split between components. The remainder after compute
/// and SRAM is I/O (DRAM PHYs, NVLink SerDes) and overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Fraction of area/power for the compute (tensor-core) partition.
    pub compute: Ratio,
    /// Fraction of area for the on-chip SRAM (L2) partition.
    pub sram: Ratio,
}

impl Allocation {
    /// Creates an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the fractions sum above 1.
    #[must_use]
    pub fn new(compute: Ratio, sram: Ratio) -> Self {
        assert!(
            compute.get() + sram.get() <= 1.0,
            "allocation fractions exceed the budget: {} + {}",
            compute,
            sram
        );
        Self { compute, sram }
    }

    /// The A100-like reference split: ~45% compute, ~20% SRAM, rest I/O.
    #[must_use]
    pub fn reference() -> Self {
        Self::new(Ratio::new(0.45), Ratio::new(0.20))
    }

    /// Fraction left for I/O and overhead.
    #[must_use]
    pub fn io(&self) -> Ratio {
        Ratio::saturating(1.0 - self.compute.get() - self.sram.get())
    }
}

impl Default for Allocation {
    fn default() -> Self {
        Self::reference()
    }
}

/// Synthesizes accelerator descriptions from technology parameters.
///
/// The engine is **calibrated** against a real accelerator at a reference
/// node (the paper anchors its technology sweep to A100-class on-chip
/// specifications): the baseline's throughput/capacities correspond to the
/// reference budget and allocation, and any other `(node, budget,
/// allocation)` point scales from there:
///
/// * compute throughput scales by the *minimum* of the area-capacity and
///   power-capacity factors (power binds on advanced nodes — the saturation
///   mechanism of Fig. 6);
/// * L2 capacity scales with SRAM area × SRAM density; its bandwidth scales
///   with the number of banks (∝ SRAM area share) times the logic factor;
/// * shared-memory/L1 resources ride with the compute partition;
/// * DRAM bandwidth/capacity come from the chosen [`DramTechnology`] —
///   off-chip memory is PHY/perimeter-bound, not logic-node-bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UArchEngine {
    baseline: Accelerator,
    baseline_node: TechNode,
    baseline_budget: ResourceBudget,
    baseline_alloc: Allocation,
    scaling: ScalingRule,
}

impl UArchEngine {
    /// Creates an engine calibrated so that synthesizing at
    /// `(baseline_node, baseline_budget, baseline_alloc)` reproduces
    /// `baseline` exactly.
    #[must_use]
    pub fn calibrated(
        baseline: Accelerator,
        baseline_node: TechNode,
        baseline_budget: ResourceBudget,
        baseline_alloc: Allocation,
    ) -> Self {
        Self {
            baseline,
            baseline_node,
            baseline_budget,
            baseline_alloc,
            scaling: ScalingRule::iso_performance(),
        }
    }

    /// The paper's anchor: an A100 at N7 with a data-center budget and the
    /// reference allocation.
    #[must_use]
    pub fn a100_at_n7() -> Self {
        Self::calibrated(
            optimus_hw::presets::a100_sxm_80gb(),
            TechNode::N7,
            ResourceBudget::datacenter_gpu(),
            Allocation::reference(),
        )
    }

    /// The calibration baseline device.
    #[must_use]
    pub fn baseline(&self) -> &Accelerator {
        &self.baseline
    }

    /// Synthesizes the accelerator at `node` under `budget`/`alloc`, with
    /// off-chip memory `dram`.
    #[must_use]
    pub fn synthesize(
        &self,
        node: TechNode,
        budget: ResourceBudget,
        alloc: Allocation,
        dram: DramTechnology,
    ) -> Accelerator {
        let base = &self.baseline;
        let from = self.baseline_node;

        // --- compute partition -------------------------------------------
        let area_share = (alloc.compute.get() / self.baseline_alloc.compute.get())
            * (budget.area / self.baseline_budget.area);
        let power_share = (alloc.compute.get() / self.baseline_alloc.compute.get())
            * (budget.power / self.baseline_budget.power);
        let area_factor = area_share * self.scaling.area_capacity_factor(from, node);
        let power_factor = power_share * self.scaling.power_capacity_factor(from, node);
        let compute_factor = area_factor.min(power_factor);
        let compute = base.compute.scaled(compute_factor);

        // --- on-chip memory -------------------------------------------------
        let sram_share = (alloc.sram.get() / self.baseline_alloc.sram.get())
            * (budget.area / self.baseline_budget.area);
        let sram_capacity_factor = sram_share * self.scaling.sram_density_factor(from, node);
        // Bank count grows with SRAM area; wires ride the logic node.
        let sram_bw_factor = sram_share * self.scaling.area_capacity_factor(from, node).sqrt();

        let on_chip = base
            .on_chip
            .iter()
            .map(|level| match level.kind {
                MemoryLevelKind::L2 => MemoryLevel::new(
                    level.kind,
                    level.capacity * sram_capacity_factor,
                    level.bandwidth * sram_bw_factor,
                ),
                // Shared memory and registers ride with the compute units.
                _ => MemoryLevel::new(
                    level.kind,
                    level.capacity * compute_factor,
                    level.bandwidth * compute_factor,
                ),
            })
            .collect();

        // --- off-chip memory --------------------------------------------------
        let dram_level = MemoryLevel::dram(dram.typical_capacity(), dram.bandwidth());

        Accelerator::new(
            format!("{}@{node}-{dram}", base.name),
            compute,
            on_chip,
            dram_level,
        )
        .with_calibration(base.calibration.clone())
    }

    /// Synthesizes at the baseline budget/allocation — the pure
    /// node-scaling sweep of Fig. 6 before DSE optimization.
    #[must_use]
    pub fn synthesize_at_node(&self, node: TechNode, dram: DramTechnology) -> Accelerator {
        self.synthesize(node, self.baseline_budget, self.baseline_alloc, dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::Precision;

    #[test]
    fn baseline_roundtrips() {
        let engine = UArchEngine::a100_at_n7();
        let synth = engine.synthesize(
            TechNode::N7,
            ResourceBudget::datacenter_gpu(),
            Allocation::reference(),
            DramTechnology::Hbm2e,
        );
        let base_peak = engine.baseline().peak(Precision::Fp16).unwrap();
        let synth_peak = synth.peak(Precision::Fp16).unwrap();
        assert!(
            (synth_peak / base_peak - 1.0).abs() < 1e-9,
            "compute roundtrip"
        );
        let base_l2 = engine.baseline().level(MemoryLevelKind::L2).unwrap();
        let synth_l2 = synth.level(MemoryLevelKind::L2).unwrap().capacity;
        assert!(
            (synth_l2 / base_l2.capacity - 1.0).abs() < 1e-9,
            "L2 roundtrip"
        );
    }

    #[test]
    fn compute_is_power_limited_on_advanced_nodes() {
        let engine = UArchEngine::a100_at_n7();
        let n5 = engine.synthesize_at_node(TechNode::N5, DramTechnology::Hbm2e);
        let peak_ratio =
            n5.peak(Precision::Fp16).unwrap() / engine.baseline().peak(Precision::Fp16).unwrap();
        // Power factor 1.3 binds, not the 1.8 area factor.
        assert!((peak_ratio - 1.3).abs() < 1e-9, "got {peak_ratio}");
    }

    #[test]
    fn node_scaling_monotonically_raises_compute() {
        let engine = UArchEngine::a100_at_n7();
        let mut last = 0.0;
        for &node in TechNode::all() {
            let acc = engine.synthesize_at_node(node, DramTechnology::Hbm2);
            let peak = acc.peak(Precision::Fp16).unwrap().tera();
            assert!(peak > last, "{node}: {peak} TF");
            last = peak;
        }
    }

    #[test]
    fn dram_tech_is_node_independent() {
        let engine = UArchEngine::a100_at_n7();
        let old = engine.synthesize_at_node(TechNode::N12, DramTechnology::Hbm3);
        let new = engine.synthesize_at_node(TechNode::N1, DramTechnology::Hbm3);
        assert_eq!(old.dram.bandwidth, new.dram.bandwidth);
    }

    #[test]
    fn bigger_sram_allocation_grows_l2() {
        let engine = UArchEngine::a100_at_n7();
        let small = engine.synthesize(
            TechNode::N7,
            ResourceBudget::datacenter_gpu(),
            Allocation::new(Ratio::new(0.45), Ratio::new(0.10)),
            DramTechnology::Hbm2e,
        );
        let big = engine.synthesize(
            TechNode::N7,
            ResourceBudget::datacenter_gpu(),
            Allocation::new(Ratio::new(0.45), Ratio::new(0.40)),
            DramTechnology::Hbm2e,
        );
        let l2 = |a: &Accelerator| a.level(MemoryLevelKind::L2).unwrap().capacity;
        assert!(l2(&big).bytes() > 3.9 * l2(&small).bytes());
    }

    #[test]
    #[should_panic(expected = "exceed the budget")]
    fn over_allocation_rejected() {
        let _ = Allocation::new(Ratio::new(0.8), Ratio::new(0.3));
    }
}
