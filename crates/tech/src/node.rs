//! Logic technology nodes and scaling rules.

use serde::{Deserialize, Serialize};

/// A logic process technology node, N12 (12 nm) down to N1 (1 nm) — the
/// seven generations swept by the paper's §5.3 case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// 12 nm.
    N12,
    /// 10 nm.
    N10,
    /// 7 nm (the A100-class node used as calibration anchor).
    N7,
    /// 5 nm (H100-class).
    N5,
    /// 3 nm.
    N3,
    /// 2 nm.
    N2,
    /// 1 nm (projected).
    N1,
}

impl TechNode {
    /// All nodes, oldest first — the x-axis of Figs. 6 and 7.
    #[must_use]
    pub fn all() -> &'static [TechNode] {
        &[
            Self::N12,
            Self::N10,
            Self::N7,
            Self::N5,
            Self::N3,
            Self::N2,
            Self::N1,
        ]
    }

    /// Generation index (N12 = 0, N1 = 6).
    #[must_use]
    pub fn index(self) -> usize {
        Self::all()
            .iter()
            .position(|n| *n == self)
            .expect("all() lists every variant")
    }

    /// Signed number of generation steps from `from` to `self` (positive =
    /// newer).
    #[must_use]
    pub fn steps_from(self, from: TechNode) -> i32 {
        self.index() as i32 - from.index() as i32
    }
}

impl core::fmt::Display for TechNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::N12 => "N12",
            Self::N10 => "N10",
            Self::N7 => "N7",
            Self::N5 => "N5",
            Self::N3 => "N3",
            Self::N2 => "N2",
            Self::N1 => "N1",
        };
        f.write_str(s)
    }
}

/// Node-to-node scaling assumptions.
///
/// The paper follows the *iso-performance* assumption (after Stillmaker &
/// Baas and DeepFlow): each generation step shrinks the area of a given
/// block by **1.8×** and its power by **1.3×** at equal performance — so a
/// fixed area/power budget buys more logic every node, with power becoming
/// the binding constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingRule {
    /// Area shrink per generation step (same-performance block).
    pub area_per_step: f64,
    /// Power reduction per generation step (same-performance block).
    pub power_per_step: f64,
}

impl ScalingRule {
    /// The paper's optimistic iso-performance scaling: 1.8× area, 1.3× power.
    #[must_use]
    pub fn iso_performance() -> Self {
        Self {
            area_per_step: 1.8,
            power_per_step: 1.3,
        }
    }

    /// How many same-performance blocks fit in a fixed **area** budget at
    /// `to`, relative to `from`.
    #[must_use]
    pub fn area_capacity_factor(&self, from: TechNode, to: TechNode) -> f64 {
        self.area_per_step.powi(to.steps_from(from))
    }

    /// How many same-performance blocks a fixed **power** budget feeds at
    /// `to`, relative to `from`.
    #[must_use]
    pub fn power_capacity_factor(&self, from: TechNode, to: TechNode) -> f64 {
        self.power_per_step.powi(to.steps_from(from))
    }

    /// SRAM density gain per step — SRAM cells scale worse than logic;
    /// we follow the common observation that SRAM captures roughly
    /// two-thirds of the logic shrink.
    #[must_use]
    pub fn sram_density_factor(&self, from: TechNode, to: TechNode) -> f64 {
        self.area_per_step
            .powf(to.steps_from(from) as f64 * 2.0 / 3.0)
    }
}

impl Default for ScalingRule {
    fn default() -> Self {
        Self::iso_performance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_steps() {
        assert_eq!(TechNode::N12.index(), 0);
        assert_eq!(TechNode::N1.index(), 6);
        assert_eq!(TechNode::N1.steps_from(TechNode::N7), 4);
        assert_eq!(TechNode::N12.steps_from(TechNode::N7), -2);
    }

    #[test]
    fn iso_performance_factors() {
        let r = ScalingRule::iso_performance();
        let f = r.area_capacity_factor(TechNode::N7, TechNode::N5);
        assert!((f - 1.8).abs() < 1e-12);
        let b = r.power_capacity_factor(TechNode::N7, TechNode::N12);
        assert!((b - 1.0 / 1.69).abs() < 1e-9);
    }

    #[test]
    fn power_scales_slower_than_area() {
        // The crux of §5.3: compute becomes power-limited with scaling.
        let r = ScalingRule::iso_performance();
        for steps in 1..=6 {
            let to = TechNode::all()[steps];
            let from = TechNode::N12;
            assert!(
                r.power_capacity_factor(from, to) < r.area_capacity_factor(from, to),
                "power must bind at {to}"
            );
        }
    }

    #[test]
    fn sram_scales_worse_than_logic() {
        let r = ScalingRule::iso_performance();
        let logic = r.area_capacity_factor(TechNode::N7, TechNode::N3);
        let sram = r.sram_density_factor(TechNode::N7, TechNode::N3);
        assert!(sram < logic);
        assert!(sram > 1.0);
    }
}
