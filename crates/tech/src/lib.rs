//! Technology-node scaling and micro-architecture synthesis.
//!
//! Links semiconductor technology parameters to the architecture
//! abstraction layer (the paper's µArch engine, §3.1/§3.6): given a
//! technology node (N12…N1), an area/power budget, and per-component
//! allocation fractions, [`UArchEngine`] synthesizes an
//! [`optimus_hw::Accelerator`] whose compute throughput, cache capacity,
//! and bandwidths scale by the iso-performance rules (1.8× area, 1.3×
//! power per node step, after Stillmaker & Baas). The engine is calibrated
//! so that the N7 point reproduces the A100 — exactly how the paper anchors
//! its Fig. 6/7 sweep ("the on-chip specifications are same as A100").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod uarch;

pub use node::{ScalingRule, TechNode};
pub use uarch::{Allocation, ResourceBudget, UArchEngine};
