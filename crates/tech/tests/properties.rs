//! Property-based tests of the µArch synthesis engine.

use optimus_hw::memtech::DramTechnology;
use optimus_hw::{MemoryLevelKind, Precision};
use optimus_tech::{Allocation, ResourceBudget, TechNode, UArchEngine};
use optimus_units::{Area, Power, Ratio};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechNode> {
    prop_oneof![
        Just(TechNode::N12),
        Just(TechNode::N10),
        Just(TechNode::N7),
        Just(TechNode::N5),
        Just(TechNode::N3),
        Just(TechNode::N2),
        Just(TechNode::N1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A bigger area budget never reduces compute throughput.
    #[test]
    fn throughput_monotone_in_area(node in any_node(), area in 200.0f64..2000.0) {
        let engine = UArchEngine::a100_at_n7();
        let alloc = Allocation::reference();
        let dram = DramTechnology::Hbm2e;
        let small = engine.synthesize(
            node,
            ResourceBudget { area: Area::from_mm2(area), power: Power::from_watts(400.0) },
            alloc,
            dram,
        );
        let large = engine.synthesize(
            node,
            ResourceBudget { area: Area::from_mm2(area * 1.5), power: Power::from_watts(400.0) },
            alloc,
            dram,
        );
        let p = |a: &optimus_hw::Accelerator| a.peak(Precision::Fp16).unwrap().tera();
        prop_assert!(p(&large) >= p(&small));
    }

    /// A bigger power budget never reduces compute throughput.
    #[test]
    fn throughput_monotone_in_power(node in any_node(), power in 100.0f64..1500.0) {
        let engine = UArchEngine::a100_at_n7();
        let alloc = Allocation::reference();
        let budget = |w: f64| ResourceBudget {
            area: Area::from_mm2(826.0),
            power: Power::from_watts(w),
        };
        let small = engine.synthesize(node, budget(power), alloc, DramTechnology::Hbm3);
        let large = engine.synthesize(node, budget(power * 1.5), alloc, DramTechnology::Hbm3);
        let p = |a: &optimus_hw::Accelerator| a.peak(Precision::Fp16).unwrap().tera();
        prop_assert!(p(&large) >= p(&small));
    }

    /// Newer node at the same budget never loses compute throughput.
    #[test]
    fn throughput_monotone_in_node(idx in 0usize..6) {
        let engine = UArchEngine::a100_at_n7();
        let older = TechNode::all()[idx];
        let newer = TechNode::all()[idx + 1];
        let p = |n: TechNode| {
            engine
                .synthesize_at_node(n, DramTechnology::Hbm2e)
                .peak(Precision::Fp16)
                .unwrap()
                .tera()
        };
        prop_assert!(p(newer) >= p(older));
    }

    /// Shifting area from compute to SRAM trades throughput for cache,
    /// monotonically in both directions.
    #[test]
    fn allocation_tradeoff(node in any_node(), shift in 0.01f64..0.25) {
        let engine = UArchEngine::a100_at_n7();
        let budget = ResourceBudget::datacenter_gpu();
        let base = Allocation::new(Ratio::new(0.45), Ratio::new(0.20));
        let shifted = Allocation::new(
            Ratio::new(0.45 - shift),
            Ratio::new(0.20 + shift),
        );
        let a = engine.synthesize(node, budget, base, DramTechnology::Hbm2e);
        let b = engine.synthesize(node, budget, shifted, DramTechnology::Hbm2e);
        let peak = |x: &optimus_hw::Accelerator| x.peak(Precision::Fp16).unwrap().tera();
        let l2 = |x: &optimus_hw::Accelerator| {
            x.level(MemoryLevelKind::L2).unwrap().capacity.bytes()
        };
        prop_assert!(peak(&b) <= peak(&a));
        prop_assert!(l2(&b) >= l2(&a));
    }

    /// Synthesized devices always carry the requested DRAM technology.
    #[test]
    fn dram_technology_respected(node in any_node()) {
        let engine = UArchEngine::a100_at_n7();
        for &tech in DramTechnology::inference_sweep() {
            let acc = engine.synthesize_at_node(node, tech);
            prop_assert_eq!(acc.dram.bandwidth, tech.bandwidth());
            prop_assert_eq!(acc.dram.capacity, tech.typical_capacity());
        }
    }
}
