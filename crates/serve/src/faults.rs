//! Seeded fault injection for fleet serving: MTBF/MTTR crash processes,
//! straggler slow nodes, and fleet-wide throughput degradation.
//!
//! A [`FaultSpec`] describes the failure environment of a replica fleet.
//! Per replica it derives — purely from `(seed, replica index)` — an
//! alternating-renewal **outage schedule** (up for `Exp(1/mtbf)` seconds,
//! down for `Exp(1/mttr)` seconds, forever) and a constant iteration-time
//! **slowdown multiplier** (stragglers drawn once per replica, on top of
//! a fleet-wide degradation factor). Because the schedule is a pure
//! function of the spec, the router, the engines, and the availability
//! metrics can each regenerate the same timeline independently, and the
//! whole simulation stays byte-identical across runs and thread counts.
//!
//! Crash semantics (the requeue-on-failure contract the chaos suite
//! pins):
//!
//! * A crash takes effect at the first **iteration boundary** at or after
//!   its scheduled instant (an iteration is indivisible; an outage that
//!   begins and ends inside one iteration is ridden through). Every
//!   request on the replica — queued, admitted, or mid-decode — is
//!   drained back to the router with its **original arrival time**;
//!   partial decode progress is discarded.
//! * While a replica is inside a scheduled outage window the router skips
//!   it; if every replica is down, the FIFO front door blocks until the
//!   earliest recovery.
//! * Downtime accounting is schedule-based: a replica's downtime is the
//!   sum of its outage windows clipped to the fleet makespan, whether or
//!   not work was lost.
//!
//! The degenerate [`FaultSpec::none`] (infinite MTBF, no stragglers, no
//! degradation) is guaranteed — and pinned by `chaos_props.rs` — to leave
//! the fleet path bit-identical to a fault-free simulation.

use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distinguishes the per-replica random streams drawn from one fault
/// seed.
const CRASH_STREAM: u64 = 0x9E6D_5C3B_2A19_0807;
const STRAGGLER_STREAM: u64 = 0x51ED_270B_484D_B6C1;

/// The seeded failure environment of a replica fleet.
///
/// All fields are plain numbers so the spec is `Copy`, comparable, and
/// serializable; the degenerate [`FaultSpec::none`] encodes "no faults"
/// (and the fleet path treats it as exactly the fault-free simulation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of every fault process. Independent of the trace and router
    /// seeds; per-replica streams are derived from `(seed, replica)`.
    pub seed: u64,
    /// Mean seconds of uptime between crashes, per replica (exponential).
    /// `0` or `+∞` disables the crash process entirely.
    pub mtbf_s: f64,
    /// Mean seconds to repair one crash (exponential). Must be positive
    /// and finite when the crash process is enabled.
    pub mttr_s: f64,
    /// Probability that a replica is a straggler (drawn once per replica
    /// from the seed). `0` disables the straggler draw.
    pub straggler_frac: f64,
    /// Iteration-duration multiplier of a straggler replica (≥ 1).
    pub straggler_mult: f64,
    /// Fleet-wide iteration-duration multiplier (≥ 1) — uniform
    /// throughput degradation, e.g. a degraded interconnect.
    pub degrade_mult: f64,
}

impl FaultSpec {
    /// The degenerate no-fault spec: infinite MTBF, no stragglers, no
    /// degradation. Fleet reports under this spec are bit-identical to
    /// the fault-free path.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            mtbf_s: f64::INFINITY,
            mttr_s: 0.0,
            straggler_frac: 0.0,
            straggler_mult: 1.0,
            degrade_mult: 1.0,
        }
    }

    /// A crash/recover process: replicas fail after `Exp(1/mtbf_s)`
    /// seconds of uptime and repair in `Exp(1/mttr_s)` seconds.
    #[must_use]
    pub fn crashes(seed: u64, mtbf_s: f64, mttr_s: f64) -> Self {
        Self {
            seed,
            mtbf_s,
            mttr_s,
            ..Self::none()
        }
    }

    /// Adds a straggler draw: each replica independently runs every
    /// iteration `mult`× slower with probability `frac`.
    #[must_use]
    pub fn with_stragglers(mut self, frac: f64, mult: f64) -> Self {
        self.straggler_frac = frac;
        self.straggler_mult = mult;
        self
    }

    /// Sets the fleet-wide degradation multiplier.
    #[must_use]
    pub fn with_degradation(mut self, mult: f64) -> Self {
        self.degrade_mult = mult;
        self
    }

    /// Whether the crash/recover process is active.
    #[must_use]
    pub fn has_crashes(&self) -> bool {
        self.mtbf_s.is_finite() && self.mtbf_s > 0.0
    }

    /// Whether the spec injects no faults at all — no crash process, no
    /// effective straggler draw, no degradation. The fleet path treats
    /// such a spec (whatever its seed) exactly like the fault-free one.
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.has_crashes()
            && (self.straggler_frac == 0.0 || self.straggler_mult == 1.0)
            && self.degrade_mult == 1.0
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range
    /// (negative/NaN MTBF, non-positive MTTR with crashes enabled,
    /// straggler fraction outside `[0, 1]`, multipliers below 1).
    pub fn validate(&self) -> Result<(), String> {
        if self.mtbf_s.is_nan() || self.mtbf_s < 0.0 {
            return Err(format!("MTBF must be non-negative, got {}", self.mtbf_s));
        }
        if self.has_crashes() && !(self.mttr_s.is_finite() && self.mttr_s > 0.0) {
            return Err(format!(
                "MTTR must be positive and finite when crashes are enabled, got {}",
                self.mttr_s
            ));
        }
        if !(self.straggler_frac >= 0.0 && self.straggler_frac <= 1.0) {
            return Err(format!(
                "straggler fraction must lie in [0, 1], got {}",
                self.straggler_frac
            ));
        }
        if !(self.straggler_mult.is_finite() && self.straggler_mult >= 1.0) {
            return Err(format!(
                "straggler multiplier must be ≥ 1, got {}",
                self.straggler_mult
            ));
        }
        if !(self.degrade_mult.is_finite() && self.degrade_mult >= 1.0) {
            return Err(format!(
                "degradation multiplier must be ≥ 1, got {}",
                self.degrade_mult
            ));
        }
        Ok(())
    }

    /// A copy safe to embed in JSON reports: a disabled crash process is
    /// normalized to `mtbf_s = 0` (JSON cannot carry `∞`; `0` and `∞`
    /// both mean "never crashes").
    #[must_use]
    pub fn json_safe(mut self) -> Self {
        if !self.has_crashes() {
            self.mtbf_s = 0.0;
            self.mttr_s = 0.0;
        }
        self
    }

    /// The constant iteration-duration multiplier of `replica`: the
    /// fleet-wide degradation times the straggler multiplier when this
    /// replica's seeded draw makes it a straggler. Exactly `1.0` for an
    /// inactive slowdown axis, so the fault-free path is untouched.
    #[must_use]
    pub fn slow_mult(&self, replica: usize) -> f64 {
        let mut mult = self.degrade_mult;
        if self.straggler_frac > 0.0 && self.straggler_mult != 1.0 {
            let mut rng = stream_rng(self.seed, replica, STRAGGLER_STREAM);
            if rng.gen_range(0.0..1.0) < self.straggler_frac {
                mult *= self.straggler_mult;
            }
        }
        mult
    }

    /// The replica's scheduled outage windows `(crash_s, recover_s)` that
    /// **begin** before `horizon_s`, in time order. A pure function of
    /// `(spec, replica)` — the same schedule the engines and the router
    /// observe.
    #[must_use]
    pub fn outage_windows(&self, replica: usize, horizon_s: f64) -> Vec<(f64, f64)> {
        let mut windows = Vec::new();
        let Some(mut timeline) = FaultTimeline::new(self, replica) else {
            return windows;
        };
        loop {
            let (crash, recover) = timeline.next_window();
            if crash >= horizon_s {
                return windows;
            }
            windows.push((crash, recover));
        }
    }

    /// Schedule-based availability accounting for one replica: the number
    /// of crashes scheduled before `horizon_s` and their total downtime
    /// clipped to the horizon.
    #[must_use]
    pub(crate) fn outage_stats(&self, replica: usize, horizon_s: f64) -> (usize, f64) {
        let windows = self.outage_windows(replica, horizon_s);
        let downtime = windows
            .iter()
            .map(|&(crash, recover)| recover.min(horizon_s) - crash)
            .sum();
        (windows.len(), downtime)
    }
}

/// The splitmix64 finalizer: decorrelates the per-replica streams drawn
/// from one user-facing seed.
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn stream_rng(seed: u64, replica: usize, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix(
        seed ^ splitmix(stream ^ splitmix((replica as u64).wrapping_add(1))),
    ))
}

/// The infinite outage-window generator of one replica: alternating
/// exponential up/down durations from the replica's crash stream.
pub(crate) struct FaultTimeline {
    rng: StdRng,
    mtbf_s: f64,
    mttr_s: f64,
    at_s: f64,
}

impl FaultTimeline {
    /// `None` when the spec's crash process is disabled.
    pub(crate) fn new(spec: &FaultSpec, replica: usize) -> Option<Self> {
        spec.has_crashes().then(|| Self {
            rng: stream_rng(spec.seed, replica, CRASH_STREAM),
            mtbf_s: spec.mtbf_s,
            mttr_s: spec.mttr_s,
            at_s: 0.0,
        })
    }

    /// The next `(crash_s, recover_s)` window; successive windows are
    /// disjoint and time-ordered.
    pub(crate) fn next_window(&mut self) -> (f64, f64) {
        let crash = self.at_s + Exp::new(1.0 / self.mtbf_s).sample(&mut self.rng);
        let recover = crash + Exp::new(1.0 / self.mttr_s).sample(&mut self.rng);
        self.at_s = recover;
        (crash, recover)
    }
}

/// A forward-only cursor over one replica's outage schedule — the
/// router's availability view. Queries are clamped forward: asking about
/// an earlier instant than a previous query answers as of the latest
/// instant seen (the router's knowledge only moves forward).
pub(crate) struct OutageCursor {
    timeline: Option<FaultTimeline>,
    window: Option<(f64, f64)>,
    hi: f64,
}

impl OutageCursor {
    pub(crate) fn new(spec: &FaultSpec, replica: usize) -> Self {
        let mut timeline = FaultTimeline::new(spec, replica);
        let window = timeline.as_mut().map(FaultTimeline::next_window);
        Self {
            timeline,
            window,
            hi: 0.0,
        }
    }

    /// Whether the schedule has the replica inside an outage at `t`.
    pub(crate) fn down_at(&mut self, t: f64) -> bool {
        self.hi = self.hi.max(t);
        let t = self.hi;
        loop {
            match self.window {
                None => return false,
                Some((crash, recover)) => {
                    if t < crash {
                        return false;
                    }
                    if t < recover {
                        return true;
                    }
                    self.window = self.timeline.as_mut().map(FaultTimeline::next_window);
                }
            }
        }
    }

    /// The earliest instant ≥ `t` at which the schedule has the replica
    /// up (the end of the current outage window, or `t` itself).
    pub(crate) fn next_up(&mut self, t: f64) -> f64 {
        if self.down_at(t) {
            self.window.expect("down ⇒ inside a window").1
        } else {
            t
        }
    }
}

/// One replica engine's fault wiring: its drain-side outage cursor (the
/// `window`/`timeline` pair advanced by the engine clock), the router's
/// independent query cursor, and the constant slowdown multiplier.
pub(crate) struct EngineFaults {
    pub(crate) timeline: Option<FaultTimeline>,
    pub(crate) window: Option<(f64, f64)>,
    pub(crate) query: OutageCursor,
    pub(crate) slow_mult: f64,
}

impl EngineFaults {
    pub(crate) fn for_replica(spec: &FaultSpec, replica: usize) -> Self {
        let mut timeline = FaultTimeline::new(spec, replica);
        let window = timeline.as_mut().map(FaultTimeline::next_window);
        Self {
            timeline,
            window,
            query: OutageCursor::new(spec, replica),
            slow_mult: spec.slow_mult(replica),
        }
    }
}

/// Availability metrics of one fleet run under fault injection — all
/// zeros / `1.0` for a fault-free run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAvailability {
    /// Crash events scheduled within the fleet makespan, across replicas.
    pub crashes: usize,
    /// Scheduled outage time within the makespan, summed across replicas.
    pub downtime: optimus_units::Time,
    /// Mean fraction of replica-time up:
    /// `1 − downtime / (replicas × makespan)`.
    pub availability: f64,
    /// Requeue events (every crash-drain of a request counts once; one
    /// request can be requeued several times).
    pub requeues: usize,
    /// Distinct requests requeued at least once. Every one of them
    /// eventually completes — requeue-then-complete conservation — so
    /// this is also the requeued-then-completed count.
    pub requeued_requests: usize,
    /// Ascending ids of the requeued requests.
    pub requeued_ids: Vec<usize>,
    /// Per-replica scheduled downtime within the makespan.
    pub per_replica_downtime: Vec<optimus_units::Time>,
    /// SLO-met tokens per second per *available* replica:
    /// `goodput / (replicas × availability)` — what one surviving
    /// replica-second delivers under churn.
    pub goodput_tokens_per_up_replica_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        assert!(!spec.has_crashes());
        assert!(spec.validate().is_ok());
        assert_eq!(spec.slow_mult(0), 1.0);
        assert!(spec.outage_windows(3, 1e9).is_empty());
        // An inactive spec stays inactive whatever its seed.
        let seeded = FaultSpec { seed: 99, ..spec };
        assert!(seeded.is_none());
    }

    #[test]
    fn timelines_are_deterministic_and_ordered() {
        let spec = FaultSpec::crashes(7, 120.0, 15.0);
        let a = spec.outage_windows(2, 10_000.0);
        let b = spec.outage_windows(2, 10_000.0);
        assert_eq!(a, b, "same (seed, replica) must replay the schedule");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].1 <= w[1].0, "windows must be disjoint and ordered");
        }
        assert!(a.iter().all(|&(c, r)| c <= r));
        let other = spec.outage_windows(3, 10_000.0);
        assert_ne!(a, other, "replicas draw independent schedules");
        let reseeded = FaultSpec::crashes(8, 120.0, 15.0).outage_windows(2, 10_000.0);
        assert_ne!(a, reseeded, "the fault seed must matter");
    }

    #[test]
    fn mean_window_shape_tracks_mtbf_and_mttr() {
        let spec = FaultSpec::crashes(42, 100.0, 10.0);
        let windows = spec.outage_windows(0, 1_000_000.0);
        let n = windows.len() as f64;
        let mean_down: f64 = windows.iter().map(|&(c, r)| r - c).sum::<f64>() / n;
        // Cycle length ≈ mtbf + mttr ⇒ ~9091 windows over 1e6 s.
        assert!((n - 9091.0).abs() / 9091.0 < 0.1, "window count {n}");
        assert!((mean_down - 10.0).abs() < 1.0, "mean downtime {mean_down}");
    }

    #[test]
    fn outage_stats_clip_to_the_horizon() {
        let spec = FaultSpec::crashes(1, 50.0, 1e6);
        let windows = spec.outage_windows(0, 200.0);
        assert!(!windows.is_empty());
        let (crashes, downtime) = spec.outage_stats(0, 200.0);
        assert_eq!(crashes, windows.len());
        assert!(
            downtime <= 200.0 * crashes as f64,
            "clipped downtime {downtime}"
        );
        assert!(downtime < 1e6, "downtime must be clipped, got {downtime}");
    }

    #[test]
    fn straggler_draw_is_per_replica_and_seeded() {
        let spec = FaultSpec::none().with_stragglers(0.5, 3.0);
        assert!(!spec.is_none());
        let mults: Vec<f64> = (0..64).map(|r| spec.slow_mult(r)).collect();
        assert!(mults.iter().all(|&m| m == 1.0 || m == 3.0));
        let stragglers = mults.iter().filter(|&&m| m == 3.0).count();
        assert!(
            (10..=54).contains(&stragglers),
            "half the replicas should straggle, got {stragglers}/64"
        );
        let replay: Vec<f64> = (0..64).map(|r| spec.slow_mult(r)).collect();
        assert_eq!(mults, replay);
    }

    #[test]
    fn cursor_matches_the_window_list() {
        let spec = FaultSpec::crashes(11, 30.0, 5.0);
        let windows = spec.outage_windows(0, 2_000.0);
        let mut cursor = OutageCursor::new(&spec, 0);
        let mut t = 0.0;
        while t < 1_900.0 {
            let expect = windows.iter().any(|&(c, r)| t >= c && t < r);
            assert_eq!(cursor.down_at(t), expect, "at {t}");
            if expect {
                let up = cursor.next_up(t);
                let (_, r) = *windows
                    .iter()
                    .find(|&&(c, r)| t >= c && t < r)
                    .expect("down ⇒ window");
                assert_eq!(up, r);
            }
            t += 0.37;
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(FaultSpec::crashes(0, -1.0, 1.0).validate().is_err());
        assert!(FaultSpec::crashes(0, 10.0, 0.0).validate().is_err());
        assert!(FaultSpec::crashes(0, 10.0, f64::INFINITY)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_stragglers(1.5, 2.0)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_stragglers(0.5, 0.5)
            .validate()
            .is_err());
        assert!(FaultSpec::none().with_degradation(0.9).validate().is_err());
        assert!(FaultSpec::crashes(3, 100.0, 10.0)
            .with_stragglers(0.1, 2.0)
            .with_degradation(1.1)
            .validate()
            .is_ok());
    }

    #[test]
    fn json_safe_normalizes_the_infinite_mtbf() {
        let spec = FaultSpec::none().with_degradation(1.5).json_safe();
        assert_eq!(spec.mtbf_s, 0.0);
        let active = FaultSpec::crashes(2, 60.0, 5.0).json_safe();
        assert_eq!(active.mtbf_s, 60.0);
    }
}
