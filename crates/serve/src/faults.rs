//! Seeded fault injection for fleet serving: MTBF/MTTR crash processes,
//! shared failure domains, straggler slow nodes, and fleet-wide
//! throughput degradation.
//!
//! A [`FaultSpec`] describes the failure environment of a replica fleet.
//! Per replica it derives — purely from `(seed, replica index)` — an
//! alternating-renewal **outage schedule** (up for `Exp(1/mtbf)` seconds,
//! down for `Exp(1/mttr)` seconds, forever) and a constant iteration-time
//! **slowdown multiplier** (stragglers drawn once per replica, on top of
//! a fleet-wide degradation factor). On top of the per-replica processes,
//! [`FaultDomain`]s group replicas under **shared** outage processes —
//! a rack losing power, a leaf switch rebooting — derived from
//! `(seed, domain index)`, so every member replica goes down *together*.
//! A replica's effective schedule is the **union** of its own windows and
//! the windows of every domain containing it, merged lazily and coalesced
//! ([`OutageStream`]). Because every schedule is a pure function of the
//! spec, the router, the engines, and the availability metrics can each
//! regenerate the same timeline independently, and the whole simulation
//! stays byte-identical across runs and thread counts.
//!
//! Crash semantics (the requeue-on-failure contract the chaos suite
//! pins):
//!
//! * A crash takes effect at the first **iteration boundary** at or after
//!   its scheduled instant (an iteration is indivisible; an outage that
//!   begins and ends inside one iteration is ridden through). Every
//!   request on the replica — queued, admitted, or mid-decode — is
//!   drained back to the router with its **original arrival time**;
//!   partial decode progress is discarded.
//! * While a replica is inside a scheduled outage window the router skips
//!   it; if every replica is down — which a wide domain outage can cause
//!   all at once — the FIFO front door blocks until the earliest
//!   recovery.
//! * Downtime accounting is schedule-based: a replica's downtime is the
//!   sum of its merged outage windows clipped to the fleet makespan,
//!   whether or not work was lost.
//!
//! Degradation has two pricing modes ([`DegradeMode`]):
//!
//! * [`DegradeMode::Flat`] (default) multiplies every iteration duration
//!   by `degrade_mult` — a uniform slowdown, agnostic to its cause. This
//!   is the documented fallback when the degradation does not decompose
//!   onto the interconnect.
//! * [`DegradeMode::Link`] instead divides the cluster's intra- and
//!   inter-node link bandwidths by `degrade_mult` and re-prices every
//!   iteration over the degraded cluster, so the slowdown flows through
//!   the α–β collective model: TP collectives and KV traffic pay it,
//!   compute does not. A TP-1 replica (no collectives) barely notices a
//!   link-mode degradation that would cost a flat-mode fleet dearly.
//!
//! The degenerate [`FaultSpec::none`] (infinite MTBF, no domains, no
//! stragglers, no degradation) is guaranteed — and pinned by
//! `chaos_props.rs` — to leave the fleet path bit-identical to a
//! fault-free simulation.

use optimus_hw::reliability::weibull_scale;
use optimus_hw::{ClusterSpec, FailureProcess};
use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

/// Distinguishes the per-replica random streams drawn from one fault
/// seed.
const CRASH_STREAM: u64 = 0x9E6D_5C3B_2A19_0807;
const STRAGGLER_STREAM: u64 = 0x51ED_270B_484D_B6C1;
/// The per-domain stream: domain schedules are keyed on
/// `(seed, domain index)`, never on a replica index, so every member of a
/// domain observes the identical shared timeline.
const DOMAIN_STREAM: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// A group of replicas that fail **together**: one shared
/// alternating-renewal outage process (mean uptime `mtbf_s`, mean repair
/// `mttr_s`) takes every member replica down for the same windows — the
/// model of a rack, a power feed, or a leaf switch.
///
/// Members are explicit replica indices, so one spec serves fleets of any
/// size: an index at or beyond a fleet's replica count simply does not
/// apply there (the load-sweep reuses one spec across cells with
/// different replica counts). Domains may overlap; a replica's schedule
/// is the union of everything that covers it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultDomain {
    /// The member replica indices (distinct; any order).
    pub replicas: Vec<usize>,
    /// Mean seconds of domain uptime between outages (exponential).
    /// `0` or `+∞` disables the domain.
    pub mtbf_s: f64,
    /// Mean seconds to repair one domain outage (exponential). Must be
    /// positive and finite when the domain is active.
    pub mttr_s: f64,
}

impl FaultDomain {
    /// A domain over `replicas` with the given outage process.
    #[must_use]
    pub fn new(replicas: Vec<usize>, mtbf_s: f64, mttr_s: f64) -> Self {
        Self {
            replicas,
            mtbf_s,
            mttr_s,
        }
    }

    /// Whether the domain's outage process is enabled and covers anyone.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.mtbf_s.is_finite() && self.mtbf_s > 0.0 && !self.replicas.is_empty()
    }
}

/// How `degrade_mult` is priced into iteration durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradeMode {
    /// Every iteration runs `degrade_mult`× slower — a uniform slowdown
    /// applied after pricing. The fallback when the degradation does not
    /// decompose onto the interconnect.
    #[default]
    Flat,
    /// The cluster's link bandwidths are divided by `degrade_mult` and
    /// iterations are re-priced over the degraded cluster, so the
    /// slowdown flows through the collective cost model instead of
    /// scaling compute. See [`FaultSpec::degraded_cluster`].
    Link,
}

/// The seeded failure environment of a replica fleet.
///
/// The scalar axes are plain numbers; `domains` adds shared failure
/// groups. The spec is `Clone`, comparable, and serializable; the
/// degenerate [`FaultSpec::none`] encodes "no faults" (and the fleet path
/// treats it as exactly the fault-free simulation).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of every fault process. Independent of the trace and router
    /// seeds; per-replica streams are derived from `(seed, replica)` and
    /// per-domain streams from `(seed, domain index)`.
    pub seed: u64,
    /// Mean seconds of uptime between crashes, per replica (exponential).
    /// `0` or `+∞` disables the crash process entirely.
    pub mtbf_s: f64,
    /// Mean seconds to repair one crash (exponential). Must be positive
    /// and finite when the crash process is enabled.
    pub mttr_s: f64,
    /// Probability that a replica is a straggler (drawn once per replica
    /// from the seed). `0` disables the straggler draw.
    pub straggler_frac: f64,
    /// Iteration-duration multiplier of a straggler replica (≥ 1).
    pub straggler_mult: f64,
    /// Fleet-wide iteration-duration multiplier (≥ 1) — uniform
    /// throughput degradation, e.g. a degraded interconnect.
    pub degrade_mult: f64,
    /// How `degrade_mult` is priced (flat slowdown vs. link-bandwidth
    /// degradation through the collective model).
    pub degrade_mode: DegradeMode,
    /// Shared failure domains layered on the per-replica crash processes.
    pub domains: Vec<FaultDomain>,
    /// Shape of the per-replica uptime distribution (default
    /// exponential). [`FailureProcess::Weibull`] with `k < 1` models
    /// infant mortality; `k = 1` routes through the exponential sampler
    /// bit-exactly. Rack-style correlation is expressed with `domains`,
    /// so [`FailureProcess::RackCorrelated`] is rejected here.
    pub process: FailureProcess,
}

impl FaultSpec {
    /// The degenerate no-fault spec: infinite MTBF, no domains, no
    /// stragglers, no degradation. Fleet reports under this spec are
    /// bit-identical to the fault-free path.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            mtbf_s: f64::INFINITY,
            mttr_s: 0.0,
            straggler_frac: 0.0,
            straggler_mult: 1.0,
            degrade_mult: 1.0,
            degrade_mode: DegradeMode::Flat,
            domains: Vec::new(),
            process: FailureProcess::Exponential,
        }
    }

    /// A crash/recover process: replicas fail after `Exp(1/mtbf_s)`
    /// seconds of uptime and repair in `Exp(1/mttr_s)` seconds.
    #[must_use]
    pub fn crashes(seed: u64, mtbf_s: f64, mttr_s: f64) -> Self {
        Self {
            seed,
            mtbf_s,
            mttr_s,
            ..Self::none()
        }
    }

    /// Adds a straggler draw: each replica independently runs every
    /// iteration `mult`× slower with probability `frac`.
    #[must_use]
    pub fn with_stragglers(mut self, frac: f64, mult: f64) -> Self {
        self.straggler_frac = frac;
        self.straggler_mult = mult;
        self
    }

    /// Sets the fleet-wide degradation multiplier.
    #[must_use]
    pub fn with_degradation(mut self, mult: f64) -> Self {
        self.degrade_mult = mult;
        self
    }

    /// Sets how the degradation multiplier is priced.
    #[must_use]
    pub fn with_degrade_mode(mut self, mode: DegradeMode) -> Self {
        self.degrade_mode = mode;
        self
    }

    /// Adds one shared failure domain.
    #[must_use]
    pub fn with_domain(mut self, domain: FaultDomain) -> Self {
        self.domains.push(domain);
        self
    }

    /// Replaces the domain list wholesale.
    #[must_use]
    pub fn with_domains(mut self, domains: Vec<FaultDomain>) -> Self {
        self.domains = domains;
        self
    }

    /// Sets the per-replica uptime distribution shape.
    #[must_use]
    pub fn with_process(mut self, process: FailureProcess) -> Self {
        self.process = process;
        self
    }

    /// Whether the per-replica crash/recover process is active.
    #[must_use]
    pub fn has_crashes(&self) -> bool {
        self.mtbf_s.is_finite() && self.mtbf_s > 0.0
    }

    /// Whether any shared failure domain is active.
    #[must_use]
    pub fn has_domains(&self) -> bool {
        self.domains.iter().any(FaultDomain::is_active)
    }

    /// Whether any outage process — per-replica or domain — is active.
    #[must_use]
    pub fn has_outages(&self) -> bool {
        self.has_crashes() || self.has_domains()
    }

    /// Whether `degrade_mult` is priced through the link model (and the
    /// caller must therefore simulate over
    /// [`FaultSpec::degraded_cluster`]'s output).
    #[must_use]
    pub fn link_degrade_active(&self) -> bool {
        self.degrade_mode == DegradeMode::Link && self.degrade_mult != 1.0
    }

    /// Whether the spec injects no faults at all — no outage process, no
    /// effective straggler draw, no degradation. The fleet path treats
    /// such a spec (whatever its seed) exactly like the fault-free one.
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.has_outages()
            && (self.straggler_frac == 0.0 || self.straggler_mult == 1.0)
            && self.degrade_mult == 1.0
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range
    /// (negative/NaN MTBF, non-positive MTTR with crashes enabled,
    /// straggler fraction outside `[0, 1]`, multipliers below 1, a domain
    /// with duplicate members or a degenerate outage process).
    pub fn validate(&self) -> Result<(), String> {
        if self.mtbf_s.is_nan() || self.mtbf_s < 0.0 {
            return Err(format!("MTBF must be non-negative, got {}", self.mtbf_s));
        }
        if self.has_crashes() && !(self.mttr_s.is_finite() && self.mttr_s > 0.0) {
            return Err(format!(
                "MTTR must be positive and finite when crashes are enabled, got {}",
                self.mttr_s
            ));
        }
        if !(self.straggler_frac >= 0.0 && self.straggler_frac <= 1.0) {
            return Err(format!(
                "straggler fraction must lie in [0, 1], got {}",
                self.straggler_frac
            ));
        }
        if !(self.straggler_mult.is_finite() && self.straggler_mult >= 1.0) {
            return Err(format!(
                "straggler multiplier must be ≥ 1, got {}",
                self.straggler_mult
            ));
        }
        if !(self.degrade_mult.is_finite() && self.degrade_mult >= 1.0) {
            return Err(format!(
                "degradation multiplier must be ≥ 1, got {}",
                self.degrade_mult
            ));
        }
        for (index, domain) in self.domains.iter().enumerate() {
            if domain.mtbf_s.is_nan() || domain.mtbf_s < 0.0 {
                return Err(format!(
                    "domain {index}: MTBF must be non-negative, got {}",
                    domain.mtbf_s
                ));
            }
            if domain.mtbf_s.is_finite()
                && domain.mtbf_s > 0.0
                && !(domain.mttr_s.is_finite() && domain.mttr_s > 0.0)
            {
                return Err(format!(
                    "domain {index}: MTTR must be positive and finite when the domain is enabled, got {}",
                    domain.mttr_s
                ));
            }
            let mut members = domain.replicas.clone();
            members.sort_unstable();
            if members.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!(
                    "domain {index}: member replicas must be distinct, got {:?}",
                    domain.replicas
                ));
            }
        }
        self.process.validate()?;
        if matches!(self.process, FailureProcess::RackCorrelated { .. }) {
            return Err(
                "rack-correlated outages are expressed with failure domains here;                  use --domains instead"
                    .to_owned(),
            );
        }
        Ok(())
    }

    /// A copy safe to embed in JSON reports: a disabled crash process —
    /// per replica or per domain — is normalized to `mtbf_s = 0` (JSON
    /// cannot carry `∞`; `0` and `∞` both mean "never crashes").
    #[must_use]
    pub fn json_safe(mut self) -> Self {
        if !self.has_crashes() {
            self.mtbf_s = 0.0;
            self.mttr_s = 0.0;
        }
        for domain in &mut self.domains {
            if !(domain.mtbf_s.is_finite() && domain.mtbf_s > 0.0) {
                domain.mtbf_s = 0.0;
                domain.mttr_s = 0.0;
            }
        }
        self.process = self.process.json_safe();
        self
    }

    /// The constant iteration-duration multiplier of `replica`: the
    /// fleet-wide degradation (in [`DegradeMode::Flat`] only — link-mode
    /// degradation is priced into the cluster instead, never double-
    /// counted here) times the straggler multiplier when this replica's
    /// seeded draw makes it a straggler. Exactly `1.0` for an inactive
    /// slowdown axis, so the fault-free path is untouched.
    #[must_use]
    pub fn slow_mult(&self, replica: usize) -> f64 {
        let mut mult = match self.degrade_mode {
            DegradeMode::Flat => self.degrade_mult,
            DegradeMode::Link => 1.0,
        };
        if self.straggler_frac > 0.0 && self.straggler_mult != 1.0 {
            let mut rng = stream_rng(self.seed, replica, STRAGGLER_STREAM);
            if rng.gen_range(0.0..1.0) < self.straggler_frac {
                mult *= self.straggler_mult;
            }
        }
        mult
    }

    /// The cluster this spec's simulations must be priced over: under an
    /// active [`DegradeMode::Link`] degradation, a copy of `cluster` with
    /// the intra- and inter-node link bandwidths divided by
    /// `degrade_mult` — every collective and KV transfer is then re-priced
    /// through `optimus_collective`'s α–β link model over the thinner
    /// links (latency terms are untouched; only bandwidth degrades).
    /// `None` otherwise: flat-mode degradation keeps the original cluster
    /// and scales iteration durations via [`FaultSpec::slow_mult`].
    #[must_use]
    pub fn degraded_cluster(&self, cluster: &ClusterSpec) -> Option<ClusterSpec> {
        self.link_degrade_active().then(|| {
            let scale = 1.0 / self.degrade_mult;
            let intra = cluster
                .node
                .intra_link
                .clone()
                .with_bandwidth(cluster.node.intra_link.bandwidth * scale);
            let inter = cluster
                .inter_link
                .clone()
                .with_bandwidth(cluster.inter_link.bandwidth * scale);
            cluster
                .clone()
                .with_intra_link(intra)
                .with_inter_link(inter)
        })
    }

    /// The replica's **merged** scheduled outage windows
    /// `(crash_s, recover_s)` that begin before `horizon_s`, in time
    /// order: the union of its own crash process and every domain that
    /// contains it, with overlapping windows coalesced. A pure function
    /// of `(spec, replica)` — the same schedule the engines and the
    /// router observe.
    #[must_use]
    pub fn outage_windows(&self, replica: usize, horizon_s: f64) -> Vec<(f64, f64)> {
        let mut stream = OutageStream::for_replica(self, replica);
        let mut windows = Vec::new();
        while let Some((crash, recover)) = stream.next_window() {
            if crash >= horizon_s {
                break;
            }
            windows.push((crash, recover));
        }
        windows
    }

    /// The shared outage windows of domain `index` that begin before
    /// `horizon_s` — the timeline every member replica observes,
    /// identically. Empty for an inactive (or out-of-range) domain.
    #[must_use]
    pub fn domain_outage_windows(&self, index: usize, horizon_s: f64) -> Vec<(f64, f64)> {
        let mut windows = Vec::new();
        let Some(mut timeline) = self
            .domains
            .get(index)
            .filter(|d| d.is_active())
            .and_then(|_| FaultTimeline::domain(self, index))
        else {
            return windows;
        };
        loop {
            let (crash, recover) = timeline.next_window();
            if crash >= horizon_s {
                return windows;
            }
            windows.push((crash, recover));
        }
    }

    /// Schedule-based availability accounting for one replica: the number
    /// of merged outage windows beginning before `horizon_s` and their
    /// total downtime clipped to the horizon.
    #[must_use]
    pub(crate) fn outage_stats(&self, replica: usize, horizon_s: f64) -> (usize, f64) {
        clipped_stats(&self.outage_windows(replica, horizon_s), horizon_s)
    }

    /// Schedule-based accounting for one domain's shared process.
    #[must_use]
    pub(crate) fn domain_outage_stats(&self, index: usize, horizon_s: f64) -> (usize, f64) {
        clipped_stats(&self.domain_outage_windows(index, horizon_s), horizon_s)
    }
}

fn clipped_stats(windows: &[(f64, f64)], horizon_s: f64) -> (usize, f64) {
    let downtime = windows
        .iter()
        .map(|&(crash, recover)| recover.min(horizon_s) - crash)
        .sum();
    (windows.len(), downtime)
}

impl Serialize for FaultSpec {
    fn to_value(&self) -> Value {
        // The eight pre-Weibull fields always serialize in their
        // original order; `process` is omitted when exponential so
        // existing fleet reports stay byte-identical.
        let mut fields = vec![
            ("seed".to_owned(), self.seed.to_value()),
            ("mtbf_s".to_owned(), self.mtbf_s.to_value()),
            ("mttr_s".to_owned(), self.mttr_s.to_value()),
            ("straggler_frac".to_owned(), self.straggler_frac.to_value()),
            ("straggler_mult".to_owned(), self.straggler_mult.to_value()),
            ("degrade_mult".to_owned(), self.degrade_mult.to_value()),
            ("degrade_mode".to_owned(), self.degrade_mode.to_value()),
            ("domains".to_owned(), self.domains.to_value()),
        ];
        if self.process != FailureProcess::Exponential {
            fields.push(("process".to_owned(), self.process.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for FaultSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let mut spec = Self {
            seed: u64::from_value(v.field_or_null("seed"))?,
            mtbf_s: f64::from_value(v.field_or_null("mtbf_s"))?,
            mttr_s: f64::from_value(v.field_or_null("mttr_s"))?,
            straggler_frac: f64::from_value(v.field_or_null("straggler_frac"))?,
            straggler_mult: f64::from_value(v.field_or_null("straggler_mult"))?,
            degrade_mult: f64::from_value(v.field_or_null("degrade_mult"))?,
            degrade_mode: DegradeMode::from_value(v.field_or_null("degrade_mode"))?,
            domains: Vec::<FaultDomain>::from_value(v.field_or_null("domains"))?,
            process: FailureProcess::Exponential,
        };
        if let Some(process) = v.get("process") {
            spec.process = FailureProcess::from_value(process)?;
        }
        Ok(spec)
    }
}

/// The splitmix64 finalizer: decorrelates the per-replica streams drawn
/// from one user-facing seed.
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn stream_rng(seed: u64, entity: usize, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix(
        seed ^ splitmix(stream ^ splitmix((entity as u64).wrapping_add(1))),
    ))
}

/// The infinite outage-window generator of one entity (a replica's own
/// crash process, or a domain's shared one): alternating exponential
/// up/down durations from the entity's stream.
pub(crate) struct FaultTimeline {
    rng: StdRng,
    mtbf_s: f64,
    mttr_s: f64,
    at_s: f64,
    law: UptimeLaw,
}

/// Resolved uptime sampler of one timeline. Exponential keeps the exact
/// pre-Weibull sampling expression (the PR 6/7 goldens pin it); Weibull
/// inverts `1 - exp(-(x/scale)^k)` on the same single RNG word per
/// sample, so enabling it never shifts any other stream.
enum UptimeLaw {
    Exponential,
    Weibull { scale: f64, inv_shape: f64 },
}

impl UptimeLaw {
    fn of(process: FailureProcess, mtbf_s: f64) -> Self {
        match process {
            FailureProcess::Weibull { shape } if shape != 1.0 => Self::Weibull {
                scale: weibull_scale(mtbf_s, shape),
                inv_shape: 1.0 / shape,
            },
            _ => Self::Exponential,
        }
    }
}

impl FaultTimeline {
    /// The replica's own crash process; `None` when disabled.
    pub(crate) fn new(spec: &FaultSpec, replica: usize) -> Option<Self> {
        spec.has_crashes().then(|| Self {
            rng: stream_rng(spec.seed, replica, CRASH_STREAM),
            mtbf_s: spec.mtbf_s,
            mttr_s: spec.mttr_s,
            at_s: 0.0,
            law: UptimeLaw::of(spec.process, spec.mtbf_s),
        })
    }

    /// Domain `index`'s shared process, keyed on `(seed, index)` — never
    /// on a replica — so every member replays the identical timeline.
    /// `None` when the domain is inactive.
    pub(crate) fn domain(spec: &FaultSpec, index: usize) -> Option<Self> {
        let domain = &spec.domains[index];
        // Domains model correlated infrastructure (racks, switches) whose
        // outage statistics are their own; they stay exponential.
        (domain.mtbf_s.is_finite() && domain.mtbf_s > 0.0).then(|| Self {
            rng: stream_rng(spec.seed, index, DOMAIN_STREAM),
            mtbf_s: domain.mtbf_s,
            mttr_s: domain.mttr_s,
            at_s: 0.0,
            law: UptimeLaw::Exponential,
        })
    }

    /// The next `(crash_s, recover_s)` window; successive windows are
    /// disjoint and time-ordered.
    pub(crate) fn next_window(&mut self) -> (f64, f64) {
        let uptime = match &self.law {
            UptimeLaw::Exponential => Exp::new(1.0 / self.mtbf_s).sample(&mut self.rng),
            UptimeLaw::Weibull { scale, inv_shape } => {
                let u: f64 = self.rng.gen_range(0.0..1.0);
                scale * (-(1.0 - u).ln()).powf(*inv_shape)
            }
        };
        let crash = self.at_s + uptime;
        let recover = crash + Exp::new(1.0 / self.mttr_s).sample(&mut self.rng);
        self.at_s = recover;
        (crash, recover)
    }
}

/// One replica's merged outage stream: the lazy union of its own crash
/// timeline and the shared timeline of every domain containing it.
/// Yields coalesced `(crash, recover)` windows in time order — each
/// window starts strictly after the previous one ends — so downstream
/// consumers (cursor, engine drain, accounting) see exactly the
/// single-timeline shape they saw before domains existed.
pub(crate) struct OutageStream {
    sources: Vec<FaultTimeline>,
    /// Lookahead: the not-yet-consumed earliest window of each source.
    heads: Vec<(f64, f64)>,
}

impl OutageStream {
    pub(crate) fn for_replica(spec: &FaultSpec, replica: usize) -> Self {
        let mut sources: Vec<FaultTimeline> = Vec::new();
        if let Some(own) = FaultTimeline::new(spec, replica) {
            sources.push(own);
        }
        for (index, domain) in spec.domains.iter().enumerate() {
            if domain.is_active() && domain.replicas.contains(&replica) {
                if let Some(shared) = FaultTimeline::domain(spec, index) {
                    sources.push(shared);
                }
            }
        }
        let heads = sources.iter_mut().map(FaultTimeline::next_window).collect();
        Self { sources, heads }
    }

    /// The next merged window, or `None` when no outage process covers
    /// this replica. Pops the earliest pending window, then absorbs every
    /// window (from any source) that starts inside the union built so
    /// far, extending the recovery edge.
    pub(crate) fn next_window(&mut self) -> Option<(f64, f64)> {
        let first =
            (0..self.heads.len()).min_by(|&a, &b| self.heads[a].0.total_cmp(&self.heads[b].0))?;
        let (crash, mut recover) = self.heads[first];
        self.heads[first] = self.sources[first].next_window();
        loop {
            let Some(next) = (0..self.heads.len())
                .filter(|&i| self.heads[i].0 <= recover)
                .min_by(|&a, &b| self.heads[a].0.total_cmp(&self.heads[b].0))
            else {
                return Some((crash, recover));
            };
            recover = recover.max(self.heads[next].1);
            self.heads[next] = self.sources[next].next_window();
        }
    }
}

/// A forward-only cursor over one replica's merged outage schedule — the
/// router's availability view. Queries are clamped forward: asking about
/// an earlier instant than a previous query answers as of the latest
/// instant seen (the router's knowledge only moves forward).
pub(crate) struct OutageCursor {
    stream: OutageStream,
    window: Option<(f64, f64)>,
    hi: f64,
}

impl OutageCursor {
    pub(crate) fn new(spec: &FaultSpec, replica: usize) -> Self {
        let mut stream = OutageStream::for_replica(spec, replica);
        let window = stream.next_window();
        Self {
            stream,
            window,
            hi: 0.0,
        }
    }

    /// Whether the schedule has the replica inside an outage at `t`.
    pub(crate) fn down_at(&mut self, t: f64) -> bool {
        self.hi = self.hi.max(t);
        let t = self.hi;
        loop {
            match self.window {
                None => return false,
                Some((crash, recover)) => {
                    if t < crash {
                        return false;
                    }
                    if t < recover {
                        return true;
                    }
                    self.window = self.stream.next_window();
                }
            }
        }
    }

    /// The earliest instant ≥ `t` at which the schedule has the replica
    /// up (the end of the current outage window, or `t` itself).
    pub(crate) fn next_up(&mut self, t: f64) -> f64 {
        if self.down_at(t) {
            self.window.expect("down ⇒ inside a window").1
        } else {
            t
        }
    }
}

/// One replica engine's fault wiring: its drain-side merged outage stream
/// (the `window`/`stream` pair advanced by the engine clock), the
/// router's independent query cursor, and the constant slowdown
/// multiplier.
pub(crate) struct EngineFaults {
    pub(crate) stream: OutageStream,
    pub(crate) window: Option<(f64, f64)>,
    pub(crate) query: OutageCursor,
    pub(crate) slow_mult: f64,
}

impl EngineFaults {
    pub(crate) fn for_replica(spec: &FaultSpec, replica: usize) -> Self {
        let mut stream = OutageStream::for_replica(spec, replica);
        let window = stream.next_window();
        Self {
            stream,
            window,
            query: OutageCursor::new(spec, replica),
            slow_mult: spec.slow_mult(replica),
        }
    }
}

/// Availability metrics of one fleet run under fault injection — all
/// zeros / `1.0` for a fault-free run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAvailability {
    /// Outage windows scheduled within the fleet makespan, summed across
    /// replicas (a domain outage over `k` member replicas counts `k`
    /// times — each member went down).
    pub crashes: usize,
    /// Scheduled outage time within the makespan, summed across replicas.
    pub downtime: optimus_units::Time,
    /// Mean fraction of replica-time up:
    /// `1 − downtime / (replicas × makespan)`.
    pub availability: f64,
    /// Requeue events (every crash-drain of a request counts once; one
    /// request can be requeued several times).
    pub requeues: usize,
    /// Distinct requests requeued at least once. Every one of them
    /// eventually completes — requeue-then-complete conservation — so
    /// this is also the requeued-then-completed count.
    pub requeued_requests: usize,
    /// Ascending ids of the requeued requests.
    pub requeued_ids: Vec<usize>,
    /// Per-replica scheduled downtime within the makespan (merged own +
    /// domain windows).
    pub per_replica_downtime: Vec<optimus_units::Time>,
    /// Per-domain scheduled downtime within the makespan — the shared
    /// process alone, before it fans out to members. Empty when the spec
    /// has no domains.
    pub per_domain_downtime: Vec<optimus_units::Time>,
    /// SLO-met tokens per second per *available* replica:
    /// `goodput / (replicas × availability)` — what one surviving
    /// replica-second delivers under churn.
    pub goodput_tokens_per_up_replica_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        assert!(!spec.has_crashes());
        assert!(!spec.has_domains());
        assert!(spec.validate().is_ok());
        assert_eq!(spec.slow_mult(0), 1.0);
        assert!(spec.outage_windows(3, 1e9).is_empty());
        // An inactive spec stays inactive whatever its seed.
        let seeded = FaultSpec { seed: 99, ..spec };
        assert!(seeded.is_none());
    }

    #[test]
    fn timelines_are_deterministic_and_ordered() {
        let spec = FaultSpec::crashes(7, 120.0, 15.0);
        let a = spec.outage_windows(2, 10_000.0);
        let b = spec.outage_windows(2, 10_000.0);
        assert_eq!(a, b, "same (seed, replica) must replay the schedule");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].1 <= w[1].0, "windows must be disjoint and ordered");
        }
        assert!(a.iter().all(|&(c, r)| c <= r));
        let other = spec.outage_windows(3, 10_000.0);
        assert_ne!(a, other, "replicas draw independent schedules");
        let reseeded = FaultSpec::crashes(8, 120.0, 15.0).outage_windows(2, 10_000.0);
        assert_ne!(a, reseeded, "the fault seed must matter");
    }

    #[test]
    fn mean_window_shape_tracks_mtbf_and_mttr() {
        let spec = FaultSpec::crashes(42, 100.0, 10.0);
        let windows = spec.outage_windows(0, 1_000_000.0);
        let n = windows.len() as f64;
        let mean_down: f64 = windows.iter().map(|&(c, r)| r - c).sum::<f64>() / n;
        // Cycle length ≈ mtbf + mttr ⇒ ~9091 windows over 1e6 s.
        assert!((n - 9091.0).abs() / 9091.0 < 0.1, "window count {n}");
        assert!((mean_down - 10.0).abs() < 1.0, "mean downtime {mean_down}");
    }

    #[test]
    fn outage_stats_clip_to_the_horizon() {
        let spec = FaultSpec::crashes(1, 50.0, 1e6);
        let windows = spec.outage_windows(0, 200.0);
        assert!(!windows.is_empty());
        let (crashes, downtime) = spec.outage_stats(0, 200.0);
        assert_eq!(crashes, windows.len());
        assert!(
            downtime <= 200.0 * crashes as f64,
            "clipped downtime {downtime}"
        );
        assert!(downtime < 1e6, "downtime must be clipped, got {downtime}");
    }

    #[test]
    fn straggler_draw_is_per_replica_and_seeded() {
        let spec = FaultSpec::none().with_stragglers(0.5, 3.0);
        assert!(!spec.is_none());
        let mults: Vec<f64> = (0..64).map(|r| spec.slow_mult(r)).collect();
        assert!(mults.iter().all(|&m| m == 1.0 || m == 3.0));
        let stragglers = mults.iter().filter(|&&m| m == 3.0).count();
        assert!(
            (10..=54).contains(&stragglers),
            "half the replicas should straggle, got {stragglers}/64"
        );
        let replay: Vec<f64> = (0..64).map(|r| spec.slow_mult(r)).collect();
        assert_eq!(mults, replay);
    }

    #[test]
    fn cursor_matches_the_window_list() {
        let spec = FaultSpec::crashes(11, 30.0, 5.0);
        let windows = spec.outage_windows(0, 2_000.0);
        let mut cursor = OutageCursor::new(&spec, 0);
        let mut t = 0.0;
        while t < 1_900.0 {
            let expect = windows.iter().any(|&(c, r)| t >= c && t < r);
            assert_eq!(cursor.down_at(t), expect, "at {t}");
            if expect {
                let up = cursor.next_up(t);
                let (_, r) = *windows
                    .iter()
                    .find(|&&(c, r)| t >= c && t < r)
                    .expect("down ⇒ window");
                assert_eq!(up, r);
            }
            t += 0.37;
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(FaultSpec::crashes(0, -1.0, 1.0).validate().is_err());
        assert!(FaultSpec::crashes(0, 10.0, 0.0).validate().is_err());
        assert!(FaultSpec::crashes(0, 10.0, f64::INFINITY)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_stragglers(1.5, 2.0)
            .validate()
            .is_err());
        assert!(FaultSpec::none()
            .with_stragglers(0.5, 0.5)
            .validate()
            .is_err());
        assert!(FaultSpec::none().with_degradation(0.9).validate().is_err());
        assert!(FaultSpec::crashes(3, 100.0, 10.0)
            .with_stragglers(0.1, 2.0)
            .with_degradation(1.1)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_domains() {
        let bad_mtbf = FaultSpec::none().with_domain(FaultDomain::new(vec![0, 1], -5.0, 1.0));
        assert!(bad_mtbf.validate().is_err());
        let bad_mttr = FaultSpec::none().with_domain(FaultDomain::new(vec![0, 1], 60.0, 0.0));
        assert!(bad_mttr.validate().is_err());
        let dup = FaultSpec::none().with_domain(FaultDomain::new(vec![0, 1, 0], 60.0, 5.0));
        assert!(dup.validate().is_err());
        let ok = FaultSpec::none()
            .with_domain(FaultDomain::new(vec![0, 1], 60.0, 5.0))
            .with_domain(FaultDomain::new(vec![2, 3], 90.0, 5.0));
        assert!(ok.validate().is_ok());
        assert!(ok.has_domains());
        assert!(!ok.is_none());
    }

    #[test]
    fn domain_members_share_the_identical_schedule() {
        let spec = FaultSpec::none().with_domain(FaultDomain::new(vec![0, 2], 80.0, 10.0));
        let member_a = spec.outage_windows(0, 50_000.0);
        let member_b = spec.outage_windows(2, 50_000.0);
        let shared = spec.domain_outage_windows(0, 50_000.0);
        assert!(!shared.is_empty());
        assert_eq!(member_a, shared, "a member sees exactly the domain windows");
        assert_eq!(member_a, member_b, "members go down together");
        assert!(
            spec.outage_windows(1, 50_000.0).is_empty(),
            "a non-member is untouched"
        );
        assert!(
            spec.outage_windows(7, 50_000.0).is_empty(),
            "an out-of-range member index applies to no replica here"
        );
    }

    #[test]
    fn merged_windows_union_own_and_domain_processes() {
        let spec =
            FaultSpec::crashes(13, 60.0, 8.0).with_domain(FaultDomain::new(vec![0, 1], 90.0, 12.0));
        let merged = spec.outage_windows(0, 20_000.0);
        assert!(!merged.is_empty());
        for w in merged.windows(2) {
            assert!(
                w[0].1 < w[1].0,
                "merged windows must be disjoint, ordered, and coalesced"
            );
        }
        // The merged schedule is pointwise the OR of the two processes.
        let own = FaultSpec::crashes(13, 60.0, 8.0).outage_windows(0, 20_000.0);
        let shared = spec.domain_outage_windows(0, 20_000.0);
        let down = |windows: &[(f64, f64)], t: f64| windows.iter().any(|&(c, r)| t >= c && t < r);
        let mut t = 0.0;
        while t < 19_000.0 {
            assert_eq!(
                down(&merged, t),
                down(&own, t) || down(&shared, t),
                "merged schedule must equal the union at t = {t}"
            );
            t += 1.73;
        }
        // And the domain layer never perturbs the replica's own stream.
        let merged_replica_1 = spec.outage_windows(1, 20_000.0);
        let own_replica_1 = FaultSpec::crashes(13, 60.0, 8.0).outage_windows(1, 20_000.0);
        let down_any = |t: f64| down(&own_replica_1, t) || down(&shared, t);
        let mut t = 0.0;
        while t < 19_000.0 {
            assert_eq!(down(&merged_replica_1, t), down_any(t), "at t = {t}");
            t += 2.31;
        }
    }

    #[test]
    fn link_mode_moves_degradation_out_of_slow_mult() {
        let flat = FaultSpec::none().with_degradation(2.0);
        assert_eq!(flat.slow_mult(0), 2.0);
        assert!(flat
            .degraded_cluster(&optimus_hw::presets::dgx_a100_hdr_cluster())
            .is_none());
        let link = FaultSpec::none()
            .with_degradation(2.0)
            .with_degrade_mode(DegradeMode::Link);
        assert!(link.link_degrade_active());
        assert!(!link.is_none());
        assert_eq!(
            link.slow_mult(0),
            1.0,
            "link-mode degradation must not also scale iteration durations"
        );
        let cluster = optimus_hw::presets::dgx_a100_hdr_cluster();
        let degraded = link.degraded_cluster(&cluster).expect("active link mode");
        assert_eq!(
            degraded.node.intra_link.bandwidth.gb_per_sec(),
            cluster.node.intra_link.bandwidth.gb_per_sec() / 2.0
        );
        assert_eq!(
            degraded.inter_link.bandwidth.gb_per_sec(),
            cluster.inter_link.bandwidth.gb_per_sec() / 2.0
        );
        assert_eq!(
            degraded.node.intra_link.latency, cluster.node.intra_link.latency,
            "only bandwidth degrades"
        );
        // A unit multiplier is inert in either mode.
        let inert = FaultSpec::none().with_degrade_mode(DegradeMode::Link);
        assert!(inert.is_none());
        assert!(inert.degraded_cluster(&cluster).is_none());
    }

    #[test]
    fn json_safe_normalizes_the_infinite_mtbf() {
        let spec = FaultSpec::none().with_degradation(1.5).json_safe();
        assert_eq!(spec.mtbf_s, 0.0);
        let active = FaultSpec::crashes(2, 60.0, 5.0).json_safe();
        assert_eq!(active.mtbf_s, 60.0);
        let domained = FaultSpec::none()
            .with_domain(FaultDomain::new(vec![0], f64::INFINITY, 0.0))
            .with_domain(FaultDomain::new(vec![1, 2], 45.0, 5.0))
            .json_safe();
        assert_eq!(domained.domains[0].mtbf_s, 0.0);
        assert_eq!(domained.domains[1].mtbf_s, 45.0);
    }
}
