//! The load-sweep engine: saturation curves and an SLO-goodput frontier.
//!
//! The paper's workload analysis (and the Orca/vLLM serving lineage it
//! cites) characterizes a deployment by sweeping offered load against
//! serving strategy and reading off the saturation knee — the arrival
//! rate where queueing detaches latency from the service time — and the
//! SLO-feasible operating points. [`load_sweep`] evaluates an
//! (arrival-rate × strategy) grid of full serving simulations: one
//! [`ServeInstance`] is prepared per strategy (its memoized estimator and
//! sealed decode-cost table shared by every rate), the grid cells run
//! rayon-parallel, and every cell replays the *same seed* so curves are
//! paired — a throughput difference between two strategies is never
//! sampling noise.
//!
//! The result is deterministic: cells are collected in grid order
//! regardless of thread count, and the SLO-goodput Pareto frontier
//! (maximum goodput per device count) is extracted with the same
//! tie-break discipline as the strategy sweep's
//! [`optimus_sweep::frontier_indices_by`] core.

use crate::fleet::run_fleet;
use crate::sim::EXACT_MODE_LIMIT;
use crate::{
    ArrivalProcess, FaultSpec, FleetReport, KvSpec, LengthDist, PrefixSpec, RouterPolicy,
    Scheduler, ServeConfig, ServeInstance, SloSpec, TraceSpec,
};
use optimus_hw::{ClusterSpec, Precision};
use optimus_model::ModelConfig;
use optimus_sweep::frontier_indices_by;
use optimus_units::Time;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One serving strategy axis of the grid: a replica shape plus how many
/// of it, so the frontier trades **TP-up against replicate-out** at equal
/// device counts (`gpus = tp × replicas`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadStrategy {
    /// Tensor-parallel degree of each replica.
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// Number of identical replicas behind the sweep's router.
    pub replicas: usize,
    /// KV-cache regime of each replica (reserved or paged).
    pub kv: KvSpec,
    /// Admission scheduler of each replica.
    pub scheduler: Scheduler,
}

impl LoadStrategy {
    /// A single replica at TP `tp` with the legacy reserved-KV FIFO
    /// regime.
    #[must_use]
    pub fn single(tp: usize, precision: Precision) -> Self {
        Self {
            tp,
            precision,
            replicas: 1,
            kv: KvSpec::reserved(),
            scheduler: Scheduler::Fifo,
        }
    }

    /// Sets the replica count.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the KV-cache regime.
    #[must_use]
    pub fn with_kv(mut self, kv: KvSpec) -> Self {
        self.kv = kv;
        self
    }

    /// Sets the admission scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Devices the strategy occupies.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.tp * self.replicas
    }
}

/// The (arrival-rate × strategy) grid to evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSweepSpec {
    /// Trace seed, shared by every cell (paired comparison).
    pub seed: u64,
    /// Requests simulated per cell.
    pub requests: usize,
    /// Prompt-length distribution.
    pub prompt: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
    /// Offered Poisson arrival rates, requests per second.
    pub rates: Vec<f64>,
    /// Strategies to sweep.
    pub strategies: Vec<LoadStrategy>,
    /// The SLO goodput is measured against.
    pub slo: SloSpec,
    /// The routing policy multi-replica strategies use.
    pub router: RouterPolicy,
    /// Fault environment applied to every cell (`None` = fault-free).
    /// Under churn the frontier becomes availability-aware: a large-TP,
    /// few-replica strategy loses a bigger capacity fraction per crash
    /// than a many-replica one.
    pub faults: Option<FaultSpec>,
    /// Shared-prefix pool applied to every cell's trace (`None` = no
    /// prefixes). A trace axis, not a strategy axis: every cell of a
    /// rate replays the same prefixed trace, so paged-with-prefix-cache
    /// strategies are compared against reserved ones on identical work.
    pub prefixes: Option<PrefixSpec>,
    /// Uniformly drawn priority classes in every cell's trace (1 = all
    /// requests equal).
    pub priority_classes: u8,
}

/// One fully simulated grid cell, summarized for curve plotting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Tensor-parallel degree of each replica.
    pub tp: usize,
    /// Serving precision of the strategy.
    pub precision: Precision,
    /// Replica count of the strategy.
    pub replicas: usize,
    /// Devices the strategy occupies: `tp × replicas`.
    pub gpus: usize,
    /// KV block size in tokens (0 = reserved whole-lifetime KV).
    pub block_tokens: usize,
    /// Admission scheduler of the strategy.
    pub scheduler: Scheduler,
    /// Offered arrival rate, requests per second.
    pub offered_rate_per_s: f64,
    /// Sustained generation throughput, tokens per second.
    pub tokens_per_s: f64,
    /// Sustained request throughput (the saturation curve's y-axis: it
    /// tracks the offered rate until the knee, then flattens).
    pub requests_per_s: f64,
    /// Generated tokens of SLO-meeting requests per second.
    pub goodput_tokens_per_s: f64,
    /// SLO-meeting requests per second.
    pub goodput_requests_per_s: f64,
    /// Fraction of completed requests meeting the SLO.
    pub attainment: f64,
    /// Median time-to-first-token.
    pub ttft_p50: Time,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99: Time,
    /// 99th-percentile time-per-output-token.
    pub tpot_p99: Time,
    /// 99th-percentile end-to-end latency.
    pub e2e_p99: Time,
    /// Mean decode-batch width (how full the continuous batch ran).
    pub mean_decode_batch: f64,
    /// Peak KV occupancy over budget.
    pub kv_peak_utilization: f64,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Requests rejected on arrival.
    pub rejected: usize,
    /// Mean fraction of replica-time up (1.0 on a fault-free sweep).
    pub availability: f64,
    /// Requeue events caused by crashes in this cell.
    pub requeues: usize,
    /// Decode-time preemptions across the fleet (0 in reserved mode).
    pub preemptions: usize,
    /// Prefix-cache hits across the fleet (0 without a prefix pool).
    pub prefix_hits: usize,
}

impl LoadPoint {
    fn from_fleet(strategy: LoadStrategy, rate: f64, report: &FleetReport) -> Self {
        Self {
            tp: strategy.tp,
            precision: strategy.precision,
            replicas: report.replicas,
            gpus: report.gpus,
            offered_rate_per_s: rate,
            tokens_per_s: report.tokens_per_s,
            requests_per_s: report.requests_per_s,
            goodput_tokens_per_s: report.slo.goodput_tokens_per_s,
            goodput_requests_per_s: report.slo.goodput_requests_per_s,
            attainment: report.slo.attainment,
            ttft_p50: report.ttft.p50,
            ttft_p99: report.ttft.p99,
            tpot_p99: report.tpot.p99,
            e2e_p99: report.e2e.p99,
            mean_decode_batch: report.mean_decode_batch,
            kv_peak_utilization: report.kv_peak_utilization,
            completed: report.completed,
            rejected: report.rejected,
            availability: report.availability.availability,
            requeues: report.availability.requeues,
            block_tokens: strategy.kv.block_tokens,
            scheduler: strategy.scheduler,
            preemptions: report.paging.as_ref().map_or(0, |p| p.preemptions),
            prefix_hits: report.paging.as_ref().map_or(0, |p| p.prefix_hits),
        }
    }
}

/// One strategy's saturation curve: its cells in ascending-rate order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationCurve {
    /// Tensor-parallel degree of each replica.
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// Replica count.
    pub replicas: usize,
    /// Devices occupied: `tp × replicas`.
    pub gpus: usize,
    /// KV-cache regime of each replica.
    pub kv: KvSpec,
    /// Admission scheduler of each replica.
    pub scheduler: Scheduler,
    /// One point per offered rate, in the spec's rate order.
    pub points: Vec<LoadPoint>,
}

/// A strategy the sweep could not run at all, with the reason.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfeasibleStrategy {
    /// Tensor-parallel degree of each replica.
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// Replica count.
    pub replicas: usize,
    /// Why it cannot serve (weights overflow, TP beyond a node,
    /// unsupported precision, zero replicas).
    pub reason: String,
}

/// The complete outcome of one load sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSweepReport {
    /// Model name.
    pub model: String,
    /// Cluster name.
    pub cluster: String,
    /// Trace seed shared by every cell.
    pub seed: u64,
    /// Requests simulated per cell.
    pub requests_per_point: usize,
    /// The SLO goodput was measured against.
    pub slo: SloSpec,
    /// One saturation curve per feasible strategy, in spec order.
    pub curves: Vec<SaturationCurve>,
    /// The SLO-goodput Pareto frontier over every cell: the points where
    /// no other cell achieves at least the goodput with at most the
    /// devices. Ascending device count, therefore ascending goodput.
    pub frontier: Vec<LoadPoint>,
    /// Strategies that could not serve, with reasons.
    pub infeasible: Vec<InfeasibleStrategy>,
    /// The fault environment every cell ran under (`None` = fault-free).
    pub faults: Option<FaultSpec>,
}

/// Evaluates the (arrival-rate × strategy) grid rayon-parallel.
///
/// Each feasible strategy gets one prepared [`ServeInstance`]; above
/// [`EXACT_MODE_LIMIT`] requests per cell its decode-cost table is sealed
/// once — deterministically, from the length-distribution bounds, before
/// any cell runs — and shared lock-free by every rate. The report is
/// byte-identical across `RAYON_NUM_THREADS` settings.
///
/// # Errors
///
/// Returns [`crate::ServeError`] only via the per-strategy `infeasible`
/// list — the sweep itself always succeeds if the spec is well-formed.
///
/// # Panics
///
/// Panics on a degenerate spec: no rates, no strategies, zero requests,
/// or a non-positive/non-finite rate.
#[must_use]
pub fn load_sweep(
    cluster: &ClusterSpec,
    model: &Arc<ModelConfig>,
    spec: &LoadSweepSpec,
) -> LoadSweepReport {
    assert!(spec.requests > 0, "a load sweep needs requests");
    assert!(!spec.rates.is_empty(), "a load sweep needs arrival rates");
    assert!(!spec.strategies.is_empty(), "a load sweep needs strategies");
    assert!(
        spec.rates.iter().all(|r| r.is_finite() && *r > 0.0),
        "arrival rates must be finite and positive"
    );
    let faults = spec.faults.clone().unwrap_or_else(FaultSpec::none);
    if let Err(reason) = faults.validate() {
        panic!("invalid fault spec: {reason}");
    }
    // Under link-mode degradation every cell is priced over the
    // bandwidth-degraded cluster (the report keeps the original cluster
    // name; the spec in `faults` records why the links are thinner).
    let degraded = faults.degraded_cluster(cluster);
    let cluster = degraded.as_ref().unwrap_or(cluster);

    // --- phase 1: one instance per strategy, sealed and probed ----------
    let prepared: Vec<Result<ServeInstance<'_>, InfeasibleStrategy>> = spec
        .strategies
        .par_iter()
        .map(|s| prepare_strategy(cluster, model, spec, *s))
        .collect();
    let mut instances: Vec<(LoadStrategy, ServeInstance<'_>)> = Vec::new();
    let mut infeasible = Vec::new();
    for (s, outcome) in spec.strategies.iter().zip(prepared) {
        match outcome {
            Ok(instance) => instances.push((*s, instance)),
            Err(reason) => infeasible.push(reason),
        }
    }
    // Nothing can run: report the reasons without generating a single
    // rate trace (they can be enormous — rates × requests requests — and
    // every byte would be thrown away).
    if instances.is_empty() {
        return LoadSweepReport {
            model: model.name.clone(),
            cluster: cluster.name.clone(),
            seed: spec.seed,
            requests_per_point: spec.requests,
            slo: spec.slo,
            curves: Vec::new(),
            frontier: Vec::new(),
            infeasible,
            faults: spec.faults.clone().map(FaultSpec::json_safe),
        };
    }

    // --- phase 2: the grid, cells in parallel ---------------------------
    // Traces depend on the rate alone, not the strategy: generate each
    // once and share it by reference across the row of cells (a sweep
    // therefore holds rates × requests requests in memory — ~32 B each).
    let traces: Vec<Vec<crate::Request>> = spec
        .rates
        .par_iter()
        .map(|&rate| {
            TraceSpec {
                seed: spec.seed,
                requests: spec.requests,
                arrival: ArrivalProcess::Poisson { rate_per_s: rate },
                prompt: spec.prompt,
                output: spec.output,
                prefixes: spec.prefixes,
                priority_classes: spec.priority_classes,
            }
            .generate()
        })
        .collect();
    let cells: Vec<(usize, usize)> = (0..instances.len())
        .flat_map(|si| (0..spec.rates.len()).map(move |ri| (si, ri)))
        .collect();
    let points: Vec<LoadPoint> = cells
        .into_par_iter()
        .map(|(si, ri)| {
            // Every cell — single replica included — runs through the
            // fleet loop; a 1-replica fleet is bit-identical to the
            // single-instance path (pinned by
            // `one_replica_fleet_equals_single_instance`), so there is
            // one code path to keep correct.
            let (strategy, instance) = &instances[si];
            let report = run_fleet(
                instance,
                strategy.replicas,
                spec.router,
                &faults,
                &traces[ri],
            )
            .expect("strategy feasibility was probed in phase 1");
            LoadPoint::from_fleet(*strategy, spec.rates[ri], &report)
        })
        .collect();

    // --- phase 3: curves and the SLO-goodput frontier -------------------
    let curves: Vec<SaturationCurve> = instances
        .iter()
        .enumerate()
        .map(|(si, (s, _))| SaturationCurve {
            tp: s.tp,
            precision: s.precision,
            replicas: s.replicas,
            gpus: s.gpus(),
            kv: s.kv,
            scheduler: s.scheduler,
            points: points[si * spec.rates.len()..(si + 1) * spec.rates.len()].to_vec(),
        })
        .collect();
    // Minimize devices, maximize goodput (negated). The tie-break runs on
    // point identity — (tp, precision, replicas, kv, scheduler, rate) —
    // so the frontier is permutation invariant like the strategy sweep's.
    let frontier = frontier_indices_by(
        &points,
        |p| (p.gpus as f64, -p.goodput_tokens_per_s),
        |a, b| {
            (a.tp, a.precision, a.replicas, a.block_tokens, a.scheduler)
                .cmp(&(b.tp, b.precision, b.replicas, b.block_tokens, b.scheduler))
                .then_with(|| a.offered_rate_per_s.total_cmp(&b.offered_rate_per_s))
        },
    )
    .into_iter()
    .map(|i| points[i])
    .collect();

    LoadSweepReport {
        model: model.name.clone(),
        cluster: cluster.name.clone(),
        seed: spec.seed,
        requests_per_point: spec.requests,
        slo: spec.slo,
        curves,
        frontier,
        infeasible,
        faults: spec.faults.clone().map(FaultSpec::json_safe),
    }
}

/// Builds, seals (for streaming-scale cells), and probes one strategy's
/// instance. Sealing happens here — before any cell runs, with bounds
/// derived from the length distributions rather than any one trace — so
/// the table grid never depends on which cell a thread pool ran first.
fn prepare_strategy<'a>(
    cluster: &'a ClusterSpec,
    model: &Arc<ModelConfig>,
    spec: &LoadSweepSpec,
    strategy: LoadStrategy,
) -> Result<ServeInstance<'a>, InfeasibleStrategy> {
    let infeasible = |reason: String| InfeasibleStrategy {
        tp: strategy.tp,
        precision: strategy.precision,
        replicas: strategy.replicas,
        reason,
    };
    if strategy.replicas == 0 {
        return Err(infeasible("a fleet needs at least one replica".to_owned()));
    }
    // Replicas are identical, so one prepared (and, at streaming scale,
    // sealed) instance prices every replica of every rate cell. The seal
    // bounds below are per replica — each replica's batch is capped by
    // its own KV budget — so they cover any routed share of any trace.
    let config = ServeConfig::new(strategy.tp)
        .with_precision(strategy.precision)
        .with_slo(spec.slo)
        .with_kv(strategy.kv)
        .with_scheduler(strategy.scheduler);
    let instance = ServeInstance::new(cluster, Arc::clone(model), config)
        .map_err(|e| infeasible(e.to_string()))?;
    // A cache-hit prompt is the drawn suffix plus the shared prefix, so
    // the per-request context ceiling grows by the prefix length.
    let max_kv = spec.prompt.max_tokens()
        + spec.output.max_tokens()
        + spec.prefixes.as_ref().map_or(0, |p| p.tokens);
    if spec.requests > EXACT_MODE_LIMIT {
        // The same batch-ceiling computation the per-trace bound scan
        // uses, fed the distributions' minimum reservation — so these
        // bounds dominate every trace's and no cell ever clamps.
        let max_batch = if strategy.kv.is_reserved() {
            let min_request =
                crate::Request::new(0, 0.0, spec.prompt.min_tokens(), spec.output.min_tokens());
            let min_reservation = instance.reservation(&min_request).bytes();
            instance.batch_ceiling(min_reservation, spec.requests)
        } else {
            // Paged batches are bounded by the block pool: every decoding
            // member holds at least one private block.
            instance.total_blocks().clamp(1, spec.requests)
        };
        instance
            .seal(max_batch, max_kv)
            .map_err(|e| infeasible(e.to_string()))?;
    } else {
        // Cheap probe so unsupported precisions surface as infeasible
        // strategies instead of mid-grid panics.
        instance.probe().map_err(|e| infeasible(e.to_string()))?;
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_hw::presets;
    use optimus_model::presets as models;

    fn small_spec() -> LoadSweepSpec {
        LoadSweepSpec {
            seed: 42,
            requests: 48,
            prompt: LengthDist::Uniform { lo: 50, hi: 200 },
            output: LengthDist::Uniform { lo: 4, hi: 24 },
            rates: vec![0.5, 4.0, 32.0],
            strategies: vec![
                LoadStrategy::single(1, Precision::Fp16),
                LoadStrategy::single(2, Precision::Fp16),
            ],
            slo: SloSpec::default(),
            router: RouterPolicy::RoundRobin,
            faults: None,
            prefixes: None,
            priority_classes: 1,
        }
    }

    #[test]
    fn grid_shape_and_pairing() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let report = load_sweep(&cluster, &model, &small_spec());
        assert_eq!(report.curves.len(), 2);
        assert!(report.infeasible.is_empty());
        for curve in &report.curves {
            assert_eq!(curve.points.len(), 3);
            for (p, rate) in curve.points.iter().zip([0.5, 4.0, 32.0]) {
                assert_eq!(p.offered_rate_per_s, rate);
                assert_eq!(p.completed + p.rejected, 48);
            }
        }
    }

    #[test]
    fn throughput_saturates_with_offered_load() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let report = load_sweep(&cluster, &model, &small_spec());
        for curve in &report.curves {
            // Below the knee the served rate tracks the offered rate;
            // past it the curve flattens — it must never exceed offered.
            for p in &curve.points {
                assert!(
                    p.requests_per_s <= p.offered_rate_per_s * 1.5,
                    "served {} at offered {}",
                    p.requests_per_s,
                    p.offered_rate_per_s
                );
            }
            let served: Vec<f64> = curve.points.iter().map(|p| p.requests_per_s).collect();
            assert!(
                served.windows(2).all(|w| w[1] >= w[0] * 0.9),
                "served rate should not collapse as load grows: {served:?}"
            );
        }
    }

    #[test]
    fn frontier_is_minimal_and_complete_over_the_grid() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let report = load_sweep(&cluster, &model, &small_spec());
        let all: Vec<&LoadPoint> = report.curves.iter().flat_map(|c| &c.points).collect();
        let dominates = |a: &LoadPoint, b: &LoadPoint| {
            a.gpus <= b.gpus
                && a.goodput_tokens_per_s >= b.goodput_tokens_per_s
                && (a.gpus < b.gpus || a.goodput_tokens_per_s > b.goodput_tokens_per_s)
        };
        for (i, a) in report.frontier.iter().enumerate() {
            for (j, b) in report.frontier.iter().enumerate() {
                assert!(
                    i == j || !dominates(a, b),
                    "frontier member {i} dominates {j}"
                );
            }
        }
        for p in all {
            assert!(
                report.frontier.iter().any(|f| {
                    dominates(f, p)
                        || (f.gpus == p.gpus && f.goodput_tokens_per_s == p.goodput_tokens_per_s)
                }),
                "point escapes the frontier"
            );
        }
    }

    #[test]
    fn infeasible_strategies_are_reported_not_fatal() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.strategies
            .push(LoadStrategy::single(64, Precision::Fp16));
        let report = load_sweep(&cluster, &model, &spec);
        assert_eq!(report.curves.len(), 2);
        assert_eq!(report.infeasible.len(), 1);
        assert_eq!(report.infeasible[0].tp, 64);
        assert!(report.infeasible[0].reason.contains("exceeds"));
    }

    /// The replicas axis: a TP1×2 strategy occupies 2 GPUs like TP2, and
    /// at saturation replication's goodput beats TP scaling's, so the
    /// frontier carries at least one multi-replica point.
    #[test]
    fn replicas_axis_reaches_the_frontier() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.strategies = vec![
            LoadStrategy::single(1, Precision::Fp16),
            LoadStrategy::single(2, Precision::Fp16),
            LoadStrategy::single(1, Precision::Fp16).with_replicas(2),
            LoadStrategy::single(1, Precision::Fp16).with_replicas(4),
        ];
        spec.rates = vec![4.0, 32.0, 128.0];
        let report = load_sweep(&cluster, &model, &spec);
        assert_eq!(report.curves.len(), 4);
        for curve in &report.curves {
            assert_eq!(curve.gpus, curve.tp * curve.replicas);
            for p in &curve.points {
                assert_eq!(p.gpus, p.tp * p.replicas);
                assert_eq!(p.completed + p.rejected, spec.requests);
            }
        }
        assert!(
            report.frontier.iter().any(|p| p.replicas > 1),
            "replication must reach the SLO-goodput frontier: {:?}",
            report
                .frontier
                .iter()
                .map(|p| (p.tp, p.replicas, p.goodput_tokens_per_s))
                .collect::<Vec<_>>()
        );
    }

    /// Regression: a sweep whose every strategy is infeasible used to
    /// generate all rate traces anyway — with an absurd per-cell request
    /// count that meant attempting a multi-terabyte allocation. It must
    /// return the reasons without generating anything.
    #[test]
    fn all_infeasible_sweep_skips_trace_generation() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.strategies = vec![
            LoadStrategy::single(64, Precision::Fp16),
            LoadStrategy::single(1, Precision::Fp16).with_replicas(0),
        ];
        // Before the early exit this tried to materialize
        // rates × 2^40 requests (~100 TB of Request structs).
        spec.requests = 1 << 40;
        let report = load_sweep(&cluster, &model, &spec);
        assert!(report.curves.is_empty());
        assert!(report.frontier.is_empty());
        assert_eq!(report.infeasible.len(), 2);
        assert!(report.infeasible[0].reason.contains("exceeds"));
        assert!(report.infeasible[1].reason.contains("replica"));
    }

    /// The fault axis makes the frontier availability-aware: under crash
    /// churn the goodput landscape must disagree with the fault-free one
    /// on at least one frontier point, and the churned cells must report
    /// lost availability.
    #[test]
    fn faulted_frontier_differs_from_fault_free() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.requests = 300;
        spec.rates = vec![20.0, 60.0];
        spec.strategies = vec![
            LoadStrategy::single(2, Precision::Fp16),
            LoadStrategy::single(1, Precision::Fp16).with_replicas(2),
        ];
        let clean = load_sweep(&cluster, &model, &spec);
        let faults = FaultSpec::crashes(3, 5.0, 2.0);
        spec.faults = Some(faults.clone());
        let churned = load_sweep(&cluster, &model, &spec);
        assert_eq!(churned.faults, Some(faults));
        assert!(clean
            .curves
            .iter()
            .flat_map(|c| &c.points)
            .all(|p| p.availability == 1.0 && p.requeues == 0));
        assert!(
            churned
                .curves
                .iter()
                .flat_map(|c| &c.points)
                .any(|p| p.availability < 1.0),
            "5 s MTBF must cost availability somewhere in the grid"
        );
        let shape = |r: &LoadSweepReport| -> Vec<(usize, f64)> {
            r.frontier
                .iter()
                .map(|p| (p.gpus, p.goodput_tokens_per_s))
                .collect()
        };
        assert_ne!(
            shape(&clean),
            shape(&churned),
            "crash churn must move the SLO-goodput frontier"
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault spec")]
    fn degenerate_fault_spec_is_rejected() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.faults = Some(FaultSpec::crashes(0, 10.0, 0.0));
        let _ = load_sweep(&cluster, &model, &spec);
    }

    #[test]
    #[should_panic(expected = "arrival rates")]
    fn degenerate_rates_are_rejected() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.rates = vec![0.0];
        let _ = load_sweep(&cluster, &model, &spec);
    }

    /// The tentpole acceptance pin: on the *same* prefixed trace grid,
    /// block-granular KV with prefix caching strictly beats whole-lifetime
    /// reservations on SLO goodput at a saturated rate point. Reserved
    /// admission must hold back ⌈prompt+output⌉ worth of KV per admit and
    /// re-prefills every shared prefix; the paged strategy admits on
    /// prompt blocks, grows during decode, and skips cached prefix
    /// prefills entirely.
    #[test]
    fn paged_prefix_caching_beats_reserved_goodput_at_saturation() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.seed = 11;
        spec.requests = 300;
        spec.prompt = LengthDist::Uniform { lo: 300, hi: 900 };
        spec.output = LengthDist::Uniform { lo: 16, hi: 48 };
        spec.rates = vec![8.0, 16.0];
        spec.slo = SloSpec {
            ttft: Time::from_millis(4000.0),
            tpot: Time::from_millis(100.0),
        };
        spec.prefixes = Some(crate::PrefixSpec {
            pool: 4,
            tokens: 256,
            rate: 0.7,
        });
        spec.strategies = vec![
            LoadStrategy::single(1, Precision::Fp16),
            LoadStrategy::single(1, Precision::Fp16).with_kv(KvSpec::paged(32)),
        ];
        let report = load_sweep(&cluster, &model, &spec);
        assert_eq!(report.curves.len(), 2);
        let reserved = &report.curves[0].points;
        let paged = &report.curves[1].points;
        // Identical work: the trace axis is shared, so prefix hits show
        // up only where a cache exists to serve them.
        assert!(reserved.iter().all(|p| p.prefix_hits == 0));
        assert!(paged.iter().all(|p| p.prefix_hits > 0));
        for (r, p) in reserved.iter().zip(paged) {
            assert!(
                p.goodput_tokens_per_s >= r.goodput_tokens_per_s,
                "paging + prefix caching must never lose goodput: {} vs {} at rate {}",
                p.goodput_tokens_per_s,
                r.goodput_tokens_per_s,
                r.offered_rate_per_s
            );
        }
        // The saturated point: the reserved strategy's attainment has
        // collapsed while the paged one still meets the SLO for most
        // requests — a strict goodput win.
        let (r, p) = (&reserved[1], &paged[1]);
        assert!(
            r.attainment < 0.5,
            "rate 16 must saturate the reserved strategy (attainment {})",
            r.attainment
        );
        assert!(
            p.goodput_tokens_per_s > 2.0 * r.goodput_tokens_per_s,
            "paging + prefix caching must strictly lift saturated goodput: {} vs {}",
            p.goodput_tokens_per_s,
            r.goodput_tokens_per_s
        );
    }

    /// The KV and scheduler axes land in every layer of the report:
    /// curves carry the strategy's regime, points carry block size and
    /// scheduler, and the frontier tie-break stays deterministic with
    /// same-shape strategies differing only in regime.
    #[test]
    fn kv_and_scheduler_axes_thread_through_the_report() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let mut spec = small_spec();
        spec.priority_classes = 3;
        spec.strategies = vec![
            LoadStrategy::single(1, Precision::Fp16),
            LoadStrategy::single(1, Precision::Fp16)
                .with_kv(KvSpec::paged(16))
                .with_scheduler(Scheduler::Sjf),
            LoadStrategy::single(1, Precision::Fp16)
                .with_kv(KvSpec::paged(16).with_policy(crate::PreemptPolicy::Swap))
                .with_scheduler(Scheduler::PriorityPreempt),
        ];
        let report = load_sweep(&cluster, &model, &spec);
        assert_eq!(report.curves.len(), 3);
        assert_eq!(report.curves[0].kv, KvSpec::reserved());
        assert_eq!(report.curves[1].scheduler, Scheduler::Sjf);
        assert_eq!(report.curves[2].scheduler, Scheduler::PriorityPreempt);
        for curve in &report.curves {
            for p in &curve.points {
                assert_eq!(p.block_tokens, curve.kv.block_tokens);
                assert_eq!(p.scheduler, curve.scheduler);
                assert_eq!(p.completed + p.rejected, spec.requests);
            }
        }
        // Priority-preempt over reserved KV is infeasible, not fatal.
        spec.strategies.push(
            LoadStrategy::single(1, Precision::Fp16).with_scheduler(Scheduler::PriorityPreempt),
        );
        let report = load_sweep(&cluster, &model, &spec);
        assert_eq!(report.curves.len(), 3);
        assert_eq!(report.infeasible.len(), 1);
        assert!(report.infeasible[0].reason.contains("priority-preempt"));
    }
}
