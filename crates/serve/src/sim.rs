//! The discrete-event continuous-batching scheduler.
//!
//! Time advances iteration by iteration, the way an inference server's
//! model-execution loop does:
//!
//! 1. arrivals up to the current clock join the admission queue;
//! 2. the scheduler admits queued requests **FIFO** while their full KV
//!    reservation (prompt + requested output tokens) fits the device's KV
//!    budget — reservations are released only at completion, so the budget
//!    can never be exceeded mid-decode;
//! 3. if any admitted request still needs its prompt summarized, the next
//!    iteration is a **prefill** of the oldest such request (prefill is
//!    prioritized, the Orca/vLLM default); otherwise every running request
//!    advances one token in a **decode** iteration priced at the batch's
//!    aggregate context.
//!
//! Every iteration is priced through one shared
//! [`PreparedInferenceEstimator`], so re-encountered `(batch, seq,
//! kv_len)` shapes are memo lookups. The simulation is single-threaded
//! and all randomness lives in the seeded trace, so reports are
//! byte-identical across runs and thread counts.

use crate::{
    KvUsage, LatencyStats, QueueSample, QueueStats, Request, RequestMetrics, ServeReport,
    SloReport, SloSpec, TraceSpec,
};
use optimus_hw::{ClusterSpec, Precision};
use optimus_infer::PreparedInferenceEstimator;
use optimus_memory::{inference_memory, kv_cache_bytes};
use optimus_model::ModelConfig;
use optimus_units::{Bytes, Time};
use std::collections::VecDeque;
use std::sync::Arc;

/// Cap on the queue-depth samples retained in a [`ServeReport`]; longer
/// runs are down-sampled with an even stride.
pub const MAX_QUEUE_SAMPLES: usize = 128;

/// Serving-instance configuration: the strategy axes of one replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// The latency objective goodput is measured against.
    pub slo: SloSpec,
}

impl ServeConfig {
    /// A TP-`tp` FP16 instance with the default interactive SLO.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    #[must_use]
    pub fn new(tp: usize) -> Self {
        assert!(tp > 0, "tp must be positive");
        Self {
            tp,
            precision: Precision::Fp16,
            slo: SloSpec::default(),
        }
    }

    /// Sets the serving precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the SLO.
    #[must_use]
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = slo;
        self
    }
}

/// Why a simulation could not run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The sharded weights alone overflow the device.
    WeightsDontFit {
        /// Human-readable description with the sizes involved.
        detail: String,
    },
    /// The tensor-parallel degree cannot map onto the cluster.
    InvalidConfig(String),
    /// The estimator rejected the configuration (e.g. unsupported
    /// precision).
    Estimator(String),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WeightsDontFit { detail } => write!(f, "{detail}"),
            Self::InvalidConfig(msg) | Self::Estimator(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// An admitted request's in-flight state.
struct InFlight {
    request: Request,
    admitted_s: f64,
    prefill_dur_s: f64,
    first_token_s: Option<f64>,
    generated: usize,
    completed_s: f64,
    reserved: Bytes,
}

/// Generates the trace from `spec` and simulates serving it on one
/// `tp`-way instance of `model` over `cluster`.
///
/// # Errors
///
/// Returns [`ServeError`] when the configuration cannot serve at all: the
/// sharded weights overflow the device, `tp` does not fit a node, or the
/// device lacks the precision.
pub fn simulate(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &ServeConfig,
    spec: &TraceSpec,
) -> Result<ServeReport, ServeError> {
    simulate_trace(cluster, model, config, &spec.generate())
}

/// Like [`simulate`], over an explicit arrival-ordered request list.
///
/// # Errors
///
/// Returns [`ServeError`] for configurations that cannot serve (see
/// [`simulate`]).
///
/// # Panics
///
/// Panics if `trace` is not sorted by arrival time or contains a
/// zero-length prompt or output.
pub fn simulate_trace(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &ServeConfig,
    trace: &[Request],
) -> Result<ServeReport, ServeError> {
    assert!(
        trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "trace must be sorted by arrival time"
    );
    assert!(
        trace.iter().all(|r| r.prompt > 0 && r.output > 0),
        "every request needs at least one prompt and one output token"
    );
    let tp = config.tp;
    let precision = config.precision;
    if tp > cluster.node.gpus_per_node {
        return Err(ServeError::InvalidConfig(format!(
            "tensor-parallel degree {tp} exceeds the {} GPUs of a node",
            cluster.node.gpus_per_node
        )));
    }

    let capacity = cluster.accelerator().dram.capacity;
    // Weights via the shared footprint model (batch/context do not shape
    // the weight term).
    let weights = inference_memory(&model, 1, 1, tp, precision).weights;
    if weights >= capacity {
        return Err(ServeError::WeightsDontFit {
            detail: format!(
                "{} weights ({} at {precision}, TP{tp}) overflow the {} device",
                model.name, weights, capacity
            ),
        });
    }
    let budget = capacity - weights;
    let reservation =
        |r: &Request| kv_cache_bytes(&model, 1, r.prompt + r.output, precision) / tp as f64;

    let estimator = PreparedInferenceEstimator::for_serving(cluster, Arc::clone(&model));
    let price = |e: optimus_hw::HwError| ServeError::Estimator(e.to_string());

    // --- event loop ------------------------------------------------------
    let mut clock = 0.0_f64;
    let mut next_arrival = 0usize;
    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut awaiting_prefill: VecDeque<usize> = VecDeque::new();
    let mut decoding: Vec<usize> = Vec::new();
    let mut rejected_ids: Vec<usize> = Vec::new();

    let mut reserved = Bytes::ZERO;
    let mut kv_peak = Bytes::ZERO;
    let mut prefill_iterations = 0usize;
    let mut decode_iterations = 0usize;
    let mut decode_batch_sum = 0usize;
    let mut queue_area = 0.0_f64; // ∫ waiting dt
    let mut peak_waiting = 0usize;
    let mut peak_decoding = 0usize;
    // Queue-depth samples are thinned online (keep-every-other + stride
    // doubling once 2×MAX_QUEUE_SAMPLES accumulate), so memory stays
    // O(MAX_QUEUE_SAMPLES) however long the trace runs.
    let mut raw_samples: Vec<QueueSample> = Vec::new();
    let mut sample_stride = 1usize;
    let mut iteration = 0usize;

    loop {
        while next_arrival < trace.len() && trace[next_arrival].arrival_s <= clock {
            pending.push_back(trace[next_arrival]);
            next_arrival += 1;
        }
        while let Some(front) = pending.front() {
            let need = reservation(front);
            if need > budget {
                // Could never be admitted, not even alone: drop it rather
                // than block every request behind it forever.
                rejected_ids.push(front.id);
                pending.pop_front();
                continue;
            }
            if reserved + need <= budget {
                let request = *front;
                pending.pop_front();
                reserved += need;
                kv_peak = kv_peak.max(reserved);
                awaiting_prefill.push_back(inflight.len());
                inflight.push(InFlight {
                    request,
                    admitted_s: clock,
                    prefill_dur_s: 0.0,
                    first_token_s: None,
                    generated: 0,
                    completed_s: 0.0,
                    reserved: need,
                });
            } else {
                break;
            }
        }
        peak_waiting = peak_waiting.max(pending.len() + awaiting_prefill.len());

        if awaiting_prefill.is_empty() && decoding.is_empty() {
            assert!(
                pending.is_empty(),
                "an idle instance always admits the queue head"
            );
            if next_arrival >= trace.len() {
                break;
            }
            clock = clock.max(trace[next_arrival].arrival_s);
            continue;
        }

        // The waiting population over this iteration: arrived but no
        // compute yet — whether blocked on KV admission or on a prefill
        // slot. (The request prefilled this very iteration stops waiting
        // now, so it is not counted.)
        let waiting_before =
            pending.len() + awaiting_prefill.len() - usize::from(!awaiting_prefill.is_empty());
        let dur = if let Some(idx) = awaiting_prefill.pop_front() {
            let prompt = inflight[idx].request.prompt;
            let dur = estimator
                .prefill_iteration(1, prompt, tp, precision)
                .map_err(price)?
                .secs();
            inflight[idx].prefill_dur_s = dur;
            decoding.push(idx);
            prefill_iterations += 1;
            dur
        } else {
            let batch = decoding.len();
            // A mixed batch is priced at its aggregate context: attention
            // cost is linear in total KV entries read, so batch × ⌈mean⌉
            // preserves it while the GEMM terms see the true batch width.
            let ctx_sum: usize = decoding
                .iter()
                .map(|&i| inflight[i].request.prompt + inflight[i].generated)
                .sum();
            let kv_len = ctx_sum.div_ceil(batch);
            let dur = estimator
                .decode_iteration(batch, kv_len, tp, precision)
                .map_err(price)?
                .secs();
            decode_iterations += 1;
            decode_batch_sum += batch;
            let end = clock + dur;
            for &i in &decoding {
                let r = &mut inflight[i];
                r.generated += 1;
                if r.first_token_s.is_none() {
                    r.first_token_s = Some(end);
                }
            }
            decoding.retain(|&i| {
                let r = &mut inflight[i];
                if r.generated < r.request.output {
                    return true;
                }
                r.completed_s = end;
                reserved = reserved - r.reserved;
                false
            });
            dur
        };
        clock += dur;
        queue_area += waiting_before as f64 * dur;
        peak_decoding = peak_decoding.max(decoding.len());
        if iteration.is_multiple_of(sample_stride) {
            raw_samples.push(QueueSample {
                at: Time::from_secs(clock),
                waiting: pending.len() + awaiting_prefill.len(),
                decoding: decoding.len(),
            });
            if raw_samples.len() >= 2 * MAX_QUEUE_SAMPLES {
                let mut keep = 0;
                raw_samples.retain(|_| {
                    keep += 1;
                    keep % 2 == 1
                });
                sample_stride *= 2;
            }
        }
        iteration += 1;
    }

    Ok(assemble_report(
        cluster,
        &model,
        config,
        trace.len(),
        ReportInputs {
            inflight,
            rejected_ids,
            makespan_s: clock,
            weights,
            budget,
            kv_peak,
            prefill_iterations,
            decode_iterations,
            decode_batch_sum,
            queue_area,
            peak_waiting,
            peak_decoding,
            raw_samples,
        },
    ))
}

/// Everything the event loop hands to report assembly.
struct ReportInputs {
    inflight: Vec<InFlight>,
    rejected_ids: Vec<usize>,
    makespan_s: f64,
    weights: Bytes,
    budget: Bytes,
    kv_peak: Bytes,
    prefill_iterations: usize,
    decode_iterations: usize,
    decode_batch_sum: usize,
    queue_area: f64,
    peak_waiting: usize,
    peak_decoding: usize,
    raw_samples: Vec<QueueSample>,
}

fn assemble_report(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    config: &ServeConfig,
    requests: usize,
    inputs: ReportInputs,
) -> ServeReport {
    let slo = config.slo;
    // FIFO admission from an arrival-ordered queue means `inflight` is
    // already in id order, and the event loop only exits once every
    // admitted request has completed.
    let per_request: Vec<RequestMetrics> = inputs
        .inflight
        .iter()
        .map(|r| {
            let first = r.first_token_s.expect("completed requests decoded");
            let ttft = first - r.request.arrival_s;
            let e2e = r.completed_s - r.request.arrival_s;
            let tpot = (r.request.output > 1)
                .then(|| Time::from_secs((r.completed_s - first) / (r.request.output - 1) as f64));
            let met_slo = Time::from_secs(ttft) <= slo.ttft && tpot.is_none_or(|t| t <= slo.tpot);
            RequestMetrics {
                id: r.request.id,
                prompt: r.request.prompt,
                generated: r.generated,
                arrival: Time::from_secs(r.request.arrival_s),
                queue_wait: Time::from_secs(r.admitted_s - r.request.arrival_s),
                prefill: Time::from_secs(r.prefill_dur_s),
                ttft: Time::from_secs(ttft),
                e2e: Time::from_secs(e2e),
                tpot,
                met_slo,
            }
        })
        .collect();
    debug_assert!(per_request.windows(2).all(|w| w[0].id < w[1].id));

    let makespan = inputs.makespan_s;
    let per_s = |count: f64| {
        if makespan > 0.0 {
            count / makespan
        } else {
            0.0
        }
    };
    let generated_tokens: usize = per_request.iter().map(|m| m.generated).sum();
    let met: Vec<&RequestMetrics> = per_request.iter().filter(|m| m.met_slo).collect();
    let met_tokens: usize = met.iter().map(|m| m.generated).sum();

    let ttfts: Vec<Time> = per_request.iter().map(|m| m.ttft).collect();
    let tpots: Vec<Time> = per_request.iter().filter_map(|m| m.tpot).collect();
    let e2es: Vec<Time> = per_request.iter().map(|m| m.e2e).collect();

    let stride = inputs.raw_samples.len().div_ceil(MAX_QUEUE_SAMPLES).max(1);
    let samples: Vec<QueueSample> = inputs.raw_samples.iter().step_by(stride).copied().collect();
    let queue = QueueStats {
        peak_waiting: inputs.peak_waiting,
        mean_waiting: if makespan > 0.0 {
            inputs.queue_area / makespan
        } else {
            0.0
        },
        peak_decoding: inputs.peak_decoding,
        samples,
    };

    let completed = per_request.len();
    ServeReport {
        model: model.name.clone(),
        cluster: cluster.name.clone(),
        tp: config.tp,
        precision: config.precision,
        requests,
        completed,
        rejected: inputs.rejected_ids.len(),
        rejected_ids: inputs.rejected_ids,
        makespan: Time::from_secs(makespan),
        generated_tokens,
        tokens_per_s: per_s(generated_tokens as f64),
        requests_per_s: per_s(completed as f64),
        prefill_iterations: inputs.prefill_iterations,
        decode_iterations: inputs.decode_iterations,
        mean_decode_batch: if inputs.decode_iterations > 0 {
            inputs.decode_batch_sum as f64 / inputs.decode_iterations as f64
        } else {
            0.0
        },
        ttft: LatencyStats::from_times(&ttfts),
        tpot: LatencyStats::from_times(&tpots),
        e2e: LatencyStats::from_times(&e2es),
        queue,
        kv: KvUsage {
            weights: inputs.weights,
            budget: inputs.budget,
            peak: inputs.kv_peak,
            peak_utilization: if inputs.budget.bytes() > 0.0 {
                inputs.kv_peak.bytes() / inputs.budget.bytes()
            } else {
                0.0
            },
        },
        slo: SloReport {
            spec: slo,
            met: met.len(),
            attainment: if completed > 0 {
                met.len() as f64 / completed as f64
            } else {
                1.0
            },
            goodput_tokens_per_s: per_s(met_tokens as f64),
            goodput_requests_per_s: per_s(met.len() as f64),
        },
        per_request,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalProcess, LengthDist};
    use optimus_hw::presets;
    use optimus_model::presets as models;

    fn spec(seed: u64, requests: usize, rate: f64) -> TraceSpec {
        TraceSpec {
            seed,
            requests,
            arrival: ArrivalProcess::Poisson { rate_per_s: rate },
            prompt: LengthDist::Uniform { lo: 50, hi: 200 },
            output: LengthDist::Uniform { lo: 1, hi: 24 },
        }
    }

    #[test]
    fn all_requests_complete_and_conserve_tokens() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let trace = spec(9, 24, 4.0);
        let report = simulate(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(1),
            &trace,
        )
        .unwrap();
        assert_eq!(report.completed + report.rejected, report.requests);
        assert_eq!(report.rejected, 0, "7B leaves ample KV budget");
        let requested: usize = trace.generate().iter().map(|r| r.output).sum();
        assert_eq!(report.generated_tokens, requested);
        assert_eq!(report.per_request.len(), report.completed);
        assert_eq!(report.prefill_iterations, report.completed);
    }

    #[test]
    fn higher_load_means_deeper_queues_and_worse_tails() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let cfg = ServeConfig::new(1);
        let calm = simulate(&cluster, Arc::clone(&model), &cfg, &spec(5, 32, 0.05)).unwrap();
        let slammed = simulate(&cluster, Arc::clone(&model), &cfg, &spec(5, 32, 50.0)).unwrap();
        assert!(slammed.queue.peak_decoding >= calm.queue.peak_decoding);
        assert!(
            slammed.queue.peak_waiting > calm.queue.peak_waiting,
            "compute-bound saturation must show up as waiting requests: {} vs {}",
            slammed.queue.peak_waiting,
            calm.queue.peak_waiting
        );
        assert!(slammed.queue.mean_waiting > calm.queue.mean_waiting);
        assert!(
            slammed.ttft.p99 > calm.ttft.p99,
            "queueing must surface in the TTFT tail: {} vs {}",
            slammed.ttft.p99,
            calm.ttft.p99
        );
        assert!(slammed.slo.attainment <= calm.slo.attainment);
    }

    #[test]
    fn oversized_request_is_rejected_not_wedged() {
        let cluster = presets::dgx_a100_hdr_cluster();
        // A llama2-13b KV reservation of ~500k tokens (~50 GB at FP16)
        // next to 26 GB of weights can never fit an 80 GB device.
        let trace = [
            Request {
                id: 0,
                arrival_s: 0.1,
                prompt: 500_000,
                output: 4,
            },
            Request {
                id: 1,
                arrival_s: 0.2,
                prompt: 100,
                output: 4,
            },
        ];
        let report = simulate_trace(
            &cluster,
            Arc::new(models::llama2_13b()),
            &ServeConfig::new(1),
            &trace,
        )
        .unwrap();
        assert_eq!(report.rejected_ids, vec![0]);
        assert_eq!(report.completed, 1);
        assert_eq!(report.per_request[0].id, 1);
    }

    #[test]
    fn weights_overflow_is_a_clean_error() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let err = simulate(
            &cluster,
            Arc::new(models::gpt_175b()),
            &ServeConfig::new(1),
            &TraceSpec::poisson(1, 1, 1.0, 10, 2),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::WeightsDontFit { .. }), "{err}");
    }

    #[test]
    fn tp_beyond_the_node_is_rejected() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let err = simulate(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(16),
            &TraceSpec::poisson(1, 1, 1.0, 10, 2),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_trace(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(1),
            &[],
        )
        .unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, Time::ZERO);
        assert_eq!(report.tokens_per_s, 0.0);
        assert_eq!(report.slo.attainment, 1.0);
    }
}
