//! The discrete-event continuous-batching scheduler.
//!
//! Time advances iteration by iteration, the way an inference server's
//! model-execution loop does:
//!
//! 1. arrivals up to the current clock join the admission queue;
//! 2. the scheduler admits queued requests **FIFO** while their full KV
//!    reservation (prompt + requested output tokens) fits the device's KV
//!    budget — reservations are released only at completion, so the budget
//!    can never be exceeded mid-decode;
//! 3. if any admitted request still needs its prompt summarized, the next
//!    iteration is a **prefill** of the oldest such request (prefill is
//!    prioritized, the Orca/vLLM default); otherwise every running request
//!    advances one token in a **decode** iteration priced at the batch's
//!    aggregate context.
//!
//! The event loop is streaming: the admission queue is a cursor into the
//! arrival-ordered trace, in-flight state lives in a recycled slot arena,
//! decode completions are scheduled on an epoch ring (every request costs
//! O(1) bookkeeping per iteration it participates in, with no per-member
//! scans), and per-request records plus exact percentile buffers are kept
//! only within [`EXACT_MODE_LIMIT`] (or on request). Decode pricing runs
//! either through the memoized [`PreparedInferenceEstimator`] (exact) or
//! through a sealed, lock-free [`DecodeCostTable`]; prefill pricing
//! always hits a dense per-prompt-length cache. The simulation is
//! single-threaded and all randomness lives in the seeded trace, so
//! reports are byte-identical across runs and thread counts.

use crate::engine::{ReplicaEngine, ReportInputs};
use crate::{
    KvSpec, KvUsage, QueueSample, QueueStats, Request, Scheduler, ServeReport, SloReport, SloSpec,
    TraceSpec,
};
use optimus_hw::{ClusterSpec, Precision};
use optimus_infer::{DecodeCostTable, PreparedInferenceEstimator};
use optimus_memory::{inference_memory, kv_cache_bytes};
use optimus_model::ModelConfig;
use optimus_units::{Bytes, Time};
use std::sync::{Arc, OnceLock};

/// Cap on the queue-depth samples retained in a [`ServeReport`]; longer
/// runs are down-sampled with an even stride (plus the final sample, so
/// the series always ends at trace end).
pub const MAX_QUEUE_SAMPLES: usize = 128;

/// Trace size up to which the simulator defaults to full fidelity: exact
/// memoized decode pricing, exact percentile selection, and per-request
/// records. Above it the defaults switch to the streaming machinery —
/// sealed-table pricing, log-histogram percentiles, records off — sized
/// for million-request traces.
pub const EXACT_MODE_LIMIT: usize = 10_000;

/// How decode iterations are priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingMode {
    /// Exact within [`EXACT_MODE_LIMIT`] requests, sealed beyond.
    #[default]
    Auto,
    /// Always the memoized estimator: exact `(batch, kv)` pricing, with
    /// per-iteration lock + hash overhead and memo tables that grow with
    /// the number of distinct shapes.
    Exact,
    /// Always the sealed [`DecodeCostTable`]: zero locking and hashing,
    /// bounded memory, `(batch, kv)` rounded up to quantized buckets
    /// (within one bucket ratio, ≈4.4%, of exact).
    Sealed,
}

/// Whether per-request [`crate::RequestMetrics`] records are collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// Records within [`EXACT_MODE_LIMIT`] requests, none beyond.
    #[default]
    Auto,
    /// Always collect (a million-request trace stores a million records).
    On,
    /// Never collect; `per_request` comes back empty.
    Off,
}

/// Serving-instance configuration: the strategy axes of one replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Serving precision.
    pub precision: Precision,
    /// The latency objective goodput is measured against.
    pub slo: SloSpec,
    /// Decode-pricing fidelity.
    pub pricing: PricingMode,
    /// Per-request record collection.
    pub records: RecordMode,
    /// KV-cache memory regime (legacy whole-lifetime reservation, or
    /// block-granular paging with preemption).
    pub kv: KvSpec,
    /// Admission-queue ordering.
    pub scheduler: Scheduler,
}

impl ServeConfig {
    /// A TP-`tp` FP16 instance with the default interactive SLO and
    /// automatic fidelity.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    #[must_use]
    pub fn new(tp: usize) -> Self {
        assert!(tp > 0, "tp must be positive");
        Self {
            tp,
            precision: Precision::Fp16,
            slo: SloSpec::default(),
            pricing: PricingMode::default(),
            records: RecordMode::default(),
            kv: KvSpec::default(),
            scheduler: Scheduler::default(),
        }
    }

    /// Sets the serving precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the SLO.
    #[must_use]
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = slo;
        self
    }

    /// Sets the decode-pricing mode.
    #[must_use]
    pub fn with_pricing(mut self, pricing: PricingMode) -> Self {
        self.pricing = pricing;
        self
    }

    /// Sets the record-collection mode.
    #[must_use]
    pub fn with_records(mut self, records: RecordMode) -> Self {
        self.records = records;
        self
    }

    /// Sets the KV-cache regime.
    #[must_use]
    pub fn with_kv(mut self, kv: KvSpec) -> Self {
        self.kv = kv;
        self
    }

    /// Sets the admission scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Why a simulation could not run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The sharded weights alone overflow the device.
    WeightsDontFit {
        /// Human-readable description with the sizes involved.
        detail: String,
    },
    /// The tensor-parallel degree cannot map onto the cluster.
    InvalidConfig(String),
    /// The estimator rejected the configuration (e.g. unsupported
    /// precision).
    Estimator(String),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WeightsDontFit { detail } => write!(f, "{detail}"),
            Self::InvalidConfig(msg) | Self::Estimator(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A validated serving instance: one (cluster, model, strategy) triple
/// with its prepared estimator and, once sealed, its immutable decode
/// table. Build once, simulate many traces — the load-sweep engine runs
/// every arrival rate of a strategy through one shared instance.
#[derive(Debug)]
pub struct ServeInstance<'a> {
    cluster: &'a ClusterSpec,
    model: Arc<ModelConfig>,
    config: ServeConfig,
    weights: Bytes,
    budget: Bytes,
    estimator: PreparedInferenceEstimator<'a>,
    table: OnceLock<Result<DecodeCostTable, String>>,
}

impl<'a> ServeInstance<'a> {
    /// Validates the strategy and prepares the pricing estimator.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the configuration cannot serve at all:
    /// the sharded weights overflow the device or `tp` does not fit a
    /// node.
    pub fn new(
        cluster: &'a ClusterSpec,
        model: Arc<ModelConfig>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        let tp = config.tp;
        let precision = config.precision;
        if config.scheduler == Scheduler::PriorityPreempt && config.kv.is_reserved() {
            return Err(ServeError::InvalidConfig(
                "the priority-preempt scheduler needs a paged KvSpec: under full \
                 reservation decode-time OOM cannot happen, so there is nothing to preempt"
                    .to_owned(),
            ));
        }
        if tp > cluster.node.gpus_per_node {
            return Err(ServeError::InvalidConfig(format!(
                "tensor-parallel degree {tp} exceeds the {} GPUs of a node",
                cluster.node.gpus_per_node
            )));
        }
        let capacity = cluster.accelerator().dram.capacity;
        // Weights via the shared footprint model (batch/context do not
        // shape the weight term).
        let weights = inference_memory(&model, 1, 1, tp, precision).weights;
        if weights >= capacity {
            return Err(ServeError::WeightsDontFit {
                detail: format!(
                    "{} weights ({} at {precision}, TP{tp}) overflow the {} device",
                    model.name, weights, capacity
                ),
            });
        }
        let estimator = PreparedInferenceEstimator::for_serving(cluster, Arc::clone(&model));
        Ok(Self {
            cluster,
            model,
            config,
            weights,
            budget: capacity - weights,
            estimator,
            table: OnceLock::new(),
        })
    }

    /// The per-device KV budget (capacity minus sharded weights).
    #[must_use]
    pub fn kv_budget(&self) -> Bytes {
        self.budget
    }

    /// The strategy this instance was validated for.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The prepared (memoized) pricing estimator.
    pub(crate) fn estimator(&self) -> &PreparedInferenceEstimator<'a> {
        &self.estimator
    }

    /// The full KV reservation of one request on this instance.
    #[must_use]
    pub fn reservation(&self, request: &Request) -> Bytes {
        kv_cache_bytes(
            &self.model,
            1,
            request.prompt + request.output,
            self.config.precision,
        ) / self.config.tp as f64
    }

    /// Bytes of one KV block under a paged [`KvSpec`] (exact: the KV
    /// footprint is linear in tokens, so a block is just
    /// `block_tokens` tokens' worth of per-device KV).
    ///
    /// # Panics
    ///
    /// Panics under the reserved regime, which has no blocks.
    #[must_use]
    pub fn block_bytes(&self) -> Bytes {
        assert!(!self.config.kv.is_reserved(), "reserved KV has no blocks");
        kv_cache_bytes(
            &self.model,
            1,
            self.config.kv.block_tokens,
            self.config.precision,
        ) / self.config.tp as f64
    }

    /// Device block pool under a paged [`KvSpec`]:
    /// ⌊KV budget / block bytes⌋.
    ///
    /// # Panics
    ///
    /// Panics under the reserved regime, which has no blocks.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        (self.budget.bytes() / self.block_bytes().bytes()).floor() as usize
    }

    /// Blocks a `tokens`-token context occupies: ⌈tokens / block⌉.
    pub(crate) fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.config.kv.block_tokens)
    }

    /// Whether this instance can ever run `request` alone: its full
    /// reservation fits the budget (reserved regime), or its peak block
    /// need fits the pool (paged regime). The admission front doors — the
    /// engine's head-of-queue rejection and the fleet router's — both
    /// test exactly this, which is what makes the paged engine
    /// deadlock-free: an admissible head always admits on an idle
    /// replica.
    #[must_use]
    pub fn admissible(&self, request: &Request) -> bool {
        if self.config.kv.is_reserved() {
            self.reservation(request) <= self.budget
        } else {
            self.blocks_for(request.prompt + request.output) <= self.total_blocks()
        }
    }

    /// Seconds to move `blocks` KV blocks between device and host over
    /// the node-egress link — the cost of one swap direction, priced at
    /// the link's size-derated effective bandwidth exactly like
    /// checkpoint writes.
    pub(crate) fn swap_seconds(&self, blocks: usize) -> f64 {
        let bytes = self.block_bytes() * blocks as f64;
        let link = &self.cluster.inter_link;
        (bytes / link.effective_bandwidth(bytes)).secs()
    }

    /// Upper bound on the concurrent decode batch when the smallest
    /// possible reservation is `min_reservation` bytes: how many such
    /// reservations fit the KV budget at once, clamped to `[1, cap]`.
    /// Both the per-trace bound scan and the load-sweep's
    /// distribution-derived seal bounds go through this one computation,
    /// so a pre-sealed table provably covers every trace drawn from the
    /// distributions it was sized for.
    pub(crate) fn batch_ceiling(&self, min_reservation: f64, cap: usize) -> usize {
        let by_memory = if min_reservation > 0.0 {
            (self.budget.bytes() / min_reservation).floor() as usize
        } else {
            cap
        };
        by_memory.clamp(1, cap.max(1))
    }

    /// Seals the decode-cost table for batches up to `max_batch` and
    /// aggregate contexts up to `max_kv` (idempotent: the first seal
    /// wins). The load-sweep engine calls this once per strategy with
    /// bounds derived from the length distributions;
    /// [`ServeInstance::simulate`] seals lazily from trace bounds when a
    /// large trace arrives first, and **errors** on any later trace that
    /// exceeds the sealed grid rather than silently clamping onto it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when the device lacks the
    /// serving precision.
    pub fn seal(&self, max_batch: usize, max_kv: usize) -> Result<&DecodeCostTable, ServeError> {
        self.table
            .get_or_init(|| {
                self.estimator
                    .seal_decode_costs(
                        max_batch.max(1),
                        max_kv.max(1),
                        self.config.tp,
                        self.config.precision,
                    )
                    .map_err(|e| e.to_string())
            })
            .as_ref()
            .map_err(|msg| ServeError::Estimator(msg.clone()))
    }

    /// Cheaply verifies the estimator accepts this strategy (the one
    /// runtime-rejectable axis is the precision), so callers can surface
    /// an unsupported precision before running a grid of simulations.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when the device lacks the
    /// serving precision.
    pub fn probe(&self) -> Result<(), ServeError> {
        self.estimator
            .decode_iteration(1, 1, self.config.tp, self.config.precision)
            .map(|_| ())
            .map_err(|e| ServeError::Estimator(e.to_string()))
    }

    /// Simulates serving `trace` on this instance.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Estimator`] when the device lacks the
    /// serving precision.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is not sorted by arrival time or contains a
    /// zero-length prompt or output.
    pub fn simulate(&self, trace: &[Request]) -> Result<ServeReport, ServeError> {
        Self::validate_trace(trace);
        let bounds = TraceBounds::scan(self, trace);
        let table = self.pricing_table(trace.len(), &bounds)?;
        self.run(trace, &bounds, table)
    }

    /// Panics on an unordered trace or zero-length prompts/outputs — the
    /// shared precondition of the single-replica and fleet entry points.
    pub(crate) fn validate_trace(trace: &[Request]) {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "trace must be sorted by arrival time"
        );
        assert!(
            trace.iter().all(|r| r.prompt > 0 && r.output > 0),
            "every request needs at least one prompt and one output token"
        );
    }

    /// Whether this run collects per-request records, given the trace
    /// size.
    pub(crate) fn records_on(&self, trace_len: usize) -> bool {
        match self.config.records {
            RecordMode::On => true,
            RecordMode::Off => false,
            RecordMode::Auto => trace_len <= EXACT_MODE_LIMIT,
        }
    }

    /// Resolves the decode-pricing table for a trace of `trace_len`
    /// requests with the given bounds: `None` for exact memoized pricing,
    /// `Some` for the sealed fast path (sealing on first use, refusing a
    /// trace that exceeds an already-sealed grid).
    pub(crate) fn pricing_table(
        &self,
        trace_len: usize,
        bounds: &TraceBounds,
    ) -> Result<Option<&DecodeCostTable>, ServeError> {
        let sealed = match self.config.pricing {
            PricingMode::Exact => false,
            PricingMode::Sealed => true,
            PricingMode::Auto => trace_len > EXACT_MODE_LIMIT,
        };
        if !(sealed && bounds.admittable > 0) {
            return Ok(None);
        }
        let table = self.seal(bounds.max_batch, bounds.max_kv)?;
        // The first seal fixes the grid. Clamping a bigger trace onto a
        // smaller grid would underprice its decode iterations by an
        // unbounded factor, so refuse instead.
        if bounds.max_batch > table.batch_grid().max() || bounds.max_kv > table.kv_grid().max() {
            return Err(ServeError::InvalidConfig(format!(
                "trace exceeds the sealed decode-cost grid (needs batch ≤ {}, kv ≤ {}; \
                 sealed at {}, {}): seal() the instance with covering bounds up front",
                bounds.max_batch,
                bounds.max_kv,
                table.batch_grid().max(),
                table.kv_grid().max(),
            )));
        }
        Ok(Some(table))
    }
}

/// Bounds of the admittable portion of a trace, derived in one scan:
/// everything the sealed table, the prefill cache, and the completion
/// ring need to size themselves.
pub(crate) struct TraceBounds {
    /// Requests whose lone reservation fits the budget.
    pub(crate) admittable: usize,
    /// Largest prompt among admittable requests.
    pub(crate) max_prompt: usize,
    /// Largest prompt + output among admittable requests.
    pub(crate) max_kv: usize,
    /// Upper bound on the concurrent decode batch: how many of the
    /// smallest admittable reservations fit the budget at once.
    pub(crate) max_batch: usize,
}

impl TraceBounds {
    pub(crate) fn scan(instance: &ServeInstance<'_>, trace: &[Request]) -> Self {
        let mut bounds = Self {
            admittable: 0,
            max_prompt: 0,
            max_kv: 0,
            max_batch: 1,
        };
        let mut min_reservation = f64::INFINITY;
        for r in trace {
            if !instance.admissible(r) {
                continue;
            }
            bounds.admittable += 1;
            bounds.max_prompt = bounds.max_prompt.max(r.prompt);
            bounds.max_kv = bounds.max_kv.max(r.prompt + r.output);
            min_reservation = min_reservation.min(instance.reservation(r).bytes());
        }
        if bounds.admittable > 0 {
            bounds.max_batch = if instance.config.kv.is_reserved() {
                instance.batch_ceiling(min_reservation, bounds.admittable)
            } else {
                // Every decoding member of a paged batch holds at least
                // one private block (its novel suffix is ≥ 1 token), so
                // the pool bounds the batch.
                instance.total_blocks().clamp(1, bounds.admittable)
            };
        }
        bounds
    }
}

/// Generates the trace from `spec` and simulates serving it on one
/// `tp`-way instance of `model` over `cluster`.
///
/// # Errors
///
/// Returns [`ServeError`] when the configuration cannot serve at all: the
/// sharded weights overflow the device, `tp` does not fit a node, or the
/// device lacks the precision.
pub fn simulate(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &ServeConfig,
    spec: &TraceSpec,
) -> Result<ServeReport, ServeError> {
    simulate_trace(cluster, model, config, &spec.generate())
}

/// Like [`simulate`], over an explicit arrival-ordered request list.
///
/// # Errors
///
/// Returns [`ServeError`] for configurations that cannot serve (see
/// [`simulate`]).
///
/// # Panics
///
/// Panics if `trace` is not sorted by arrival time or contains a
/// zero-length prompt or output.
pub fn simulate_trace(
    cluster: &ClusterSpec,
    model: Arc<ModelConfig>,
    config: &ServeConfig,
    trace: &[Request],
) -> Result<ServeReport, ServeError> {
    ServeInstance::new(cluster, model, *config)?.simulate(trace)
}

impl<'a> ServeInstance<'a> {
    /// The single-replica event loop: one [`ReplicaEngine`] driven in
    /// batch mode over the whole trace.
    fn run(
        &self,
        trace: &[Request],
        bounds: &TraceBounds,
        table: Option<&DecodeCostTable>,
    ) -> Result<ServeReport, ServeError> {
        let mut engine = ReplicaEngine::new(
            self,
            table,
            bounds,
            trace.len(),
            self.records_on(trace.len()),
            None, // fault injection is a fleet concern
        );
        for r in trace {
            engine.push(*r);
        }
        engine.finish()?;
        let (routed, inputs) = engine.into_parts();
        Ok(self.assemble_report(routed, inputs))
    }

    /// Shapes one engine's raw outputs into a [`ServeReport`] (also the
    /// per-replica assembly step of a fleet simulation).
    pub(crate) fn assemble_report(&self, requests: usize, inputs: ReportInputs) -> ServeReport {
        let config = &self.config;
        let mut sink = inputs.sink;
        // Completion order is not id order (short outputs overtake long
        // ones); records report in id order like the trace.
        sink.records.sort_by_key(|m| m.id);

        let makespan = inputs.makespan_s;
        let per_s = |count: f64| {
            if makespan > 0.0 {
                count / makespan
            } else {
                0.0
            }
        };

        let stride = inputs.raw_samples.len().div_ceil(MAX_QUEUE_SAMPLES).max(1);
        let mut samples: Vec<QueueSample> =
            inputs.raw_samples.iter().step_by(stride).copied().collect();
        // Stride thinning keeps index 0, s, 2s, …, which drops the final
        // observation unless the length cooperates; re-append it so the
        // retained series still ends at trace end.
        if let (Some(kept), Some(last)) = (samples.last(), inputs.raw_samples.last()) {
            if kept != last {
                samples.push(*last);
            }
        }
        let queue = QueueStats {
            peak_waiting: inputs.peak_waiting,
            mean_waiting: if makespan > 0.0 {
                inputs.queue_area / makespan
            } else {
                0.0
            },
            peak_decoding: inputs.peak_decoding,
            samples,
        };

        let completed = sink.completed;
        ServeReport {
            model: self.model.name.clone(),
            cluster: self.cluster.name.clone(),
            tp: config.tp,
            precision: config.precision,
            requests,
            completed,
            rejected: inputs.rejected_ids.len(),
            rejected_ids: inputs.rejected_ids,
            makespan: Time::from_secs(makespan),
            generated_tokens: sink.generated_tokens,
            tokens_per_s: per_s(sink.generated_tokens as f64),
            requests_per_s: per_s(completed as f64),
            prefill_iterations: inputs.prefill_iterations,
            decode_iterations: inputs.decode_iterations,
            mean_decode_batch: if inputs.decode_iterations > 0 {
                inputs.decode_batch_sum as f64 / inputs.decode_iterations as f64
            } else {
                0.0
            },
            ttft: sink.ttft.finish(),
            tpot: sink.tpot.finish(),
            e2e: sink.e2e.finish(),
            queue,
            kv: KvUsage {
                weights: self.weights,
                budget: self.budget,
                peak: inputs.kv_peak,
                peak_utilization: if self.budget.bytes() > 0.0 {
                    inputs.kv_peak.bytes() / self.budget.bytes()
                } else {
                    0.0
                },
            },
            slo: SloReport {
                spec: config.slo,
                met: sink.met,
                attainment: if completed > 0 {
                    sink.met as f64 / completed as f64
                } else {
                    1.0
                },
                goodput_tokens_per_s: per_s(sink.met_tokens as f64),
                goodput_requests_per_s: per_s(sink.met as f64),
            },
            per_request: sink.records,
            scheduler: (config.scheduler != Scheduler::Fifo).then_some(config.scheduler),
            paging: inputs.paging,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalProcess, LengthDist};
    use optimus_hw::presets;
    use optimus_model::presets as models;

    fn spec(seed: u64, requests: usize, rate: f64) -> TraceSpec {
        TraceSpec {
            seed,
            requests,
            arrival: ArrivalProcess::Poisson { rate_per_s: rate },
            prompt: LengthDist::Uniform { lo: 50, hi: 200 },
            output: LengthDist::Uniform { lo: 1, hi: 24 },
            prefixes: None,
            priority_classes: 1,
        }
    }

    #[test]
    fn all_requests_complete_and_conserve_tokens() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let trace = spec(9, 24, 4.0);
        let report = simulate(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(1),
            &trace,
        )
        .unwrap();
        assert_eq!(report.completed + report.rejected, report.requests);
        assert_eq!(report.rejected, 0, "7B leaves ample KV budget");
        let requested: usize = trace.generate().iter().map(|r| r.output).sum();
        assert_eq!(report.generated_tokens, requested);
        assert_eq!(report.per_request.len(), report.completed);
        assert_eq!(report.prefill_iterations, report.completed);
    }

    #[test]
    fn higher_load_means_deeper_queues_and_worse_tails() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_13b());
        let cfg = ServeConfig::new(1);
        let calm = simulate(&cluster, Arc::clone(&model), &cfg, &spec(5, 32, 0.05)).unwrap();
        let slammed = simulate(&cluster, Arc::clone(&model), &cfg, &spec(5, 32, 50.0)).unwrap();
        assert!(slammed.queue.peak_decoding >= calm.queue.peak_decoding);
        assert!(
            slammed.queue.peak_waiting > calm.queue.peak_waiting,
            "compute-bound saturation must show up as waiting requests: {} vs {}",
            slammed.queue.peak_waiting,
            calm.queue.peak_waiting
        );
        assert!(slammed.queue.mean_waiting > calm.queue.mean_waiting);
        assert!(
            slammed.ttft.p99 > calm.ttft.p99,
            "queueing must surface in the TTFT tail: {} vs {}",
            slammed.ttft.p99,
            calm.ttft.p99
        );
        assert!(slammed.slo.attainment <= calm.slo.attainment);
    }

    #[test]
    fn oversized_request_is_rejected_not_wedged() {
        let cluster = presets::dgx_a100_hdr_cluster();
        // A llama2-13b KV reservation of ~500k tokens (~50 GB at FP16)
        // next to 26 GB of weights can never fit an 80 GB device.
        let trace = [
            Request::new(0, 0.1, 500_000, 4),
            Request::new(1, 0.2, 100, 4),
        ];
        let report = simulate_trace(
            &cluster,
            Arc::new(models::llama2_13b()),
            &ServeConfig::new(1),
            &trace,
        )
        .unwrap();
        assert_eq!(report.rejected_ids, vec![0]);
        assert_eq!(report.completed, 1);
        assert_eq!(report.per_request[0].id, 1);
    }

    #[test]
    fn weights_overflow_is_a_clean_error() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let err = simulate(
            &cluster,
            Arc::new(models::gpt_175b()),
            &ServeConfig::new(1),
            &TraceSpec::poisson(1, 1, 1.0, 10, 2),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::WeightsDontFit { .. }), "{err}");
    }

    #[test]
    fn tp_beyond_the_node_is_rejected() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let err = simulate(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(16),
            &TraceSpec::poisson(1, 1, 1.0, 10, 2),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let report = simulate_trace(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(1),
            &[],
        )
        .unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, Time::ZERO);
        assert_eq!(report.tokens_per_s, 0.0);
        assert_eq!(report.slo.attainment, 1.0);
    }

    /// Sealed pricing reproduces the exact path's scheduling and
    /// conservation outcomes, and its latencies stay within the bucket
    /// quantization envelope of exact (identical below the exact grid
    /// region, never more than a few percent above it).
    #[test]
    fn sealed_pricing_tracks_exact_pricing() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let spec = spec(11, 64, 20.0);
        let exact = simulate(
            &cluster,
            Arc::clone(&model),
            &ServeConfig::new(1).with_pricing(PricingMode::Exact),
            &spec,
        )
        .unwrap();
        let sealed = simulate(
            &cluster,
            Arc::clone(&model),
            &ServeConfig::new(1).with_pricing(PricingMode::Sealed),
            &spec,
        )
        .unwrap();
        assert_eq!(sealed.completed, exact.completed);
        assert_eq!(sealed.generated_tokens, exact.generated_tokens);
        assert_eq!(sealed.prefill_iterations, exact.prefill_iterations);
        // Round-up quantization can only slow iterations, so makespan is
        // bounded below by exact and above by one bucket ratio.
        let ratio = sealed.makespan.secs() / exact.makespan.secs();
        assert!(
            (1.0..1.10).contains(&ratio),
            "sealed/exact makespan ratio {ratio}"
        );
    }

    /// A pre-sealed instance must refuse a trace whose bounds exceed its
    /// grid instead of silently clamping (which would underprice decode
    /// by an unbounded factor).
    #[test]
    fn sealed_grid_too_small_is_an_error_not_a_clamp() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let instance = ServeInstance::new(
            &cluster,
            Arc::new(models::llama2_7b()),
            ServeConfig::new(1).with_pricing(PricingMode::Sealed),
        )
        .unwrap();
        instance.seal(8, 64).unwrap();
        // Fits the grid: runs fine.
        instance
            .simulate(&TraceSpec::poisson(1, 4, 1.0, 30, 8).generate())
            .unwrap();
        // kv bound 500 + 50 far exceeds the sealed 64.
        let err = instance
            .simulate(&TraceSpec::poisson(1, 4, 1.0, 500, 50).generate())
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("sealed decode-cost grid"), "{err}");
    }

    /// Regression: a trace past [`EXACT_MODE_LIMIT`] in which *no*
    /// request fits the KV budget reaches the sealing decision with
    /// `TraceBounds { admittable: 0, .. }` and `min_reservation` still
    /// infinite. [`ServeInstance::pricing_table`] must skip the seal
    /// (not build a degenerate grid or panic), and the run must reject
    /// everything cleanly — on the reserved and the paged path alike.
    #[test]
    fn all_inadmissible_trace_past_the_limit_skips_the_seal() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        // Half-million-token prompts overflow any single-GPU KV budget.
        let trace: Vec<Request> = (0..=EXACT_MODE_LIMIT)
            .map(|i| Request::new(i, i as f64 * 1e-4, 500_000, 4))
            .collect();
        for config in [
            ServeConfig::new(1),
            ServeConfig::new(1).with_kv(KvSpec::paged(16)),
        ] {
            let instance = ServeInstance::new(&cluster, Arc::clone(&model), config).unwrap();
            let bounds = TraceBounds::scan(&instance, &trace);
            assert_eq!(bounds.admittable, 0);
            assert!(
                instance
                    .pricing_table(trace.len(), &bounds)
                    .unwrap()
                    .is_none(),
                "an all-inadmissible trace must not seal a pricing grid"
            );
            let report = instance.simulate(&trace).unwrap();
            assert_eq!(report.completed, 0);
            assert_eq!(report.rejected, trace.len());
            assert_eq!(report.generated_tokens, 0);
            // The clock still walks the arrival sequence; it must stay
            // finite rather than inherit the infinite `min_reservation`.
            assert!(report.makespan.secs().is_finite());
        }
    }

    /// `RecordMode::On` must restore per-request records beyond the
    /// auto-off limit, and `Auto` must drop them there — same aggregates
    /// either way.
    #[test]
    fn records_forced_on_beyond_the_limit() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        // Tiny fixed lengths keep a just-over-the-limit trace cheap.
        let spec = TraceSpec::poisson(5, EXACT_MODE_LIMIT + 1, 400.0, 20, 2);
        let auto = simulate(&cluster, Arc::clone(&model), &ServeConfig::new(1), &spec).unwrap();
        assert!(
            auto.per_request.is_empty(),
            "records default off past the limit"
        );
        let forced = simulate(
            &cluster,
            Arc::clone(&model),
            &ServeConfig::new(1).with_records(RecordMode::On),
            &spec,
        )
        .unwrap();
        assert_eq!(forced.per_request.len(), forced.completed);
        assert!(
            forced.per_request.windows(2).all(|w| w[0].id < w[1].id),
            "records come back in id order"
        );
        assert_eq!(forced.completed, auto.completed);
        assert_eq!(forced.generated_tokens, auto.generated_tokens);
        assert_eq!(forced.makespan, auto.makespan);
    }

    /// Records off must empty `per_request` without changing any
    /// aggregate.
    #[test]
    fn record_mode_off_only_drops_the_records() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let model = Arc::new(models::llama2_7b());
        let spec = spec(3, 40, 8.0);
        let with = simulate(&cluster, Arc::clone(&model), &ServeConfig::new(1), &spec).unwrap();
        let without = simulate(
            &cluster,
            Arc::clone(&model),
            &ServeConfig::new(1).with_records(RecordMode::Off),
            &spec,
        )
        .unwrap();
        assert!(without.per_request.is_empty());
        assert_eq!(with.per_request.len(), with.completed);
        let strip = |mut r: ServeReport| {
            r.per_request.clear();
            r
        };
        assert_eq!(strip(with), strip(without));
    }

    /// Regression: the queue-depth sample at an iteration's end used the
    /// arrival cursor from the iteration's *start*, so every request that
    /// arrived while the iteration ran was missing from the sample. Two
    /// requests arriving early in a long prefill must show up in the
    /// sample that closes it.
    #[test]
    fn queue_samples_count_arrivals_during_the_iteration() {
        let cluster = presets::dgx_a100_hdr_cluster();
        // Request 0's prefill of a 4000-token prompt runs for a long
        // while (≫ 2 ms); requests 1 and 2 arrive 1–2 ms into it.
        let trace = [
            Request::new(0, 0.1, 4000, 4),
            Request::new(1, 0.101, 100, 4),
            Request::new(2, 0.102, 100, 4),
        ];
        let report = simulate_trace(
            &cluster,
            Arc::new(models::llama2_13b()),
            &ServeConfig::new(1),
            &trace,
        )
        .unwrap();
        let first = report.queue.samples[0];
        assert!(
            first.at.secs() > 0.102,
            "the opening prefill must outlast both arrivals ({})",
            first.at
        );
        assert_eq!(
            first.waiting, 2,
            "both mid-iteration arrivals must be visible in the closing sample"
        );
    }

    /// Regression: `peak_waiting` counted the request receiving its
    /// prefill in the same iteration, while the time-weighted mean
    /// excluded it — peak and mean disagreed with the documented "no
    /// compute yet" definition. A lone request that prefills immediately
    /// never waits.
    #[test]
    fn peak_waiting_excludes_the_request_being_prefilled() {
        let cluster = presets::dgx_a100_hdr_cluster();
        let lone = [Request::new(0, 0.1, 100, 4)];
        let report = simulate_trace(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(1),
            &lone,
        )
        .unwrap();
        assert_eq!(report.queue.peak_waiting, 0, "a lone request never waits");
        assert_eq!(report.queue.mean_waiting, 0.0);

        // Two simultaneous arrivals: one prefills, one genuinely waits.
        let pair = [Request::new(0, 0.1, 100, 4), Request::new(1, 0.1, 100, 4)];
        let report = simulate_trace(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(1),
            &pair,
        )
        .unwrap();
        assert_eq!(
            report.queue.peak_waiting, 1,
            "exactly one of two simultaneous arrivals waits for the prefill slot"
        );
        assert!(report.queue.mean_waiting > 0.0);
    }

    /// The down-sampled queue series always ends at the trace end, even
    /// when the thinning stride would skip the final iteration.
    #[test]
    fn queue_samples_end_at_trace_end() {
        let cluster = presets::dgx_a100_hdr_cluster();
        // Enough iterations to engage both the online stride doubling and
        // the assembly-time thinning.
        let report = simulate(
            &cluster,
            Arc::new(models::llama2_7b()),
            &ServeConfig::new(1),
            &spec(21, 600, 12.0),
        )
        .unwrap();
        assert!(report.queue.samples.len() <= MAX_QUEUE_SAMPLES + 1);
        let last = report.queue.samples.last().expect("non-empty series");
        assert_eq!(
            last.at, report.makespan,
            "series must end at the makespan, not at the last stride hit"
        );
        assert_eq!(last.waiting, 0, "the run ends idle");
        assert_eq!(last.decoding, 0, "the run ends idle");
    }
}
