//! Block-granular (paged) KV-cache policy and scheduling knobs.
//!
//! Real continuous-batching servers abandoned whole-lifetime KV
//! reservation for vLLM-style paging: a request holds ⌈ctx/block⌉
//! fixed-size blocks that grow as it decodes, admission checks *free
//! blocks* against the prompt instead of the full prompt+output
//! reservation, and a decode step that finds the pool exhausted preempts
//! a victim — recomputing its discarded progress later, or swapping its
//! blocks out over the node-egress link and back. [`KvSpec`] selects the
//! regime per [`crate::ServeConfig`]; the degenerate
//! [`KvSpec::reserved`] keeps the legacy full-reservation path
//! bit-identical to a build without paging at all (the same pinning
//! discipline as [`crate::FaultSpec::none`]).
//!
//! Paging is what makes shared-prefix traces interesting: full blocks of
//! a cached prefix are held once and reference-counted across every
//! request that carries the prefix, so cache hits skip most of their
//! prefill and admit under a fraction of their nominal footprint.
//! [`crate::PrefixSpec`] generates such traces; [`PagingReport`] accounts
//! for hits, evictions, preemptions, and swap traffic.

use serde::{Deserialize, Serialize};

/// What happens to the preemption victim when a decode step cannot get a
/// free block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum PreemptPolicy {
    /// Discard the victim's generated tokens and its blocks; the request
    /// re-enters the admission queue (ahead of new arrivals) and
    /// re-prefills its whole prompt when space frees up. Costs recompute
    /// iterations, no transfer traffic.
    #[default]
    Recompute,
    /// Move the victim's blocks to host memory over the node-egress link
    /// and keep its progress; resuming swaps the blocks back in. Both
    /// directions are priced at the link's size-derated effective
    /// bandwidth, the same egress model checkpoint writes use.
    Swap,
}

impl core::fmt::Display for PreemptPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Recompute => write!(f, "recompute"),
            Self::Swap => write!(f, "swap"),
        }
    }
}

/// The KV-cache memory regime of one serving replica.
///
/// `block_tokens == 0` is the **reserved** (legacy) regime: a request
/// reserves its full prompt+output KV at admission and releases it at
/// completion, so decode-time OOM is impossible by construction. Any
/// positive `block_tokens` is the **paged** regime described in the
/// module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KvSpec {
    /// Tokens per KV block; `0` selects the legacy whole-lifetime
    /// reservation.
    pub block_tokens: usize,
    /// Victim handling on decode-time OOM (paged regime only).
    pub policy: PreemptPolicy,
}

impl Default for KvSpec {
    fn default() -> Self {
        Self::reserved()
    }
}

impl KvSpec {
    /// The legacy whole-lifetime reservation regime (bit-identical to the
    /// simulator before paging existed).
    #[must_use]
    pub fn reserved() -> Self {
        Self {
            block_tokens: 0,
            policy: PreemptPolicy::Recompute,
        }
    }

    /// Paged KV with `block_tokens`-token blocks and recompute
    /// preemption.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero (that spelling is
    /// [`KvSpec::reserved`]).
    #[must_use]
    pub fn paged(block_tokens: usize) -> Self {
        assert!(block_tokens > 0, "paged KV needs a positive block size");
        Self {
            block_tokens,
            policy: PreemptPolicy::Recompute,
        }
    }

    /// Sets the preemption policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PreemptPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Whether this is the legacy full-reservation regime.
    #[must_use]
    pub fn is_reserved(&self) -> bool {
        self.block_tokens == 0
    }
}

impl core::fmt::Display for KvSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_reserved() {
            write!(f, "reserved")
        } else {
            write!(f, "paged({} tok/block, {})", self.block_tokens, self.policy)
        }
    }
}

/// How the admission queue is ordered.
///
/// Every scheduler keeps head-of-line blocking: the *picked* request
/// either admits or the queue waits — a lower-ranked request never
/// admits past a blocked pick (which is what makes FIFO under this
/// generalized queue identical to the legacy cursor admission,
/// float-for-float).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum Scheduler {
    /// Earliest arrival first — the legacy (and vLLM default) order.
    #[default]
    Fifo,
    /// Most urgent [`crate::Request::priority`] class first (lower value
    /// = more urgent); FIFO within a class.
    Priority,
    /// Shortest predicted job first: smallest prompt+output first (the
    /// trace's output length stands in for a perfect job-size
    /// predictor); FIFO among ties.
    Sjf,
    /// [`Scheduler::Priority`] admission, and decode-time OOM preempts
    /// the *least* urgent running request instead of the latest-admitted
    /// one. Requires a paged [`KvSpec`] — under full reservation there is
    /// nothing to preempt.
    PriorityPreempt,
}

impl core::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Fifo => write!(f, "fifo"),
            Self::Priority => write!(f, "priority"),
            Self::Sjf => write!(f, "sjf"),
            Self::PriorityPreempt => write!(f, "priority-preempt"),
        }
    }
}

impl Scheduler {
    /// Whether the scheduler ranks by [`crate::Request::priority`].
    #[must_use]
    pub fn is_priority_aware(&self) -> bool {
        matches!(self, Self::Priority | Self::PriorityPreempt)
    }
}

/// Paged-KV accounting of one run: block occupancy, prefix-cache
/// effectiveness, and preemption traffic. Present in a
/// [`crate::ServeReport`] exactly when the replica ran a paged
/// [`KvSpec`]; reserved-mode reports omit the field entirely (not
/// `null`), keeping them byte-identical to pre-paging reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PagingReport {
    /// Tokens per KV block.
    pub block_tokens: usize,
    /// Device block pool: ⌊KV budget / block bytes⌋.
    pub total_blocks: usize,
    /// Peak blocks in use (private + refcounted prefix blocks).
    pub peak_blocks: usize,
    /// `peak_blocks / total_blocks`.
    pub peak_block_utilization: f64,
    /// Decode-time OOM preemptions (recompute and swap victims alike).
    pub preemptions: usize,
    /// Victims swapped out to host (0 under recompute).
    pub swap_outs: usize,
    /// Swapped victims restored to the device (0 under recompute).
    pub swap_ins: usize,
    /// Bytes moved over the egress link by swaps, both directions.
    pub swap_bytes: optimus_units::Bytes,
    /// Admissions that found their shared prefix resident.
    pub prefix_hits: usize,
    /// Admissions that carried a prefix but found it absent.
    pub prefix_misses: usize,
    /// Resident prefix entries evicted to free blocks.
    pub prefix_evictions: usize,
    /// Prompt tokens whose prefill was skipped by prefix hits.
    pub cached_tokens_saved: usize,
}

impl PagingReport {
    /// Element-wise merge for fleet aggregation: pool geometry is shared
    /// (replicas are identical), occupancy takes the worst replica,
    /// event counters and traffic sum.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            block_tokens: self.block_tokens,
            total_blocks: self.total_blocks,
            peak_blocks: self.peak_blocks.max(other.peak_blocks),
            peak_block_utilization: self
                .peak_block_utilization
                .max(other.peak_block_utilization),
            preemptions: self.preemptions + other.preemptions,
            swap_outs: self.swap_outs + other.swap_outs,
            swap_ins: self.swap_ins + other.swap_ins,
            swap_bytes: self.swap_bytes + other.swap_bytes,
            prefix_hits: self.prefix_hits + other.prefix_hits,
            prefix_misses: self.prefix_misses + other.prefix_misses,
            prefix_evictions: self.prefix_evictions + other.prefix_evictions,
            cached_tokens_saved: self.cached_tokens_saved + other.cached_tokens_saved,
        }
    }
}

impl core::fmt::Display for PagingReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "blocks {}/{} peak ({:.1}%, {} tok/block), {} preemptions \
             ({} swap-out / {} swap-in, {}), prefix {} hit / {} miss / {} evicted \
             ({} tokens of prefill skipped)",
            self.peak_blocks,
            self.total_blocks,
            self.peak_block_utilization * 100.0,
            self.block_tokens,
            self.preemptions,
            self.swap_outs,
            self.swap_ins,
            self.swap_bytes,
            self.prefix_hits,
            self.prefix_misses,
            self.prefix_evictions,
            self.cached_tokens_saved,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_is_the_default_and_degenerate() {
        assert_eq!(KvSpec::default(), KvSpec::reserved());
        assert!(KvSpec::reserved().is_reserved());
        assert!(!KvSpec::paged(16).is_reserved());
        assert_eq!(KvSpec::reserved().to_string(), "reserved");
        assert_eq!(
            KvSpec::paged(16)
                .with_policy(PreemptPolicy::Swap)
                .to_string(),
            "paged(16 tok/block, swap)"
        );
    }

    #[test]
    #[should_panic(expected = "positive block size")]
    fn zero_block_paged_is_rejected() {
        let _ = KvSpec::paged(0);
    }

    #[test]
    fn merged_aggregates_counters_and_maxes_occupancy() {
        let a = PagingReport {
            block_tokens: 16,
            total_blocks: 100,
            peak_blocks: 40,
            peak_block_utilization: 0.4,
            preemptions: 2,
            prefix_hits: 3,
            ..PagingReport::default()
        };
        let b = PagingReport {
            block_tokens: 16,
            total_blocks: 100,
            peak_blocks: 70,
            peak_block_utilization: 0.7,
            preemptions: 1,
            prefix_hits: 5,
            ..PagingReport::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.peak_blocks, 70);
        assert_eq!(m.preemptions, 3);
        assert_eq!(m.prefix_hits, 8);
        assert_eq!(m.total_blocks, 100);
    }
}
