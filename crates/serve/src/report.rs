//! Serving-simulation reports: latency percentiles, throughput, queue
//! dynamics, KV occupancy, and SLO goodput.

use crate::{PagingReport, Scheduler};
use optimus_units::{Bytes, Time};
use serde::{Deserialize, Serialize, Value};

/// A latency service-level objective over the two serving-visible latency
/// components.
///
/// A request **meets** the SLO when its TTFT is within [`SloSpec::ttft`]
/// and its mean TPOT is within [`SloSpec::tpot`] (requests generating a
/// single token have no inter-token gaps, so the TPOT clause is vacuously
/// met).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Time-to-first-token target: arrival → first generated token.
    pub ttft: Time,
    /// Time-per-output-token target: mean gap between generated tokens.
    pub tpot: Time,
}

impl Default for SloSpec {
    /// An interactive-chat-style objective: first token within 2 s, then
    /// at least 10 tokens/s sustained.
    fn default() -> Self {
        Self {
            ttft: Time::from_secs(2.0),
            tpot: Time::from_millis(100.0),
        }
    }
}

/// Order statistics of one latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Population size the statistics were computed over.
    pub count: usize,
    /// Median.
    pub p50: Time,
    /// 90th percentile.
    pub p90: Time,
    /// 99th percentile.
    pub p99: Time,
    /// Arithmetic mean.
    pub mean: Time,
    /// Maximum.
    pub max: Time,
}

impl LatencyStats {
    /// Nearest-rank order statistics of `values` (all zeros when empty).
    ///
    /// Selection runs in O(n) per percentile via `select_nth_unstable` on
    /// one scratch buffer instead of a full O(n log n) sort; the order
    /// statistics are identical to the sorted definition. The mean
    /// accumulates in input order (the sorted-order sum it replaced could
    /// differ in the last ulp).
    #[must_use]
    pub fn from_times(values: &[Time]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len();
        let mut scratch = values.to_vec();
        let mut rank = |q: f64| {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            *scratch.select_nth_unstable(idx).1
        };
        let (p50, p90, p99) = (rank(0.50), rank(0.90), rank(0.99));
        let sum: f64 = values.iter().map(|t| t.secs()).sum();
        Self {
            count: n,
            p50,
            p90,
            p99,
            mean: Time::from_secs(sum / n as f64),
            max: *values.iter().max().expect("non-empty"),
        }
    }
}

/// One queue-depth observation at an iteration boundary.
///
/// `waiting` counts every request that has arrived but received **no
/// compute yet** — both requests queued for admission (no KV space) and
/// requests admitted but still awaiting their prefill iteration (no free
/// step). Compute-bound saturation therefore shows up here even when the
/// KV budget admits everything instantly. The request receiving its
/// prefill in an iteration is *not* waiting, and a sample taken at an
/// iteration's end counts requests that arrived while the iteration ran;
/// [`QueueStats::peak_waiting`] and [`QueueStats::mean_waiting`] observe
/// this same population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Simulation time of the observation.
    pub at: Time,
    /// Arrived requests with no compute yet (admission queue + prefill
    /// backlog).
    pub waiting: usize,
    /// Requests actively decoding (the continuous batch).
    pub decoding: usize,
}

/// Queue dynamics over the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueueStats {
    /// Largest waiting population observed (see [`QueueSample::waiting`]).
    pub peak_waiting: usize,
    /// Time-weighted mean waiting population.
    pub mean_waiting: f64,
    /// Largest concurrent decode batch.
    pub peak_decoding: usize,
    /// Down-sampled depth-over-time series (at most
    /// [`crate::MAX_QUEUE_SAMPLES`] evenly spaced iteration boundaries).
    pub samples: Vec<QueueSample>,
}

/// KV-cache accounting over the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvUsage {
    /// Per-device weight bytes (static).
    pub weights: Bytes,
    /// Per-device KV budget: device capacity minus weights.
    pub budget: Bytes,
    /// Peak per-device KV reservation observed.
    pub peak: Bytes,
    /// `peak / budget`.
    pub peak_utilization: f64,
}

/// Goodput under the configured SLO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The objective evaluated.
    pub spec: SloSpec,
    /// Completed requests meeting both SLO clauses.
    pub met: usize,
    /// Fraction of completed requests meeting the SLO (1.0 when nothing
    /// completed).
    pub attainment: f64,
    /// Generated tokens of SLO-meeting requests per second of makespan.
    pub goodput_tokens_per_s: f64,
    /// SLO-meeting requests per second of makespan.
    pub goodput_requests_per_s: f64,
}

/// Per-request accounting, in arrival (id) order over admitted requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestMetrics {
    /// Trace id (arrival order).
    pub id: usize,
    /// Prompt tokens.
    pub prompt: usize,
    /// Generated tokens (equals the trace's requested output length).
    pub generated: usize,
    /// Arrival time.
    pub arrival: Time,
    /// Arrival → admission (KV reservation granted).
    pub queue_wait: Time,
    /// Duration of the request's prefill iteration.
    pub prefill: Time,
    /// Arrival → end of the iteration producing the first generated token.
    pub ttft: Time,
    /// Arrival → completion.
    pub e2e: Time,
    /// Mean inter-token gap after the first token; `None` for single-token
    /// outputs (no gaps exist).
    pub tpot: Option<Time>,
    /// Whether the request met the SLO.
    pub met_slo: bool,
}

/// The complete outcome of one serving simulation.
///
/// Serialization note: the `scheduler` and `paging` sections are
/// **omitted** (not `null`) when absent, so reports from the legacy
/// FIFO + reserved-KV regime stay byte-identical to reports from before
/// paging and schedulers existed (pinned by the golden-report tests,
/// the same discipline as [`crate::FaultSpec::none`]). That requires
/// the hand-written [`Serialize`] impl below; keep its field list in
/// sync with the struct.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ServeReport {
    /// Model name.
    pub model: String,
    /// Cluster name.
    pub cluster: String,
    /// Tensor-parallel degree of the serving instance.
    pub tp: usize,
    /// Serving precision.
    pub precision: optimus_hw::Precision,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Requests rejected on arrival (their lone KV reservation exceeds the
    /// whole budget — they could never be admitted).
    pub rejected: usize,
    /// Trace ids of rejected requests.
    pub rejected_ids: Vec<usize>,
    /// Simulation end: completion time of the last request.
    pub makespan: Time,
    /// Tokens generated across all completed requests.
    pub generated_tokens: usize,
    /// Sustained generation throughput: generated tokens / makespan.
    pub tokens_per_s: f64,
    /// Sustained request throughput: completed requests / makespan.
    pub requests_per_s: f64,
    /// Prefill iterations executed.
    pub prefill_iterations: usize,
    /// Decode iterations executed.
    pub decode_iterations: usize,
    /// Mean decode-batch size across decode iterations.
    pub mean_decode_batch: f64,
    /// Time-to-first-token statistics over completed requests.
    pub ttft: LatencyStats,
    /// Time-per-output-token statistics (multi-token requests only).
    pub tpot: LatencyStats,
    /// End-to-end latency statistics over completed requests.
    pub e2e: LatencyStats,
    /// Queue dynamics.
    pub queue: QueueStats,
    /// KV-cache accounting.
    pub kv: KvUsage,
    /// Goodput under the configured SLO.
    pub slo: SloReport,
    /// Per-request records, id order (rejected requests excluded).
    pub per_request: Vec<RequestMetrics>,
    /// The admission scheduler, when it is not the legacy FIFO.
    pub scheduler: Option<Scheduler>,
    /// Paged-KV accounting, when the instance ran a paged
    /// [`crate::KvSpec`]; absent under the legacy full reservation.
    pub paging: Option<PagingReport>,
}

impl Serialize for ServeReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("model".to_owned(), self.model.to_value()),
            ("cluster".to_owned(), self.cluster.to_value()),
            ("tp".to_owned(), self.tp.to_value()),
            ("precision".to_owned(), self.precision.to_value()),
            ("requests".to_owned(), self.requests.to_value()),
            ("completed".to_owned(), self.completed.to_value()),
            ("rejected".to_owned(), self.rejected.to_value()),
            ("rejected_ids".to_owned(), self.rejected_ids.to_value()),
            ("makespan".to_owned(), self.makespan.to_value()),
            (
                "generated_tokens".to_owned(),
                self.generated_tokens.to_value(),
            ),
            ("tokens_per_s".to_owned(), self.tokens_per_s.to_value()),
            ("requests_per_s".to_owned(), self.requests_per_s.to_value()),
            (
                "prefill_iterations".to_owned(),
                self.prefill_iterations.to_value(),
            ),
            (
                "decode_iterations".to_owned(),
                self.decode_iterations.to_value(),
            ),
            (
                "mean_decode_batch".to_owned(),
                self.mean_decode_batch.to_value(),
            ),
            ("ttft".to_owned(), self.ttft.to_value()),
            ("tpot".to_owned(), self.tpot.to_value()),
            ("e2e".to_owned(), self.e2e.to_value()),
            ("queue".to_owned(), self.queue.to_value()),
            ("kv".to_owned(), self.kv.to_value()),
            ("slo".to_owned(), self.slo.to_value()),
            ("per_request".to_owned(), self.per_request.to_value()),
        ];
        if let Some(scheduler) = &self.scheduler {
            fields.push(("scheduler".to_owned(), scheduler.to_value()));
        }
        if let Some(paging) = &self.paging {
            fields.push(("paging".to_owned(), paging.to_value()));
        }
        Value::Object(fields)
    }
}

impl core::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "served {}/{} requests ({} rejected) in {}  |  {:.1} tok/s, {:.2} req/s",
            self.completed,
            self.requests,
            self.rejected,
            self.makespan,
            self.tokens_per_s,
            self.requests_per_s
        )?;
        let line = |name: &str, s: &LatencyStats| {
            format!(
                "  {name:<6} p50 {:>10}  p90 {:>10}  p99 {:>10}  mean {:>10}  max {:>10}",
                s.p50.to_string(),
                s.p90.to_string(),
                s.p99.to_string(),
                s.mean.to_string(),
                s.max.to_string()
            )
        };
        writeln!(f, "{}", line("ttft", &self.ttft))?;
        writeln!(f, "{}", line("tpot", &self.tpot))?;
        writeln!(f, "{}", line("e2e", &self.e2e))?;
        writeln!(
            f,
            "  queue  peak {} waiting / {} decoding, mean waiting {:.2}",
            self.queue.peak_waiting, self.queue.peak_decoding, self.queue.mean_waiting
        )?;
        writeln!(
            f,
            "  kv     peak {} of {} budget ({:.1}% util; weights {})",
            self.kv.peak,
            self.kv.budget,
            self.kv.peak_utilization * 100.0,
            self.kv.weights
        )?;
        write!(
            f,
            "  slo    ttft ≤ {}, tpot ≤ {}: {}/{} met ({:.1}%), goodput {:.1} tok/s",
            self.slo.spec.ttft,
            self.slo.spec.tpot,
            self.slo.met,
            self.completed,
            self.slo.attainment * 100.0,
            self.slo.goodput_tokens_per_s
        )?;
        if let Some(scheduler) = &self.scheduler {
            write!(f, "\n  sched  {scheduler}")?;
        }
        if let Some(paging) = &self.paging {
            write!(f, "\n  paged  {paging}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_nearest_rank() {
        let times: Vec<Time> = (1..=100).map(|i| Time::from_millis(f64::from(i))).collect();
        let s = LatencyStats::from_times(&times);
        assert_eq!(s.count, 100);
        assert!((s.p50.millis() - 50.0).abs() < 1e-9);
        assert!((s.p90.millis() - 90.0).abs() < 1e-9);
        assert!((s.p99.millis() - 99.0).abs() < 1e-9);
        assert!((s.max.millis() - 100.0).abs() < 1e-9);
        assert!((s.mean.millis() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_stats_of_empty_population_are_zero() {
        let s = LatencyStats::from_times(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, Time::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencyStats::from_times(&[Time::from_millis(7.0)]);
        assert_eq!(s.p50, s.p99);
        assert_eq!(s.p50, s.max);
    }
}
