//! Streaming latency statistics for million-request traces.
//!
//! The exact [`LatencyStats::from_times`] path materializes one `Time`
//! per request and selects order statistics at the end — fine to
//! [`EXACT_MODE_LIMIT`](crate::EXACT_MODE_LIMIT) requests, pure memory
//! churn beyond. [`LatencyAccumulator`] keeps both regimes behind one
//! `record`/`finish` interface: small populations stay exact, large ones
//! stream into a fixed-bin log-scale [`LogHistogram`] whose percentile
//! estimates are within one bin width (≈2.2% at 32 bins per doubling) of
//! the exact nearest-rank values, with count, mean, and max always exact.

use crate::report::LatencyStats;
use optimus_units::Time;

/// Log-scale resolution: bins per doubling of latency.
pub const HISTOGRAM_BINS_PER_OCTAVE: usize = 32;
/// Smallest representable latency (values below clamp into the first
/// bin): one nanosecond.
const MIN_SECS: f64 = 1e-9;
/// Largest representable latency (values above clamp into the last bin):
/// ~11.6 days, far beyond any simulated makespan.
const MAX_SECS: f64 = 1e6;

/// A fixed-bin log-scale latency histogram: bin `i` covers
/// `[MIN·2^(i/B), MIN·2^((i+1)/B))` seconds with `B` bins per doubling.
///
/// Memory is a few kilobytes regardless of population size, and recording
/// is a `log2`, a multiply, and an increment — no allocation, no
/// sorting.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// An empty histogram spanning 1 ns to ~11.6 days.
    #[must_use]
    pub fn new() -> Self {
        let octaves = (MAX_SECS / MIN_SECS).log2().ceil() as usize;
        Self {
            counts: vec![0; octaves * HISTOGRAM_BINS_PER_OCTAVE + 1],
            total: 0,
        }
    }

    /// Index of the bin holding `secs` (clamped to the covered range).
    fn bin_of(secs: f64) -> usize {
        if secs <= MIN_SECS {
            return 0;
        }
        let i = ((secs / MIN_SECS).log2() * HISTOGRAM_BINS_PER_OCTAVE as f64).floor() as usize;
        i.min(Self::bin_count() - 1)
    }

    fn bin_count() -> usize {
        let octaves = (MAX_SECS / MIN_SECS).log2().ceil() as usize;
        octaves * HISTOGRAM_BINS_PER_OCTAVE + 1
    }

    /// The upper edge of bin `i` — the conservative representative a
    /// percentile query returns (never below any value in the bin).
    fn bin_upper(i: usize) -> f64 {
        MIN_SECS * 2f64.powf((i + 1) as f64 / HISTOGRAM_BINS_PER_OCTAVE as f64)
    }

    /// Records one observation.
    pub fn record(&mut self, value: Time) {
        self.counts[Self::bin_of(value.secs())] += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Folds another histogram's population into this one (bin layouts
    /// are identical by construction, so this is an elementwise add).
    pub fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Nearest-rank percentile estimate: the upper edge of the bin
    /// holding the rank-`⌈q·n⌉` observation — within one bin width
    /// (a factor of `2^(1/32)` ≈ 2.2%) above the exact order statistic.
    /// Zero for an empty histogram.
    ///
    /// Because the estimate is a bin's *upper* edge, it can exceed the
    /// population's true maximum; [`LatencyAccumulator::finish`] clamps
    /// against the exactly-tracked max so a report never shows
    /// `p99 > max`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Time::from_secs(Self::bin_upper(i));
            }
        }
        Time::from_secs(Self::bin_upper(Self::bin_count() - 1))
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One latency population's accumulator: exact below the cutover,
/// histogram-backed streaming above. Count, mean, and max are exact in
/// both regimes; only the streamed percentiles are approximate.
#[derive(Debug)]
pub enum LatencyAccumulator {
    /// Materialize every observation; `finish` runs the exact
    /// nearest-rank selection of [`LatencyStats::from_times`].
    Exact(Vec<Time>),
    /// Stream observations into a [`LogHistogram`] plus exact running
    /// aggregates.
    Streaming {
        /// Percentile sketch.
        histogram: LogHistogram,
        /// Running sum of seconds (mean stays exact).
        sum_secs: f64,
        /// Exact maximum.
        max: Time,
    },
}

impl LatencyAccumulator {
    /// Chooses the regime for a population of up to `expected`
    /// observations: exact within [`crate::EXACT_MODE_LIMIT`], streaming
    /// beyond.
    #[must_use]
    pub fn for_population(expected: usize) -> Self {
        if expected <= crate::EXACT_MODE_LIMIT {
            Self::Exact(Vec::new())
        } else {
            Self::Streaming {
                histogram: LogHistogram::new(),
                sum_secs: 0.0,
                max: Time::ZERO,
            }
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: Time) {
        match self {
            Self::Exact(values) => values.push(value),
            Self::Streaming {
                histogram,
                sum_secs,
                max,
            } => {
                histogram.record(value);
                *sum_secs += value.secs();
                *max = (*max).max(value);
            }
        }
    }

    /// Folds another accumulator's population into this one, so fleet
    /// drivers can aggregate per-replica latency populations loss-free:
    /// exact + exact concatenates the observations, streaming + streaming
    /// merges histograms and running aggregates, and a mixed pair streams
    /// the exact side's observations into the histogram regime (the only
    /// lossy direction, taken only when the regimes genuinely differ).
    pub fn merge(&mut self, other: &Self) {
        if matches!(self, Self::Exact(_)) && matches!(other, Self::Streaming { .. }) {
            // Promote this side to the streaming regime first, so the
            // match below only ever merges downhill.
            let Self::Exact(mine) = core::mem::replace(
                self,
                Self::Streaming {
                    histogram: LogHistogram::new(),
                    sum_secs: 0.0,
                    max: Time::ZERO,
                },
            ) else {
                unreachable!("matched Exact above");
            };
            for v in mine {
                self.record(v);
            }
        }
        match (&mut *self, other) {
            (Self::Exact(mine), Self::Exact(theirs)) => mine.extend_from_slice(theirs),
            (
                Self::Streaming {
                    histogram,
                    sum_secs,
                    max,
                },
                Self::Streaming {
                    histogram: other_histogram,
                    sum_secs: other_sum,
                    max: other_max,
                },
            ) => {
                histogram.merge(other_histogram);
                *sum_secs += other_sum;
                *max = (*max).max(*other_max);
            }
            (
                Self::Streaming {
                    histogram,
                    sum_secs,
                    max,
                },
                Self::Exact(theirs),
            ) => {
                for &v in theirs {
                    histogram.record(v);
                    *sum_secs += v.secs();
                    *max = (*max).max(v);
                }
            }
            (Self::Exact(_), Self::Streaming { .. }) => unreachable!("promoted above"),
        }
    }

    /// Finalizes the statistics. Streamed percentile estimates are
    /// clamped to the exactly-tracked maximum: the histogram reports a
    /// bin's upper edge, which for the top-occupied bin can exceed the
    /// true max (and, for clamped overflow values, even `MAX_SECS`) — a
    /// report must never show `p99 > max`.
    #[must_use]
    pub fn finish(&self) -> LatencyStats {
        match self {
            Self::Exact(values) => LatencyStats::from_times(values),
            Self::Streaming {
                histogram,
                sum_secs,
                max,
            } => {
                let n = histogram.count();
                if n == 0 {
                    return LatencyStats::default();
                }
                LatencyStats {
                    count: n as usize,
                    p50: histogram.percentile(0.50).min(*max),
                    p90: histogram.percentile(0.90).min(*max),
                    p99: histogram.percentile(0.99).min(*max),
                    mean: Time::from_secs(sum_secs / n as f64),
                    max: *max,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_track_exact_within_one_bin() {
        let values: Vec<Time> = (1..=1000)
            .map(|i| Time::from_millis(f64::from(i) * 0.37))
            .collect();
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let exact = LatencyStats::from_times(&values);
        let bin_ratio = 2f64.powf(1.0 / HISTOGRAM_BINS_PER_OCTAVE as f64);
        for (q, e) in [(0.5, exact.p50), (0.9, exact.p90), (0.99, exact.p99)] {
            let est = h.percentile(q).secs();
            assert!(
                est >= e.secs() && est <= e.secs() * bin_ratio * bin_ratio,
                "q={q}: estimate {est} vs exact {}",
                e.secs()
            );
        }
    }

    #[test]
    fn histogram_clamps_out_of_range_values() {
        let mut h = LogHistogram::new();
        h.record(Time::from_secs(1e-12));
        h.record(Time::from_secs(1e9));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(0.5) > Time::ZERO);
    }

    #[test]
    fn empty_accumulators_finish_to_zeros() {
        for acc in [
            LatencyAccumulator::Exact(Vec::new()),
            LatencyAccumulator::for_population(1_000_000),
        ] {
            let s = acc.finish();
            assert_eq!(s.count, 0);
            assert_eq!(s.p99, Time::ZERO);
        }
    }

    #[test]
    fn streaming_count_mean_max_are_exact() {
        let mut acc = LatencyAccumulator::for_population(1_000_000);
        assert!(matches!(acc, LatencyAccumulator::Streaming { .. }));
        for i in 1..=100 {
            acc.record(Time::from_millis(f64::from(i)));
        }
        let s = acc.finish();
        assert_eq!(s.count, 100);
        assert!((s.mean.millis() - 50.5).abs() < 1e-9);
        assert!((s.max.millis() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn small_populations_choose_the_exact_regime() {
        let mut acc = LatencyAccumulator::for_population(100);
        assert!(matches!(acc, LatencyAccumulator::Exact(_)));
        acc.record(Time::from_millis(7.0));
        assert_eq!(acc.finish().p50, Time::from_millis(7.0));
    }

    /// Regression: the histogram's percentile estimate is a bin's upper
    /// edge, so before the clamp a streamed population of identical
    /// values reported `p50 > max`. Percentiles must stay ordered and
    /// bounded by the exact maximum in both regimes.
    #[test]
    fn streamed_percentiles_never_exceed_the_exact_max() {
        let mut streaming = LatencyAccumulator::for_population(1_000_000);
        let mut exact = LatencyAccumulator::for_population(100);
        for _ in 0..60 {
            streaming.record(Time::from_secs(1.0));
            exact.record(Time::from_secs(1.0));
        }
        for acc in [&streaming, &exact] {
            let s = acc.finish();
            assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
            assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
            assert!(s.p99 <= s.max, "p99 {} > max {}", s.p99, s.max);
            assert_eq!(s.max, Time::from_secs(1.0));
        }
    }

    /// Values beyond the histogram's covered range clamp into the last
    /// bin; the finished percentiles must still respect the exact max.
    #[test]
    fn overflowing_values_keep_percentiles_under_the_max() {
        let mut acc = LatencyAccumulator::for_population(1_000_000);
        for _ in 0..10 {
            acc.record(Time::from_secs(1e7)); // beyond MAX_SECS = 1e6
        }
        let s = acc.finish();
        assert_eq!(s.max, Time::from_secs(1e7));
        assert!(s.p99 <= s.max);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    /// Merging two streaming accumulators is loss-free on count, mean,
    /// and max, and the merged percentiles match recording the union
    /// directly.
    #[test]
    fn streaming_merge_equals_union() {
        let mut a = LatencyAccumulator::for_population(1_000_000);
        let mut b = LatencyAccumulator::for_population(1_000_000);
        let mut union = LatencyAccumulator::for_population(1_000_000);
        for i in 1..=100 {
            let v = Time::from_millis(f64::from(i) * 3.7);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            union.record(v);
        }
        a.merge(&b);
        assert_stats_match(&a.finish(), &union.finish());
    }

    /// Exact + exact merge concatenates; the result equals one exact
    /// accumulator over the union.
    #[test]
    fn exact_merge_equals_union() {
        let mut a = LatencyAccumulator::Exact(Vec::new());
        let mut b = LatencyAccumulator::Exact(Vec::new());
        let mut union = LatencyAccumulator::Exact(Vec::new());
        for i in 1..=50 {
            let v = Time::from_millis(f64::from(i));
            if i % 3 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            union.record(v);
        }
        a.merge(&b);
        assert_stats_match(&a.finish(), &union.finish());
    }

    /// Order statistics and extrema are order-independent, so they match
    /// exactly; the mean accumulates in input order, which a merge
    /// permutes, so it matches only to floating-point roundoff.
    fn assert_stats_match(merged: &LatencyStats, union: &LatencyStats) {
        assert_eq!(merged.count, union.count);
        assert_eq!(merged.p50, union.p50);
        assert_eq!(merged.p90, union.p90);
        assert_eq!(merged.p99, union.p99);
        assert_eq!(merged.max, union.max);
        assert!((merged.mean.secs() - union.mean.secs()).abs() <= 1e-12 * union.mean.secs());
    }

    /// Mixed-regime merges promote the exact side into the histogram;
    /// count, mean, and max stay exact in both directions.
    #[test]
    fn mixed_regime_merges_keep_exact_aggregates() {
        let exact_side = || {
            let mut acc = LatencyAccumulator::Exact(Vec::new());
            for i in 1..=40 {
                acc.record(Time::from_millis(f64::from(i)));
            }
            acc
        };
        let streaming_side = || {
            let mut acc = LatencyAccumulator::for_population(1_000_000);
            for i in 41..=80 {
                acc.record(Time::from_millis(f64::from(i)));
            }
            acc
        };
        let mut a = exact_side();
        a.merge(&streaming_side());
        let mut b = streaming_side();
        b.merge(&exact_side());
        for s in [a.finish(), b.finish()] {
            assert_eq!(s.count, 80);
            assert!((s.mean.millis() - 40.5).abs() < 1e-9);
            assert_eq!(s.max, Time::from_millis(80.0));
            assert!(s.p99 <= s.max);
        }
    }
}
