//! Synthetic request traces: seeded arrival processes and length
//! distributions.
//!
//! A [`TraceSpec`] is a compact, serializable description of a request
//! stream; [`TraceSpec::generate`] expands it into a concrete
//! arrival-ordered [`Request`] list using one seeded [`StdRng`] stream, so
//! the same spec always yields byte-identical traces on every platform and
//! thread count.

use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How interarrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A Poisson process: exponential interarrival gaps with the given
    /// rate (requests per second). The open-system model of "heavy traffic
    /// from millions of users".
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// Deterministic, evenly spaced arrivals — the closed-form regime used
    /// by the validation tests (no queueing randomness at all).
    Fixed {
        /// Gap between consecutive arrivals, seconds.
        interval_s: f64,
    },
}

impl ArrivalProcess {
    fn next_gap(&self, rng: &mut StdRng) -> f64 {
        match *self {
            Self::Poisson { rate_per_s } => Exp::new(rate_per_s).sample(rng),
            Self::Fixed { interval_s } => interval_s,
        }
    }

    fn validate(&self) {
        let value = match *self {
            Self::Poisson { rate_per_s } => rate_per_s,
            Self::Fixed { interval_s } => interval_s,
        };
        assert!(
            value.is_finite() && value > 0.0,
            "arrival parameter must be finite and positive, got {value}"
        );
    }
}

/// A token-length distribution for prompts or outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Every request uses exactly this many tokens.
    Fixed {
        /// The length in tokens.
        tokens: usize,
    },
    /// Uniform over `lo..=hi` tokens.
    Uniform {
        /// Smallest length, inclusive.
        lo: usize,
        /// Largest length, inclusive.
        hi: usize,
    },
}

impl LengthDist {
    /// Smallest length the distribution can draw.
    #[must_use]
    pub fn min_tokens(&self) -> usize {
        match *self {
            Self::Fixed { tokens } => tokens,
            Self::Uniform { lo, .. } => lo,
        }
    }

    /// Largest length the distribution can draw.
    #[must_use]
    pub fn max_tokens(&self) -> usize {
        match *self {
            Self::Fixed { tokens } => tokens,
            Self::Uniform { hi, .. } => hi,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            Self::Fixed { tokens } => tokens,
            Self::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        }
    }

    fn validate(&self, what: &str) {
        match *self {
            Self::Fixed { tokens } => assert!(tokens > 0, "{what} length must be positive"),
            Self::Uniform { lo, hi } => {
                assert!(lo > 0 && lo <= hi, "{what} range must satisfy 0 < lo <= hi");
            }
        }
    }
}

/// A shared prompt prefix carried by a request: which pool entry, and how
/// many of the request's prompt tokens it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prefix {
    /// Pool entry id (stable across the trace: two requests with the same
    /// id share the same prefix tokens).
    pub id: usize,
    /// Leading prompt tokens the prefix covers (`< prompt`).
    pub tokens: usize,
}

/// One request of the trace, fully determined at generation time (the
/// output length stands in for the stopping point the real model would
/// choose).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Index in arrival order (ids are assigned 0..n as requests arrive).
    pub id: usize,
    /// Arrival time in seconds since the simulation epoch.
    pub arrival_s: f64,
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Requested output length in tokens (≥ 1).
    pub output: usize,
    /// Scheduling class: lower is more urgent, `0` (the default) is the
    /// most urgent. Only priority-aware [`crate::Scheduler`]s read it.
    pub priority: u8,
    /// The shared prompt prefix, if the request carries one. Under a
    /// paged [`crate::KvSpec`] a resident prefix's full blocks are shared
    /// (refcounted) and its tokens skip prefill; under the reserved
    /// regime prefixes are ignored.
    pub prefix: Option<Prefix>,
}

impl Request {
    /// A plain request: default priority, no shared prefix.
    #[must_use]
    pub fn new(id: usize, arrival_s: f64, prompt: usize, output: usize) -> Self {
        Self {
            id,
            arrival_s,
            prompt,
            output,
            priority: 0,
            prefix: None,
        }
    }

    /// Sets the scheduling class (lower = more urgent).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Marks the leading `tokens` prompt tokens as shared prefix `id`.
    ///
    /// # Panics
    ///
    /// Panics unless `tokens` is positive and strictly below the prompt
    /// length (a request always contributes at least one novel token).
    #[must_use]
    pub fn with_prefix(mut self, id: usize, tokens: usize) -> Self {
        assert!(
            tokens > 0 && tokens < self.prompt,
            "prefix must cover 1..prompt tokens"
        );
        self.prefix = Some(Prefix { id, tokens });
        self
    }
}

/// A pool of shared prompt prefixes — the conversational / few-shot
/// system-prompt workload shape. Each generated request independently
/// carries one of `pool` fixed prefixes with probability `rate`; its
/// drawn prompt length becomes the *novel suffix*, so a prefixed
/// request's total prompt is `tokens + suffix`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixSpec {
    /// Distinct shared prefixes in the pool.
    pub pool: usize,
    /// Tokens per prefix.
    pub tokens: usize,
    /// Probability a request carries a pool prefix.
    pub rate: f64,
}

impl PrefixSpec {
    fn validate(&self) {
        assert!(self.pool > 0, "prefix pool must be non-empty");
        assert!(self.tokens > 0, "prefix length must be positive");
        assert!(
            (0.0..=1.0).contains(&self.rate) && self.rate.is_finite(),
            "prefix rate must lie in [0, 1]"
        );
    }
}

/// A seeded synthetic workload: arrival process plus prompt/output length
/// distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// RNG seed; same seed ⇒ byte-identical trace.
    pub seed: u64,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Interarrival process.
    pub arrival: ArrivalProcess,
    /// Prompt-length distribution. With an active [`TraceSpec::prefixes`]
    /// pool, the draw is the *novel suffix* of prefixed requests.
    pub prompt: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
    /// Shared-prefix pool; `None` (the default) draws exactly the streams
    /// this spec drew before prefixes existed.
    pub prefixes: Option<PrefixSpec>,
    /// Scheduling classes drawn uniformly per request; `1` (the default)
    /// leaves every request at priority 0 without consuming RNG words.
    pub priority_classes: u8,
}

impl TraceSpec {
    /// A Poisson stream of `requests` requests at `rate_per_s`, with fixed
    /// prompt and output lengths — the most common starting point.
    #[must_use]
    pub fn poisson(
        seed: u64,
        requests: usize,
        rate_per_s: f64,
        prompt: usize,
        output: usize,
    ) -> Self {
        Self {
            seed,
            requests,
            arrival: ArrivalProcess::Poisson { rate_per_s },
            prompt: LengthDist::Fixed { tokens: prompt },
            output: LengthDist::Fixed { tokens: output },
            prefixes: None,
            priority_classes: 1,
        }
    }

    /// Sets the shared-prefix pool.
    #[must_use]
    pub fn with_prefixes(mut self, prefixes: PrefixSpec) -> Self {
        self.prefixes = Some(prefixes);
        self
    }

    /// Sets the number of uniformly drawn priority classes.
    #[must_use]
    pub fn with_priority_classes(mut self, classes: u8) -> Self {
        self.priority_classes = classes;
        self
    }

    /// Expands the spec into an arrival-ordered request list.
    ///
    /// All randomness flows through one [`StdRng`] seeded from
    /// [`TraceSpec::seed`] in a fixed draw order — gap, prompt, output
    /// per request, then (only when the features are active) the prefix
    /// draws and the priority draw — so generation is exactly
    /// reproducible, and a spec with no prefixes and one priority class
    /// replays the pre-feature stream bit for bit.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (non-positive rate/interval,
    /// zero-token lengths, an empty prefix pool, a prefix rate outside
    /// `[0, 1]`, or zero priority classes).
    #[must_use]
    pub fn generate(&self) -> Vec<Request> {
        self.arrival.validate();
        self.prompt.validate("prompt");
        self.output.validate("output");
        if let Some(p) = &self.prefixes {
            p.validate();
        }
        assert!(
            self.priority_classes > 0,
            "at least one priority class is required"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut clock = 0.0;
        (0..self.requests)
            .map(|id| {
                clock += self.arrival.next_gap(&mut rng);
                let drawn_prompt = self.prompt.sample(&mut rng);
                let output = self.output.sample(&mut rng);
                let prefix = self.prefixes.and_then(|spec| {
                    let hit = rng.gen_range(0.0f64..1.0) < spec.rate;
                    hit.then(|| Prefix {
                        id: rng.gen_range(0..spec.pool),
                        tokens: spec.tokens,
                    })
                });
                let priority = if self.priority_classes > 1 {
                    rng.gen_range(0..self.priority_classes)
                } else {
                    0
                };
                Request {
                    id,
                    arrival_s: clock,
                    // The drawn length is the novel suffix of a prefixed
                    // request, so its total prompt strictly exceeds the
                    // prefix — `Prefix::tokens < prompt` always holds.
                    prompt: drawn_prompt + prefix.map_or(0, |p| p.tokens),
                    output,
                    priority,
                    prefix,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_ordered() {
        let spec = TraceSpec {
            seed: 7,
            requests: 64,
            arrival: ArrivalProcess::Poisson { rate_per_s: 3.0 },
            prompt: LengthDist::Uniform { lo: 10, hi: 200 },
            output: LengthDist::Uniform { lo: 1, hi: 50 },
            prefixes: None,
            priority_classes: 1,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b, "same seed must replay the same trace");
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i));
        assert!(a
            .iter()
            .all(|r| (10..=200).contains(&r.prompt) && (1..=50).contains(&r.output)));
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = TraceSpec::poisson(1, 16, 2.0, 100, 10);
        let a = spec.generate();
        spec.seed = 2;
        let b = spec.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn fixed_arrivals_are_evenly_spaced() {
        let spec = TraceSpec {
            seed: 0,
            requests: 5,
            arrival: ArrivalProcess::Fixed { interval_s: 2.5 },
            prompt: LengthDist::Fixed { tokens: 100 },
            output: LengthDist::Fixed { tokens: 8 },
            prefixes: None,
            priority_classes: 1,
        };
        let trace = spec.generate();
        for (i, r) in trace.iter().enumerate() {
            assert!((r.arrival_s - 2.5 * (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_rate_matches_on_average() {
        let spec = TraceSpec::poisson(42, 4000, 8.0, 100, 10);
        let trace = spec.generate();
        let span = trace.last().unwrap().arrival_s;
        let rate = trace.len() as f64 / span;
        assert!((rate - 8.0).abs() < 0.5, "empirical rate {rate}");
    }
}
